#!/usr/bin/env bash
# Offline CI entry point: build, tests, determinism, bench smoke.
#
# Everything resolves from the vendored registry stubs under `vendor/`
# (see .cargo/config.toml) — no network access is required or attempted.
#
# Usage: scripts/ci.sh [--quick]
#   --quick  skip the slow integration suites (figures_smoke,
#            headline_shape); unit + determinism + goldens still run.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== cache schema <-> goldens consistency =="
# The run cache replays results across commits, keyed by
# `runcache::SCHEMA_VERSION`. Engine-semantics changes surface as golden
# fingerprint diffs — and any commit range that changes the goldens
# without bumping the schema would happily replay stale cached results
# (and vice versa: a schema bump with unchanged goldens invalidates a
# perfectly good cache). Enforce the iff. Base rev: $CI_BASE_REV, else
# the parent commit; a rootless/shallow checkout skips with a note.
BASE="${CI_BASE_REV:-HEAD~1}"
if git rev-parse -q --verify "$BASE" >/dev/null 2>&1; then
  GOLD_DIFF=$(git diff "$BASE" HEAD -- tests/golden_fingerprint.rs | grep -cE '^[+-].*(GOLDEN_|cycles=|l1m=)' || true)
  SCHEMA_DIFF=$(git diff "$BASE" HEAD -- crates/experiments/src/runcache.rs | grep -c '^[+-]pub const SCHEMA_VERSION' || true)
  if [ "$GOLD_DIFF" -gt 0 ] && [ "$SCHEMA_DIFF" -eq 0 ]; then
    echo "FAIL: golden fingerprints changed since $BASE but runcache SCHEMA_VERSION did not — stale cache entries would replay" >&2
    exit 1
  fi
  if [ "$GOLD_DIFF" -eq 0 ] && [ "$SCHEMA_DIFF" -gt 0 ]; then
    echo "FAIL: runcache SCHEMA_VERSION changed since $BASE but golden fingerprints did not — needless cache invalidation (or missing golden update)" >&2
    exit 1
  fi
  echo "goldens/schema in sync vs $BASE (golden diff lines: $GOLD_DIFF, schema diff lines: $SCHEMA_DIFF)"
else
  echo "note: base rev $BASE unavailable, skipping"
fi

echo "== build (release) =="
cargo build --release --workspace

echo "== unit tests =="
cargo test --release --workspace --lib -q

echo "== determinism + golden fingerprints =="
cargo test --release --test determinism --test golden_fingerprint --test invariants -q

echo "== batched engine: scalar-oracle equivalence + sampled fidelity bounds =="
# batch_equivalence: the batched hot path (bulk fill + SIMD probe +
# lockstep pair batching) against the scalar engine under randomized
# masks/placements/workloads. sampled_fidelity: the 1:7 sampled schedule
# stays within 2% MPKI / 10% IPC of exact on the headline pair, and is
# deterministic.
cargo test --release --test batch_equivalence --test sampled_fidelity -q

if [ "$QUICK" -eq 0 ]; then
  echo "== figure smoke + headline shape =="
  cargo test --release --test figures_smoke --test headline_shape -q
fi

echo "== telemetry: feature-on build + inertness + trace validation =="
# The telemetry feature must not change a single simulation byte: the
# goldens and determinism suite re-run with it enabled, plus the
# inertness test that attaches live sinks (DESIGN.md §5c).
cargo test --release --features telemetry \
  --test determinism --test golden_fingerprint --test telemetry_inert -q
# Emitted traces must satisfy their own schemas (offline, jq-free). The
# feature-on build adds per-access latency histograms (`sim.latency`) to
# the cold fig12 trace; fig12 is the cheap artifact that still contains a
# dynamically-partitioned pair, so the trace carries real `sim.occupancy`
# windows for the dashboard.
TRACE_DIR=$(mktemp -d /tmp/waypart-ci-trace.XXXXXX)
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run --release -p waypart-experiments --features telemetry --bin reproduce -- \
  --scale test --no-cache --out "$TRACE_DIR/results" \
  --trace "$TRACE_DIR/trace.jsonl" --trace "$TRACE_DIR/trace.json" \
  --metrics "$TRACE_DIR/metrics.json" fig12 >/dev/null
cargo run --release -p waypart-telemetry --bin validate_trace -- \
  "$TRACE_DIR/trace.jsonl" "$TRACE_DIR/trace.json"

echo "== report: build dashboard + well-formedness check =="
# A warm pass over the committed run cache adds the headline summary (the
# paper-delta table's data) without re-simulating the pair sweeps; JSONL
# traces concatenate, so the report sees both the cold sim events and the
# warm aggregate pass.
cargo run --release -p waypart-experiments --bin reproduce -- \
  --scale test --out "$TRACE_DIR/results_warm" \
  --trace "$TRACE_DIR/warm.jsonl" fig9 fig10 fig11 fig13 headline >/dev/null
cat "$TRACE_DIR/trace.jsonl" "$TRACE_DIR/warm.jsonl" > "$TRACE_DIR/combined.jsonl"
cargo run --release -p waypart-telemetry --bin validate_trace -- "$TRACE_DIR/combined.jsonl"
cargo run --release -p waypart-experiments --bin report -- \
  --trace "$TRACE_DIR/combined.jsonl" --metrics "$TRACE_DIR/metrics.json" \
  --out "$TRACE_DIR/report.html"
cargo run --release -p waypart-experiments --bin report -- --check "$TRACE_DIR/report.html"
# Cache-warm traces must degrade to an explicit banner, not empty
# panels. fig13 alone replays entirely from the committed cache (fig10's
# hog runs bypass the cache, so the combined list above never goes fully
# warm) — its trace has dyn.run summaries but zero fresh simulations.
cargo run --release -p waypart-experiments --bin reproduce -- \
  --scale test --out "$TRACE_DIR/results_warm13" \
  --trace "$TRACE_DIR/warm13.jsonl" fig13 >/dev/null
cargo run --release -p waypart-experiments --bin report -- \
  --trace "$TRACE_DIR/warm13.jsonl" --out "$TRACE_DIR/report_warm.html" >/dev/null
grep -q "replayed from cache" "$TRACE_DIR/report_warm.html" \
  || { echo "FAIL: warm report lacks the cache banner" >&2; exit 1; }

echo "== sharded reproduce smoke (2 workers, merged vs committed goldens) =="
# The coordinator forks two shard workers over a fresh shared cache
# (DESIGN.md §5f), then replays the warm cache to render the artifacts.
# Determinism of the protocol means the merged output must be
# byte-identical to the committed single-process golden, and malformed
# shard specs must be usage errors, never silent full runs.
WAYPART_CACHE_DIR="$TRACE_DIR/shardcache" \
  cargo run --release -p waypart-experiments --bin reproduce -- \
  --scale test --jobs 2 --out "$TRACE_DIR/sharded" fig12 >/dev/null
diff "$TRACE_DIR/sharded/fig12.txt" results/test/fig12.txt \
  || { echo "FAIL: 2-worker sharded fig12 differs from the committed golden" >&2; exit 1; }
[ -s "$TRACE_DIR/shardcache/spool/merged_trace.jsonl" ] \
  || { echo "FAIL: sharded run left no merged trace" >&2; exit 1; }
cargo run --release -p waypart-telemetry --bin validate_trace -- \
  "$TRACE_DIR/shardcache/spool/merged_trace.jsonl"
for bad in 0/4 5/4 k/0 garbage; do
  if cargo run --release -p waypart-experiments --bin reproduce -- \
      --scale test --shard "$bad" fig12 >/dev/null 2>&1; then
    echo "FAIL: reproduce accepted malformed --shard $bad" >&2; exit 1
  fi
done
echo "sharded fig12 byte-identical to golden; malformed specs rejected"

echo "== sampled reproduce smoke (error bars printed and bounded) =="
# End-to-end: `--fidelity sampled` must produce the fig12 artifact plus
# the sampled-vs-exact error-bar artifact, and the reported mean-MPKI
# drift must stay within the documented test-scale envelope (±15%; the
# tight 2% bound is asserted on the headline pair by sampled_fidelity —
# the fig12 solo series is noisier because schedule alignment shifts
# which windows are measured, DESIGN.md §5e).
cargo run --release -p waypart-experiments --bin reproduce -- \
  --scale test --no-cache --fidelity sampled --out "$TRACE_DIR/sampled" fig12 >/dev/null
BARS="$TRACE_DIR/sampled/fig12_error_bars.txt"
[ -s "$BARS" ] || { echo "FAIL: sampled run produced no fig12_error_bars.txt" >&2; exit 1; }
MEAN_ERR=$(sed -n 's/.*mean MPKI.*(\([+-][0-9.]*\)%).*/\1/p' "$BARS")
[ -n "$MEAN_ERR" ] || { echo "FAIL: could not parse mean-MPKI error from $BARS" >&2; exit 1; }
awk -v e="$MEAN_ERR" 'BEGIN { if (e < 0) e = -e; exit !(e <= 15.0) }' \
  || { echo "FAIL: sampled mean-MPKI error ${MEAN_ERR}% exceeds the 15% test-scale envelope" >&2; exit 1; }
echo "sampled fig12 mean-MPKI error ${MEAN_ERR}% (within 15%)"

echo "== perf sentry smoke (noise-aware regression gate) =="
# Synthetic history around 100 s median / 300 s cold / 150 ns per
# access: +25% on any default metric must flag, ±8% must pass.
SENTRY_HIST="$TRACE_DIR/hist.jsonl"
for v in "98.0 149.0 295.0" "100.0 151.0 302.0" "101.0 150.0 300.0" "99.5 152.0 298.0" "100.5 148.0 304.0"; do
  set -- $v
  printf '{"current_median_s":%s,"engine_ns_per_access":%s,"current_cold_s":%s}\n' "$1" "$2" "$3" >> "$SENTRY_HIST"
done
printf '{"current_median_s":125.0,"engine_ns_per_access":150.0,"current_cold_s":300.0}\n' > "$TRACE_DIR/regressed.json"
printf '{"current_median_s":100.0,"engine_ns_per_access":150.0,"current_cold_s":380.0}\n' > "$TRACE_DIR/cold_regressed.json"
printf '{"current_median_s":108.0,"engine_ns_per_access":141.0,"current_cold_s":310.0}\n' > "$TRACE_DIR/jitter.json"
if cargo run --release -p waypart-bench --bin sentry -- \
    --history "$SENTRY_HIST" --current "$TRACE_DIR/regressed.json" >/dev/null; then
  echo "FAIL: sentry missed a +25% warm-median regression" >&2; exit 1
fi
if cargo run --release -p waypart-bench --bin sentry -- \
    --history "$SENTRY_HIST" --current "$TRACE_DIR/cold_regressed.json" >/dev/null; then
  echo "FAIL: sentry missed a +27% cold-time regression" >&2; exit 1
fi
cargo run --release -p waypart-bench --bin sentry -- \
  --history "$SENTRY_HIST" --current "$TRACE_DIR/jitter.json" >/dev/null \
  || { echo "FAIL: sentry flagged ±8% jitter" >&2; exit 1; }
# The real history, if present, gates this checkout's latest bench session.
if [ -s BENCH_history.jsonl ]; then
  cargo run --release -p waypart-bench --bin sentry -- --history BENCH_history.jsonl
fi

echo "== fleet observability (heartbeats, stall detection, merge refusal, trend) =="
# Two real shard workers over a scratch cache. While both are live the
# status table must show per-worker progress and `--merge` must refuse;
# a kill -9'd worker must be flagged STALLED from its heartbeat age
# (long before the 120 s claim-takeover grace); and the machine-readable
# paths (status --html, merged history, sentry --json, trend page) must
# all validate.
FLEET_CACHE="$TRACE_DIR/fleetcache"
WAYPART_CACHE_DIR="$FLEET_CACHE" cargo run --release -p waypart-experiments --bin reproduce -- \
  --scale test --shard 1/2 fig12 >/dev/null 2>&1 &
W1=$!
WAYPART_CACHE_DIR="$FLEET_CACHE" cargo run --release -p waypart-experiments --bin reproduce -- \
  --scale test --shard 2/2 fig12 >/dev/null 2>&1 &
W2=$!
sleep 5   # first heartbeat snapshots are immediate; allow for cargo-run startup
cargo run --release -p waypart-experiments --bin status -- \
  --cache "$FLEET_CACHE" | tee "$TRACE_DIR/status_live.txt"
grep -q "1-of-2" "$TRACE_DIR/status_live.txt" \
  || { echo "FAIL: status does not list worker 1-of-2" >&2; exit 1; }
grep -q "2-of-2" "$TRACE_DIR/status_live.txt" \
  || { echo "FAIL: status does not list worker 2-of-2" >&2; exit 1; }
grep -q "RUNNING" "$TRACE_DIR/status_live.txt" \
  || { echo "FAIL: status shows no RUNNING worker during a live fleet" >&2; exit 1; }
if WAYPART_CACHE_DIR="$FLEET_CACHE" cargo run --release -p waypart-experiments \
    --bin reproduce -- --scale test --merge fig12 >/dev/null 2>&1; then
  echo "FAIL: --merge did not refuse while the fleet was live" >&2; exit 1
fi
kill -9 "$W2" 2>/dev/null || true
sleep 3   # let the dead worker's heartbeat age past the tightened threshold
cargo run --release -p waypart-experiments --bin status -- \
  --cache "$FLEET_CACHE" --stale-secs 2 --html "$TRACE_DIR/fleet.html" \
  | tee "$TRACE_DIR/status_dead.txt"
grep -q "STALLED" "$TRACE_DIR/status_dead.txt" \
  || { echo "FAIL: killed worker not flagged STALLED" >&2; exit 1; }
cargo run --release -p waypart-experiments --bin report -- --check "$TRACE_DIR/fleet.html"
kill -9 "$W1" 2>/dev/null || true
wait "$W1" "$W2" 2>/dev/null || true
# A corrupt heartbeat must be a loud, nonzero, path-naming error.
printf '{"record":"status","worker"' > "$FLEET_CACHE/spool/1-of-2/status.json"
if cargo run --release -p waypart-experiments --bin status -- \
    --cache "$FLEET_CACHE" >/dev/null 2>"$TRACE_DIR/status_err.txt"; then
  echo "FAIL: status accepted a malformed heartbeat" >&2; exit 1
fi
grep -q "status.json" "$TRACE_DIR/status_err.txt" \
  || { echo "FAIL: malformed-heartbeat error does not name the file" >&2; exit 1; }
# The completed --jobs 2 fleet from the sharded stage: merged history
# must exist (per-shard sessions + coordinator entry) and feed both the
# sentry and the trend page.
[ -s "$TRACE_DIR/shardcache/spool/merged_history.jsonl" ] \
  || { echo "FAIL: sharded run left no merged history" >&2; exit 1; }
grep -q "sharded_cold_s" "$TRACE_DIR/shardcache/spool/merged_history.jsonl" \
  || { echo "FAIL: merged history lacks the coordinator entry" >&2; exit 1; }
# sentry --json round-trip: verdict records validate and annotate the
# trend page rendered from the committed benchmark history.
cargo run --release -p waypart-bench --bin sentry -- \
  --history "$SENTRY_HIST" --current "$TRACE_DIR/jitter.json" \
  --json "$TRACE_DIR/verdicts.jsonl" >/dev/null
cargo run --release -p waypart-telemetry --bin validate_trace -- "$TRACE_DIR/verdicts.jsonl"
cargo run --release -p waypart-experiments --bin report -- \
  --history BENCH_history.jsonl --verdicts "$TRACE_DIR/verdicts.jsonl" \
  --out "$TRACE_DIR/trend.html"
cargo run --release -p waypart-experiments --bin report -- --check "$TRACE_DIR/trend.html"
echo "fleet observability OK (live scan, merge refusal, stall flag, trend page)"

echo "== bench smoke (engine throughput, 2 iterations) =="
cargo build --release --example profile_engine
target/release/examples/profile_engine sololoop 2

echo "CI OK"
