#!/usr/bin/env bash
# Offline CI entry point: build, tests, determinism, bench smoke.
#
# Everything resolves from the vendored registry stubs under `vendor/`
# (see .cargo/config.toml) — no network access is required or attempted.
#
# Usage: scripts/ci.sh [--quick]
#   --quick  skip the slow integration suites (figures_smoke,
#            headline_shape); unit + determinism + goldens still run.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== build (release) =="
cargo build --release --workspace

echo "== unit tests =="
cargo test --release --workspace --lib -q

echo "== determinism + golden fingerprints =="
cargo test --release --test determinism --test golden_fingerprint --test invariants -q

if [ "$QUICK" -eq 0 ]; then
  echo "== figure smoke + headline shape =="
  cargo test --release --test figures_smoke --test headline_shape -q
fi

echo "== telemetry: feature-on build + inertness + trace validation =="
# The telemetry feature must not change a single simulation byte: the
# goldens and determinism suite re-run with it enabled, plus the
# inertness test that attaches live sinks (DESIGN.md §5c).
cargo test --release --features telemetry \
  --test determinism --test golden_fingerprint --test telemetry_inert -q
# Emitted traces must satisfy their own schemas (offline, jq-free). The
# feature-on build adds per-access latency histograms (`sim.latency`) to
# the cold fig12 trace; fig12 is the cheap artifact that still contains a
# dynamically-partitioned pair, so the trace carries real `sim.occupancy`
# windows for the dashboard.
TRACE_DIR=$(mktemp -d /tmp/waypart-ci-trace.XXXXXX)
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run --release -p waypart-experiments --features telemetry --bin reproduce -- \
  --scale test --no-cache --out "$TRACE_DIR/results" \
  --trace "$TRACE_DIR/trace.jsonl" --trace "$TRACE_DIR/trace.json" \
  --metrics "$TRACE_DIR/metrics.json" fig12 >/dev/null
cargo run --release -p waypart-telemetry --bin validate_trace -- \
  "$TRACE_DIR/trace.jsonl" "$TRACE_DIR/trace.json"

echo "== report: build dashboard + well-formedness check =="
# A warm pass over the committed run cache adds the headline summary (the
# paper-delta table's data) without re-simulating the pair sweeps; JSONL
# traces concatenate, so the report sees both the cold sim events and the
# warm aggregate pass.
cargo run --release -p waypart-experiments --bin reproduce -- \
  --scale test --out "$TRACE_DIR/results_warm" \
  --trace "$TRACE_DIR/warm.jsonl" fig9 fig10 fig11 fig13 headline >/dev/null
cat "$TRACE_DIR/trace.jsonl" "$TRACE_DIR/warm.jsonl" > "$TRACE_DIR/combined.jsonl"
cargo run --release -p waypart-telemetry --bin validate_trace -- "$TRACE_DIR/combined.jsonl"
cargo run --release -p waypart-experiments --bin report -- \
  --trace "$TRACE_DIR/combined.jsonl" --metrics "$TRACE_DIR/metrics.json" \
  --out "$TRACE_DIR/report.html"
cargo run --release -p waypart-experiments --bin report -- --check "$TRACE_DIR/report.html"
# Cache-warm traces must degrade to an explicit banner, not empty
# panels. fig13 alone replays entirely from the committed cache (fig10's
# hog runs bypass the cache, so the combined list above never goes fully
# warm) — its trace has dyn.run summaries but zero fresh simulations.
cargo run --release -p waypart-experiments --bin reproduce -- \
  --scale test --out "$TRACE_DIR/results_warm13" \
  --trace "$TRACE_DIR/warm13.jsonl" fig13 >/dev/null
cargo run --release -p waypart-experiments --bin report -- \
  --trace "$TRACE_DIR/warm13.jsonl" --out "$TRACE_DIR/report_warm.html" >/dev/null
grep -q "replayed from cache" "$TRACE_DIR/report_warm.html" \
  || { echo "FAIL: warm report lacks the cache banner" >&2; exit 1; }

echo "== perf sentry smoke (noise-aware regression gate) =="
# Synthetic history around 100 s / 150 ns: +25% must flag, ±8% must pass.
SENTRY_HIST="$TRACE_DIR/hist.jsonl"
for v in "98.0 149.0" "100.0 151.0" "101.0 150.0" "99.5 152.0" "100.5 148.0"; do
  set -- $v
  printf '{"current_median_s":%s,"engine_ns_per_access":%s}\n' "$1" "$2" >> "$SENTRY_HIST"
done
printf '{"current_median_s":125.0,"engine_ns_per_access":150.0}\n' > "$TRACE_DIR/regressed.json"
printf '{"current_median_s":108.0,"engine_ns_per_access":141.0}\n' > "$TRACE_DIR/jitter.json"
if cargo run --release -p waypart-bench --bin sentry -- \
    --history "$SENTRY_HIST" --current "$TRACE_DIR/regressed.json" >/dev/null; then
  echo "FAIL: sentry missed a +25% regression" >&2; exit 1
fi
cargo run --release -p waypart-bench --bin sentry -- \
  --history "$SENTRY_HIST" --current "$TRACE_DIR/jitter.json" >/dev/null \
  || { echo "FAIL: sentry flagged ±8% jitter" >&2; exit 1; }
# The real history, if present, gates this checkout's latest bench session.
if [ -s BENCH_history.jsonl ]; then
  cargo run --release -p waypart-bench --bin sentry -- --history BENCH_history.jsonl
fi

echo "== bench smoke (engine throughput, 2 iterations) =="
cargo build --release --example profile_engine
target/release/examples/profile_engine sololoop 2

echo "CI OK"
