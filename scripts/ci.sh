#!/usr/bin/env bash
# Offline CI entry point: build, tests, determinism, bench smoke.
#
# Everything resolves from the vendored registry stubs under `vendor/`
# (see .cargo/config.toml) — no network access is required or attempted.
#
# Usage: scripts/ci.sh [--quick]
#   --quick  skip the slow integration suites (figures_smoke,
#            headline_shape); unit + determinism + goldens still run.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== build (release) =="
cargo build --release --workspace

echo "== unit tests =="
cargo test --release --workspace --lib -q

echo "== determinism + golden fingerprints =="
cargo test --release --test determinism --test golden_fingerprint --test invariants -q

if [ "$QUICK" -eq 0 ]; then
  echo "== figure smoke + headline shape =="
  cargo test --release --test figures_smoke --test headline_shape -q
fi

echo "== bench smoke (engine throughput, 2 iterations) =="
cargo build --release --example profile_engine
target/release/examples/profile_engine sololoop 2

echo "CI OK"
