#!/usr/bin/env bash
# Offline CI entry point: build, tests, determinism, bench smoke.
#
# Everything resolves from the vendored registry stubs under `vendor/`
# (see .cargo/config.toml) — no network access is required or attempted.
#
# Usage: scripts/ci.sh [--quick]
#   --quick  skip the slow integration suites (figures_smoke,
#            headline_shape); unit + determinism + goldens still run.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== build (release) =="
cargo build --release --workspace

echo "== unit tests =="
cargo test --release --workspace --lib -q

echo "== determinism + golden fingerprints =="
cargo test --release --test determinism --test golden_fingerprint --test invariants -q

if [ "$QUICK" -eq 0 ]; then
  echo "== figure smoke + headline shape =="
  cargo test --release --test figures_smoke --test headline_shape -q
fi

echo "== telemetry: feature-on build + inertness + trace validation =="
# The telemetry feature must not change a single simulation byte: the
# goldens and determinism suite re-run with it enabled, plus the
# inertness test that attaches live sinks (DESIGN.md §5c).
cargo test --release --features telemetry \
  --test determinism --test golden_fingerprint --test telemetry_inert -q
# Emitted traces must satisfy their own schemas (offline, jq-free).
TRACE_DIR=$(mktemp -d /tmp/waypart-ci-trace.XXXXXX)
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run --release -p waypart-experiments --bin reproduce -- \
  --scale test --no-cache --out "$TRACE_DIR/results" \
  --trace "$TRACE_DIR/trace.jsonl" --trace "$TRACE_DIR/trace.json" \
  --metrics "$TRACE_DIR/metrics.json" fig12 >/dev/null
cargo run --release -p waypart-telemetry --bin validate_trace -- \
  "$TRACE_DIR/trace.jsonl" "$TRACE_DIR/trace.json"

echo "== bench smoke (engine throughput, 2 iterations) =="
cargo build --release --example profile_engine
target/release/examples/profile_engine sololoop 2

echo "CI OK"
