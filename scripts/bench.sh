#!/usr/bin/env bash
# Interleaved A/B benchmark of `reproduce --scale test` + engine ns/access.
#
# Wall-clock noise on shared machines is ±10%, so this never compares
# single runs: it alternates baseline/current (A B A B ...) and reports
# medians. Each cold run gets a fresh (empty) run-cache directory; a
# final warm run reuses the current binary's populated cache to show the
# persistent-cache effect separately. A sharded cold run (`--jobs N`,
# N = min(nproc, 4), override with BENCH_JOBS) measures the multi-process
# worker protocol and records `shards` / `sharded_cold_s` /
# `shard_speedup` / `parallel_efficiency` for the sentry.
#
# Usage:
#   scripts/bench.sh [--runs N] [--baseline-bin PATH] [--baseline-rev REV]
#                    [--out FILE] [--micro]
#
#   --runs N           interleaved run pairs (default 5)
#   --baseline-bin     pre-built `reproduce` binary to compare against
#   --baseline-rev     git rev to build the baseline from (worktree build)
#   --out              output JSON (default BENCH_sim.json)
#   --micro            run only the engine kernel microbenches (probe+fill,
#                      PLRU victim, bulk-vs-single stream generation) and
#                      exit — no end-to-end timing, no history append
#
# With no baseline, only the current binary is timed (baseline fields
# null). Offline-safe: builds only from the local checkout.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS=5
BASELINE_BIN=""
BASELINE_REV=""
OUT="BENCH_sim.json"
MICRO=0
while [ $# -gt 0 ]; do
  case "$1" in
    --runs) RUNS=$2; shift 2 ;;
    --baseline-bin) BASELINE_BIN=$2; shift 2 ;;
    --baseline-rev) BASELINE_REV=$2; shift 2 ;;
    --out) OUT=$2; shift 2 ;;
    --micro) MICRO=1; shift ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
done

if [ "$MICRO" = 1 ]; then
  echo "== engine kernel microbenches =="
  exec cargo bench -p waypart-bench --bench engine
fi

echo "== building current binaries =="
cargo build --release -p waypart-experiments --bin reproduce
cargo build --release --example profile_engine
CURRENT_BIN=target/release/reproduce

if [ -z "$BASELINE_BIN" ] && [ -n "$BASELINE_REV" ]; then
  echo "== building baseline from $BASELINE_REV =="
  WT=$(mktemp -d /tmp/waypart-baseline.XXXXXX)
  trap 'git worktree remove --force "$WT" 2>/dev/null || true; rm -rf "$WT"' EXIT
  git worktree add --detach "$WT" "$BASELINE_REV" >/dev/null
  (cd "$WT" && CARGO_TARGET_DIR="$WT/target" cargo build --release -p waypart-experiments --bin reproduce)
  BASELINE_BIN="$WT/target/release/reproduce"
fi

SCRATCH=$(mktemp -d /tmp/waypart-bench.XXXXXX)
time_run() { # $1 binary, $2 cache dir ('' = cache off if supported), $3 out dir
  local t0 t1
  t0=$(date +%s.%N)
  if [ -n "$2" ]; then
    WAYPART_CACHE_DIR=$2 "$1" --scale test --out "$3" >/dev/null 2>&1
  elif "$1" --help 2>/dev/null | grep -q -- --no-cache; then
    "$1" --scale test --no-cache --out "$3" >/dev/null 2>&1
  else
    "$1" --scale test --out "$3" >/dev/null 2>&1 # pre-cache binaries
  fi
  t1=$(date +%s.%N)
  echo "$t0 $t1" | awk '{printf "%.2f", $2-$1}'
}

# Interleaved A B A B ...: the baseline runs uncached (it predates the
# cache); the current binary's runs share one cache directory, which is
# exactly how repeated `reproduce` invocations behave in normal use —
# run 1 is cold, runs 2+ replay finished measurements from disk.
BASE_TIMES=()
CURR_TIMES=()
for i in $(seq 1 "$RUNS"); do
  if [ -n "$BASELINE_BIN" ]; then
    s=$(time_run "$BASELINE_BIN" "" "$SCRATCH/base_$i")
    BASE_TIMES+=("$s"); echo "run $i baseline: ${s}s"
  fi
  s=$(time_run "$CURRENT_BIN" "$SCRATCH/cache" "$SCRATCH/curr_$i")
  CURR_TIMES+=("$s"); echo "run $i current: ${s}s"
done
COLD=${CURR_TIMES[0]}

# Artifacts must be byte-identical across every run and vs. the baseline.
for d in "$SCRATCH"/base_* "$SCRATCH"/curr_*; do
  [ -d "$d" ] || continue
  diff -r "$SCRATCH/curr_1" "$d" >/dev/null \
    || { echo "FAIL: artifacts differ between $SCRATCH/curr_1 and $d" >&2; exit 1; }
done
echo "artifacts byte-identical across all runs"

# Per-figure wall-clock via the telemetry metrics exporter (warm cache,
# so this times figure assembly + cache replay, not raw simulation).
echo "== per-figure timing (warm cache) =="
WAYPART_CACHE_DIR=$SCRATCH/cache "$CURRENT_BIN" --scale test \
  --out "$SCRATCH/figtime" --metrics "$SCRATCH/metrics.json" >/dev/null 2>&1 || true
if [ -s "$SCRATCH/metrics.json" ]; then
  FIG_SECONDS=$(jq '.figure_seconds' "$SCRATCH/metrics.json")
else
  FIG_SECONDS=null   # older binary without --metrics
fi

# Sharded cold run: fork worker processes over a fresh shared cache and
# merge (DESIGN.md §5f). Timed once (not interleaved) — the sentry's
# noise band absorbs jitter across sessions. The merged artifacts must be
# byte-identical to the single-process run; the parallel efficiency is
# scraped from the coordinator's merge summary. On hosts with fewer
# cores than workers the speedup honestly reports <1.
JOBS=${BENCH_JOBS:-$(nproc)}
[ "$JOBS" -gt 4 ] && JOBS=4
[ "$JOBS" -lt 2 ] && JOBS=2
if "$CURRENT_BIN" --help 2>/dev/null | grep -q -- --jobs; then
  echo "== sharded cold run (--jobs $JOBS) =="
  t0=$(date +%s.%N)
  WAYPART_CACHE_DIR=$SCRATCH/shardcache "$CURRENT_BIN" --scale test --jobs "$JOBS" \
    --out "$SCRATCH/sharded" > "$SCRATCH/sharded.log" 2>&1
  t1=$(date +%s.%N)
  SHARDED_COLD=$(echo "$t0 $t1" | awk '{printf "%.2f", $2-$1}')
  diff -r "$SCRATCH/curr_1" "$SCRATCH/sharded" >/dev/null \
    || { echo "FAIL: sharded artifacts differ from single-process run" >&2; exit 1; }
  PAR_EFF=$(sed -n 's/.*parallel efficiency \([0-9.]*\).*/\1/p' "$SCRATCH/sharded.log" | tail -1)
  [ -n "$PAR_EFF" ] || PAR_EFF=null
  SHARD_SPEEDUP=$(awk -v c="$COLD" -v s="$SHARDED_COLD" 'BEGIN {printf "%.3f", c/s}')
  echo "sharded cold: ${SHARDED_COLD}s with $JOBS workers" \
       "(${SHARD_SPEEDUP}x vs single-process cold ${COLD}s, efficiency $PAR_EFF)"
  echo "sharded artifacts byte-identical to single-process run"
else
  JOBS=null SHARDED_COLD=null SHARD_SPEEDUP=null PAR_EFF=null  # pre-sharding binary
fi

ENGINE_LINE=$(target/release/examples/profile_engine sololoop 8)
echo "$ENGINE_LINE"
NS_PER_ACCESS=$(echo "$ENGINE_LINE" | tr ' ' '\n' | sed -n 's/^ns_per_access=//p')

median() { printf '%s\n' "$@" | sort -n | awk '{a[NR]=$1} END {print (NR%2) ? a[(NR+1)/2] : (a[NR/2]+a[NR/2+1])/2}'; }
CURR_MED=$(median "${CURR_TIMES[@]}")
if [ ${#BASE_TIMES[@]} -gt 0 ]; then
  BASE_MED=$(median "${BASE_TIMES[@]}")
  SPEEDUP=$(awk -v b="$BASE_MED" -v c="$CURR_MED" 'BEGIN {printf "%.3f", b/c}')
  COLD_SPEEDUP=$(awk -v b="$BASE_MED" -v c="$COLD" 'BEGIN {printf "%.3f", b/c}')
else
  BASE_MED=null SPEEDUP=null COLD_SPEEDUP=null
fi

jq -n \
  --argjson runs "$RUNS" \
  --argjson baseline_median_s "$BASE_MED" \
  --argjson current_median_s "$CURR_MED" \
  --argjson current_cold_s "$COLD" \
  --argjson speedup "$SPEEDUP" \
  --argjson cold_speedup "$COLD_SPEEDUP" \
  --argjson ns_per_access "$NS_PER_ACCESS" \
  --argjson figure_seconds "$FIG_SECONDS" \
  --argjson shards "$JOBS" \
  --argjson sharded_cold_s "$SHARDED_COLD" \
  --argjson shard_speedup "$SHARD_SPEEDUP" \
  --argjson parallel_efficiency "$PAR_EFF" \
  '{bench: "reproduce --scale test", protocol: "interleaved A/B, shared cache dir for current (run 1 cold, runs 2+ warm)",
    runs: $runs, baseline_median_s: $baseline_median_s, current_median_s: $current_median_s,
    current_cold_s: $current_cold_s, speedup: $speedup, cold_speedup: $cold_speedup,
    engine_ns_per_access: $ns_per_access, figure_seconds_warm: $figure_seconds,
    shards: $shards, sharded_cold_s: $sharded_cold_s, shard_speedup: $shard_speedup,
    parallel_efficiency: $parallel_efficiency}' > "$OUT"
echo "wrote $OUT:"
cat "$OUT"

# Append this session to the benchmark history (one JSON object per line)
# so the perf sentry can judge future runs against a real distribution:
#   cargo run -p waypart-bench --bin sentry -- --history BENCH_history.jsonl
# Host metadata is stamped into each entry so the trend page
# (report --history) can segment sessions by machine instead of mixing
# different hardware into one distribution.
HISTORY="BENCH_history.jsonl"
CPU_MODEL=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
jq -c --arg at "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
      --arg rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
      --arg host "$(hostname 2>/dev/null || echo unknown)" \
      --arg cpu "${CPU_MODEL:-unknown}" \
      --argjson cores "$(nproc 2>/dev/null || echo 0)" \
      --arg kernel "$(uname -r 2>/dev/null || echo unknown)" \
      '. + {at: $at, rev: $rev,
            host: {name: $host, cpu: $cpu, cores: $cores, kernel: $kernel}}' \
      "$OUT" >> "$HISTORY"
echo "appended to $HISTORY ($(wc -l < "$HISTORY") sessions)"
rm -rf "$SCRATCH"
