//! Ablation benches for the design choices DESIGN.md §5 calls out.
//!
//! These are *comparative* benches: each group holds the workload fixed
//! and swaps one mechanism, so the Criterion report shows the cost/benefit
//! of the design decision directly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use waypart_bench::bench_runner;
use waypart_core::dynamic::DynamicConfig;
use waypart_core::phase::PhaseThresholds;
use waypart_core::runner::{Runner, RunnerConfig};
use waypart_sim::addr::IndexHash;
use waypart_sim::cache::ReplPolicy;
use waypart_sim::msr::PrefetcherMask;
use waypart_workloads::registry;

/// Ablation 2 — hashed vs modulo LLC indexing (the paper credits hashing
/// for the absence of sharp working-set knees, §3.2).
fn indexing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_llc_indexing");
    g.sample_size(10);
    let omnetpp = registry::by_name("471.omnetpp").unwrap();
    for (label, index) in [("hashed", IndexHash::Hashed), ("modulo", IndexHash::Modulo)] {
        let mut cfg = RunnerConfig::test();
        cfg.machine.llc.index = index;
        let runner = Runner::new(cfg);
        g.bench_function(label, |b| b.iter(|| black_box(runner.run_solo(&omnetpp, 1, 8).cycles)));
    }
    g.finish();
}

/// Ablation 2b — pseudo-LRU vs true LRU replacement.
fn replacement(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_llc_replacement");
    g.sample_size(10);
    let mcf = registry::by_name("429.mcf").unwrap();
    for (label, repl) in [
        ("pseudo_lru", ReplPolicy::PseudoLru),
        ("true_lru", ReplPolicy::TrueLru),
        ("srrip", ReplPolicy::Srrip),
    ] {
        let mut cfg = RunnerConfig::test();
        cfg.machine.llc.replacement = repl;
        let runner = Runner::new(cfg);
        g.bench_function(label, |b| b.iter(|| black_box(runner.run_solo(&mcf, 1, 6).cycles)));
    }
    g.finish();
}

/// Ablation 1 — lazy reallocation (the hardware mechanism: masks change,
/// data stays) vs flush-on-shrink. Measures a foreground run whose mask
/// oscillates every 16 quanta.
fn reallocation_flush(c: &mut Criterion) {
    use waypart_sim::machine::Machine;
    use waypart_sim::WayMask;

    let mut g = c.benchmark_group("ablation_reallocation");
    g.sample_size(10);
    let app = registry::by_name("fop").unwrap();
    let cfg = RunnerConfig::test();

    for (label, flush) in [("lazy", false), ("flush_on_shrink", true)] {
        let machine_cfg = cfg.machine.clone();
        let scale = cfg.scale;
        let app = app.clone();
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut m = Machine::new(machine_cfg.clone());
                for t in 0..4 {
                    m.attach(t, 1, Box::new(app.thread_stream(4, t, 1, scale, 7)));
                }
                let masks = [WayMask::contiguous(0, 10), WayMask::contiguous(0, 4)];
                let mut i = 0usize;
                while m.any_active() && i < 200_000 {
                    if i % 16 == 0 {
                        let mask = masks[(i / 16) % 2];
                        for core in 0..2 {
                            m.set_way_mask(core, mask);
                            if flush {
                                m.flush_llc_outside_mask(core);
                            }
                        }
                    }
                    m.run_quantum();
                    i += 1;
                }
                black_box(m.now())
            })
        });
    }
    g.finish();
}

/// Ablation 4 — threshold sensitivity: the controller under the calibrated
/// thresholds vs the paper's literal constants vs a loose variant. The
/// paper found results "largely insensitive to small parameter changes";
/// the comparison quantifies that for this reproduction.
fn thresholds(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dynamic_thresholds");
    g.sample_size(10);
    let runner = bench_runner();
    let fg = registry::by_name("429.mcf").unwrap();
    let bg = registry::by_name("fop").unwrap();
    let variants: [(&str, PhaseThresholds); 3] = [
        ("calibrated", PhaseThresholds::calibrated()),
        ("paper_literal", PhaseThresholds::paper_literal()),
        ("loose", PhaseThresholds { thr1: 0.5, thr2: 0.2, thr3: 0.1, mpki_floor: 0.5 }),
    ];
    for (label, thresholds) in variants {
        let mut dc = DynamicConfig::paper();
        dc.thresholds = thresholds;
        g.bench_function(label, |b| {
            b.iter(|| black_box(runner.run_pair_dynamic(&fg, &bg, dc).bg_instructions))
        });
    }
    g.finish();
}

/// Ablation 5 — prefetchers on vs off for a streaming workload (Fig 3's
/// mechanism, measured as simulator work).
fn prefetchers(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_prefetchers");
    g.sample_size(10);
    let runner = bench_runner();
    let app = registry::by_name("462.libquantum").unwrap();
    for (label, mask) in
        [("all_on", PrefetcherMask::all_enabled()), ("all_off", PrefetcherMask::all_disabled())]
    {
        g.bench_function(label, |b| {
            b.iter(|| black_box(runner.run_solo_configured(&app, 1, 12, mask).cycles))
        });
    }
    g.finish();
}

criterion_group!(benches, indexing, replacement, reallocation_flush, thresholds, prefetchers);
criterion_main!(benches);
