//! One representative kernel per paper table/figure.
//!
//! Each bench runs the measurement that one cell/point/trace of the
//! corresponding figure needs; the `reproduce` binary composes thousands
//! of these into the full artifacts. Bench names carry the figure ids so
//! `cargo bench fig9` exercises exactly Figure 9's kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use waypart_analysis::cluster::{cut_for_cluster_count, single_linkage};
use waypart_bench::{bench_runner, synthetic_features};
use waypart_core::dynamic::DynamicConfig;
use waypart_core::policy::PartitionPolicy;
use waypart_sim::msr::PrefetcherMask;
use waypart_workloads::registry;

fn figure_kernels(c: &mut Criterion) {
    let runner = bench_runner();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Fig 1 / Table 1: one 8-thread scalability run.
    let blackscholes = registry::by_name("blackscholes").unwrap();
    g.bench_function("fig1_thread_scalability_point", |b| {
        b.iter(|| black_box(runner.run_solo(&blackscholes, 8, 12).cycles))
    });

    // Fig 2 / Table 2: one LLC-capacity point of the tomcat curve.
    let tomcat = registry::by_name("tomcat").unwrap();
    g.bench_function("fig2_llc_sensitivity_point", |b| {
        b.iter(|| black_box(runner.run_solo(&tomcat, 4, 6).cycles))
    });

    // Fig 3: the prefetchers-off leg of one sensitivity measurement.
    let libquantum = registry::by_name("462.libquantum").unwrap();
    g.bench_function("fig3_prefetcher_sensitivity_point", |b| {
        b.iter(|| {
            black_box(
                runner
                    .run_solo_configured(&libquantum, 1, 12, PrefetcherMask::all_disabled())
                    .cycles,
            )
        })
    });

    // Fig 4: one victim-next-to-the-hog run.
    let lbm = registry::by_name("470.lbm").unwrap();
    let hog = registry::by_name("stream_uncached").unwrap();
    g.bench_function("fig4_bandwidth_sensitivity_point", |b| {
        b.iter(|| black_box(runner.run_with_hog(&lbm, &hog).fg_cycles))
    });

    // Fig 5 / Table 3: clustering 45 19-dimension feature vectors.
    let features = synthetic_features(45, 19);
    g.bench_function("fig5_clustering", |b| {
        b.iter(|| {
            let d = single_linkage(black_box(&features));
            black_box(cut_for_cluster_count(&d, 7))
        })
    });

    // Fig 6 / Fig 7: one allocation-space point (threads × ways sweep cell).
    let fop = registry::by_name("fop").unwrap();
    g.bench_function("fig6_allocation_point", |b| {
        b.iter(|| {
            let r = runner.run_solo(&fop, 4, 6);
            black_box((r.cycles, r.energy.wall_j))
        })
    });

    // Fig 8: one shared-LLC co-run cell of the 45×45 heat map.
    let omnetpp = registry::by_name("471.omnetpp").unwrap();
    let canneal = registry::by_name("canneal").unwrap();
    g.bench_function("fig8_pairwise_cell", |b| {
        b.iter(|| black_box(runner.run_pair_endless_bg(&omnetpp, &canneal, PartitionPolicy::Shared).fg_cycles))
    });

    // Fig 9: one biased-policy cell.
    g.bench_function("fig9_policy_cell", |b| {
        b.iter(|| {
            black_box(
                runner
                    .run_pair_endless_bg(&omnetpp, &canneal, PartitionPolicy::Biased { fg_ways: 9 })
                    .fg_cycles,
            )
        })
    });

    // Fig 10 / Fig 11: one both-run-once consolidation cell.
    let mcf = registry::by_name("429.mcf").unwrap();
    let gems = registry::by_name("459.GemsFDTD").unwrap();
    g.bench_function("fig10_consolidation_cell", |b| {
        b.iter(|| {
            let r = runner.run_pair_both_once(&mcf, &gems, PartitionPolicy::Fair);
            black_box((r.total_cycles, r.energy.socket_j))
        })
    });

    // Fig 12: one static mcf phase trace.
    g.bench_function("fig12_phase_trace", |b| {
        b.iter(|| black_box(runner.run_solo(&mcf, 1, 6).mpki.len()))
    });

    // Fig 13: one dynamically-partitioned co-run.
    g.bench_function("fig13_dynamic_cell", |b| {
        b.iter(|| black_box(runner.run_pair_dynamic(&mcf, &fop, DynamicConfig::paper()).bg_instructions))
    });

    g.finish();
}

criterion_group!(benches, figure_kernels);
criterion_main!(benches);
