//! Microbenches for the batched access engine's three hot kernels:
//! the set-associative probe+fill pair, PLRU victim selection, and
//! bulk (`fill`) versus single-event (`next_event`) stream generation.
//!
//! These isolate the layers the end-to-end `simulator` bench mixes
//! together, so a regression report names the kernel at fault. Run via
//! `scripts/bench.sh --micro` or `cargo bench -p waypart-bench --bench
//! engine`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use waypart_sim::addr::{mix64, LineAddr};
use waypart_sim::cache::SetAssocCache;
use waypart_sim::config::MachineConfig;
use waypart_sim::plru::PlruTree;
use waypart_sim::stream::{AccessStream, StreamEvent};
use waypart_sim::WayMask;
use waypart_workloads::{registry, Scale};

const ACCESSES: u64 = 200_000;

/// The LLC-geometry probe/fill pair on its own, over working sets that
/// pin the hit ratio: resident (pure probe-hit path) and thrashing
/// (every miss exercises victim selection + fill).
fn probe_fill(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_probe_fill");
    g.throughput(Throughput::Elements(ACCESSES));
    g.sample_size(20);
    let llc = MachineConfig::sandy_bridge().llc;
    let mask = WayMask::all(llc.ways);
    for (label, ws_lines) in [("resident", 4_000u64), ("thrashing", 1_000_000)] {
        g.bench_function(label, |b| {
            let mut cache = SetAssocCache::new(llc);
            b.iter(|| {
                let mut hits = 0u64;
                for i in 0..ACCESSES {
                    let line = LineAddr::in_space(0, mix64(i) % ws_lines);
                    if cache.probe(line, i % 4 == 0).is_some() {
                        hits += 1;
                    } else {
                        cache.fill(line, mask, false, (i % 4) as u8);
                    }
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

/// PLRU victim selection under a full mask and a partitioned half mask
/// (the masked walk is the partitioning hot path).
fn plru_victim(c: &mut Criterion) {
    const PICKS: u64 = 1_000_000;
    let mut g = c.benchmark_group("engine_plru_victim");
    g.throughput(Throughput::Elements(PICKS));
    g.sample_size(20);
    let ways = MachineConfig::sandy_bridge().llc.ways;
    let leaves = ways.next_power_of_two();
    for (label, mask) in [("all_ways", WayMask::all(ways)), ("half_ways", WayMask::contiguous(0, ways / 2))] {
        let allowed = mask.bits();
        g.bench_function(label, |b| {
            let mut tree = PlruTree::new();
            b.iter(|| {
                let mut acc = 0usize;
                for i in 0..PICKS {
                    let v = tree.victim(allowed, leaves).expect("mask non-empty");
                    tree.touch(v, leaves);
                    acc = acc.wrapping_add(v ^ (i as usize & 1));
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// Workload stream generation: the native bulk `fill` against the
/// one-virtual-call-per-event `next_event` loop it replaced, on the
/// evaluation's heaviest generator (`429.mcf`).
fn stream_generation(c: &mut Criterion) {
    const EVENTS: u64 = 200_000;
    let mut g = c.benchmark_group("engine_stream_generation");
    g.throughput(Throughput::Elements(EVENTS));
    g.sample_size(20);
    let app = registry::by_name("429.mcf").expect("registered");
    g.bench_function("bulk_fill", |b| {
        b.iter(|| {
            let mut s = app.endless_stream(1, 0, 1, Scale::TEST, 0xBE7C);
            let mut buf = [StreamEvent::Done; 256];
            let mut produced = 0u64;
            while produced < EVENTS {
                let n = s.fill(&mut buf) as u64;
                assert!(n > 0, "endless stream never exhausts");
                produced += n;
            }
            black_box(produced)
        })
    });
    g.bench_function("single_event", |b| {
        b.iter(|| {
            let mut s = app.endless_stream(1, 0, 1, Scale::TEST, 0xBE7C);
            let mut produced = 0u64;
            while produced < EVENTS {
                match s.next_event() {
                    StreamEvent::Done => unreachable!("endless stream never exhausts"),
                    ev => {
                        black_box(ev);
                        produced += 1;
                    }
                }
            }
            black_box(produced)
        })
    });
    g.finish();
}

criterion_group!(benches, probe_fill, plru_victim, stream_generation);
criterion_main!(benches);
