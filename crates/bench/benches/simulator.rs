//! Raw simulator throughput: how many memory accesses per second the
//! hierarchy sustains. This bounds how large the full-scale `reproduce`
//! runs can be, and guards against performance regressions in the hot
//! path (cache probe / fill / prefetch).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use waypart_sim::addr::{mix64, LineAddr};
use waypart_sim::config::MachineConfig;
use waypart_sim::dram::DramModel;
use waypart_sim::hierarchy::Hierarchy;
use waypart_sim::msr::PrefetcherMask;
use waypart_sim::ring::RingModel;
use waypart_sim::stream::Access;
use waypart_sim::WayMask;

const ACCESSES: u64 = 200_000;

fn hierarchy_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_throughput");
    g.throughput(Throughput::Elements(ACCESSES));
    g.sample_size(20);

    for (label, ws_lines, prefetch) in [
        ("l1_resident", 64u64, false),
        ("llc_resident", 8_000, false),
        ("dram_bound", 1_000_000, false),
        ("dram_bound_prefetched", 1_000_000, true),
    ] {
        g.bench_function(label, |b| {
            let cfg = MachineConfig::sandy_bridge();
            let mut h = Hierarchy::new(&cfg);
            let mut ring = RingModel::new(cfg.ring);
            let mut dram = DramModel::new(cfg.dram);
            let mask = WayMask::all(12);
            let pf = if prefetch { PrefetcherMask::all_enabled() } else { PrefetcherMask::all_disabled() };
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..ACCESSES {
                    let line = if prefetch {
                        LineAddr::in_space(0, i % ws_lines) // sequential: exercises the engines
                    } else {
                        LineAddr::in_space(0, mix64(i) % ws_lines)
                    };
                    let a = Access { line, write: i % 4 == 0, pc: 5, non_temporal: false, mlp: 1.0 };
                    let out = h.access((i % 4) as usize, &a, mask, pf, &mut ring, &mut dram);
                    acc = acc.wrapping_add(out.latency);
                    if i % 1024 == 0 {
                        ring.end_quantum(100_000);
                        dram.end_quantum(100_000);
                    }
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, hierarchy_throughput);
criterion_main!(benches);
