//! Noise-aware perf-regression judgment for the `sentry` binary.
//!
//! `scripts/bench.sh` appends one JSON record per benchmarking session to
//! `BENCH_history.jsonl`; the sentry compares the newest measurement
//! against that history. Wall-clock on shared machines is noisy (±10%
//! run-to-run even with the script's interleaved A/B medians — see
//! DESIGN.md §5d), so single-run deltas are meaningless. The judge
//! instead:
//!
//! 1. takes the **median** of the history as the expected value (robust
//!    to the odd outlier session),
//! 2. estimates spread with the **MAD** (median absolute deviation),
//!    scaled by 1.4826 to a normal-equivalent sigma, and
//! 3. flags a regression only when the current value exceeds
//!    `median + max(noise_frac × median, z × 1.4826 × MAD)` — i.e. the
//!    deviation must clear *both* the documented noise floor and a
//!    z-score band from the measured spread.
//!
//! With the defaults (`noise_frac` 0.10, `z` 3.0) a +25% runtime
//! regression is flagged while ±8% jitter passes, and a history whose
//! own spread exceeds 10% widens the band instead of producing flaky
//! failures.

/// Conversion from MAD to a normal-equivalent standard deviation.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Default noise floor: the ±10% wall-clock noise documented for this
/// benchmark environment.
pub const DEFAULT_NOISE_FRAC: f64 = 0.10;

/// Default z-score band width.
pub const DEFAULT_Z: f64 = 3.0;

/// Histories shorter than this cannot estimate spread; the judge passes
/// with a note instead of guessing.
pub const MIN_HISTORY: usize = 3;

/// Median of `values` (not required sorted). Returns `None` when empty.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite benchmark values"));
    let n = sorted.len();
    Some(if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 })
}

/// Median absolute deviation around the median. `None` when empty.
pub fn mad(values: &[f64]) -> Option<f64> {
    let m = median(values)?;
    let deviations: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    median(&deviations)
}

/// The outcome of judging one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within the noise band.
    Pass {
        /// History median.
        median: f64,
        /// The threshold the current value stayed under.
        threshold: f64,
    },
    /// Beyond the noise band — a real regression.
    Regression {
        /// History median.
        median: f64,
        /// The threshold the current value exceeded.
        threshold: f64,
        /// Fractional excess over the median (0.25 = +25%).
        excess_frac: f64,
    },
    /// Not enough history to judge; treated as a pass.
    InsufficientHistory {
        /// Entries available (< [`MIN_HISTORY`]).
        have: usize,
    },
}

impl Verdict {
    /// Whether this verdict should fail the build.
    pub fn is_regression(&self) -> bool {
        matches!(self, Verdict::Regression { .. })
    }
}

/// Judges `current` against `history` (higher = worse, e.g. seconds or
/// ns/access). See the module docs for the decision rule.
pub fn judge(history: &[f64], current: f64, noise_frac: f64, z: f64) -> Verdict {
    if history.len() < MIN_HISTORY {
        return Verdict::InsufficientHistory { have: history.len() };
    }
    let med = median(history).expect("non-empty history");
    let spread = mad(history).expect("non-empty history") * MAD_TO_SIGMA;
    let band = (noise_frac * med).max(z * spread);
    let threshold = med + band;
    if current > threshold {
        Verdict::Regression { median: med, threshold, excess_frac: current / med - 1.0 }
    } else {
        Verdict::Pass { median: med, threshold }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 3.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(mad(&[1.0, 1.0, 1.0]), Some(0.0));
        // {1,2,3,4,9}: median 3, deviations {2,1,0,1,6} → MAD 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 9.0]), Some(1.0));
    }

    #[test]
    fn short_history_passes_with_note() {
        let v = judge(&[5.0, 5.1], 100.0, DEFAULT_NOISE_FRAC, DEFAULT_Z);
        assert_eq!(v, Verdict::InsufficientHistory { have: 2 });
        assert!(!v.is_regression());
    }

    #[test]
    fn plus_25_percent_is_flagged() {
        // Tight history around 100 with realistic ±3% scatter.
        let history = [98.0, 100.0, 101.0, 99.5, 100.5, 102.0];
        let v = judge(&history, 125.0, DEFAULT_NOISE_FRAC, DEFAULT_Z);
        assert!(v.is_regression(), "{v:?}");
        if let Verdict::Regression { excess_frac, .. } = v {
            assert!(excess_frac > 0.2, "excess {excess_frac}");
        }
    }

    #[test]
    fn plus_minus_8_percent_jitter_passes() {
        let history = [98.0, 100.0, 101.0, 99.5, 100.5, 102.0];
        for jitter in [0.92, 0.95, 1.0, 1.05, 1.08] {
            let v = judge(&history, 100.0 * jitter, DEFAULT_NOISE_FRAC, DEFAULT_Z);
            assert!(!v.is_regression(), "jitter {jitter} flagged: {v:?}");
        }
    }

    #[test]
    fn noisy_history_widens_the_band() {
        // Spread so large that 3·1.4826·MAD > 10% of the median: a +15%
        // excursion is indistinguishable from this history's own scatter.
        let history = [80.0, 95.0, 100.0, 105.0, 120.0, 90.0, 110.0];
        let v = judge(&history, 115.0, DEFAULT_NOISE_FRAC, DEFAULT_Z);
        assert!(!v.is_regression(), "{v:?}");
    }

    #[test]
    fn improvement_never_flags() {
        let history = [100.0, 101.0, 99.0, 100.0];
        assert!(!judge(&history, 50.0, DEFAULT_NOISE_FRAC, DEFAULT_Z).is_regression());
    }
}
