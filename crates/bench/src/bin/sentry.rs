//! Noise-aware perf-regression sentry over `BENCH_history.jsonl`.
//!
//! ```text
//! sentry --history BENCH_history.jsonl [--metric KEY]...
//!        [--current FILE.json] [--noise 0.10] [--z 3.0] [--json FILE]
//! ```
//!
//! Each history line is one benchmarking session's JSON record (the
//! `BENCH_sim.json` object plus `at`/`rev`, appended by
//! `scripts/bench.sh`). For every `--metric` (default
//! `current_median_s`, `current_cold_s`, `sharded_cold_s`, and
//! `engine_ns_per_access`; higher = worse) the
//! sentry compares the newest measurement against the older history
//! using the median + MAD rule in [`waypart_bench::sentry`], calibrated
//! to the environment's ±10% wall-clock noise. Without `--current`, the
//! last history line is the measurement and the earlier lines are the
//! history.
//!
//! Exits nonzero only when some metric regresses beyond the noise band;
//! missing metrics and short histories pass with a note, so the check is
//! safe to wire into CI from the very first run.
//!
//! `--json FILE` additionally writes one machine-readable verdict record
//! per judged metric (`{"record":"verdict","metric":...,"verdict":
//! "pass|regression|insufficient_history|skip",...}`, `-` for stdout) —
//! the schema the `validate_trace` binary accepts and the trend page
//! (`report --history ... --verdicts FILE`) renders as badges.

use std::path::PathBuf;
use std::process::ExitCode;

use waypart_bench::sentry::{judge, Verdict, DEFAULT_NOISE_FRAC, DEFAULT_Z, MIN_HISTORY};
use waypart_telemetry::schema::{parse_json, Json};

/// Pulls a finite numeric metric out of one parsed history record.
fn metric_value(record: &Json, key: &str) -> Option<f64> {
    match record.get(key) {
        Some(Json::Num { value, .. }) if value.is_finite() => Some(*value),
        _ => None,
    }
}

fn parse_history(text: &str, path: &str) -> Result<Vec<Json>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = parse_json(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        records.push(j);
    }
    Ok(records)
}

/// Formats an optional number as a JSON value (`null` when absent).
fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.6}"),
        _ => "null".to_string(),
    }
}

/// One `{"record":"verdict",...}` line for the machine-readable output.
fn verdict_record(
    metric: &str,
    verdict: &str,
    current: Option<f64>,
    median: Option<f64>,
    threshold: Option<f64>,
    n: usize,
) -> String {
    format!(
        "{{\"record\":\"verdict\",\"metric\":\"{metric}\",\"verdict\":\"{verdict}\",\
         \"current\":{},\"median\":{},\"threshold\":{},\"n\":{n}}}\n",
        json_opt(current),
        json_opt(median),
        json_opt(threshold),
    )
}

fn main() -> ExitCode {
    let mut history_path: Option<PathBuf> = None;
    let mut current_path: Option<PathBuf> = None;
    let mut metrics: Vec<String> = Vec::new();
    let mut noise = DEFAULT_NOISE_FRAC;
    let mut z = DEFAULT_Z;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--history" => {
                history_path = Some(PathBuf::from(args.next().expect("--history needs a path")))
            }
            "--current" => {
                current_path = Some(PathBuf::from(args.next().expect("--current needs a path")))
            }
            "--metric" => metrics.push(args.next().expect("--metric needs a key")),
            "--noise" => {
                noise = args
                    .next()
                    .expect("--noise needs a fraction")
                    .parse()
                    .expect("--noise must be a number")
            }
            "--z" => z = args.next().expect("--z needs a value").parse().expect("--z must be a number"),
            "--json" => json_path = Some(PathBuf::from(args.next().expect("--json needs a path"))),
            "--help" | "-h" => {
                println!(
                    "usage: sentry --history BENCH_history.jsonl [--metric KEY]... \
                     [--current FILE.json] [--noise {DEFAULT_NOISE_FRAC}] [--z {DEFAULT_Z}] \
                     [--json FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let history_path = match history_path {
        Some(p) => p,
        None => {
            eprintln!("--history is required (see --help)");
            return ExitCode::FAILURE;
        }
    };
    if metrics.is_empty() {
        // Cold time is the headline this engine optimizes (run-cache off,
        // every measurement simulated); the warm median and raw engine
        // ns/access catch regressions the cache would otherwise mask.
        // `sharded_cold_s` is the `--jobs N` cold wall-clock — it guards
        // the worker protocol itself (claim churn, peer-wait backoff),
        // which can regress even when single-process cold time is flat.
        // Records that predate a metric simply don't vote: absent keys
        // are filtered from the history and skipped in the current
        // measurement, so adding metrics never breaks old histories.
        metrics = vec![
            "current_median_s".to_string(),
            "current_cold_s".to_string(),
            "sharded_cold_s".to_string(),
            "engine_ns_per_access".to_string(),
        ];
    }

    let text = match std::fs::read_to_string(&history_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{}: cannot read: {e}", history_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut records = match parse_history(&text, &history_path.display().to_string()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("invalid history: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The measurement under judgment: an explicit --current file, or the
    // newest history line (removed from the history it is judged against).
    let current = match &current_path {
        Some(p) => {
            let t = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{}: cannot read: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            };
            match parse_json(t.trim()) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("{}: invalid JSON: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match records.pop() {
            Some(j) => j,
            None => {
                eprintln!("{}: empty history, nothing to judge", history_path.display());
                return ExitCode::SUCCESS;
            }
        },
    };

    let mut regressed = false;
    let mut verdict_lines = String::new();
    for key in &metrics {
        let hist: Vec<f64> = records.iter().filter_map(|r| metric_value(r, key)).collect();
        let cur = match metric_value(&current, key) {
            Some(v) => v,
            None => {
                println!("{key}: SKIP (metric absent from current measurement)");
                verdict_lines.push_str(&verdict_record(key, "skip", None, None, None, hist.len()));
                continue;
            }
        };
        match judge(&hist, cur, noise, z) {
            Verdict::Pass { median, threshold } => {
                println!(
                    "{key}: PASS current {cur:.3} vs median {median:.3} (threshold {threshold:.3}, \
                     n={})",
                    hist.len()
                );
                verdict_lines.push_str(&verdict_record(
                    key,
                    "pass",
                    Some(cur),
                    Some(median),
                    Some(threshold),
                    hist.len(),
                ));
            }
            Verdict::InsufficientHistory { have } => {
                println!(
                    "{key}: PASS (only {have} history entries, need {MIN_HISTORY} — recording, not judging)"
                );
                verdict_lines.push_str(&verdict_record(
                    key,
                    "insufficient_history",
                    Some(cur),
                    None,
                    None,
                    have,
                ));
            }
            Verdict::Regression { median, threshold, excess_frac } => {
                regressed = true;
                println!(
                    "{key}: REGRESSION current {cur:.3} is {:+.1}% over median {median:.3} \
                     (threshold {threshold:.3}, n={})",
                    excess_frac * 100.0,
                    hist.len()
                );
                verdict_lines.push_str(&verdict_record(
                    key,
                    "regression",
                    Some(cur),
                    Some(median),
                    Some(threshold),
                    hist.len(),
                ));
            }
        }
    }
    if let Some(path) = &json_path {
        if path.as_os_str() == "-" {
            print!("{verdict_lines}");
        } else if let Err(e) = std::fs::write(path, &verdict_lines) {
            eprintln!("{}: cannot write verdicts: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if regressed {
        eprintln!("perf sentry: regression beyond the ±{:.0}% noise band", noise * 100.0);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
