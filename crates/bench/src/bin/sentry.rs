//! Noise-aware perf-regression sentry over `BENCH_history.jsonl`.
//!
//! ```text
//! sentry --history BENCH_history.jsonl [--metric KEY]...
//!        [--current FILE.json] [--noise 0.10] [--z 3.0]
//! ```
//!
//! Each history line is one benchmarking session's JSON record (the
//! `BENCH_sim.json` object plus `at`/`rev`, appended by
//! `scripts/bench.sh`). For every `--metric` (default
//! `current_median_s`, `current_cold_s`, `sharded_cold_s`, and
//! `engine_ns_per_access`; higher = worse) the
//! sentry compares the newest measurement against the older history
//! using the median + MAD rule in [`waypart_bench::sentry`], calibrated
//! to the environment's ±10% wall-clock noise. Without `--current`, the
//! last history line is the measurement and the earlier lines are the
//! history.
//!
//! Exits nonzero only when some metric regresses beyond the noise band;
//! missing metrics and short histories pass with a note, so the check is
//! safe to wire into CI from the very first run.

use std::path::PathBuf;
use std::process::ExitCode;

use waypart_bench::sentry::{judge, Verdict, DEFAULT_NOISE_FRAC, DEFAULT_Z, MIN_HISTORY};
use waypart_telemetry::schema::{parse_json, Json};

/// Pulls a finite numeric metric out of one parsed history record.
fn metric_value(record: &Json, key: &str) -> Option<f64> {
    match record.get(key) {
        Some(Json::Num { value, .. }) if value.is_finite() => Some(*value),
        _ => None,
    }
}

fn parse_history(text: &str, path: &str) -> Result<Vec<Json>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = parse_json(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        records.push(j);
    }
    Ok(records)
}

fn main() -> ExitCode {
    let mut history_path: Option<PathBuf> = None;
    let mut current_path: Option<PathBuf> = None;
    let mut metrics: Vec<String> = Vec::new();
    let mut noise = DEFAULT_NOISE_FRAC;
    let mut z = DEFAULT_Z;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--history" => {
                history_path = Some(PathBuf::from(args.next().expect("--history needs a path")))
            }
            "--current" => {
                current_path = Some(PathBuf::from(args.next().expect("--current needs a path")))
            }
            "--metric" => metrics.push(args.next().expect("--metric needs a key")),
            "--noise" => {
                noise = args
                    .next()
                    .expect("--noise needs a fraction")
                    .parse()
                    .expect("--noise must be a number")
            }
            "--z" => z = args.next().expect("--z needs a value").parse().expect("--z must be a number"),
            "--help" | "-h" => {
                println!(
                    "usage: sentry --history BENCH_history.jsonl [--metric KEY]... \
                     [--current FILE.json] [--noise {DEFAULT_NOISE_FRAC}] [--z {DEFAULT_Z}]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let history_path = match history_path {
        Some(p) => p,
        None => {
            eprintln!("--history is required (see --help)");
            return ExitCode::FAILURE;
        }
    };
    if metrics.is_empty() {
        // Cold time is the headline this engine optimizes (run-cache off,
        // every measurement simulated); the warm median and raw engine
        // ns/access catch regressions the cache would otherwise mask.
        // `sharded_cold_s` is the `--jobs N` cold wall-clock — it guards
        // the worker protocol itself (claim churn, peer-wait backoff),
        // which can regress even when single-process cold time is flat.
        // Records that predate a metric simply don't vote: absent keys
        // are filtered from the history and skipped in the current
        // measurement, so adding metrics never breaks old histories.
        metrics = vec![
            "current_median_s".to_string(),
            "current_cold_s".to_string(),
            "sharded_cold_s".to_string(),
            "engine_ns_per_access".to_string(),
        ];
    }

    let text = match std::fs::read_to_string(&history_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{}: cannot read: {e}", history_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut records = match parse_history(&text, &history_path.display().to_string()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("invalid history: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The measurement under judgment: an explicit --current file, or the
    // newest history line (removed from the history it is judged against).
    let current = match &current_path {
        Some(p) => {
            let t = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{}: cannot read: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            };
            match parse_json(t.trim()) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("{}: invalid JSON: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match records.pop() {
            Some(j) => j,
            None => {
                eprintln!("{}: empty history, nothing to judge", history_path.display());
                return ExitCode::SUCCESS;
            }
        },
    };

    let mut regressed = false;
    for key in &metrics {
        let cur = match metric_value(&current, key) {
            Some(v) => v,
            None => {
                println!("{key}: SKIP (metric absent from current measurement)");
                continue;
            }
        };
        let hist: Vec<f64> = records.iter().filter_map(|r| metric_value(r, key)).collect();
        match judge(&hist, cur, noise, z) {
            Verdict::Pass { median, threshold } => println!(
                "{key}: PASS current {cur:.3} vs median {median:.3} (threshold {threshold:.3}, \
                 n={})",
                hist.len()
            ),
            Verdict::InsufficientHistory { have } => println!(
                "{key}: PASS (only {have} history entries, need {MIN_HISTORY} — recording, not judging)"
            ),
            Verdict::Regression { median, threshold, excess_frac } => {
                regressed = true;
                println!(
                    "{key}: REGRESSION current {cur:.3} is {:+.1}% over median {median:.3} \
                     (threshold {threshold:.3}, n={})",
                    excess_frac * 100.0,
                    hist.len()
                );
            }
        }
    }
    if regressed {
        eprintln!("perf sentry: regression beyond the ±{:.0}% noise band", noise * 100.0);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
