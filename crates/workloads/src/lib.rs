//! # waypart-workloads
//!
//! Synthetic models of the 45 applications characterized by Cook et al.
//! (ISCA 2013): the 13 PARSEC and 14 DaCapo benchmarks, 12 SPEC CPU2006
//! benchmarks, 4 parallel research applications, and 2 microbenchmarks
//! (§2.3). We cannot ship the real suites, so each application is a
//! *statistical address-stream model* — a deterministic generator
//! parameterized by working-set size, access-pattern mix, memory intensity,
//! thread-scalability law, and phase schedule — with parameters transcribed
//! from the paper's own per-application characterization (Tables 1–2,
//! Figures 1–4, and the `429.mcf` phase trace of Figure 12).
//!
//! The models plug into the `waypart-sim` machine through the
//! [`waypart_sim::stream::AccessStream`] trait:
//!
//! ```
//! use waypart_workloads::{registry, Scale};
//!
//! let spec = registry::by_name("429.mcf").unwrap();
//! // One single-threaded stream of the whole application at test scale.
//! let stream = spec.thread_stream(1, 0, 1, Scale::TEST, 42);
//! assert!(spec.max_threads == 1);
//! # let _ = stream;
//! ```

pub mod model;
pub mod registry;
pub mod spec;

pub use model::AppThreadStream;
pub use spec::{AppSpec, LlcClass, PatternMix, PhaseSpec, Scale, ScalClass, Suite};
