//! Application model specifications.
//!
//! An [`AppSpec`] captures everything the paper measured about one
//! application: its suite, instruction volume, memory intensity, access
//! pattern (per phase), and parallel-scaling law. The expected
//! classifications from Tables 1 and 2 are carried alongside so the
//! calibration tests can assert that the *measured* behaviour of each model
//! matches the paper's characterization.

use crate::model::AppThreadStream;
use serde::{Deserialize, Serialize};

/// Benchmark suite membership (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// PARSEC 2.x native inputs, pthreads (except freqmine/OpenMP).
    Parsec,
    /// DaCapo 2009 (managed/JVM workloads).
    DaCapo,
    /// SPEC CPU2006 subset (single ref input).
    Spec,
    /// The four parallel research applications.
    Parallel,
    /// Microbenchmarks (`ccbench`, `stream_uncached`).
    Micro,
}

impl Suite {
    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Parsec => "PARSEC",
            Suite::DaCapo => "DACAPO",
            Suite::Spec => "SPEC",
            Suite::Parallel => "PAR",
            Suite::Micro => "u",
        }
    }
}

/// Thread-scalability class (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalClass {
    /// Little or no speedup from added threads.
    Low,
    /// Speedup saturates after 4–6 threads.
    Saturated,
    /// Speedup keeps growing to 8 threads.
    High,
}

/// LLC-capacity utility class (Table 2, ignoring the pathological
/// direct-mapped 0.5 MB point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LlcClass {
    /// Performance flat in allocated capacity.
    Low,
    /// Benefits up to a saturation point.
    Saturated,
    /// Always benefits from more capacity.
    High,
}

/// Scale preset tying workload footprints to a capacity-scaled machine.
///
/// `capacity_div` divides working-set sizes (pair it with
/// [`waypart_sim::config::MachineConfig::scaled`] using the same divisor);
/// `work_div` divides instruction volume (runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Working-set / cache-capacity divisor (power of two).
    pub capacity_div: usize,
    /// Instruction-volume divisor.
    pub work_div: u64,
}

impl Scale {
    /// Full size: the paper's 6 MB LLC and full instruction volumes.
    pub const FULL: Scale = Scale { capacity_div: 1, work_div: 8 };
    /// Bench scale: 1.5 MB LLC machine, ~1/64 instruction volume.
    pub const BENCH: Scale = Scale { capacity_div: 4, work_div: 64 };
    /// Test scale: 96 KB LLC machine, tiny instruction volume.
    pub const TEST: Scale = Scale { capacity_div: 64, work_div: 1024 };
}

/// One phase's memory access pattern.
///
/// Accesses draw from three components: a *hot* set (intense reuse, filtered
/// by L1/L2), a *sequential* stream over the thread's slice of the main
/// working set (prefetch-friendly, high MLP), and a *random* component over
/// the whole working set (capacity-sensitive; MLP 1 models pointer chasing).
/// The three fractions must not exceed 1; the remainder is hot traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternMix {
    /// Main working-set size in bytes (at full scale).
    pub ws_bytes: u64,
    /// Hot-set size in bytes (at full scale); should fit in L1/L2.
    pub hot_bytes: u64,
    /// Fraction of accesses walking the sequential stream.
    pub seq_frac: f64,
    /// Fraction of accesses hitting random lines of the working set.
    pub rand_frac: f64,
    /// Memory-level parallelism of sequential misses.
    pub seq_mlp: f32,
    /// Memory-level parallelism of random misses (1.0 = pointer chase).
    pub rand_mlp: f32,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
    /// Memory accesses per kilo-instruction.
    pub mem_per_ki: u32,
    /// Whether accesses bypass the caches entirely (stream_uncached).
    pub non_temporal: bool,
    /// Fraction of *random* accesses that target the warm region (skewed
    /// reuse). Real pointer-chasing codes keep a hot core of their
    /// footprint, which both smooths working-set knees (§3.2) and lets an
    /// allocation matching the working set reach ~95% of peak performance
    /// (Fig 12's 9-way point for mcf).
    pub warm_access_frac: f64,
    /// Size of the warm region as a fraction of the working set.
    pub warm_region_frac: f64,
    /// If non-zero, the sequential cursor jumps to a random position
    /// every this many steps: short bursts that *confirm* the hardware
    /// stream prefetchers and then abandon the stream, wasting the
    /// prefetched lines. This is the access shape that makes `lusearch`
    /// run *slower* with prefetching enabled (Fig 3).
    pub seq_jump_every: u32,
}

impl PatternMix {
    /// A compute-heavy pattern: tiny footprint, mostly hot traffic.
    pub const fn compute(ws_bytes: u64, mem_per_ki: u32) -> Self {
        PatternMix {
            ws_bytes,
            hot_bytes: 16 * 1024,
            seq_frac: 0.02,
            rand_frac: 0.03,
            seq_mlp: 4.0,
            rand_mlp: 2.0,
            write_frac: 0.25,
            mem_per_ki,
            non_temporal: false,
            warm_access_frac: 0.6,
            warm_region_frac: 0.3,
            seq_jump_every: 0,
        }
    }

    /// Validates the mix.
    ///
    /// # Panics
    /// Panics if fractions are out of range or the sets are empty.
    pub fn validate(&self) {
        assert!(self.ws_bytes >= 64, "working set smaller than one line");
        assert!(self.hot_bytes >= 64, "hot set smaller than one line");
        assert!(self.seq_frac >= 0.0 && self.rand_frac >= 0.0 && self.write_frac >= 0.0);
        assert!(self.seq_frac + self.rand_frac <= 1.0 + 1e-9, "pattern fractions exceed 1");
        assert!(self.write_frac <= 1.0);
        assert!(self.mem_per_ki > 0 && self.mem_per_ki <= 1000, "mem_per_ki out of range");
        assert!(self.seq_mlp >= 1.0 && self.rand_mlp >= 1.0);
        assert!(
            (0.0..=1.0).contains(&self.warm_access_frac) && (0.0..=1.0).contains(&self.warm_region_frac),
            "warm-skew fractions out of range"
        );
        assert!(self.warm_region_frac > 0.0, "warm region must be non-empty");
    }
}

/// One entry of an application's phase schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Fraction of the application's total work spent in this phase.
    pub work_fraction: f64,
    /// The phase's access pattern.
    pub mix: PatternMix,
}

/// Full model of one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSpec {
    /// Name as it appears in the paper's figures (e.g. `"429.mcf"`).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Total instructions at full scale (across all threads).
    pub total_instructions: u64,
    /// Base cycles per instruction for non-stalled work.
    pub base_cpi: f64,
    /// Amdahl serial fraction of the work.
    pub serial_fraction: f64,
    /// Per-extra-thread work inflation (synchronization, GC pressure):
    /// each thread's parallel share is multiplied by
    /// `1 + sync_overhead * (threads - 1)`.
    pub sync_overhead: f64,
    /// Maximum threads the application can use (1 for SPEC and the
    /// microbenchmarks).
    pub max_threads: usize,
    /// Phase schedule; fractions must sum to 1.
    pub phases: Vec<PhaseSpec>,
    /// Expected Table 1 class (for calibration tests).
    pub scal_class: ScalClass,
    /// Expected Table 2 class (for calibration tests).
    pub llc_class: LlcClass,
    /// Whether Table 2 bolds the app (>10 LLC accesses per kilo-instr).
    pub high_apki: bool,
}

impl AppSpec {
    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics if the phase schedule is empty, fractions don't sum to ~1, or
    /// any mix is invalid.
    pub fn validate(&self) {
        assert!(!self.phases.is_empty(), "{}: no phases", self.name);
        let total: f64 = self.phases.iter().map(|p| p.work_fraction).sum();
        assert!((total - 1.0).abs() < 1e-6, "{}: phase fractions sum to {total}", self.name);
        for p in &self.phases {
            assert!(p.work_fraction > 0.0, "{}: empty phase", self.name);
            p.mix.validate();
        }
        assert!(self.max_threads >= 1 && self.max_threads <= 8);
        assert!(self.serial_fraction >= 0.0 && self.serial_fraction <= 1.0);
        assert!(self.sync_overhead >= 0.0 && self.sync_overhead < 1.0);
        assert!(self.base_cpi > 0.0);
        assert!(self.total_instructions > 0);
    }

    /// Instruction budget of thread `thread` when the app runs with
    /// `threads` threads at `scale`.
    ///
    /// The Amdahl serial share is charged to thread 0; every thread's
    /// parallel share inflates with the sync overhead. Threads beyond
    /// `max_threads` receive no work.
    pub fn thread_budget(&self, threads: usize, thread: usize, scale: Scale) -> u64 {
        assert!(thread < threads, "thread index out of range");
        let effective = threads.min(self.max_threads);
        if thread >= effective {
            return 0;
        }
        let total = (self.total_instructions / scale.work_div).max(1000) as f64;
        let serial = self.serial_fraction * total;
        let parallel_share = (1.0 - self.serial_fraction) * total / effective as f64
            * (1.0 + self.sync_overhead * (effective as f64 - 1.0));
        let budget = if thread == 0 { serial + parallel_share } else { parallel_share };
        budget.max(1.0) as u64
    }

    /// Builds the access stream for thread `thread` of a `threads`-thread
    /// run in address space `asid`.
    ///
    /// Streams are deterministic for a given `(name, thread, seed)`.
    pub fn thread_stream(&self, threads: usize, thread: usize, asid: u16, scale: Scale, seed: u64) -> AppThreadStream {
        AppThreadStream::new(self.clone(), threads, thread, asid, scale, seed, false)
    }

    /// Like [`Self::thread_stream`] but the stream restarts forever — the
    /// paper's "continuously running background application" (§5, Fig 9).
    pub fn endless_stream(&self, threads: usize, thread: usize, asid: u16, scale: Scale, seed: u64) -> AppThreadStream {
        AppThreadStream::new(self.clone(), threads, thread, asid, scale, seed, true)
    }

    /// Number of threads that will actually receive work.
    pub fn effective_threads(&self, requested: usize) -> usize {
        requested.min(self.max_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(serial: f64, sync: f64, max_threads: usize) -> AppSpec {
        AppSpec {
            name: "dummy",
            suite: Suite::Parsec,
            total_instructions: 8_000_000,
            base_cpi: 1.0,
            serial_fraction: serial,
            sync_overhead: sync,
            max_threads,
            phases: vec![PhaseSpec { work_fraction: 1.0, mix: PatternMix::compute(1 << 20, 300) }],
            scal_class: ScalClass::High,
            llc_class: LlcClass::Low,
            high_apki: false,
        }
    }

    #[test]
    fn budgets_split_parallel_work() {
        let spec = dummy(0.0, 0.0, 8);
        let scale = Scale { capacity_div: 1, work_div: 1 };
        let b0 = spec.thread_budget(4, 0, scale);
        let b1 = spec.thread_budget(4, 1, scale);
        assert_eq!(b0, b1);
        assert_eq!(b0, 2_000_000);
    }

    #[test]
    fn serial_work_lands_on_thread_zero() {
        let spec = dummy(0.5, 0.0, 8);
        let scale = Scale { capacity_div: 1, work_div: 1 };
        let b0 = spec.thread_budget(4, 0, scale);
        let b1 = spec.thread_budget(4, 1, scale);
        assert_eq!(b0, 4_000_000 + 1_000_000);
        assert_eq!(b1, 1_000_000);
    }

    #[test]
    fn sync_overhead_inflates_parallel_shares() {
        let spec = dummy(0.0, 0.1, 8);
        let scale = Scale { capacity_div: 1, work_div: 1 };
        // 4 threads: each share inflated by 1 + 0.1*3 = 1.3.
        assert_eq!(spec.thread_budget(4, 1, scale), 2_600_000);
    }

    #[test]
    fn threads_beyond_max_get_nothing() {
        let spec = dummy(0.0, 0.0, 1);
        let scale = Scale { capacity_div: 1, work_div: 1 };
        assert_eq!(spec.thread_budget(4, 0, scale), 8_000_000);
        assert_eq!(spec.thread_budget(4, 1, scale), 0);
        assert_eq!(spec.effective_threads(4), 1);
    }

    #[test]
    fn validate_accepts_sane_spec() {
        dummy(0.1, 0.01, 8).validate();
    }

    #[test]
    #[should_panic(expected = "phase fractions")]
    fn validate_rejects_bad_phase_sum() {
        let mut s = dummy(0.0, 0.0, 8);
        s.phases[0].work_fraction = 0.5;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "fractions exceed 1")]
    fn validate_rejects_oversubscribed_mix() {
        let mut s = dummy(0.0, 0.0, 8);
        s.phases[0].mix.seq_frac = 0.7;
        s.phases[0].mix.rand_frac = 0.7;
        s.validate();
    }

    #[test]
    fn work_div_shrinks_budgets() {
        let spec = dummy(0.0, 0.0, 8);
        let full = spec.thread_budget(1, 0, Scale { capacity_div: 1, work_div: 1 });
        let small = spec.thread_budget(1, 0, Scale { capacity_div: 1, work_div: 8 });
        assert_eq!(full, small * 8);
    }
}
