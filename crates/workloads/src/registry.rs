//! The 45 application models.
//!
//! One [`AppSpec`] per application of §2.3: 13 PARSEC, 14 DaCapo, 12 SPEC
//! CPU2006, 4 parallel research applications, 2 microbenchmarks. Parameters
//! encode the paper's own per-application measurements:
//!
//! * `scal_class` / `serial_fraction` / `sync_overhead` — Table 1 and Fig 1;
//! * `llc_class` / working-set sizes — Table 2 and Fig 2 (44% of apps reach
//!   peak performance with ≤1 MB, 78% with ≤3 MB);
//! * `high_apki` — Table 2's bolding of apps above 10 LLC accesses/KI;
//! * sequential fractions / MLP — Fig 3 (prefetcher sensitivity) and Fig 4
//!   (bandwidth sensitivity: streaming SPEC codes, `fluidanimate`,
//!   `streamcluster`, and all four parallel apps suffer next to a hog);
//! * `429.mcf`'s six-phase schedule — Fig 12 (five MPKI transitions between
//!   a 1.5 MB and a 4.5 MB working set).
//!
//! The calibration suite (`tests/calibration.rs` in this crate and the
//! experiment harness) measures every model and asserts the classes match.

use crate::spec::{AppSpec, LlcClass, PatternMix, PhaseSpec, ScalClass, Suite};

const MB: u64 = 1024 * 1024;
const KB: u64 = 1024;
const G: u64 = 1_000_000_000;

/// Compact builder for the single-phase common case.
#[allow(clippy::too_many_arguments)]
fn app(
    name: &'static str,
    suite: Suite,
    instr: u64,
    cpi: f64,
    serial: f64,
    sync: f64,
    max_threads: usize,
    mix: PatternMix,
    scal: ScalClass,
    llc: LlcClass,
    high_apki: bool,
) -> AppSpec {
    AppSpec {
        name,
        suite,
        total_instructions: instr,
        base_cpi: cpi,
        serial_fraction: serial,
        sync_overhead: sync,
        max_threads,
        phases: vec![PhaseSpec { work_fraction: 1.0, mix }],
        scal_class: scal,
        llc_class: llc,
        high_apki,
    }
}

/// Compact builder for a [`PatternMix`].
#[allow(clippy::too_many_arguments)]
fn mix(
    ws: u64,
    hot: u64,
    seq: f64,
    rand: f64,
    seq_mlp: f32,
    rand_mlp: f32,
    write: f64,
    mem_per_ki: u32,
) -> PatternMix {
    PatternMix {
        ws_bytes: ws,
        hot_bytes: hot,
        seq_frac: seq,
        rand_frac: rand,
        seq_mlp,
        rand_mlp,
        write_frac: write,
        mem_per_ki,
        non_temporal: false,
        warm_access_frac: 0.6,
        warm_region_frac: 0.3,
        seq_jump_every: 0,
    }
}

/// Marks a mix as scatter traffic: random references spread uniformly
/// over the whole footprint with no warm core. Streaming codes' residual
/// random misses look like this, which is why extra LLC capacity buys
/// them nothing (Table 2 "low" utility).
fn no_warm(mut m: PatternMix) -> PatternMix {
    m.warm_access_frac = 0.0;
    m
}

fn parsec() -> Vec<AppSpec> {
    use Suite::Parsec;
    vec![
        app("blackscholes", Parsec, 2 * G, 0.9, 0.02, 0.003, 8,
            mix(500 * KB, 24 * KB, 0.020, 0.012, 4.0, 2.0, 0.20, 200), ScalClass::High, LlcClass::Low, false),
        app("bodytrack", Parsec, 2 * G, 1.0, 0.04, 0.005, 8,
            mix(500 * KB, 32 * KB, 0.016, 0.012, 4.0, 2.0, 0.22, 220), ScalClass::High, LlcClass::Low, false),
        // canneal: pointer-chasing netlist; saturated scaling, saturated
        // LLC utility, and one of the paper's most aggressive co-runners.
        app("canneal", Parsec, 2_200_000_000, 1.1, 0.12, 0.100, 8,
            mix(2_500 * KB, 32 * KB, 0.020, 0.120, 4.0, 1.6, 0.20, 300), ScalClass::Saturated, LlcClass::Saturated, true),
        AppSpec {
            name: "dedup",
            suite: Parsec,
            total_instructions: 2 * G,
            base_cpi: 1.0,
            serial_fraction: 0.12,
            sync_overhead: 0.140,
            max_threads: 8,
            phases: vec![
                PhaseSpec { work_fraction: 0.55, mix: mix(550 * KB, 48 * KB, 0.015, 0.010, 4.0, 2.0, 0.30, 250) },
                PhaseSpec { work_fraction: 0.45, mix: mix(200 * KB, 32 * KB, 0.006, 0.004, 4.0, 2.0, 0.30, 250) },
            ],
            scal_class: ScalClass::Saturated,
            llc_class: LlcClass::Low,
            high_apki: false,
        },
        // facesim: a cache-resident solve phase plus a streaming assembly
        // phase; the stream is what prefetching covers (Fig 3 benefit).
        AppSpec {
            name: "facesim",
            suite: Parsec,
            total_instructions: 2_400_000_000,
            base_cpi: 1.0,
            serial_fraction: 0.03,
            sync_overhead: 0.004,
            max_threads: 8,
            phases: vec![
                PhaseSpec { work_fraction: 0.7, mix: mix(3 * MB, 48 * KB, 0.010, 0.010, 6.0, 2.0, 0.30, 260) },
                PhaseSpec { work_fraction: 0.3, mix: no_warm(mix(16 * MB, 48 * KB, 0.060, 0.002, 6.0, 2.0, 0.30, 260)) },
            ],
            scal_class: ScalClass::High,
            llc_class: LlcClass::Saturated,
            high_apki: false,
        },
        AppSpec {
            name: "ferret",
            suite: Parsec,
            total_instructions: 2_200_000_000,
            base_cpi: 1.0,
            serial_fraction: 0.03,
            sync_overhead: 0.004,
            max_threads: 8,
            phases: vec![
                PhaseSpec { work_fraction: 0.6, mix: mix(500 * KB, 32 * KB, 0.015, 0.010, 4.0, 2.0, 0.22, 240) },
                PhaseSpec { work_fraction: 0.4, mix: mix(200 * KB, 24 * KB, 0.006, 0.004, 4.0, 2.0, 0.22, 240) },
            ],
            scal_class: ScalClass::High,
            llc_class: LlcClass::Low,
            high_apki: false,
        },
        // fluidanimate: streaming and bandwidth sensitive (Fig 4), but low
        // LLC utility — its stream never fits.
        app("fluidanimate", Parsec, 2_200_000_000, 1.0, 0.04, 0.006, 8,
            no_warm(mix(32 * MB, 32 * KB, 0.035, 0.004, 6.0, 2.0, 0.30, 300)), ScalClass::High, LlcClass::Low, false),
        app("freqmine", Parsec, 2_400_000_000, 1.0, 0.05, 0.008, 8,
            mix(600 * KB, 48 * KB, 0.016, 0.010, 4.0, 2.0, 0.22, 230), ScalClass::High, LlcClass::Low, false),
        app("raytrace", Parsec, 2 * G, 1.0, 0.12, 0.100, 8,
            mix(600 * KB, 32 * KB, 0.012, 0.010, 4.0, 2.0, 0.18, 220), ScalClass::Saturated, LlcClass::Low, false),
        // streamcluster: the suite's bandwidth/prefetch-sensitive member.
        app("streamcluster", Parsec, 2_400_000_000, 0.9, 0.03, 0.004, 8,
            no_warm(mix(32 * MB, 16 * KB, 0.130, 0.012, 6.0, 2.0, 0.15, 330)), ScalClass::High, LlcClass::Low, true),
        // swaptions: Fig 2's "low utility" representative.
        app("swaptions", Parsec, 2 * G, 0.9, 0.02, 0.002, 8,
            mix(300 * KB, 16 * KB, 0.020, 0.010, 4.0, 2.0, 0.15, 180), ScalClass::High, LlcClass::Low, false),
        app("vips", Parsec, 2_200_000_000, 1.0, 0.04, 0.005, 8,
            mix(550 * KB, 32 * KB, 0.020, 0.012, 4.0, 2.0, 0.25, 240), ScalClass::High, LlcClass::Low, false),
        // x264: the one PARSEC app with high LLC utility (Table 2).
        app("x264", Parsec, 2_400_000_000, 1.0, 0.05, 0.010, 8,
            no_warm(mix(6_250 * KB, 48 * KB, 0.025, 0.020, 5.0, 2.0, 0.25, 250)), ScalClass::High, LlcClass::High, false),
    ]
}

fn dacapo() -> Vec<AppSpec> {
    use Suite::DaCapo;
    vec![
        app("avrora", DaCapo, 2_400_000_000, 1.2, 0.15, 0.080, 8,
            mix(500 * KB, 32 * KB, 0.012, 0.012, 4.0, 2.0, 0.25, 200), ScalClass::Saturated, LlcClass::Low, false),
        // batik: Fig 6/7 cluster-6 representative.
        AppSpec {
            name: "batik",
            suite: DaCapo,
            total_instructions: 2_400_000_000,
            base_cpi: 1.2,
            serial_fraction: 0.18,
            sync_overhead: 0.090,
            max_threads: 8,
            phases: vec![
                PhaseSpec { work_fraction: 0.35, mix: mix(2_500 * KB, 48 * KB, 0.012, 0.038, 4.0, 2.0, 0.25, 230) },
                PhaseSpec { work_fraction: 0.30, mix: mix(500 * KB, 48 * KB, 0.012, 0.012, 4.0, 2.0, 0.25, 230) },
                PhaseSpec { work_fraction: 0.35, mix: mix(2_500 * KB, 48 * KB, 0.012, 0.038, 4.0, 2.0, 0.25, 230) },
            ],
            scal_class: ScalClass::Saturated,
            llc_class: LlcClass::Saturated,
            high_apki: false,
        },
        app("eclipse", DaCapo, 2 * G, 1.2, 0.15, 0.140, 8,
            PatternMix { warm_access_frac: 0.35, ..no_warm(mix(6_500 * KB, 64 * KB, 0.010, 0.022, 4.0, 1.8, 0.28, 250)) }, ScalClass::Saturated, LlcClass::High, false),
        // fop: cluster-4 representative (cache-sensitive, saturated
        // scaling). Alternates a cache-hungry layout phase with a
        // small-footprint rendering phase — the phase slack the dynamic
        // controller harvests in Figure 13.
        AppSpec {
            name: "fop",
            suite: DaCapo,
            total_instructions: 2_800_000_000,
            base_cpi: 1.2,
            serial_fraction: 0.16,
            sync_overhead: 0.110,
            max_threads: 8,
            phases: vec![
                PhaseSpec { work_fraction: 0.30, mix: no_warm(mix(6_250 * KB, 48 * KB, 0.008, 0.032, 4.0, 1.8, 0.28, 250)) },
                PhaseSpec { work_fraction: 0.25, mix: mix(900 * KB, 48 * KB, 0.010, 0.015, 4.0, 2.0, 0.28, 250) },
                PhaseSpec { work_fraction: 0.25, mix: no_warm(mix(6_250 * KB, 48 * KB, 0.008, 0.032, 4.0, 1.8, 0.28, 250)) },
                PhaseSpec { work_fraction: 0.20, mix: mix(900 * KB, 48 * KB, 0.010, 0.015, 4.0, 2.0, 0.28, 250) },
            ],
            scal_class: ScalClass::Saturated,
            llc_class: LlcClass::High,
            high_apki: false,
        },
        // h2: low scalability (transactional, lock-bound), cluster 1.
        app("h2", DaCapo, 2 * G, 1.3, 0.55, 0.080, 8,
            mix(3 * MB, 64 * KB, 0.010, 0.022, 4.0, 1.5, 0.30, 260), ScalClass::Low, LlcClass::Saturated, false),
        app("jython", DaCapo, 2_400_000_000, 1.2, 0.15, 0.050, 8,
            mix(2 * MB, 64 * KB, 0.012, 0.030, 4.0, 2.0, 0.25, 230), ScalClass::Saturated, LlcClass::Saturated, false),
        app("luindex", DaCapo, 2_800_000_000, 1.2, 0.20, 0.060, 8,
            mix(2 * MB, 48 * KB, 0.012, 0.030, 4.0, 2.0, 0.28, 220), ScalClass::Saturated, LlcClass::Saturated, false),
        // lusearch: the only app the paper found *hurt* by prefetching
        // (Fig 3); its oversized hot set makes the DCU streamer's blind
        // next-line prefetches pollute the L1. Also an aggressor (§5.1).
        app("lusearch", DaCapo, 2_400_000_000, 1.2, 0.15, 0.110, 8,
            PatternMix {
                seq_jump_every: 2,
                ..mix(4_500 * KB, 192 * KB, 0.160, 0.100, 1.5, 1.8, 0.30, 280)
            }, ScalClass::Saturated, LlcClass::High, true),
        app("pmd", DaCapo, 2_600_000_000, 1.2, 0.06, 0.020, 8,
            PatternMix { warm_access_frac: 0.35, ..no_warm(mix(6_500 * KB, 48 * KB, 0.010, 0.022, 4.0, 1.8, 0.26, 250)) }, ScalClass::High, LlcClass::High, false),
        app("sunflow", DaCapo, 2 * G, 1.1, 0.04, 0.010, 8,
            mix(500 * KB, 32 * KB, 0.015, 0.012, 4.0, 2.0, 0.20, 230), ScalClass::High, LlcClass::Low, false),
        // tomcat: Fig 2's "saturated utility" representative.
        app("tomcat", DaCapo, 2 * G, 1.2, 0.05, 0.015, 8,
            mix(2_500 * KB, 48 * KB, 0.012, 0.035, 4.0, 2.0, 0.26, 240), ScalClass::High, LlcClass::Saturated, false),
        app("tradebeans", DaCapo, 2_200_000_000, 1.3, 0.60, 0.080, 8,
            no_warm(mix(7 * MB, 64 * KB, 0.010, 0.022, 4.0, 1.5, 0.30, 250)), ScalClass::Low, LlcClass::High, false),
        app("tradesoap", DaCapo, 2_200_000_000, 1.3, 0.60, 0.080, 8,
            mix(2_500 * KB, 64 * KB, 0.010, 0.030, 4.0, 1.5, 0.30, 240), ScalClass::Low, LlcClass::Saturated, false),
        app("xalan", DaCapo, 2 * G, 1.2, 0.05, 0.015, 8,
            mix(6 * MB, 48 * KB, 0.010, 0.030, 4.0, 1.8, 0.28, 250), ScalClass::High, LlcClass::High, false),
    ]
}

fn spec_cpu() -> Vec<AppSpec> {
    use Suite::Spec;
    let mut v = vec![
        app("436.cactusADM", Spec, 2_600_000_000, 1.0, 1.0, 0.0, 1,
            mix(500 * KB, 48 * KB, 0.030, 0.008, 5.0, 2.0, 0.30, 280), ScalClass::Low, LlcClass::Low, false),
        app("437.leslie3d", Spec, 2_600_000_000, 1.0, 1.0, 0.0, 1,
            no_warm(mix(32 * MB, 16 * KB, 0.240, 0.002, 5.0, 2.0, 0.30, 300)), ScalClass::Low, LlcClass::Low, true),
        app("450.soplex", Spec, 2_400_000_000, 1.0, 1.0, 0.0, 1,
            no_warm(mix(48 * MB, 16 * KB, 0.170, 0.008, 4.0, 1.8, 0.25, 300)), ScalClass::Low, LlcClass::Low, true),
        app("453.povray", Spec, 2_400_000_000, 0.85, 1.0, 0.0, 1,
            mix(400 * KB, 24 * KB, 0.012, 0.008, 4.0, 2.0, 0.18, 220), ScalClass::Low, LlcClass::Low, false),
        app("454.calculix", Spec, 2_600_000_000, 0.9, 1.0, 0.0, 1,
            mix(400 * KB, 32 * KB, 0.020, 0.006, 4.0, 2.0, 0.22, 260), ScalClass::Low, LlcClass::Low, false),
        // 459.GemsFDTD: cluster-2 representative — streaming, heavily
        // bandwidth- and prefetch-sensitive.
        app("459.GemsFDTD", Spec, 2_600_000_000, 1.0, 1.0, 0.0, 1,
            no_warm(mix(48 * MB, 16 * KB, 0.220, 0.006, 5.0, 2.0, 0.35, 320)), ScalClass::Low, LlcClass::Low, true),
        app("462.libquantum", Spec, 2_800_000_000, 0.9, 1.0, 0.0, 1,
            no_warm(mix(64 * MB, 16 * KB, 0.220, 0.004, 6.0, 2.0, 0.25, 340)), ScalClass::Low, LlcClass::Low, true),
        app("470.lbm", Spec, 2_600_000_000, 1.0, 1.0, 0.0, 1,
            no_warm(mix(48 * MB, 16 * KB, 0.240, 0.004, 6.0, 2.0, 0.40, 330)), ScalClass::Low, LlcClass::Low, true),
        // 471.omnetpp: Fig 2's "high utility" representative; pointer-
        // chasing over a footprint just beyond the LLC; a known aggressor.
        app("471.omnetpp", Spec, 2_400_000_000, 1.2, 1.0, 0.0, 1,
            mix(6_500 * KB, 48 * KB, 0.020, 0.180, 4.0, 1.5, 0.30, 330), ScalClass::Low, LlcClass::High, true),
        app("473.astar", Spec, 2_400_000_000, 1.1, 1.0, 0.0, 1,
            mix(2 * MB, 48 * KB, 0.010, 0.026, 4.0, 1.3, 0.22, 280), ScalClass::Low, LlcClass::Saturated, false),
        app("482.sphinx3", Spec, 2_600_000_000, 1.0, 1.0, 0.0, 1,
            mix(3 * MB, 32 * KB, 0.060, 0.040, 4.0, 2.0, 0.15, 290), ScalClass::Low, LlcClass::Saturated, true),
    ];
    // 429.mcf: cluster-1 representative. Fig 12 shows five transitions
    // between low-MPKI phases (≈1.5 MB hot working set, 3 ways suffice) and
    // high-MPKI phases (≈4 MB+, 9 ways needed).
    let mcf_low = PatternMix {
        warm_access_frac: 0.85,
        warm_region_frac: 0.40,
        ..mix(1_500 * KB, 48 * KB, 0.03, 0.16, 4.0, 1.5, 0.25, 330)
    };
    let mcf_high = PatternMix {
        warm_access_frac: 0.85,
        warm_region_frac: 0.40,
        ..mix(3_500 * KB, 48 * KB, 0.03, 0.26, 4.0, 1.5, 0.25, 330)
    };
    v.insert(0, AppSpec {
        name: "429.mcf",
        suite: Suite::Spec,
        total_instructions: 3 * G,
        base_cpi: 1.2,
        serial_fraction: 1.0,
        sync_overhead: 0.0,
        max_threads: 1,
        phases: vec![
            PhaseSpec { work_fraction: 0.18, mix: mcf_low },
            PhaseSpec { work_fraction: 0.16, mix: mcf_high },
            PhaseSpec { work_fraction: 0.18, mix: mcf_low },
            PhaseSpec { work_fraction: 0.16, mix: mcf_high },
            PhaseSpec { work_fraction: 0.16, mix: mcf_low },
            PhaseSpec { work_fraction: 0.16, mix: mcf_high },
        ],
        scal_class: ScalClass::Low,
        llc_class: LlcClass::Saturated,
        high_apki: true,
    });
    v
}

fn parallel() -> Vec<AppSpec> {
    use Suite::Parallel;
    vec![
        // Multithreaded browser layout-animation kernel; bandwidth-bound on
        // this platform (Fig 1c) and a strong aggressor (§5.1).
        AppSpec {
            name: "browser_animation",
            suite: Parallel,
            total_instructions: 2 * G,
            base_cpi: 1.0,
            serial_fraction: 0.10,
            sync_overhead: 0.130,
            max_threads: 8,
            phases: vec![
                PhaseSpec { work_fraction: 0.7, mix: mix(5 * MB, 32 * KB, 0.020, 0.110, 5.0, 2.0, 0.30, 300) },
                PhaseSpec { work_fraction: 0.3, mix: no_warm(mix(16 * MB, 32 * KB, 0.120, 0.010, 5.0, 2.0, 0.30, 300)) },
            ],
            scal_class: ScalClass::Saturated,
            llc_class: LlcClass::High,
            high_apki: true,
        },
        // Breadth-first graph search (graph500 CSR): random traffic over a
        // footprint far beyond the LLC.
        app("g500_csr", Parallel, 2_200_000_000, 1.1, 0.08, 0.060, 8,
            mix(16 * MB, 32 * KB, 0.020, 0.180, 4.0, 4.0, 0.15, 320), ScalClass::Saturated, LlcClass::High, true),
        // Parallel speech recognition; low scalability on this platform.
        AppSpec {
            name: "ParaDecoder",
            suite: Parallel,
            total_instructions: 3 * G,
            base_cpi: 1.1,
            serial_fraction: 0.65,
            sync_overhead: 0.080,
            max_threads: 8,
            phases: vec![
                PhaseSpec { work_fraction: 0.7, mix: PatternMix { warm_access_frac: 0.75, warm_region_frac: 0.35, ..mix(3 * MB, 16 * KB, 0.020, 0.130, 4.0, 2.0, 0.25, 300) } },
                PhaseSpec { work_fraction: 0.3, mix: no_warm(mix(24 * MB, 16 * KB, 0.130, 0.004, 4.0, 2.0, 0.25, 300)) },
            ],
            scal_class: ScalClass::Low,
            llc_class: LlcClass::Saturated,
            high_apki: true,
        },
        // Heat-transfer stencil over a regular grid; streaming sweeps whose
        // reuse fits around 4.5 MB.
        AppSpec {
            name: "stencilprobe",
            suite: Parallel,
            total_instructions: 2_200_000_000,
            base_cpi: 1.0,
            serial_fraction: 0.14,
            sync_overhead: 0.160,
            max_threads: 8,
            phases: vec![
                PhaseSpec { work_fraction: 0.6, mix: mix(4 * MB, 32 * KB, 0.150, 0.008, 5.0, 2.0, 0.30, 310) },
                PhaseSpec { work_fraction: 0.4, mix: no_warm(mix(24 * MB, 32 * KB, 0.150, 0.004, 5.0, 2.0, 0.30, 310)) },
            ],
            scal_class: ScalClass::Saturated,
            llc_class: LlcClass::Saturated,
            high_apki: true,
        },
    ]
}

fn micro() -> Vec<AppSpec> {
    // ccbench explores arrays of growing size to map the hierarchy.
    let ccbench_phases: Vec<PhaseSpec> = [128 * KB, 256 * KB, 512 * KB, 1 * MB, 1_500 * KB, 2 * MB, 3 * MB, 4 * MB]
        .iter()
        .map(|&ws| PhaseSpec {
            work_fraction: 0.125,
            mix: mix(ws, 16 * KB, 0.02, 0.20, 4.0, 1.0, 0.05, 300),
        })
        .collect();
    let ccbench = AppSpec {
        name: "ccbench",
        suite: Suite::Micro,
        total_instructions: 2_400_000_000,
        base_cpi: 1.0,
        serial_fraction: 1.0,
        sync_overhead: 0.0,
        max_threads: 1,
        phases: ccbench_phases,
        scal_class: ScalClass::Low,
        llc_class: LlcClass::Saturated,
        high_apki: true,
    };
    // stream_uncached: specially tagged loads/stores that stream through
    // memory without caching — the bandwidth hog of Figs 4 and 8.
    //
    // NOTE: Table 2 lists it under "Saturated" utility; by construction a
    // non-temporal stream never allocates in the LLC, so our model
    // measures as capacity-insensitive (Low). Recorded as a documented
    // deviation in EXPERIMENTS.md.
    let mut hog_mix = mix(64 * MB, 16 * KB, 0.95, 0.0, 16.0, 2.0, 0.40, 500);
    hog_mix.non_temporal = true;
    let hog = app("stream_uncached", Suite::Micro, 2_400_000_000, 0.8, 1.0, 0.0, 1,
        hog_mix, ScalClass::Low, LlcClass::Low, true);
    vec![ccbench, hog]
}

/// Every application model, in the paper's figure order
/// (PARSEC, DaCapo, SPEC, parallel, micro).
pub fn all() -> Vec<AppSpec> {
    let mut v = parsec();
    v.extend(dacapo());
    v.extend(spec_cpu());
    v.extend(parallel());
    v.extend(micro());
    v
}

/// Looks an application up by its paper name.
pub fn by_name(name: &str) -> Option<AppSpec> {
    all().into_iter().find(|a| a.name == name)
}

/// All applications of one suite.
pub fn by_suite(suite: Suite) -> Vec<AppSpec> {
    all().into_iter().filter(|a| a.suite == suite).collect()
}

/// The six cluster representatives the paper selects in Table 3 (bold =
/// closest to centroid) and uses for Figures 6, 7, 9, 10, 11 and 13.
pub const CLUSTER_REPRESENTATIVES: [&str; 6] =
    ["429.mcf", "459.GemsFDTD", "ferret", "fop", "dedup", "batik"];

/// The representatives as specs, in cluster order C1..C6.
pub fn cluster_representatives() -> Vec<AppSpec> {
    CLUSTER_REPRESENTATIVES
        .iter()
        .map(|n| by_name(n).expect("representative registered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_45_apps() {
        assert_eq!(all().len(), 45);
    }

    #[test]
    fn suite_counts_match_paper() {
        assert_eq!(by_suite(Suite::Parsec).len(), 13);
        assert_eq!(by_suite(Suite::DaCapo).len(), 14);
        assert_eq!(by_suite(Suite::Spec).len(), 12);
        assert_eq!(by_suite(Suite::Parallel).len(), 4);
        assert_eq!(by_suite(Suite::Micro).len(), 2);
    }

    #[test]
    fn all_specs_validate() {
        for spec in all() {
            spec.validate();
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 45);
    }

    #[test]
    fn spec_and_micro_are_single_threaded() {
        for spec in by_suite(Suite::Spec).iter().chain(by_suite(Suite::Micro).iter()) {
            assert_eq!(spec.max_threads, 1, "{} should be single-threaded", spec.name);
            assert_eq!(spec.serial_fraction, 1.0, "{}", spec.name);
        }
    }

    #[test]
    fn representatives_exist_and_span_clusters() {
        let reps = cluster_representatives();
        assert_eq!(reps.len(), 6);
        assert_eq!(reps[0].name, "429.mcf");
        assert_eq!(reps[5].name, "batik");
    }

    #[test]
    fn table1_class_counts() {
        // Table 1: PARSEC has no low-scalability apps and 10 high; DaCapo
        // has 3 low; all SPEC are low.
        let count = |suite, class| {
            by_suite(suite).iter().filter(|a| a.scal_class == class).count()
        };
        assert_eq!(count(Suite::Parsec, ScalClass::Low), 0);
        assert_eq!(count(Suite::Parsec, ScalClass::High), 10);
        assert_eq!(count(Suite::Parsec, ScalClass::Saturated), 3);
        assert_eq!(count(Suite::DaCapo, ScalClass::Low), 3);
        assert_eq!(count(Suite::Spec, ScalClass::Low), 12);
        assert_eq!(count(Suite::Micro, ScalClass::Low), 2);
    }

    #[test]
    fn table2_class_counts() {
        // Table 2: PARSEC — 10 low / 2 saturated / 1 high; DaCapo — 2 low /
        // 6 saturated / 6 high; SPEC — 8 low / 3 saturated / 1 high.
        let count = |suite, class| {
            by_suite(suite).iter().filter(|a| a.llc_class == class).count()
        };
        assert_eq!(count(Suite::Parsec, LlcClass::Low), 10);
        assert_eq!(count(Suite::Parsec, LlcClass::Saturated), 2);
        assert_eq!(count(Suite::Parsec, LlcClass::High), 1);
        assert_eq!(count(Suite::DaCapo, LlcClass::Low), 2);
        assert_eq!(count(Suite::DaCapo, LlcClass::Saturated), 6);
        assert_eq!(count(Suite::DaCapo, LlcClass::High), 6);
        assert_eq!(count(Suite::Spec, LlcClass::Low), 8);
        assert_eq!(count(Suite::Spec, LlcClass::Saturated), 3);
        assert_eq!(count(Suite::Spec, LlcClass::High), 1);
    }

    #[test]
    fn mcf_has_phase_transitions() {
        let mcf = by_name("429.mcf").unwrap();
        assert_eq!(mcf.phases.len(), 6, "Fig 12 shows 5 transitions = 6 phases");
        // Alternating small/large working sets.
        let ws: Vec<u64> = mcf.phases.iter().map(|p| p.mix.ws_bytes).collect();
        assert!(ws[0] < ws[1] && ws[2] < ws[3] && ws[4] < ws[5]);
    }

    #[test]
    fn hog_is_non_temporal() {
        let hog = by_name("stream_uncached").unwrap();
        assert!(hog.phases[0].mix.non_temporal);
    }
}
