//! The access-stream generator behind every application model.
//!
//! [`AppThreadStream`] turns one thread's share of an [`AppSpec`] into the
//! event stream the machine executes. Address-space layout (line offsets
//! within the app's asid):
//!
//! * hot set at offset 0 — intense reuse, expected to live in L1/L2;
//! * main working set at [`WS_BASE`] — the sequential component walks this
//!   thread's contiguous slice of it (data-parallel decomposition), the
//!   random component spans all of it (shared structures).
//!
//! Streams are deterministic: all randomness comes from a seeded
//! [`SmallRng`], so an experiment re-run reproduces byte-identical traffic.

use crate::spec::{AppSpec, PatternMix, Scale};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use waypart_sim::addr::{mix64, LineAddr};
use waypart_sim::stream::{Access, AccessStream, StreamEvent};

/// Line offset where the main working set begins (hot set sits at 0).
const WS_BASE: u64 = 1 << 32;

/// Derived, capacity-scaled view of one phase's pattern.
#[derive(Debug, Clone, Copy)]
struct ScaledMix {
    ws_lines: u64,
    hot_lines: u64,
    warm_lines: u64,
    seq_frac: f64,
    rand_frac: f64,
    warm_access_frac: f64,
    seq_jump_every: u32,
    seq_mlp: f32,
    rand_mlp: f32,
    write_frac: f64,
    mean_gap: u32,
    non_temporal: bool,
    /// First instruction (within this thread's budget) of the phase.
    start_instr: u64,
}

fn scale_mix(mix: &PatternMix, scale: Scale, start_instr: u64) -> ScaledMix {
    let line = 64u64;
    let ws_lines = (mix.ws_bytes / scale.capacity_div as u64 / line).max(1);
    ScaledMix {
        ws_lines,
        hot_lines: (mix.hot_bytes / scale.capacity_div as u64 / line).max(1),
        warm_lines: ((ws_lines as f64 * mix.warm_region_frac) as u64).max(1),
        seq_frac: mix.seq_frac,
        rand_frac: mix.rand_frac,
        warm_access_frac: mix.warm_access_frac,
        seq_jump_every: mix.seq_jump_every,
        seq_mlp: mix.seq_mlp,
        rand_mlp: mix.rand_mlp,
        write_frac: mix.write_frac,
        mean_gap: (1000 / mix.mem_per_ki).saturating_sub(1),
        non_temporal: mix.non_temporal,
        start_instr,
    }
}

/// One hardware thread's deterministic access stream for an application.
pub struct AppThreadStream {
    spec: AppSpec,
    rng: SmallRng,
    asid: u16,
    thread: usize,
    threads: usize,
    /// Instruction budget for this thread (0 = no work, immediately done).
    budget: u64,
    executed: u64,
    /// Scaled phase table with precomputed start offsets.
    phases: Vec<ScaledMix>,
    phase_idx: usize,
    /// Sequential-walk cursor within this thread's slice.
    seq_cursor: u64,
    /// Steps taken in the current sequential burst (for `seq_jump_every`).
    seq_burst: u32,
    endless: bool,
    /// Completed passes over the budget (meaningful for endless streams).
    laps: u64,
    base_cpi: f64,
}

impl AppThreadStream {
    /// Builds the stream; see [`AppSpec::thread_stream`].
    pub(crate) fn new(
        spec: AppSpec,
        threads: usize,
        thread: usize,
        asid: u16,
        scale: Scale,
        seed: u64,
        endless: bool,
    ) -> Self {
        spec.validate();
        assert!(thread < threads, "thread {thread} out of {threads}");
        let budget = spec.thread_budget(threads, thread, scale);
        let mut phases = Vec::with_capacity(spec.phases.len());
        let mut acc = 0.0f64;
        for p in &spec.phases {
            phases.push(scale_mix(&p.mix, scale, (acc * budget as f64) as u64));
            acc += p.work_fraction;
        }
        let mut hasher_seed = seed ^ mix64(thread as u64 + 1);
        for b in spec.name.bytes() {
            hasher_seed = mix64(hasher_seed ^ u64::from(b));
        }
        let base_cpi = spec.base_cpi;
        AppThreadStream {
            spec,
            rng: SmallRng::seed_from_u64(hasher_seed),
            asid,
            thread,
            threads,
            budget,
            executed: 0,
            phases,
            phase_idx: 0,
            seq_cursor: 0,
            seq_burst: 0,
            endless,
            laps: 0,
            base_cpi,
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// Completed passes over the work budget (for endless background
    /// streams, a throughput measure).
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// Fraction of this thread's work completed in the current lap.
    pub fn progress(&self) -> f64 {
        if self.budget == 0 {
            1.0
        } else {
            self.executed as f64 / self.budget as f64
        }
    }

    #[inline]
    fn current_mix(&mut self) -> ScaledMix {
        // Advance the phase pointer past any boundary we've crossed.
        while self.phase_idx + 1 < self.phases.len()
            && self.executed >= self.phases[self.phase_idx + 1].start_instr
        {
            self.phase_idx += 1;
        }
        self.phases[self.phase_idx]
    }

    #[inline]
    fn gen_access(&mut self, mix: &ScaledMix) -> Access {
        let r: f64 = self.rng.gen();
        let effective = self.threads.min(self.spec.max_threads).max(1) as u64;
        let write = self.rng.gen::<f64>() < mix.write_frac;
        if r < mix.seq_frac {
            // Sequential walk over this thread's slice of the working set.
            // With `seq_jump_every`, the walk is a series of short bursts
            // at random positions (prefetcher bait, see PatternMix docs).
            let slice = (mix.ws_lines / effective).max(1);
            let base = slice * self.thread as u64;
            if mix.seq_jump_every > 0 {
                self.seq_burst += 1;
                if self.seq_burst >= mix.seq_jump_every {
                    self.seq_burst = 0;
                    self.seq_cursor = self.rng.gen_range(0..slice);
                }
            }
            let line = WS_BASE + base + (self.seq_cursor % slice);
            self.seq_cursor = self.seq_cursor.wrapping_add(1);
            Access {
                line: LineAddr::in_space(self.asid, line),
                write,
                pc: 100 + self.phase_idx as u32,
                non_temporal: mix.non_temporal,
                mlp: mix.seq_mlp,
            }
        } else if r < mix.seq_frac + mix.rand_frac {
            // Random access over the working set, with skewed reuse: most
            // references target the warm region. Real pointer-chasing
            // codes (mcf, omnetpp) keep a hot core of their footprint,
            // which is why the paper sees smooth capacity curves instead
            // of sharp working-set knees (§3.2) and only ~2× MPKI swings
            // when capacity is cut (Fig 12).
            let warm = self.rng.gen::<f64>() < mix.warm_access_frac;
            let span = if warm { mix.warm_lines } else { mix.ws_lines };
            let line = WS_BASE + self.rng.gen_range(0..span);
            Access {
                line: LineAddr::in_space(self.asid, line),
                write,
                pc: 2000 + (self.rng.gen::<u32>() & 0x3FF),
                non_temporal: mix.non_temporal,
                mlp: mix.rand_mlp,
            }
        } else {
            // Hot-set access: L1/L2 resident reuse.
            let line = self.rng.gen_range(0..mix.hot_lines);
            Access {
                line: LineAddr::in_space(self.asid, line),
                write,
                pc: 5000 + (self.rng.gen::<u32>() & 0x1F),
                non_temporal: false,
                mlp: 2.0,
            }
        }
    }
}

impl AccessStream for AppThreadStream {
    fn next_event(&mut self) -> StreamEvent {
        if self.executed >= self.budget {
            if self.endless && self.budget > 0 {
                self.laps += 1;
                self.executed = 0;
                self.phase_idx = 0;
            } else {
                return StreamEvent::Done;
            }
        }
        let mix = self.current_mix();
        let gap = if mix.mean_gap == 0 { 0 } else { self.rng.gen_range(0..=2 * mix.mean_gap) };
        let access = self.gen_access(&mix);
        self.executed += u64::from(gap) + 1;
        StreamEvent::Access { instr_gap: gap, access }
    }

    /// Native bulk generation: one phase lookup per *burst* instead of per
    /// event. The RNG draw order (gap, then the access's draws) and the
    /// phase-boundary checks are identical to [`Self::next_event`], so the
    /// emitted event sequence is byte-identical — the golden fingerprints
    /// pin this.
    fn fill(&mut self, buf: &mut [StreamEvent]) -> usize {
        let mut i = 0;
        'refill: while i < buf.len() {
            if self.executed >= self.budget {
                if self.endless && self.budget > 0 {
                    self.laps += 1;
                    self.executed = 0;
                    self.phase_idx = 0;
                } else {
                    break;
                }
            }
            let mix = self.current_mix();
            // The burst may run until the next phase boundary (where
            // `current_mix` would advance) or the end of the budget
            // (where the lap/done check re-runs), whichever is first.
            let burst_end = self
                .phases
                .get(self.phase_idx + 1)
                .map_or(u64::MAX, |p| p.start_instr)
                .min(self.budget);
            while i < buf.len() {
                let gap =
                    if mix.mean_gap == 0 { 0 } else { self.rng.gen_range(0..=2 * mix.mean_gap) };
                let access = self.gen_access(&mix);
                self.executed += u64::from(gap) + 1;
                buf[i] = StreamEvent::Access { instr_gap: gap, access };
                i += 1;
                if self.executed >= burst_end {
                    continue 'refill;
                }
            }
        }
        i
    }

    /// Fast-forward for the sampled-fidelity mode: advances the
    /// instruction position (including lap wraps) in O(phases) without
    /// drawing from the RNG. The RNG and sequential cursor deliberately
    /// stay put — after a skip the stream resumes generating from its
    /// pre-skip pattern state, which is the documented functional-warming
    /// approximation (DESIGN.md §5e); determinism is preserved because the
    /// skip itself is a pure function of `n` and the current position.
    fn skip_instructions(&mut self, n: u64) -> u64 {
        let mut skipped = 0u64;
        while skipped < n {
            if self.executed >= self.budget {
                if self.endless && self.budget > 0 {
                    self.laps += 1;
                    self.executed = 0;
                    self.phase_idx = 0;
                } else {
                    break;
                }
            }
            let step = (n - skipped).min(self.budget - self.executed);
            self.executed += step;
            skipped += step;
        }
        skipped
    }

    fn base_cpi(&self) -> f64 {
        self.base_cpi
    }

    fn instructions_issued(&self) -> u64 {
        self.laps * self.budget + self.executed
    }
}

impl std::fmt::Debug for AppThreadStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppThreadStream")
            .field("app", &self.spec.name)
            .field("thread", &self.thread)
            .field("progress", &self.progress())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LlcClass, PhaseSpec, ScalClass, Suite};

    fn spec_with_phases(phases: Vec<PhaseSpec>) -> AppSpec {
        AppSpec {
            name: "t",
            suite: Suite::Micro,
            total_instructions: 1_000_000,
            base_cpi: 1.0,
            serial_fraction: 0.0,
            sync_overhead: 0.0,
            max_threads: 8,
            phases,
            scal_class: ScalClass::High,
            llc_class: LlcClass::Low,
            high_apki: false,
        }
    }

    fn one_phase() -> AppSpec {
        spec_with_phases(vec![PhaseSpec { work_fraction: 1.0, mix: PatternMix::compute(1 << 20, 500) }])
    }

    const S1: Scale = Scale { capacity_div: 1, work_div: 1 };

    #[test]
    fn stream_is_deterministic() {
        let collect = || {
            let mut s = one_phase().thread_stream(2, 0, 5, S1, 99);
            let mut v = Vec::new();
            for _ in 0..200 {
                if let StreamEvent::Access { access, instr_gap } = s.next_event() {
                    v.push((access.line, access.write, instr_gap));
                }
            }
            v
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_threads_differ() {
        let mut a = one_phase().thread_stream(2, 0, 5, S1, 99);
        let mut b = one_phase().thread_stream(2, 1, 5, S1, 99);
        let ea = a.next_event();
        let eb = b.next_event();
        assert_ne!(format!("{ea:?}"), format!("{eb:?}"));
    }

    #[test]
    fn stream_finishes_at_budget() {
        let mut s = one_phase().thread_stream(1, 0, 5, Scale { capacity_div: 1, work_div: 100 }, 1);
        let mut instrs = 0u64;
        loop {
            match s.next_event() {
                StreamEvent::Access { instr_gap, .. } => instrs += u64::from(instr_gap) + 1,
                StreamEvent::Compute { instrs: i } => instrs += u64::from(i),
                StreamEvent::Done => break,
            }
        }
        assert!(instrs >= 10_000, "ran {instrs}");
        assert_eq!(s.next_event(), StreamEvent::Done);
    }

    #[test]
    fn endless_stream_laps() {
        let mut s = one_phase().endless_stream(1, 0, 5, Scale { capacity_div: 1, work_div: 1000 }, 1);
        for _ in 0..10_000 {
            assert_ne!(s.next_event(), StreamEvent::Done);
        }
        assert!(s.laps() >= 1, "endless stream never wrapped");
    }

    #[test]
    fn phase_switch_changes_pattern() {
        // Phase 1 has a tiny working set, phase 2 a big one; observed
        // address ranges must differ.
        let small = PatternMix { seq_frac: 0.0, rand_frac: 1.0, ..PatternMix::compute(64 * 64, 1000) };
        let big = PatternMix { seq_frac: 0.0, rand_frac: 1.0, ..PatternMix::compute(1 << 26, 1000) };
        let spec = spec_with_phases(vec![
            PhaseSpec { work_fraction: 0.5, mix: small },
            PhaseSpec { work_fraction: 0.5, mix: big },
        ]);
        let mut s = spec.thread_stream(1, 0, 5, S1, 7);
        let mut first_half_max = 0u64;
        let mut second_half_max = 0u64;
        loop {
            let prog = s.progress();
            match s.next_event() {
                StreamEvent::Access { access, .. } => {
                    let off = access.line.offset() - WS_BASE;
                    if prog < 0.45 {
                        first_half_max = first_half_max.max(off);
                    } else if prog > 0.55 {
                        second_half_max = second_half_max.max(off);
                    }
                }
                StreamEvent::Done => break,
                _ => {}
            }
        }
        assert!(first_half_max < 64, "phase 1 strayed to {first_half_max}");
        assert!(second_half_max > 10_000, "phase 2 stayed at {second_half_max}");
    }

    #[test]
    fn sequential_slices_are_disjoint_per_thread() {
        let mix = PatternMix { seq_frac: 1.0, rand_frac: 0.0, ..PatternMix::compute(1 << 20, 1000) };
        let spec = spec_with_phases(vec![PhaseSpec { work_fraction: 1.0, mix }]);
        let slice_lines = (1u64 << 20) / 64 / 4;
        for t in 0..4 {
            let mut s = spec.thread_stream(4, t, 5, S1, 7);
            for _ in 0..100 {
                if let StreamEvent::Access { access, .. } = s.next_event() {
                    let off = access.line.offset() - WS_BASE;
                    assert!(
                        off >= slice_lines * t as u64 && off < slice_lines * (t as u64 + 1),
                        "thread {t} accessed line {off} outside its slice"
                    );
                }
            }
        }
    }

    #[test]
    fn native_fill_matches_next_event_across_phases_and_laps() {
        let small = PatternMix { seq_frac: 0.2, rand_frac: 0.6, ..PatternMix::compute(64 * 64, 500) };
        let big = PatternMix { seq_frac: 0.5, rand_frac: 0.4, ..PatternMix::compute(1 << 22, 500) };
        let spec = spec_with_phases(vec![
            PhaseSpec { work_fraction: 0.3, mix: small },
            PhaseSpec { work_fraction: 0.7, mix: big },
        ]);
        let scale = Scale { capacity_div: 1, work_div: 200 };
        for endless in [false, true] {
            let build = || {
                if endless {
                    spec.endless_stream(2, 1, 5, scale, 99)
                } else {
                    spec.thread_stream(2, 1, 5, scale, 99)
                }
            };
            let mut scalar = build();
            let mut batched = build();
            // Odd buffer length so refills straddle phase/lap boundaries.
            let mut buf = [StreamEvent::Done; 97];
            let mut total = 0usize;
            loop {
                let n = batched.fill(&mut buf);
                for (k, ev) in buf[..n].iter().enumerate() {
                    assert_eq!(*ev, scalar.next_event(), "event {} diverged", total + k);
                }
                total += n;
                if n < buf.len() {
                    assert!(!endless, "endless stream returned a short fill");
                    assert_eq!(scalar.next_event(), StreamEvent::Done);
                    assert_eq!(batched.fill(&mut buf), 0);
                    break;
                }
                if endless && batched.laps() >= 3 {
                    break;
                }
            }
            assert!(total > 500, "only {total} events compared");
        }
    }

    #[test]
    fn skip_instructions_is_deterministic_and_bounded() {
        let spec = one_phase();
        let scale = Scale { capacity_div: 1, work_div: 100 };
        let run = |skips: &[u64]| {
            let mut s = spec.thread_stream(1, 0, 5, scale, 7);
            let skipped: Vec<u64> = skips.iter().map(|&n| s.skip_instructions(n)).collect();
            let tail: Vec<String> =
                (0..4).map(|_| format!("{:?}", s.next_event())).collect();
            (skipped, s.instructions_issued(), tail)
        };
        let a = run(&[1_000, 3_000]);
        let b = run(&[1_000, 3_000]);
        assert_eq!(a, b, "skip must be deterministic");
        assert_eq!(a.0, vec![1_000, 3_000], "mid-stream skips are exact");
        // Skipping past the budget reports the shortfall.
        let mut s = spec.thread_stream(1, 0, 5, scale, 7);
        let total = s.skip_instructions(u64::MAX / 2);
        assert!(total >= 10_000, "budget-sized skip too small: {total}");
        assert_eq!(s.next_event(), StreamEvent::Done);
        // Endless streams lap instead of stopping.
        let mut e = spec.endless_stream(1, 0, 5, scale, 7);
        let want = 5 * total + 17;
        assert_eq!(e.skip_instructions(want), want);
        assert!(e.laps() >= 4, "laps {} after skipping 5 budgets", e.laps());
    }

    #[test]
    fn zero_budget_thread_is_immediately_done() {
        let mut spec = one_phase();
        spec.max_threads = 1;
        let mut s = spec.thread_stream(4, 2, 5, S1, 7);
        assert_eq!(s.next_event(), StreamEvent::Done);
    }

    #[test]
    fn non_temporal_mix_produces_bypass_accesses() {
        let mix = PatternMix {
            seq_frac: 0.9,
            rand_frac: 0.0,
            non_temporal: true,
            ..PatternMix::compute(1 << 26, 1000)
        };
        let spec = spec_with_phases(vec![PhaseSpec { work_fraction: 1.0, mix }]);
        let mut s = spec.thread_stream(1, 0, 5, S1, 7);
        let mut nt = 0;
        for _ in 0..100 {
            if let StreamEvent::Access { access, .. } = s.next_event() {
                if access.non_temporal {
                    nt += 1;
                }
            }
        }
        assert!(nt > 50, "only {nt}/100 non-temporal");
    }
}
