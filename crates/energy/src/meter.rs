//! Quantum-by-quantum energy integration.

use crate::model::{EnergyBreakdown, PowerModel};
use serde::{Deserialize, Serialize};
use waypart_sim::machine::QuantumActivity;

/// Integrates [`QuantumActivity`] reports into an [`EnergyBreakdown`] —
/// the analog of reading the RAPL counters and the wall multimeter over an
/// application's execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyMeter {
    model: PowerModel,
    freq_ghz: f64,
    acc: EnergyBreakdown,
}

impl EnergyMeter {
    /// A meter for a machine running at `freq_ghz`.
    ///
    /// # Panics
    /// Panics if the model is invalid or the frequency non-positive.
    pub fn new(model: PowerModel, freq_ghz: f64) -> Self {
        model.validate();
        assert!(freq_ghz > 0.0, "frequency must be positive");
        EnergyMeter { model, freq_ghz, acc: EnergyBreakdown::default() }
    }

    /// Accounts one quantum of machine activity.
    pub fn on_quantum(&mut self, act: &QuantumActivity) {
        let dt = act.cycles as f64 / (self.freq_ghz * 1e9);
        let smt_cores = act.active_threads.saturating_sub(act.active_cores);
        let socket_power = self.model.socket_idle_w
            + act.active_cores as f64 * self.model.core_active_w
            + smt_cores as f64 * self.model.smt_extra_w;
        let socket = socket_power * dt + act.llc_accesses as f64 * self.model.llc_access_j;
        let dram = act.dram_lines as f64 * self.model.dram_line_j;
        let wall = (socket + dram + self.model.system_base_w * dt) / self.model.psu_efficiency;
        self.acc.socket_j += socket;
        self.acc.dram_j += dram;
        self.acc.wall_j += wall;
        self.acc.seconds += dt;
    }

    /// The accumulated energy so far.
    pub fn total(&self) -> EnergyBreakdown {
        self.acc
    }

    /// The power model in use.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Resets the accumulator (e.g. after warmup).
    pub fn reset(&mut self) {
        self.acc = EnergyBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(cycles: u64, threads: usize, cores: usize, llc: u64, dram: u64) -> QuantumActivity {
        QuantumActivity {
            cycles,
            active_threads: threads,
            active_cores: cores,
            instructions: 0,
            llc_accesses: llc,
            dram_lines: dram,
            any_active: threads > 0,
        }
    }

    fn meter() -> EnergyMeter {
        EnergyMeter::new(PowerModel::sandy_bridge(), 1.0) // 1 GHz: 1e9 cycles = 1 s
    }

    #[test]
    fn idle_quantum_costs_static_power() {
        let mut m = meter();
        m.on_quantum(&act(1_000_000_000, 0, 0, 0, 0));
        let e = m.total();
        assert!((e.socket_j - 14.0).abs() < 1e-9);
        assert!((e.seconds - 1.0).abs() < 1e-12);
        // Wall adds the system base over PSU efficiency.
        assert!((e.wall_j - (14.0 + 28.0) / 0.85).abs() < 1e-6);
    }

    #[test]
    fn active_cores_add_power() {
        let mut m = meter();
        m.on_quantum(&act(1_000_000_000, 2, 2, 0, 0));
        assert!((m.total().socket_j - (14.0 + 2.0 * 5.5)).abs() < 1e-9);
    }

    #[test]
    fn second_hyperthread_costs_less_than_a_core() {
        let mut both = meter();
        both.on_quantum(&act(1_000_000_000, 2, 1, 0, 0)); // 2 HTs, 1 core
        let mut two_cores = meter();
        two_cores.on_quantum(&act(1_000_000_000, 2, 2, 0, 0));
        assert!(both.total().socket_j < two_cores.total().socket_j);
    }

    #[test]
    fn dram_counts_toward_wall_not_socket() {
        let mut m = meter();
        m.on_quantum(&act(1_000, 1, 1, 0, 1_000_000));
        let e = m.total();
        assert!(e.dram_j > 0.0);
        assert!(e.wall_j > e.socket_j);
        // Socket term contains no dram_line_j contribution.
        let socket_only = {
            let mut m2 = meter();
            m2.on_quantum(&act(1_000, 1, 1, 0, 0));
            m2.total().socket_j
        };
        assert!((e.socket_j - socket_only).abs() < 1e-12);
    }

    #[test]
    fn race_to_halt_is_energy_optimal() {
        // The same work done in half the time on twice the cores costs less
        // socket energy because static power stops sooner — the paper's
        // central §4 observation.
        let mut slow = meter();
        for _ in 0..10 {
            slow.on_quantum(&act(1_000_000_000, 1, 1, 1000, 1000));
        }
        let mut fast = meter();
        for _ in 0..5 {
            fast.on_quantum(&act(1_000_000_000, 2, 2, 1000, 1000));
        }
        assert!(
            fast.total().socket_j < slow.total().socket_j,
            "race-to-halt violated: {} >= {}",
            fast.total().socket_j,
            slow.total().socket_j
        );
    }

    #[test]
    fn reset_clears_accumulator() {
        let mut m = meter();
        m.on_quantum(&act(1_000_000, 1, 1, 10, 10));
        m.reset();
        assert_eq!(m.total(), EnergyBreakdown::default());
    }
}
