//! # waypart-energy
//!
//! Energy accounting for the simulated socket, standing in for the RAPL
//! counters and the FitPC wall-socket multimeter of §2.2.
//!
//! The model follows the paper's observations (§4):
//!
//! * socket power is dominated by static (uncore + LLC leakage) and
//!   per-core active power — **cache capacity allocation does not change
//!   socket power** ("current hardware cannot turn off power to a portion
//!   of the cache"); capacity choices affect energy only through runtime
//!   and DRAM traffic;
//! * LLC misses cost energy twice: the DRAM access itself and the longer
//!   runtime it causes — which is why race-to-halt emerges as the optimal
//!   strategy;
//! * wall power adds DRAM, board overhead, and PSU inefficiency on top of
//!   the socket.

pub mod meter;
pub mod model;

pub use meter::EnergyMeter;
pub use model::{EnergyBreakdown, PowerModel};
