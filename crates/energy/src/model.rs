//! Power/energy parameters of the modeled platform.

use serde::{Deserialize, Serialize};

/// Static and dynamic power coefficients.
///
/// Values are plausible for a 32 nm Sandy Bridge client part; the paper's
/// conclusions rest on the *ratios* (static-dominated socket, expensive
/// DRAM accesses), which the defaults preserve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Socket power with all cores idle (uncore, ring, LLC leakage), watts.
    pub socket_idle_w: f64,
    /// Additional power per core with at least one active hyperthread.
    pub core_active_w: f64,
    /// Additional power when a core's second hyperthread is also active.
    pub smt_extra_w: f64,
    /// Energy per LLC access, joules (≈ 1.2 nJ).
    pub llc_access_j: f64,
    /// Energy per DRAM line transfer, joules (≈ 25 nJ) — off-socket, so it
    /// counts toward wall energy only.
    pub dram_line_j: f64,
    /// Rest-of-system power (board, disk, fans), watts.
    pub system_base_w: f64,
    /// Power-supply efficiency (wall = (socket + dram + system) / eff).
    pub psu_efficiency: f64,
}

impl PowerModel {
    /// The default platform model.
    pub fn sandy_bridge() -> Self {
        PowerModel {
            socket_idle_w: 14.0,
            core_active_w: 5.5,
            smt_extra_w: 1.2,
            llc_access_j: 1.2e-9,
            dram_line_j: 25e-9,
            system_base_w: 28.0,
            psu_efficiency: 0.85,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on non-positive powers or an efficiency outside (0, 1].
    pub fn validate(&self) {
        assert!(self.socket_idle_w > 0.0 && self.core_active_w > 0.0);
        assert!(self.smt_extra_w >= 0.0);
        assert!(self.llc_access_j >= 0.0 && self.dram_line_j >= 0.0);
        assert!(self.system_base_w >= 0.0);
        assert!(self.psu_efficiency > 0.0 && self.psu_efficiency <= 1.0);
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::sandy_bridge()
    }
}

/// Accumulated energy, split the way the paper reports it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// RAPL-analog socket energy (cores + private caches + LLC), joules.
    pub socket_j: f64,
    /// DRAM energy, joules.
    pub dram_j: f64,
    /// Wall-socket energy (socket + DRAM + system, over PSU efficiency).
    pub wall_j: f64,
    /// Seconds integrated.
    pub seconds: f64,
}

impl EnergyBreakdown {
    /// Element-wise sum.
    pub fn merge(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            socket_j: self.socket_j + other.socket_j,
            dram_j: self.dram_j + other.dram_j,
            wall_j: self.wall_j + other.wall_j,
            seconds: self.seconds + other.seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        PowerModel::sandy_bridge().validate();
    }

    #[test]
    #[should_panic]
    fn bad_efficiency_rejected() {
        let mut m = PowerModel::sandy_bridge();
        m.psu_efficiency = 1.5;
        m.validate();
    }

    #[test]
    fn merge_sums_fields() {
        let a = EnergyBreakdown { socket_j: 1.0, dram_j: 2.0, wall_j: 5.0, seconds: 0.5 };
        let m = a.merge(&a);
        assert_eq!(m.socket_j, 2.0);
        assert_eq!(m.wall_j, 10.0);
        assert_eq!(m.seconds, 1.0);
    }
}
