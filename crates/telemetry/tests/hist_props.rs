//! Property tests for the log-bucketed histogram (`telemetry::hist`).
//!
//! Pins the invariants the dashboard and sentry lean on: merge is exact
//! bucket-wise addition (count/sum/min/max behave like recording both
//! streams into one histogram), quantiles are monotone in `q`, and every
//! quantile estimate over-approximates the true order statistic by at
//! most one bucket width (relative error ≤ 1/SUBBUCKETS plus the unit
//! rounding of integer bounds).

use proptest::prelude::*;
use waypart_telemetry::hist::{bucket_index, bucket_lower, bucket_upper, Histogram, SUBBUCKETS};

fn build(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// The true `q`-quantile of `samples` under the same ceil-rank convention
/// the histogram uses.
fn true_quantile(samples: &mut Vec<u64>, q: f64) -> u64 {
    samples.sort_unstable();
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

// Mix magnitudes: identity range, mid-range, and huge values, so buckets
// from several octaves participate.
fn sample_strategy() -> impl Strategy<Value = u64> {
    (0u8..3, any::<u64>()).prop_map(|(tier, raw)| match tier {
        0 => raw % 64,
        1 => raw % 100_000,
        _ => raw % (u64::MAX / 2),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_bounds_bracket_every_value(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(bucket_lower(idx) <= v);
        prop_assert!(v <= bucket_upper(idx));
    }

    /// merge(a, b) is indistinguishable from recording both sample
    /// streams into one histogram — the mergeability contract.
    #[test]
    fn merge_equals_union(
        a in proptest::collection::vec(sample_strategy(), 0..200),
        b in proptest::collection::vec(sample_strategy(), 0..200),
    ) {
        let mut merged = build(&a);
        merged.merge(&build(&b));
        let union: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, build(&union));
    }

    #[test]
    fn merge_preserves_count_sum_min_max(
        a in proptest::collection::vec(sample_strategy(), 1..200),
        b in proptest::collection::vec(sample_strategy(), 1..200),
    ) {
        let mut merged = build(&a);
        merged.merge(&build(&b));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        let sum: u128 = a.iter().chain(&b).map(|&v| u128::from(v)).sum();
        prop_assert_eq!(merged.sum(), sum);
        prop_assert_eq!(merged.min(), *a.iter().chain(&b).min().unwrap());
        prop_assert_eq!(merged.max(), *a.iter().chain(&b).max().unwrap());
    }

    /// p50 ≤ p90 ≤ p99 ≤ max — quantiles never invert.
    #[test]
    fn quantiles_are_monotone(samples in proptest::collection::vec(sample_strategy(), 1..300)) {
        let h = build(&samples);
        prop_assert!(h.p50() <= h.p90());
        prop_assert!(h.p90() <= h.p99());
        prop_assert!(h.p99() <= h.max());
        prop_assert!(h.min() <= h.p50());
    }

    /// Every estimate brackets the true order statistic from above with
    /// bounded relative error: true_q ≤ est ≤ true_q + true_q/SUBBUCKETS + 1.
    #[test]
    fn quantile_error_is_bounded(
        mut samples in proptest::collection::vec(sample_strategy(), 1..300),
        q in 0.01f64..1.0,
    ) {
        let h = build(&samples);
        let est = h.quantile(q);
        let truth = true_quantile(&mut samples, q);
        prop_assert!(est >= truth, "est {est} under-approximates true {truth}");
        let bound = truth + truth / SUBBUCKETS + 1;
        prop_assert!(est <= bound, "est {est} exceeds bound {bound} (true {truth})");
    }
}
