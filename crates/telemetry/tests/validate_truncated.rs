//! Regression tests: a JSONL trace truncated mid-record (the classic
//! killed-run artifact) must fail validation with the offending line
//! number — via a clean nonzero exit from `validate_trace`, never a
//! panic. Covers event lines and the aggregate series/hist records.

use std::process::Command;

use waypart_telemetry::hist::Histogram;
use waypart_telemetry::schema::validate_jsonl;
use waypart_telemetry::series::TimeSeries;
use waypart_telemetry::{Event, Stamp};

/// A healthy mixed trace: two events, one series record, one hist record.
fn mixed_trace() -> String {
    let mut series = TimeSeries::new(8);
    series.push(Stamp::Cycles(100), 1.0);
    series.push(Stamp::Cycles(200), 2.0);
    let mut hist = Histogram::new();
    hist.record(40);
    hist.record(90_000);
    [
        Event::begin("runner.run", Stamp::Cycles(0)).field("fg", "429.mcf").to_jsonl(),
        Event::counter("perfmon.window", Stamp::Cycles(100)).field("mpki", 12.5).to_jsonl(),
        series.to_json_record("perfmon.window.mpki", 3),
        hist.to_json_record("sim.latency.llc"),
    ]
    .join("\n")
        + "\n"
}

#[test]
fn full_trace_validates() {
    assert_eq!(validate_jsonl(&mixed_trace()), Ok(4));
}

#[test]
fn truncation_reports_line_number_not_panic() {
    let full = mixed_trace();
    // Chop the file at every possible byte boundary; validation must
    // return Err (or Ok for prefixes that end exactly between lines) —
    // never panic — and any Err must carry a line number.
    for cut in 1..full.len() {
        let prefix = &full[..cut];
        if !prefix.is_char_boundary(cut) {
            continue;
        }
        if let Err(e) = validate_jsonl(prefix) {
            assert!(e.starts_with("line "), "error lacks line number: {e}");
        }
    }
    // A cut in the middle of the final hist record must point at line 4.
    let cut = full.len() - 10;
    let err = validate_jsonl(&full[..cut]).unwrap_err();
    assert!(err.starts_with("line 4:"), "wrong line attribution: {err}");
}

#[test]
fn validate_trace_binary_exits_nonzero_on_truncated_file() {
    let dir = std::env::temp_dir();
    let good = dir.join("waypart_validate_good.jsonl");
    let bad = dir.join("waypart_validate_truncated.jsonl");
    let full = mixed_trace();
    std::fs::write(&good, &full).unwrap();
    std::fs::write(&bad, &full[..full.len() - 7]).unwrap();

    let ok = Command::new(env!("CARGO_BIN_EXE_validate_trace"))
        .arg(&good)
        .output()
        .expect("spawn validate_trace");
    assert!(ok.status.success(), "good trace rejected: {}", String::from_utf8_lossy(&ok.stderr));
    assert!(String::from_utf8_lossy(&ok.stdout).contains("OK (4 records)"));

    let fail = Command::new(env!("CARGO_BIN_EXE_validate_trace"))
        .arg(&bad)
        .output()
        .expect("spawn validate_trace");
    assert!(!fail.status.success(), "truncated trace accepted");
    let stderr = String::from_utf8_lossy(&fail.stderr);
    assert!(stderr.contains("line 4"), "stderr lacks line number: {stderr}");
    assert!(!stderr.contains("panicked"), "validator panicked: {stderr}");

    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&bad);
}
