//! Validates a waypart trace file without needing `jq`.
//!
//! Usage: `validate_trace <file.jsonl | file.trace.json> [...]`
//!
//! `.jsonl` files are checked line-by-line against the event and
//! aggregate-record schema (see `waypart_telemetry::schema`); event and
//! series/hist record lines may be mixed. Anything else is treated as a
//! Chrome `trace_event` export and checked for being a well-formed JSON
//! array of objects each carrying `name`/`ph`/`pid`/`tid`/`ts`.
//! Exits nonzero on the first invalid file; used by `scripts/ci.sh`.

use std::process::ExitCode;

use waypart_telemetry::schema::{parse_json, validate_jsonl, Json};

fn validate_chrome(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = match doc {
        Json::Arr(events) => events,
        _ => return Err("chrome trace must be a JSON array".into()),
    };
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("event {i}: {msg}"));
        if !matches!(ev, Json::Obj(_)) {
            return fail("not an object");
        }
        match ev.get("ph") {
            Some(Json::Str(ph)) if matches!(ph.as_str(), "B" | "E" | "i" | "C" | "M") => {}
            other => return fail(&format!("bad or missing `ph`: {other:?}")),
        }
        match ev.get("name") {
            Some(Json::Str(name)) if !name.is_empty() => {}
            _ => return fail("missing `name`"),
        }
        for key in ["pid", "tid"] {
            match ev.get(key) {
                Some(Json::Num { is_int: true, value }) if *value >= 0.0 => {}
                _ => return fail(&format!("missing integer `{key}`")),
            }
        }
        // Metadata events (`M`) have no timestamp; everything else must.
        if !matches!(ev.get("ph"), Some(Json::Str(ph)) if ph == "M") {
            match ev.get("ts") {
                Some(Json::Num { value, .. }) if *value >= 0.0 => {}
                _ => return fail("missing `ts`"),
            }
        }
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace <trace.jsonl | trace.json> [...]");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        let result = if path.ends_with(".jsonl") {
            validate_jsonl(&text).map(|n| (n, "records"))
        } else {
            validate_chrome(&text).map(|n| (n, "chrome trace entries"))
        };
        match result {
            Ok((n, what)) => println!("{path}: OK ({n} {what})"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
