//! Log-bucketed, mergeable latency histograms — the HDR shape.
//!
//! Serving stacks aggregate per-request latencies into histograms whose
//! buckets grow geometrically, so the memory cost is O(log range) while
//! quantile estimates keep a bounded *relative* error. This is the same
//! shape: values below [`SUBBUCKETS`] get exact unit buckets; above that,
//! every power-of-two octave is split into [`SUBBUCKETS`] linear
//! sub-buckets, bounding the relative bucket width to `1/SUBBUCKETS`
//! (≈ 6.25%).
//!
//! Histograms merge by bucket-wise addition, which is exact: merging the
//! histograms of two runs is indistinguishable from recording both runs
//! into one histogram. `count`, `sum`, `min` and `max` are tracked
//! exactly; quantiles are bucket upper bounds clamped to the observed
//! max, so every estimate `est` of a true quantile `q` satisfies
//! `q ≤ est ≤ q + q/SUBBUCKETS + 1` (the property tests pin this).

/// Linear sub-buckets per power-of-two octave (must be a power of two).
pub const SUBBUCKETS: u64 = 16;
/// log2 of [`SUBBUCKETS`].
const SUB_BITS: u32 = 4;

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, indexed by [`bucket_index`]; grown lazily so an
    /// empty or small-valued histogram stays tiny.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// The bucket index for `v` (identity below [`SUBBUCKETS`], log-linear
/// above).
pub fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUBBUCKETS - 1)) as usize;
    group * SUBBUCKETS as usize + sub
}

/// The smallest value mapping to bucket `idx`.
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUBBUCKETS as usize {
        return idx as u64;
    }
    let group = idx / SUBBUCKETS as usize;
    let sub = (idx % SUBBUCKETS as usize) as u64;
    let msb = group as u32 + SUB_BITS - 1;
    (SUBBUCKETS + sub) << (msb - SUB_BITS)
}

/// The largest value mapping to bucket `idx` (inclusive).
pub fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBBUCKETS as usize {
        return idx as u64;
    }
    let group = idx / SUBBUCKETS as usize;
    let msb = group as u32 + SUB_BITS - 1;
    // Saturating: the topmost bucket's bound is exactly u64::MAX, which
    // the plain sum would reach only through an overflowing 2^64.
    bucket_lower(idx).saturating_add((1u64 << (msb - SUB_BITS)) - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
    }

    /// Rebuilds a histogram from its serialized parts — the inverse of
    /// [`Self::to_json_record`], used by [`crate::merge`] to fold
    /// per-shard traces. `buckets` are `(lower_bound, count)` pairs as
    /// produced by [`Self::buckets`]; `sum`, `min` and `max` replace the
    /// bucket-derived approximations with the recorded exact values
    /// (bucket lower bounds round samples down, the recorded fields do
    /// not).
    pub fn from_parts(
        buckets: impl IntoIterator<Item = (u64, u64)>,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Histogram {
        let mut h = Histogram::new();
        for (lower, n) in buckets {
            h.record_n(lower, n);
        }
        if h.count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        h
    }

    /// Adds `other`'s samples into `self` (exact: bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (slot, &n) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as a bucket upper bound clamped
    /// to the observed min/max; 0 when empty. `quantile(1.0)` is the
    /// exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_lower(idx), n))
    }

    /// Renders this histogram as one `{"record":"hist",...}` JSONL line
    /// (no trailing newline); see [`crate::schema`] for the contract.
    pub fn to_json_record(&self, name: &str) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"record\":\"hist\",\"name\":");
        crate::event::push_json_str(&mut out, name);
        out.push_str(&format!(
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max(),
            self.p50(),
            self.p90(),
            self.p99()
        ));
        for (i, (lower, n)) in self.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{lower},{n}]"));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every value maps into a bucket whose bounds bracket it, and
        // bucket indices never decrease with the value.
        let mut last_idx = 0;
        for v in (0..4096).chain([u64::MAX / 3, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(bucket_lower(idx) <= v && v <= bucket_upper(idx), "v={v} idx={idx}");
            assert!(idx >= last_idx, "index regressed at v={v}");
            last_idx = idx;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUBBUCKETS {
            h.record(v);
        }
        for v in 0..SUBBUCKETS {
            assert_eq!(bucket_lower(bucket_index(v)), v);
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
        assert_eq!(h.count(), SUBBUCKETS);
    }

    #[test]
    fn exact_stats_and_quantiles_on_known_data() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.quantile(1.0), 100);
        let p50 = h.p50();
        assert!((50..=54).contains(&p50), "p50={p50}");
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99() && h.p99() <= h.max());
    }

    #[test]
    fn merge_equals_recording_both() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0u64, 3, 17, 900, 1_000_000, u64::MAX / 7] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 5, 80_000] {
            b.record_n(v, 2);
            both.record_n(v, 2);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let snapshot = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, snapshot);
        let mut e = Histogram::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.count(), h.min(), h.max(), h.p99()), (0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn json_record_shape() {
        let mut h = Histogram::new();
        h.record(7);
        h.record_n(1000, 3);
        let line = h.to_json_record("sim.latency.llc");
        assert!(line.starts_with("{\"record\":\"hist\",\"name\":\"sim.latency.llc\""));
        assert!(line.contains("\"count\":4"));
        assert!(line.contains("\"buckets\":[[7,1],["));
        crate::schema::validate_line(&line).expect("hist record validates");
    }
}
