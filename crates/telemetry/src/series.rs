//! Bounded time series keyed on the two-clock [`Stamp`], plus the shared
//! series algorithms (`mean`, `regime_transitions`) that
//! `waypart_perfmon::MpkiSeries` adapts.
//!
//! A [`TimeSeries`] is a ring of at most `capacity` points. When it
//! fills, adjacent point pairs are averaged in place and the sampling
//! stride doubles, so arbitrarily long runs cost O(capacity) memory
//! while the stored points keep covering the whole run — the standard
//! downsample-on-overflow scheme for long-horizon dashboards. The first
//! push pins the series to its stamp's clock; later pushes from the
//! other clock are dropped and counted, enforcing design rule 1 (two
//! clocks, never mixed) at the aggregation layer too.

use crate::event::Stamp;

/// A bounded, downsampling time series of `(ticks, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    capacity: usize,
    clock: Option<&'static str>,
    points: Vec<(u64, f64)>,
    /// Original samples represented by each stored point (doubles on
    /// every overflow halving).
    stride: u64,
    /// Samples accumulated toward the next stored point.
    acc_count: u64,
    acc_ts: u64,
    acc_sum: f64,
    /// Samples ever pushed on the series' clock.
    total: u64,
    /// Pushes dropped for arriving on the wrong clock.
    clock_mismatches: u64,
}

impl TimeSeries {
    /// A series storing at most `capacity` points (rounded up to an even
    /// minimum of 2 so overflow halving is exact).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2) & !1;
        TimeSeries {
            capacity,
            clock: None,
            points: Vec::new(),
            stride: 1,
            acc_count: 0,
            acc_ts: 0,
            acc_sum: 0.0,
            total: 0,
            clock_mismatches: 0,
        }
    }

    /// Pushes one sample. The first push decides the series' clock;
    /// samples from the other clock are dropped (see module docs).
    pub fn push(&mut self, stamp: Stamp, value: f64) {
        let clock = stamp.clock_name();
        match self.clock {
            None => self.clock = Some(clock),
            Some(c) if c != clock => {
                self.clock_mismatches += 1;
                return;
            }
            Some(_) => {}
        }
        self.total += 1;
        if self.acc_count == 0 {
            self.acc_ts = stamp.ticks();
        }
        self.acc_sum += value;
        self.acc_count += 1;
        if self.acc_count < self.stride {
            return;
        }
        self.points.push((self.acc_ts, self.acc_sum / self.acc_count as f64));
        self.acc_count = 0;
        self.acc_sum = 0.0;
        if self.points.len() == self.capacity {
            // Halve in place: each surviving point keeps the earlier
            // timestamp and averages the pair's values.
            for i in 0..self.capacity / 2 {
                let (ts, a) = self.points[2 * i];
                let (_, b) = self.points[2 * i + 1];
                self.points[i] = (ts, (a + b) / 2.0);
            }
            self.points.truncate(self.capacity / 2);
            self.stride *= 2;
        }
    }

    /// The stored `(ticks, value)` points, oldest first.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Stored point count (≤ capacity).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum stored points.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Original samples per stored point.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Samples ever pushed on the series' clock.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Pushes dropped for arriving on the wrong clock.
    pub fn clock_mismatches(&self) -> u64 {
        self.clock_mismatches
    }

    /// The clock name, once pinned by the first push.
    pub fn clock_name(&self) -> Option<&'static str> {
        self.clock
    }

    /// Mean of the stored points' values.
    pub fn mean(&self) -> f64 {
        mean(self.points.iter().map(|p| p.1))
    }

    /// Debounced low/high regime crossings of the stored values (see
    /// [`regime_transitions`]).
    pub fn regime_transitions(&self, threshold: f64, min_run: usize) -> usize {
        regime_transitions(self.points.iter().map(|p| p.1), threshold, min_run)
    }

    /// Renders this series as one `{"record":"series",...}` JSONL line
    /// (no trailing newline); see [`crate::schema`] for the contract.
    pub fn to_json_record(&self, name: &str, tid: u32) -> String {
        let mut out = String::with_capacity(64 + self.points.len() * 16);
        out.push_str("{\"record\":\"series\",\"name\":");
        crate::event::push_json_str(&mut out, name);
        out.push_str(&format!(
            ",\"tid\":{tid},\"clock\":\"{}\",\"stride\":{},\"total\":{},\"points\":[",
            self.clock.unwrap_or("cycles"),
            self.stride,
            self.total
        ));
        for (i, &(ts, v)) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{ts},"));
            crate::event::push_json_value(&mut out, &crate::event::FieldValue::F64(v));
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// Mean of a value stream (0 when empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Counts transitions between "low" and "high" regimes relative to
/// `threshold`, requiring `min_run` consecutive samples on a side before
/// a crossing counts (debounce). `min_run` of 0 behaves like 1 — a
/// single sample is always a run of length ≥ 1 — so every undebounced
/// crossing counts.
///
/// This is the algorithm behind `MpkiSeries::regime_transitions` (the
/// Figure 12 phase-transition check); the perfmon type delegates here so
/// there is one implementation.
pub fn regime_transitions(
    values: impl IntoIterator<Item = f64>,
    threshold: f64,
    min_run: usize,
) -> usize {
    let mut transitions = 0;
    let mut side: Option<bool> = None;
    let mut run = 0usize;
    let mut pending: Option<bool> = None;
    for v in values {
        let s = v > threshold;
        match pending {
            Some(p) if p == s => run += 1,
            _ => {
                pending = Some(s);
                run = 1;
            }
        }
        if run >= min_run {
            if let Some(cur) = side {
                if cur != s {
                    transitions += 1;
                }
            }
            side = Some(s);
        }
    }
    transitions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_points_in_order() {
        let mut s = TimeSeries::new(8);
        for i in 0..5u64 {
            s.push(Stamp::Cycles(i * 10), i as f64);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.points()[3], (30, 3.0));
        assert_eq!(s.clock_name(), Some("cycles"));
    }

    #[test]
    fn overflow_halves_and_doubles_stride() {
        let mut s = TimeSeries::new(4);
        for i in 0..4u64 {
            s.push(Stamp::Cycles(i), i as f64);
        }
        // 4 points hit capacity → halved to 2, stride 2.
        assert_eq!(s.stride(), 2);
        assert_eq!(s.points(), &[(0, 0.5), (2, 2.5)]);
        // The next two pushes form one stride-2 point.
        s.push(Stamp::Cycles(4), 4.0);
        assert_eq!(s.len(), 2, "mid-stride samples stay in the accumulator");
        s.push(Stamp::Cycles(5), 5.0);
        assert_eq!(s.points(), &[(0, 0.5), (2, 2.5), (4, 4.5)]);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn memory_stays_bounded_over_long_runs() {
        let mut s = TimeSeries::new(64);
        for i in 0..100_000u64 {
            s.push(Stamp::WallUs(i), (i % 7) as f64);
        }
        assert!(s.len() <= 64);
        assert_eq!(s.total(), 100_000);
        assert!(s.stride() >= 100_000 / 64);
        // Downsampling averages, so the mean survives roughly intact.
        assert!((s.mean() - 3.0).abs() < 0.5, "mean drifted to {}", s.mean());
    }

    #[test]
    fn wrong_clock_pushes_are_dropped() {
        let mut s = TimeSeries::new(4);
        s.push(Stamp::Cycles(1), 1.0);
        s.push(Stamp::WallUs(2), 9.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.clock_mismatches(), 1);
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn tiny_capacities_are_clamped_even() {
        assert_eq!(TimeSeries::new(0).capacity(), 2);
        assert_eq!(TimeSeries::new(5).capacity(), 4);
    }

    #[test]
    fn mean_and_transitions_match_module_functions() {
        let vals = [1.0, 1.0, 9.0, 9.0, 1.0, 1.0];
        let mut s = TimeSeries::new(16);
        for (i, &v) in vals.iter().enumerate() {
            s.push(Stamp::Cycles(i as u64), v);
        }
        assert_eq!(s.mean(), mean(vals));
        assert_eq!(s.regime_transitions(5.0, 2), 2);
        assert_eq!(regime_transitions(vals, 5.0, 2), 2);
    }

    #[test]
    fn regime_transitions_min_run_zero_acts_like_one() {
        let vals = [1.0, 9.0, 1.0, 9.0];
        assert_eq!(regime_transitions(vals, 5.0, 0), 3);
        assert_eq!(regime_transitions(vals, 5.0, 1), 3);
    }

    #[test]
    fn regime_transitions_edge_cases() {
        assert_eq!(regime_transitions([], 5.0, 2), 0);
        assert_eq!(regime_transitions([9.0], 5.0, 1), 0, "single sample cannot transition");
    }

    #[test]
    fn json_record_shape() {
        let mut s = TimeSeries::new(4);
        s.push(Stamp::Cycles(10), 1.5);
        s.push(Stamp::Cycles(20), 2.5);
        let line = s.to_json_record("perfmon.window.mpki", 3);
        assert!(line.starts_with("{\"record\":\"series\",\"name\":\"perfmon.window.mpki\""));
        assert!(line.contains("\"clock\":\"cycles\""));
        assert!(line.contains("[10,1.5],[20,2.5]"));
        crate::schema::validate_line(&line).expect("series record validates");
    }
}
