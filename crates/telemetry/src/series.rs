//! Bounded time series keyed on the two-clock [`Stamp`], plus the shared
//! series algorithms (`mean`, `regime_transitions`) that
//! `waypart_perfmon::MpkiSeries` adapts.
//!
//! A [`TimeSeries`] is a ring of at most `capacity` points. When it
//! fills, adjacent point pairs are averaged in place and the sampling
//! stride doubles, so arbitrarily long runs cost O(capacity) memory
//! while the stored points keep covering the whole run — the standard
//! downsample-on-overflow scheme for long-horizon dashboards. The first
//! push pins the series to its stamp's clock; later pushes from the
//! other clock are dropped and counted, enforcing design rule 1 (two
//! clocks, never mixed) at the aggregation layer too.

use crate::event::Stamp;

/// A bounded, downsampling time series of `(ticks, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    capacity: usize,
    clock: Option<&'static str>,
    points: Vec<(u64, f64)>,
    /// Original samples represented by each stored point (doubles on
    /// every overflow halving).
    stride: u64,
    /// Samples accumulated toward the next stored point.
    acc_count: u64,
    acc_ts: u64,
    acc_sum: f64,
    /// Samples ever pushed on the series' clock.
    total: u64,
    /// Pushes dropped for arriving on the wrong clock.
    clock_mismatches: u64,
}

impl TimeSeries {
    /// A series storing at most `capacity` points (rounded up to an even
    /// minimum of 2 so overflow halving is exact).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2) & !1;
        TimeSeries {
            capacity,
            clock: None,
            points: Vec::new(),
            stride: 1,
            acc_count: 0,
            acc_ts: 0,
            acc_sum: 0.0,
            total: 0,
            clock_mismatches: 0,
        }
    }

    /// Pushes one sample. The first push decides the series' clock;
    /// samples from the other clock are dropped (see module docs).
    pub fn push(&mut self, stamp: Stamp, value: f64) {
        let clock = stamp.clock_name();
        match self.clock {
            None => self.clock = Some(clock),
            Some(c) if c != clock => {
                self.clock_mismatches += 1;
                return;
            }
            Some(_) => {}
        }
        self.total += 1;
        if self.acc_count == 0 {
            self.acc_ts = stamp.ticks();
        }
        self.acc_sum += value;
        self.acc_count += 1;
        if self.acc_count < self.stride {
            return;
        }
        self.points.push((self.acc_ts, self.acc_sum / self.acc_count as f64));
        self.acc_count = 0;
        self.acc_sum = 0.0;
        if self.points.len() == self.capacity {
            // Halve in place: each surviving point keeps the earlier
            // timestamp and averages the pair's values.
            for i in 0..self.capacity / 2 {
                let (ts, a) = self.points[2 * i];
                let (_, b) = self.points[2 * i + 1];
                self.points[i] = (ts, (a + b) / 2.0);
            }
            self.points.truncate(self.capacity / 2);
            self.stride *= 2;
        }
    }

    /// Rebuilds a series from its serialized parts — the inverse of
    /// [`Self::to_json_record`], used by [`crate::merge`] to fold
    /// per-shard traces. `clock` must be a schema clock name (`"cycles"`
    /// or `"wall_us"`); `capacity` bounds the rebuilt series as usual.
    pub fn from_parts(
        capacity: usize,
        clock: &'static str,
        stride: u64,
        total: u64,
        points: Vec<(u64, f64)>,
    ) -> TimeSeries {
        let mut s = TimeSeries::new(capacity.max(points.len().next_multiple_of(2)));
        s.clock = Some(clock);
        s.stride = stride.max(1);
        s.total = total;
        s.points = points;
        s
    }

    /// Folds `other`'s stored points into `self`, interleaved by
    /// timestamp (stable: on ties `self`'s points come first). Totals
    /// add; the merged stride is the coarser of the two, doubling again
    /// whenever the merged point set must halve to respect `self`'s
    /// capacity — so merging N shards' series stays O(capacity) like
    /// recording them into one sink would have. A clock mismatch drops
    /// `other` entirely and counts one mismatch, enforcing the two-clock
    /// rule at the merge layer too.
    pub fn merge(&mut self, other: &TimeSeries) {
        self.clock_mismatches += other.clock_mismatches;
        if other.points.is_empty() && other.total == 0 {
            return;
        }
        match (self.clock, other.clock) {
            (Some(a), Some(b)) if a != b => {
                self.clock_mismatches += 1;
                return;
            }
            (None, b) => self.clock = b,
            _ => {}
        }
        let mut merged = Vec::with_capacity(self.points.len() + other.points.len());
        let (mut i, mut j) = (0, 0);
        while i < self.points.len() || j < other.points.len() {
            let take_self = j >= other.points.len()
                || (i < self.points.len() && self.points[i].0 <= other.points[j].0);
            if take_self {
                merged.push(self.points[i]);
                i += 1;
            } else {
                merged.push(other.points[j]);
                j += 1;
            }
        }
        let mut stride = self.stride.max(other.stride);
        while merged.len() > self.capacity {
            // Same halving rule as overflow: earlier timestamp survives,
            // values average; an odd trailing point survives unpaired.
            let mut halved = Vec::with_capacity(merged.len() / 2 + 1);
            for pair in merged.chunks(2) {
                if pair.len() == 2 {
                    halved.push((pair[0].0, (pair[0].1 + pair[1].1) / 2.0));
                } else {
                    halved.push(pair[0]);
                }
            }
            merged = halved;
            stride *= 2;
        }
        self.points = merged;
        self.stride = stride;
        self.total += other.total;
    }

    /// The stored `(ticks, value)` points, oldest first.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Stored point count (≤ capacity).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum stored points.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Original samples per stored point.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Samples ever pushed on the series' clock.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Pushes dropped for arriving on the wrong clock.
    pub fn clock_mismatches(&self) -> u64 {
        self.clock_mismatches
    }

    /// The clock name, once pinned by the first push.
    pub fn clock_name(&self) -> Option<&'static str> {
        self.clock
    }

    /// Mean of the stored points' values.
    pub fn mean(&self) -> f64 {
        mean(self.points.iter().map(|p| p.1))
    }

    /// Debounced low/high regime crossings of the stored values (see
    /// [`regime_transitions`]).
    pub fn regime_transitions(&self, threshold: f64, min_run: usize) -> usize {
        regime_transitions(self.points.iter().map(|p| p.1), threshold, min_run)
    }

    /// Renders this series as one `{"record":"series",...}` JSONL line
    /// (no trailing newline); see [`crate::schema`] for the contract.
    pub fn to_json_record(&self, name: &str, tid: u32) -> String {
        let mut out = String::with_capacity(64 + self.points.len() * 16);
        out.push_str("{\"record\":\"series\",\"name\":");
        crate::event::push_json_str(&mut out, name);
        out.push_str(&format!(
            ",\"tid\":{tid},\"clock\":\"{}\",\"stride\":{},\"total\":{},\"points\":[",
            self.clock.unwrap_or("cycles"),
            self.stride,
            self.total
        ));
        for (i, &(ts, v)) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{ts},"));
            crate::event::push_json_value(&mut out, &crate::event::FieldValue::F64(v));
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// Mean of a value stream (0 when empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Counts transitions between "low" and "high" regimes relative to
/// `threshold`, requiring `min_run` consecutive samples on a side before
/// a crossing counts (debounce). `min_run` of 0 behaves like 1 — a
/// single sample is always a run of length ≥ 1 — so every undebounced
/// crossing counts.
///
/// This is the algorithm behind `MpkiSeries::regime_transitions` (the
/// Figure 12 phase-transition check); the perfmon type delegates here so
/// there is one implementation.
pub fn regime_transitions(
    values: impl IntoIterator<Item = f64>,
    threshold: f64,
    min_run: usize,
) -> usize {
    let mut transitions = 0;
    let mut side: Option<bool> = None;
    let mut run = 0usize;
    let mut pending: Option<bool> = None;
    for v in values {
        let s = v > threshold;
        match pending {
            Some(p) if p == s => run += 1,
            _ => {
                pending = Some(s);
                run = 1;
            }
        }
        if run >= min_run {
            if let Some(cur) = side {
                if cur != s {
                    transitions += 1;
                }
            }
            side = Some(s);
        }
    }
    transitions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_points_in_order() {
        let mut s = TimeSeries::new(8);
        for i in 0..5u64 {
            s.push(Stamp::Cycles(i * 10), i as f64);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.points()[3], (30, 3.0));
        assert_eq!(s.clock_name(), Some("cycles"));
    }

    #[test]
    fn overflow_halves_and_doubles_stride() {
        let mut s = TimeSeries::new(4);
        for i in 0..4u64 {
            s.push(Stamp::Cycles(i), i as f64);
        }
        // 4 points hit capacity → halved to 2, stride 2.
        assert_eq!(s.stride(), 2);
        assert_eq!(s.points(), &[(0, 0.5), (2, 2.5)]);
        // The next two pushes form one stride-2 point.
        s.push(Stamp::Cycles(4), 4.0);
        assert_eq!(s.len(), 2, "mid-stride samples stay in the accumulator");
        s.push(Stamp::Cycles(5), 5.0);
        assert_eq!(s.points(), &[(0, 0.5), (2, 2.5), (4, 4.5)]);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn memory_stays_bounded_over_long_runs() {
        let mut s = TimeSeries::new(64);
        for i in 0..100_000u64 {
            s.push(Stamp::WallUs(i), (i % 7) as f64);
        }
        assert!(s.len() <= 64);
        assert_eq!(s.total(), 100_000);
        assert!(s.stride() >= 100_000 / 64);
        // Downsampling averages, so the mean survives roughly intact.
        assert!((s.mean() - 3.0).abs() < 0.5, "mean drifted to {}", s.mean());
    }

    #[test]
    fn wrong_clock_pushes_are_dropped() {
        let mut s = TimeSeries::new(4);
        s.push(Stamp::Cycles(1), 1.0);
        s.push(Stamp::WallUs(2), 9.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.clock_mismatches(), 1);
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn tiny_capacities_are_clamped_even() {
        assert_eq!(TimeSeries::new(0).capacity(), 2);
        assert_eq!(TimeSeries::new(5).capacity(), 4);
    }

    #[test]
    fn mean_and_transitions_match_module_functions() {
        let vals = [1.0, 1.0, 9.0, 9.0, 1.0, 1.0];
        let mut s = TimeSeries::new(16);
        for (i, &v) in vals.iter().enumerate() {
            s.push(Stamp::Cycles(i as u64), v);
        }
        assert_eq!(s.mean(), mean(vals));
        assert_eq!(s.regime_transitions(5.0, 2), 2);
        assert_eq!(regime_transitions(vals, 5.0, 2), 2);
    }

    #[test]
    fn regime_transitions_min_run_zero_acts_like_one() {
        let vals = [1.0, 9.0, 1.0, 9.0];
        assert_eq!(regime_transitions(vals, 5.0, 0), 3);
        assert_eq!(regime_transitions(vals, 5.0, 1), 3);
    }

    #[test]
    fn regime_transitions_edge_cases() {
        assert_eq!(regime_transitions([], 5.0, 2), 0);
        assert_eq!(regime_transitions([9.0], 5.0, 1), 0, "single sample cannot transition");
    }

    #[test]
    fn merge_interleaves_by_timestamp_and_adds_totals() {
        let mut a = TimeSeries::new(16);
        let mut b = TimeSeries::new(16);
        for i in 0..4u64 {
            a.push(Stamp::Cycles(i * 2), i as f64); // ts 0,2,4,6
            b.push(Stamp::Cycles(i * 2 + 1), 10.0 + i as f64); // ts 1,3,5,7
        }
        a.merge(&b);
        let ts: Vec<u64> = a.points().iter().map(|p| p.0).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(a.total(), 8);
        assert_eq!(a.stride(), 1);
    }

    #[test]
    fn merge_respects_capacity_by_halving() {
        let mut a = TimeSeries::new(4);
        let mut b = TimeSeries::new(4);
        for i in 0..3u64 {
            a.push(Stamp::WallUs(i * 10), 1.0);
            b.push(Stamp::WallUs(i * 10 + 5), 3.0);
        }
        a.merge(&b);
        assert!(a.len() <= a.capacity());
        assert_eq!(a.total(), 6);
        assert!(a.stride() > 1, "halving must coarsen the stride");
        assert!((a.mean() - 2.0).abs() < 1e-9, "averaging preserves the mean");
    }

    #[test]
    fn merge_clock_mismatch_drops_other() {
        let mut a = TimeSeries::new(4);
        a.push(Stamp::Cycles(1), 1.0);
        let mut b = TimeSeries::new(4);
        b.push(Stamp::WallUs(2), 2.0);
        a.merge(&b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.total(), 1);
        assert_eq!(a.clock_mismatches(), 1);
    }

    #[test]
    fn merge_into_empty_adopts_clock() {
        let mut a = TimeSeries::new(8);
        let mut b = TimeSeries::new(8);
        b.push(Stamp::WallUs(3), 7.0);
        a.merge(&b);
        assert_eq!(a.clock_name(), Some("wall_us"));
        assert_eq!(a.points(), &[(3, 7.0)]);
        assert_eq!(a.total(), 1);
    }

    #[test]
    fn from_parts_roundtrips_record_fields() {
        let mut s = TimeSeries::new(8);
        for i in 0..5u64 {
            s.push(Stamp::Cycles(i), i as f64);
        }
        let rebuilt = TimeSeries::from_parts(
            s.capacity(),
            "cycles",
            s.stride(),
            s.total(),
            s.points().to_vec(),
        );
        assert_eq!(rebuilt.points(), s.points());
        assert_eq!(rebuilt.total(), s.total());
        assert_eq!(rebuilt.to_json_record("x", 0), s.to_json_record("x", 0));
    }

    #[test]
    fn json_record_shape() {
        let mut s = TimeSeries::new(4);
        s.push(Stamp::Cycles(10), 1.5);
        s.push(Stamp::Cycles(20), 2.5);
        let line = s.to_json_record("perfmon.window.mpki", 3);
        assert!(line.starts_with("{\"record\":\"series\",\"name\":\"perfmon.window.mpki\""));
        assert!(line.contains("\"clock\":\"cycles\""));
        assert!(line.contains("[10,1.5],[20,2.5]"));
        crate::schema::validate_line(&line).expect("series record validates");
    }
}
