//! Live worker progress: heartbeat snapshots and phase-level time
//! attribution.
//!
//! A fleet of `reproduce --shard K/N` workers is a set of independent
//! processes whose only shared state is the run cache. This module gives
//! each worker a *heartbeat*: a small `status.json` snapshot written
//! atomically (tmp + rename, same discipline as the run cache) into the
//! worker's spool directory on a fixed interval, so `status` can render a
//! live fleet table and flag stalled workers long before the §5f claim
//! takeover grace period fires.
//!
//! The same module owns the *phase timers*: five always-compiled
//! nanosecond accumulators (stream generation, probe+fill, controller,
//! run-cache IO, spool merge) that partition a run's wall time. They are
//! gated behind one relaxed atomic flag and sampled at buffer/quantum
//! granularity — never per access — so the sim hot path pays two `Instant`
//! reads per 256-event refill when enabled and a single load when not.
//!
//! Everything here is observation-only: no simulation state, artifact
//! byte, or cache key depends on any value in this module.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------- counters

static RUNS_SEEN: AtomicU64 = AtomicU64::new(0);
static RUNS_DONE: AtomicU64 = AtomicU64::new(0);
static MEM_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static WAITS: AtomicU64 = AtomicU64::new(0);
static TAKEOVERS: AtomicU64 = AtomicU64::new(0);
static CLAIMS_HELD: AtomicI64 = AtomicI64::new(0);

/// One countable pipeline event. Increments are relaxed atomics at
/// per-run (not per-access) granularity, so they are unconditionally on.
#[derive(Clone, Copy, Debug)]
pub enum Counter {
    /// A cache key entered the run grid (one `RunCache` lookup).
    RunSeen,
    /// A run's value was obtained (hit, fresh run, or awaited peer).
    RunDone,
    MemHit,
    DiskHit,
    Miss,
    Wait,
    Takeover,
}

/// Bumps one fleet-progress counter.
#[inline]
pub fn count(counter: Counter) {
    let slot = match counter {
        Counter::RunSeen => &RUNS_SEEN,
        Counter::RunDone => &RUNS_DONE,
        Counter::MemHit => &MEM_HITS,
        Counter::DiskHit => &DISK_HITS,
        Counter::Miss => &MISSES,
        Counter::Wait => &WAITS,
        Counter::Takeover => &TAKEOVERS,
    };
    slot.fetch_add(1, Ordering::Relaxed);
}

/// Records that this process now holds one more run-cache claim file.
#[inline]
pub fn claim_acquired() {
    CLAIMS_HELD.fetch_add(1, Ordering::Relaxed);
}

/// Records that a held claim file was released (or broken by a peer).
#[inline]
pub fn claim_released() {
    CLAIMS_HELD.fetch_sub(1, Ordering::Relaxed);
}

// ------------------------------------------------------------ phase timers

/// A wall-time attribution bucket. The five buckets partition where a
/// `reproduce` run spends its time; anything outside them is reported as
/// "other" by the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Synthetic access-stream generation (`AccessStream::fill`).
    StreamGen = 0,
    /// Cache probe + fill + stat charging (the sim drain loop).
    ProbeFill = 1,
    /// Dynamic-partitioning controller observation/decision.
    Controller = 2,
    /// Run-cache disk reads and writes.
    RuncacheIo = 3,
    /// Folding per-shard spools into merged aggregates.
    SpoolMerge = 4,
}

/// Stable names for the phase buckets, in `Phase` discriminant order.
pub const PHASE_NAMES: [&str; 5] =
    ["stream_gen", "probe_fill", "controller", "runcache_io", "spool_merge"];

static PHASE_NS: [AtomicU64; 5] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static SIM_ACCESSES: AtomicU64 = AtomicU64::new(0);
static TIMING: AtomicBool = AtomicBool::new(false);

/// Turns the phase timers on for the rest of the process. `reproduce`
/// calls this at startup; library users and benches leave them off.
pub fn enable_phase_timers() {
    TIMING.store(true, Ordering::Release);
}

/// Whether phase timers are collecting. One relaxed load — the hot-path
/// fast gate.
#[inline]
pub fn phase_timing() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Starts a phase measurement. Returns `None` (and costs one atomic
/// load) when timers are off.
#[inline]
pub fn phase_begin() -> Option<Instant> {
    if phase_timing() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Ends a measurement started by [`phase_begin`], crediting the elapsed
/// time to `phase`. No-op for `None`.
#[inline]
pub fn phase_add(phase: Phase, started: Option<Instant>) {
    if let Some(t0) = started {
        phase_add_ns(phase, t0.elapsed().as_nanos() as u64);
    }
}

/// Credits a raw nanosecond count to `phase`.
#[inline]
pub fn phase_add_ns(phase: Phase, ns: u64) {
    PHASE_NS[phase as usize].fetch_add(ns, Ordering::Relaxed);
}

/// Counts simulated accesses processed (batched: one call per refill).
/// Callers gate on [`phase_timing`] so the default hot path is untouched.
#[inline]
pub fn count_sim_accesses(n: u64) {
    SIM_ACCESSES.fetch_add(n, Ordering::Relaxed);
}

/// Total simulated accesses counted while timers were on.
pub fn sim_accesses() -> u64 {
    SIM_ACCESSES.load(Ordering::Relaxed)
}

/// Snapshot of the per-phase accumulators as `(name, nanoseconds)` in
/// [`PHASE_NAMES`] order.
pub fn phase_snapshot() -> Vec<(&'static str, u64)> {
    PHASE_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| (*name, PHASE_NS[i].load(Ordering::Relaxed)))
        .collect()
}

// ---------------------------------------------------------- heartbeat state

static STAGE: OnceLock<Mutex<String>> = OnceLock::new();
/// f64 bit pattern of the ns/access EWMA; 0 = no estimate yet.
static NS_PER_ACCESS_BITS: AtomicU64 = AtomicU64::new(0);

fn stage_slot() -> &'static Mutex<String> {
    STAGE.get_or_init(|| Mutex::new(String::new()))
}

/// Sets the human-readable pipeline stage ("fig12", "merge", ...) shown
/// in this worker's heartbeat.
pub fn set_stage(stage: &str) {
    *stage_slot().lock().expect("progress stage lock") = stage.to_string();
}

fn current_stage() -> String {
    stage_slot().lock().expect("progress stage lock").clone()
}

/// The current ns/access EWMA, if the heartbeat thread has formed one.
pub fn ns_per_access() -> Option<f64> {
    let bits = NS_PER_ACCESS_BITS.load(Ordering::Relaxed);
    if bits == 0 {
        None
    } else {
        Some(f64::from_bits(bits))
    }
}

/// Milliseconds since the Unix epoch — the heartbeat's staleness basis.
/// Harness-side only; the two-clock rule (§ crate docs) is untouched.
pub fn unix_now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders one `"record":"status"` heartbeat snapshot of the process-wide
/// progress state. The key set matches `schema::STATUS_KEYS` exactly so
/// heartbeats validate both standalone and mixed into JSONL traces.
pub fn snapshot_json(worker: &str, done: bool) -> String {
    let ns = match ns_per_access() {
        Some(v) => fmt_f64(v),
        None => "null".to_string(),
    };
    format!(
        concat!(
            "{{\"record\":\"status\",\"worker\":\"{}\",\"phase\":\"{}\",",
            "\"runs_done\":{},\"runs_total\":{},\"mem_hits\":{},\"disk_hits\":{},",
            "\"misses\":{},\"waits\":{},\"takeovers\":{},\"claims_held\":{},",
            "\"ns_per_access\":{},\"done\":{},\"at_unix_ms\":{}}}"
        ),
        worker,
        current_stage(),
        RUNS_DONE.load(Ordering::Relaxed),
        RUNS_SEEN.load(Ordering::Relaxed),
        MEM_HITS.load(Ordering::Relaxed),
        DISK_HITS.load(Ordering::Relaxed),
        MISSES.load(Ordering::Relaxed),
        WAITS.load(Ordering::Relaxed),
        TAKEOVERS.load(Ordering::Relaxed),
        CLAIMS_HELD.load(Ordering::Relaxed).max(0),
        ns,
        done,
        unix_now_ms(),
    )
}

/// Atomically replaces `path` with a fresh heartbeat snapshot: write to a
/// pid-suffixed sibling, then rename. A concurrent reader sees either the
/// previous complete snapshot or the new one, never a torn file.
pub fn write_snapshot(path: &Path, worker: &str, done: bool) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, snapshot_json(worker, done))?;
    std::fs::rename(&tmp, path)
}

/// A running heartbeat writer. Dropping (or calling [`Heartbeat::finish`])
/// stops the thread and writes one final `done: true` snapshot so fleet
/// scans can tell a clean exit from a stall.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    path: PathBuf,
    worker: String,
}

impl Heartbeat {
    /// Stops the writer thread and stamps the final snapshot.
    pub fn finish(mut self) {
        self.shutdown();
    }

    /// The heartbeat file this writer maintains.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let _ = write_snapshot(&self.path, &self.worker, true);
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

/// Starts the heartbeat writer: creates `dir`, writes an immediate
/// snapshot to `dir/status.json`, then refreshes it every `interval`
/// from a background thread. The thread also folds the phase-timer
/// deltas into the ns/access EWMA. When no run directory exists the
/// caller simply never starts a heartbeat — zero cost.
pub fn start_heartbeat(dir: &Path, worker: &str, interval: Duration) -> io::Result<Heartbeat> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("status.json");
    write_snapshot(&path, worker, false)?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let stop = Arc::clone(&stop);
        let path = path.clone();
        let worker = worker.to_string();
        thread::Builder::new().name("heartbeat".into()).spawn(move || {
            let mut last_sim_ns = sim_time_ns();
            let mut last_accesses = sim_accesses();
            while !stop.load(Ordering::Acquire) {
                // Sleep in short slices so shutdown is prompt even with
                // multi-second intervals.
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    thread::sleep(Duration::from_millis(25).min(interval));
                }
                let sim_ns = sim_time_ns();
                let accesses = sim_accesses();
                update_ewma(sim_ns - last_sim_ns, accesses - last_accesses);
                last_sim_ns = sim_ns;
                last_accesses = accesses;
                let _ = write_snapshot(&path, &worker, false);
            }
        })?
    };
    Ok(Heartbeat { stop, thread: Some(thread), path, worker: worker.to_string() })
}

fn sim_time_ns() -> u64 {
    PHASE_NS[Phase::StreamGen as usize].load(Ordering::Relaxed)
        + PHASE_NS[Phase::ProbeFill as usize].load(Ordering::Relaxed)
}

/// Folds one heartbeat-interval's simulated-time delta into the EWMA.
/// alpha = 0.3: responsive enough to track warm/cold transitions, smooth
/// enough to ignore single slow intervals.
fn update_ewma(delta_ns: u64, delta_accesses: u64) {
    if delta_accesses == 0 {
        return;
    }
    let inst = delta_ns as f64 / delta_accesses as f64;
    let next = match ns_per_access() {
        Some(prev) => 0.3 * inst + 0.7 * prev,
        None => inst,
    };
    NS_PER_ACCESS_BITS.store(next.to_bits(), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::validate_line;

    #[test]
    fn snapshot_is_valid_schema_record() {
        set_stage("unit");
        let line = snapshot_json("9-of-9", false);
        validate_line(&line).expect("heartbeat snapshot must validate");
        assert!(line.contains("\"worker\":\"9-of-9\""));
        assert!(line.contains("\"done\":false"));
    }

    #[test]
    fn phase_accumulators_accumulate() {
        enable_phase_timers();
        let t0 = phase_begin();
        assert!(t0.is_some());
        std::thread::sleep(Duration::from_millis(2));
        phase_add(Phase::SpoolMerge, t0);
        let ns = phase_snapshot()
            .iter()
            .find(|(n, _)| *n == "spool_merge")
            .map(|(_, ns)| *ns)
            .unwrap();
        assert!(ns >= 1_000_000, "2ms sleep must register, got {ns}ns");
    }

    #[test]
    fn ewma_forms_and_smooths() {
        update_ewma(1000, 10); // 100 ns/access
        let first = ns_per_access().unwrap();
        update_ewma(2000, 10); // 200 ns/access instant
        let second = ns_per_access().unwrap();
        assert!(second > first, "EWMA must move toward the new rate");
        assert!(second < 200.0, "EWMA must smooth, not jump");
    }

    #[test]
    fn readers_never_see_a_torn_snapshot() {
        let dir = std::env::temp_dir().join(format!("waypart-hb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("status.json");
        write_snapshot(&path, "1-of-2", false).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let (stop, path) = (Arc::clone(&stop), path.clone());
            thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    write_snapshot(&path, "1-of-2", false).unwrap();
                }
            })
        };
        // Hammer reads against the writer: every observed file must be a
        // complete, schema-valid snapshot (rename atomicity).
        for _ in 0..2000 {
            let text = std::fs::read_to_string(&path).unwrap();
            validate_line(text.trim()).expect("read a torn or invalid heartbeat");
        }
        stop.store(true, Ordering::Release);
        writer.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_thread_writes_and_finishes_done() {
        let dir = std::env::temp_dir().join(format!("waypart-hb-run-{}", std::process::id()));
        let hb = start_heartbeat(&dir, "2-of-2", Duration::from_millis(10)).unwrap();
        let path = hb.path().to_path_buf();
        thread::sleep(Duration::from_millis(50));
        let live = std::fs::read_to_string(&path).unwrap();
        assert!(live.contains("\"done\":false"));
        hb.finish();
        let fin = std::fs::read_to_string(&path).unwrap();
        assert!(fin.contains("\"done\":true"), "finish must stamp done=true");
        validate_line(fin.trim()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
