//! Event sinks: in-memory collection, JSONL streaming, Chrome
//! `trace_event` export, and metric aggregation.
//!
//! All sinks are `Send + Sync` (sweep workers emit concurrently) and all
//! of them treat I/O errors as non-fatal: telemetry must never abort a
//! measurement run.

use crate::event::{push_json_str, push_json_value, Event, EventKind, FieldValue, Stamp};
use crate::Sink;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Collects events in memory — for tests and the `probe trace` decision
/// dump.
#[derive(Default)]
pub struct CollectingSink {
    events: Mutex<Vec<Event>>,
}

impl CollectingSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains and returns everything collected so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("collecting sink"))
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("collecting sink").len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for CollectingSink {
    fn record(&self, event: &Event) {
        self.events.lock().expect("collecting sink").push(event.clone());
    }
}

/// Fans every event out to several sinks (e.g. JSONL + Chrome + metrics).
pub struct MultiSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl MultiSink {
    /// A sink that forwards to every element of `sinks`.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }
    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

/// Streams events to a file as JSON Lines — one event object per line,
/// in the schema [`crate::schema`] validates.
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(JsonlSink { out: Mutex::new(std::io::BufWriter::new(file)), path })
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = event.to_jsonl();
        line.push('\n');
        let mut out = self.out.lock().expect("jsonl sink");
        let _ = out.write_all(line.as_bytes());
    }
    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink").flush();
    }
}

/// Accumulates events and writes a Chrome `trace_event`-format JSON array
/// on [`ChromeTraceSink::flush`], loadable in `chrome://tracing` and
/// Perfetto.
///
/// Mapping: cycle-stamped events land on pid 1 ("simulated time", 1 cycle
/// rendered as 1 µs), wall-stamped events on pid 2 ("host time"). Each
/// simulated run gets its own track (tid) because every run's cycle clock
/// restarts at 0.
pub struct ChromeTraceSink {
    entries: Mutex<Vec<String>>,
    path: PathBuf,
}

/// Chrome pid for the simulated-cycles clock.
const PID_SIM: u32 = 1;
/// Chrome pid for the host wall clock.
const PID_HOST: u32 = 2;

impl ChromeTraceSink {
    /// A sink that will write `path` when flushed.
    pub fn create(path: impl AsRef<Path>) -> Self {
        let meta = |pid: u32, name: &str| {
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            )
        };
        ChromeTraceSink {
            entries: Mutex::new(vec![
                meta(PID_SIM, "simulated time (1 cycle = 1 us)"),
                meta(PID_HOST, "host time"),
            ]),
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn render(event: &Event) -> String {
        let (ph, pid) = match (event.kind, event.stamp) {
            (EventKind::Begin, Stamp::Cycles(_)) => ("B", PID_SIM),
            (EventKind::Begin, Stamp::WallUs(_)) => ("B", PID_HOST),
            (EventKind::End, Stamp::Cycles(_)) => ("E", PID_SIM),
            (EventKind::End, Stamp::WallUs(_)) => ("E", PID_HOST),
            (EventKind::Instant, Stamp::Cycles(_)) => ("i", PID_SIM),
            (EventKind::Instant, Stamp::WallUs(_)) => ("i", PID_HOST),
            (EventKind::Counter, Stamp::Cycles(_)) => ("C", PID_SIM),
            (EventKind::Counter, Stamp::WallUs(_)) => ("C", PID_HOST),
        };
        let mut out = String::with_capacity(96 + event.fields.len() * 24);
        out.push_str("{\"name\":");
        push_json_str(&mut out, event.name);
        out.push_str(",\"ph\":\"");
        out.push_str(ph);
        out.push_str("\",\"pid\":");
        out.push_str(&pid.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&event.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&event.stamp.ticks().to_string());
        if event.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        for (i, (k, v)) in event.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_json_value(&mut out, v);
        }
        out.push_str("}}");
        out
    }
}

impl Sink for ChromeTraceSink {
    fn record(&self, event: &Event) {
        let line = Self::render(event);
        self.entries.lock().expect("chrome sink").push(line);
    }

    /// Writes the accumulated trace as a single JSON array.
    fn flush(&self) {
        let entries = self.entries.lock().expect("chrome sink");
        let mut text = String::with_capacity(entries.iter().map(|e| e.len() + 2).sum::<usize>() + 4);
        text.push_str("[\n");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                text.push_str(",\n");
            }
            text.push_str(e);
        }
        text.push_str("\n]\n");
        let _ = std::fs::write(&self.path, text);
    }
}

/// Per-event-name aggregate maintained by [`MetricsSink`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricAgg {
    /// Events recorded under this name.
    pub count: u64,
    /// Per-field sums of numeric payloads (booleans count `true`s).
    pub sums: BTreeMap<&'static str, f64>,
    /// Per-field maxima of numeric payloads.
    pub maxes: BTreeMap<&'static str, f64>,
}

/// Aggregates every event into per-name counts and numeric field
/// sums/maxima — the source of `reproduce`'s end-of-run metrics summary.
#[derive(Default)]
pub struct MetricsSink {
    aggs: Mutex<BTreeMap<&'static str, MetricAgg>>,
}

impl MetricsSink {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all aggregates, keyed by event name.
    pub fn snapshot(&self) -> BTreeMap<&'static str, MetricAgg> {
        self.aggs.lock().expect("metrics sink").clone()
    }

    /// Renders the aggregates as an aligned text table.
    pub fn render_table(&self) -> String {
        let aggs = self.snapshot();
        if aggs.is_empty() {
            return "no telemetry events recorded\n".to_string();
        }
        let mut out = String::new();
        out.push_str(&format!("{:<18} {:>9}  field sums\n", "event", "count"));
        for (name, agg) in &aggs {
            let mut sums = String::new();
            for (k, v) in &agg.sums {
                if !sums.is_empty() {
                    sums.push_str("  ");
                }
                // Integers dominate; render exact when the sum is one.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    sums.push_str(&format!("{k}={}", *v as i64));
                } else {
                    sums.push_str(&format!("{k}={v:.3}"));
                }
            }
            out.push_str(&format!("{name:<18} {:>9}  {sums}\n", agg.count));
        }
        out
    }

    /// Renders the aggregates as a JSON object (`{"events": {...}}`
    /// fragment body), for embedding into a metrics file.
    pub fn to_json_value(&self) -> String {
        let aggs = self.snapshot();
        let mut out = String::from("{");
        for (i, (name, agg)) in aggs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&agg.count.to_string());
            out.push_str(",\"sums\":{");
            for (j, (k, v)) in agg.sums.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_value(&mut out, &FieldValue::F64(*v));
            }
            out.push_str("},\"max\":{");
            for (j, (k, v)) in agg.maxes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_value(&mut out, &FieldValue::F64(*v));
            }
            out.push_str("}}");
        }
        out.push('}');
        out
    }
}

impl Sink for MetricsSink {
    fn record(&self, event: &Event) {
        let mut aggs = self.aggs.lock().expect("metrics sink");
        let agg = aggs.entry(event.name).or_default();
        agg.count += 1;
        for (k, v) in &event.fields {
            let num = match v {
                FieldValue::U64(n) => Some(*n as f64),
                FieldValue::I64(n) => Some(*n as f64),
                FieldValue::F64(x) if x.is_finite() => Some(*x),
                FieldValue::Bool(b) => Some(f64::from(u8::from(*b))),
                _ => None,
            };
            if let Some(x) = num {
                *agg.sums.entry(k).or_insert(0.0) += x;
                let m = agg.maxes.entry(k).or_insert(f64::NEG_INFINITY);
                if x > *m {
                    *m = x;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, ts: u64) -> Event {
        Event::instant(name, Stamp::Cycles(ts))
    }

    #[test]
    fn collecting_sink_roundtrips() {
        let s = CollectingSink::new();
        s.record(&ev("a", 1));
        s.record(&ev("b", 2));
        let got = s.take();
        assert_eq!(got.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn metrics_sink_aggregates_counts_sums_maxes() {
        let m = MetricsSink::new();
        m.record(&ev("cache.lookup", 0).field("hit", true).field("bytes", 100u64));
        m.record(&ev("cache.lookup", 0).field("hit", false).field("bytes", 50u64));
        let snap = m.snapshot();
        let agg = &snap["cache.lookup"];
        assert_eq!(agg.count, 2);
        assert_eq!(agg.sums["hit"], 1.0);
        assert_eq!(agg.sums["bytes"], 150.0);
        assert_eq!(agg.maxes["bytes"], 100.0);
        assert!(m.render_table().contains("cache.lookup"));
        let json = m.to_json_value();
        assert!(json.contains("\"cache.lookup\""), "{json}");
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let path = std::env::temp_dir().join(format!("waypart-jsonl-{}.jsonl", std::process::id()));
        let s = JsonlSink::create(&path).unwrap();
        s.record(&ev("x.y", 3).field("v", 1.25));
        s.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        crate::schema::validate_jsonl(&text).expect("schema-valid line");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chrome_sink_writes_loadable_array() {
        let path = std::env::temp_dir().join(format!("waypart-chrome-{}.json", std::process::id()));
        let s = ChromeTraceSink::create(&path);
        s.record(&Event::begin("span", Stamp::Cycles(0)).field("who", "test"));
        s.record(&Event::end("span", Stamp::Cycles(10)));
        s.record(&Event::instant("mark", Stamp::WallUs(5)));
        s.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = crate::schema::parse_json(&text).expect("valid JSON");
        let arr = match v {
            crate::schema::Json::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        // 2 process_name metadata records + 3 events.
        assert_eq!(arr.len(), 5);
        assert!(text.contains("\"ph\":\"B\"") && text.contains("\"ph\":\"E\""));
        assert!(text.contains("\"pid\":2"), "host event must land on pid 2");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = std::sync::Arc::new(CollectingSink::new());
        let b = std::sync::Arc::new(MetricsSink::new());
        let multi = MultiSink::new(vec![a.clone(), b.clone()]);
        multi.record(&ev("m", 1));
        assert_eq!(a.len(), 1);
        assert_eq!(b.snapshot()["m"].count, 1);
    }
}
