//! Event sinks: in-memory collection, JSONL streaming, Chrome
//! `trace_event` export, metric aggregation, and series/histogram
//! folding.
//!
//! All sinks are `Send + Sync` (sweep workers emit concurrently) and all
//! of them treat I/O errors as non-fatal: telemetry must never abort a
//! measurement run.

use crate::event::{push_json_str, push_json_value, Event, EventKind, FieldValue, Stamp};
use crate::hist::Histogram;
use crate::series::TimeSeries;
use crate::Sink;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Collects events in memory — for tests and the `probe trace` decision
/// dump.
#[derive(Default)]
pub struct CollectingSink {
    events: Mutex<Vec<Event>>,
}

impl CollectingSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains and returns everything collected so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("collecting sink"))
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("collecting sink").len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for CollectingSink {
    fn record(&self, event: &Event) {
        self.events.lock().expect("collecting sink").push(event.clone());
    }
}

/// Fans every event out to several sinks (e.g. JSONL + Chrome + metrics).
pub struct MultiSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl MultiSink {
    /// A sink that forwards to every element of `sinks`.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }
    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

/// Streams events to a file as JSON Lines — one event object per line,
/// in the schema [`crate::schema`] validates.
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(JsonlSink { out: Mutex::new(std::io::BufWriter::new(file)), path })
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = event.to_jsonl();
        line.push('\n');
        let mut out = self.out.lock().expect("jsonl sink");
        let _ = out.write_all(line.as_bytes());
    }
    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink").flush();
    }
}

/// Accumulates events and writes a Chrome `trace_event`-format JSON array
/// on [`ChromeTraceSink::flush`], loadable in `chrome://tracing` and
/// Perfetto.
///
/// Mapping: cycle-stamped events land on pid 1 ("simulated time", 1 cycle
/// rendered as 1 µs), wall-stamped events on pid 2 ("host time"). Each
/// simulated run gets its own track (tid) because every run's cycle clock
/// restarts at 0.
pub struct ChromeTraceSink {
    entries: Mutex<Vec<String>>,
    path: PathBuf,
}

/// Chrome pid for the simulated-cycles clock.
const PID_SIM: u32 = 1;
/// Chrome pid for the host wall clock.
const PID_HOST: u32 = 2;

impl ChromeTraceSink {
    /// A sink that will write `path` when flushed.
    pub fn create(path: impl AsRef<Path>) -> Self {
        let meta = |pid: u32, name: &str| {
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            )
        };
        ChromeTraceSink {
            entries: Mutex::new(vec![
                meta(PID_SIM, "simulated time (1 cycle = 1 us)"),
                meta(PID_HOST, "host time"),
            ]),
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn render(event: &Event) -> String {
        let (ph, pid) = match (event.kind, event.stamp) {
            (EventKind::Begin, Stamp::Cycles(_)) => ("B", PID_SIM),
            (EventKind::Begin, Stamp::WallUs(_)) => ("B", PID_HOST),
            (EventKind::End, Stamp::Cycles(_)) => ("E", PID_SIM),
            (EventKind::End, Stamp::WallUs(_)) => ("E", PID_HOST),
            (EventKind::Instant, Stamp::Cycles(_)) => ("i", PID_SIM),
            (EventKind::Instant, Stamp::WallUs(_)) => ("i", PID_HOST),
            (EventKind::Counter, Stamp::Cycles(_)) => ("C", PID_SIM),
            (EventKind::Counter, Stamp::WallUs(_)) => ("C", PID_HOST),
        };
        let mut out = String::with_capacity(96 + event.fields.len() * 24);
        out.push_str("{\"name\":");
        push_json_str(&mut out, event.name);
        out.push_str(",\"ph\":\"");
        out.push_str(ph);
        out.push_str("\",\"pid\":");
        out.push_str(&pid.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&event.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&event.stamp.ticks().to_string());
        if event.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        for (i, (k, v)) in event.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_json_value(&mut out, v);
        }
        out.push_str("}}");
        out
    }
}

impl Sink for ChromeTraceSink {
    fn record(&self, event: &Event) {
        let line = Self::render(event);
        self.entries.lock().expect("chrome sink").push(line);
    }

    /// Writes the accumulated trace as a single JSON array.
    fn flush(&self) {
        let entries = self.entries.lock().expect("chrome sink");
        let mut text = String::with_capacity(entries.iter().map(|e| e.len() + 2).sum::<usize>() + 4);
        text.push_str("[\n");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                text.push_str(",\n");
            }
            text.push_str(e);
        }
        text.push_str("\n]\n");
        let _ = std::fs::write(&self.path, text);
    }
}

/// Per-event-name aggregate maintained by [`MetricsSink`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricAgg {
    /// Events recorded under this name.
    pub count: u64,
    /// Per-field sums of numeric payloads (booleans count `true`s).
    pub sums: BTreeMap<&'static str, f64>,
    /// Per-field maxima of numeric payloads.
    pub maxes: BTreeMap<&'static str, f64>,
}

/// Aggregates every event into per-name counts and numeric field
/// sums/maxima — the source of `reproduce`'s end-of-run metrics summary.
#[derive(Default)]
pub struct MetricsSink {
    aggs: Mutex<BTreeMap<&'static str, MetricAgg>>,
}

impl MetricsSink {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all aggregates, keyed by event name.
    pub fn snapshot(&self) -> BTreeMap<&'static str, MetricAgg> {
        self.aggs.lock().expect("metrics sink").clone()
    }

    /// Renders the aggregates as an aligned text table.
    pub fn render_table(&self) -> String {
        let aggs = self.snapshot();
        if aggs.is_empty() {
            return "no telemetry events recorded\n".to_string();
        }
        let mut out = String::new();
        out.push_str(&format!("{:<18} {:>9}  field sums\n", "event", "count"));
        for (name, agg) in &aggs {
            let mut sums = String::new();
            for (k, v) in &agg.sums {
                if !sums.is_empty() {
                    sums.push_str("  ");
                }
                // Integers dominate; render exact when the sum is one.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    sums.push_str(&format!("{k}={}", *v as i64));
                } else {
                    sums.push_str(&format!("{k}={v:.3}"));
                }
            }
            out.push_str(&format!("{name:<18} {:>9}  {sums}\n", agg.count));
        }
        out
    }

    /// Renders the aggregates as a JSON object (`{"events": {...}}`
    /// fragment body), for embedding into a metrics file.
    pub fn to_json_value(&self) -> String {
        let aggs = self.snapshot();
        let mut out = String::from("{");
        for (i, (name, agg)) in aggs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&agg.count.to_string());
            out.push_str(",\"sums\":{");
            for (j, (k, v)) in agg.sums.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_value(&mut out, &FieldValue::F64(*v));
            }
            out.push_str("},\"max\":{");
            for (j, (k, v)) in agg.maxes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_value(&mut out, &FieldValue::F64(*v));
            }
            out.push_str("}}");
        }
        out.push('}');
        out
    }
}

impl Sink for MetricsSink {
    fn record(&self, event: &Event) {
        let mut aggs = self.aggs.lock().expect("metrics sink");
        let agg = aggs.entry(event.name).or_default();
        agg.count += 1;
        for (k, v) in &event.fields {
            let num = match v {
                FieldValue::U64(n) => Some(*n as f64),
                FieldValue::I64(n) => Some(*n as f64),
                FieldValue::F64(x) if x.is_finite() => Some(*x),
                FieldValue::Bool(b) => Some(f64::from(u8::from(*b))),
                _ => None,
            };
            if let Some(x) = num {
                *agg.sums.entry(k).or_insert(0.0) += x;
                let m = agg.maxes.entry(k).or_insert(f64::NEG_INFINITY);
                if x > *m {
                    *m = x;
                }
            }
        }
    }
}

/// Folds the raw event stream into named [`TimeSeries`] and
/// [`Histogram`]s in-process — the aggregation layer every serving stack
/// puts on top of its span/event firehose.
///
/// Folding rules (deliberately mechanical, so producers don't need to
/// know about this sink):
///
/// * every numeric field of a `counter` or `instant` event becomes a
///   point in the series `"{event}.{field}"`, keyed by the event's track
///   id (each simulated run restarts its cycle clock, so series from
///   different runs must not interleave);
/// * a `seconds` field on an `end` event (the span-duration convention
///   used by `figure.run`) is additionally recorded — in microseconds —
///   into the histogram `"{event}.seconds_us"`.
///
/// The series population is capped: a full `reproduce` executes
/// thousands of runs, each with its own track, and an unbounded map
/// would defeat the series' own O(capacity) bound. Past the cap, new
/// (name, tid) keys are dropped and counted.
pub struct SeriesSink {
    state: Mutex<SeriesState>,
    capacity: usize,
    max_series: usize,
}

#[derive(Default)]
struct SeriesState {
    series: BTreeMap<(String, u32), TimeSeries>,
    hists: BTreeMap<String, Histogram>,
    dropped_series: u64,
}

impl Default for SeriesSink {
    fn default() -> Self {
        Self::new()
    }
}

impl SeriesSink {
    /// Per-series point capacity and the default series-count cap.
    pub const DEFAULT_CAPACITY: usize = 512;
    /// Default cap on distinct (name, tid) series.
    pub const DEFAULT_MAX_SERIES: usize = 4096;

    /// A sink with the default capacities.
    pub fn new() -> Self {
        Self::with_limits(Self::DEFAULT_CAPACITY, Self::DEFAULT_MAX_SERIES)
    }

    /// A sink whose series hold at most `capacity` points each, with at
    /// most `max_series` distinct (name, tid) series.
    pub fn with_limits(capacity: usize, max_series: usize) -> Self {
        SeriesSink { state: Mutex::new(SeriesState::default()), capacity, max_series }
    }

    /// Number of distinct series folded so far.
    pub fn series_count(&self) -> usize {
        self.state.lock().expect("series sink").series.len()
    }

    /// Number of distinct histograms folded so far.
    pub fn hist_count(&self) -> usize {
        self.state.lock().expect("series sink").hists.len()
    }

    /// Series dropped by the `max_series` cap.
    pub fn dropped_series(&self) -> u64 {
        self.state.lock().expect("series sink").dropped_series
    }

    /// A snapshot of one series, if present.
    pub fn series(&self, name: &str, tid: u32) -> Option<TimeSeries> {
        self.state.lock().expect("series sink").series.get(&(name.to_string(), tid)).cloned()
    }

    /// A snapshot of one histogram, if present.
    pub fn hist(&self, name: &str) -> Option<Histogram> {
        self.state.lock().expect("series sink").hists.get(name).cloned()
    }

    /// Renders every folded series and histogram as JSONL record lines
    /// (schema-valid; see [`crate::schema`]), with a trailing newline
    /// after each. Empty string when nothing was folded.
    pub fn render_jsonl(&self) -> String {
        let state = self.state.lock().expect("series sink");
        let mut out = String::new();
        for ((name, tid), series) in &state.series {
            out.push_str(&series.to_json_record(name, *tid));
            out.push('\n');
        }
        for (name, hist) in &state.hists {
            out.push_str(&hist.to_json_record(name));
            out.push('\n');
        }
        out
    }

    fn numeric(v: &FieldValue) -> Option<f64> {
        match v {
            FieldValue::U64(n) => Some(*n as f64),
            FieldValue::I64(n) => Some(*n as f64),
            FieldValue::F64(x) if x.is_finite() => Some(*x),
            _ => None,
        }
    }
}

impl Sink for SeriesSink {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("series sink");
        match event.kind {
            EventKind::Counter | EventKind::Instant => {
                for (k, v) in &event.fields {
                    let Some(x) = Self::numeric(v) else { continue };
                    let key = (format!("{}.{}", event.name, k), event.tid);
                    if !state.series.contains_key(&key) && state.series.len() >= self.max_series {
                        state.dropped_series += 1;
                        continue;
                    }
                    let capacity = self.capacity;
                    state
                        .series
                        .entry(key)
                        .or_insert_with(|| TimeSeries::new(capacity))
                        .push(event.stamp, x);
                }
            }
            EventKind::End => {
                if let Some(FieldValue::F64(secs)) = event.get("seconds") {
                    if secs.is_finite() && *secs >= 0.0 {
                        let name = format!("{}.seconds_us", event.name);
                        state.hists.entry(name).or_default().record((secs * 1e6) as u64);
                    }
                }
            }
            EventKind::Begin => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, ts: u64) -> Event {
        Event::instant(name, Stamp::Cycles(ts))
    }

    #[test]
    fn collecting_sink_roundtrips() {
        let s = CollectingSink::new();
        s.record(&ev("a", 1));
        s.record(&ev("b", 2));
        let got = s.take();
        assert_eq!(got.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn metrics_sink_aggregates_counts_sums_maxes() {
        let m = MetricsSink::new();
        m.record(&ev("cache.lookup", 0).field("hit", true).field("bytes", 100u64));
        m.record(&ev("cache.lookup", 0).field("hit", false).field("bytes", 50u64));
        let snap = m.snapshot();
        let agg = &snap["cache.lookup"];
        assert_eq!(agg.count, 2);
        assert_eq!(agg.sums["hit"], 1.0);
        assert_eq!(agg.sums["bytes"], 150.0);
        assert_eq!(agg.maxes["bytes"], 100.0);
        assert!(m.render_table().contains("cache.lookup"));
        let json = m.to_json_value();
        assert!(json.contains("\"cache.lookup\""), "{json}");
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let path = std::env::temp_dir().join(format!("waypart-jsonl-{}.jsonl", std::process::id()));
        let s = JsonlSink::create(&path).unwrap();
        s.record(&ev("x.y", 3).field("v", 1.25));
        s.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        crate::schema::validate_jsonl(&text).expect("schema-valid line");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chrome_sink_writes_loadable_array() {
        let path = std::env::temp_dir().join(format!("waypart-chrome-{}.json", std::process::id()));
        let s = ChromeTraceSink::create(&path);
        s.record(&Event::begin("span", Stamp::Cycles(0)).field("who", "test"));
        s.record(&Event::end("span", Stamp::Cycles(10)));
        s.record(&Event::instant("mark", Stamp::WallUs(5)));
        s.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = crate::schema::parse_json(&text).expect("valid JSON");
        let arr = match v {
            crate::schema::Json::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        // 2 process_name metadata records + 3 events.
        assert_eq!(arr.len(), 5);
        assert!(text.contains("\"ph\":\"B\"") && text.contains("\"ph\":\"E\""));
        assert!(text.contains("\"pid\":2"), "host event must land on pid 2");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn series_sink_folds_counters_per_track() {
        let s = SeriesSink::new();
        let mut a = Event::counter("perfmon.window", Stamp::Cycles(100)).field("mpki", 4.0);
        a.tid = 1;
        let mut b = Event::counter("perfmon.window", Stamp::Cycles(200)).field("mpki", 6.0);
        b.tid = 1;
        let mut c = Event::counter("perfmon.window", Stamp::Cycles(100)).field("mpki", 9.0);
        c.tid = 2;
        s.record(&a);
        s.record(&b);
        s.record(&c);
        assert_eq!(s.series_count(), 2, "one series per (name, tid)");
        let t1 = s.series("perfmon.window.mpki", 1).expect("track 1 series");
        assert_eq!(t1.points(), &[(100, 4.0), (200, 6.0)]);
        assert_eq!(s.series("perfmon.window.mpki", 2).unwrap().len(), 1);
    }

    #[test]
    fn series_sink_ignores_non_numeric_and_span_begins() {
        let s = SeriesSink::new();
        s.record(&ev("x", 1).field("who", "name").field("n", 2u64));
        s.record(&Event::begin("span", Stamp::Cycles(0)).field("n", 3u64));
        assert_eq!(s.series_count(), 1);
        assert!(s.series("x.who", 0).is_none());
    }

    #[test]
    fn series_sink_folds_span_seconds_into_hist() {
        let s = SeriesSink::new();
        s.record(&Event::end("figure.run", Stamp::WallUs(10)).field("seconds", 0.5));
        s.record(&Event::end("figure.run", Stamp::WallUs(20)).field("seconds", 1.5));
        let h = s.hist("figure.run.seconds_us").expect("histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1_500_000);
    }

    #[test]
    fn series_sink_caps_distinct_series() {
        let s = SeriesSink::with_limits(8, 2);
        for tid in 0..4u32 {
            let mut e = ev("m", 1).field("v", 1u64);
            e.tid = tid;
            s.record(&e);
        }
        assert_eq!(s.series_count(), 2);
        assert_eq!(s.dropped_series(), 2);
    }

    #[test]
    fn series_sink_jsonl_records_validate() {
        let s = SeriesSink::new();
        s.record(&ev("m", 5).field("v", 1.25));
        s.record(&Event::end("figure.run", Stamp::WallUs(9)).field("seconds", 0.25));
        let text = s.render_jsonl();
        assert_eq!(text.lines().count(), 2);
        crate::schema::validate_jsonl(&text).expect("records validate");
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = std::sync::Arc::new(CollectingSink::new());
        let b = std::sync::Arc::new(MetricsSink::new());
        let multi = MultiSink::new(vec![a.clone(), b.clone()]);
        multi.record(&ev("m", 1));
        assert_eq!(a.len(), 1);
        assert_eq!(b.snapshot()["m"].count, 1);
    }
}
