//! Folding aggregate records from several trace files into one —
//! the merge side of sharded execution.
//!
//! A sharded `reproduce` leaves one JSONL trace per worker, each ending
//! in the `{"record":"series"|"hist"}` lines its `SeriesSink` rendered.
//! [`AggregateMerge`] parses those lines back into the mergeable
//! [`TimeSeries`]/[`Histogram`] types (via their `from_parts`
//! constructors) and folds records with the same key together —
//! series keyed by `(name, tid)`, histograms by `name` — so the merged
//! render is what one process recording every shard's samples would
//! have produced (exactly for histograms, within the documented
//! downsample bounds for series). Event lines pass through untouched by
//! [`AggregateMerge::fold_jsonl`]; use [`merge_aggregate_jsonl`] to fold
//! whole documents.

use crate::hist::Histogram;
use crate::schema::{self, Json};
use crate::series::TimeSeries;
use std::collections::BTreeMap;

/// An accumulator folding `{"record":...}` JSONL lines across shards.
#[derive(Default)]
pub struct AggregateMerge {
    series: BTreeMap<(String, u32), TimeSeries>,
    hists: BTreeMap<String, Histogram>,
    /// Aggregate-record lines that failed to parse or validate.
    bad_records: u64,
}

impl AggregateMerge {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds every aggregate-record line of `text` into the accumulator
    /// and returns the non-record (event) lines verbatim, in order, so a
    /// merged trace can keep each shard's events while collapsing the
    /// aggregates. Blank lines are dropped; malformed record lines are
    /// counted in [`Self::bad_records`], not propagated.
    pub fn fold_jsonl<'a>(&mut self, text: &'a str) -> Vec<&'a str> {
        let mut events = Vec::new();
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            // Cheap pre-filter: every record line starts with the
            // `record` key (our own renderers put it first), but accept
            // any object carrying the key to stay producer-agnostic.
            if !trimmed.contains("\"record\"") {
                events.push(line);
                continue;
            }
            match schema::parse_json(trimmed) {
                Ok(v) if v.get("record").is_some() => {
                    if self.fold_record(&v, trimmed).is_none() {
                        self.bad_records += 1;
                    }
                }
                Ok(_) => events.push(line),
                Err(_) => {
                    self.bad_records += 1;
                }
            }
        }
        events
    }

    /// Folds one parsed record object; `None` if it is malformed. `raw`
    /// is the record's original JSON text, needed to read the `u128`
    /// histogram sum without the f64 round-trip of [`Json::Num`].
    fn fold_record(&mut self, v: &Json, raw: &str) -> Option<()> {
        let kind = match v.get("record")? {
            Json::Str(s) => s.as_str(),
            _ => return None,
        };
        let name = match v.get("name")? {
            Json::Str(s) if !s.is_empty() => s.clone(),
            _ => return None,
        };
        match kind {
            "series" => {
                let tid = get_u64(v, "tid")? as u32;
                let clock = match v.get("clock")? {
                    // Map to the 'static names TimeSeries pins.
                    Json::Str(s) if s == "cycles" => "cycles",
                    Json::Str(s) if s == "wall_us" => "wall_us",
                    _ => return None,
                };
                let stride = get_u64(v, "stride")?;
                let total = get_u64(v, "total")?;
                let points = get_pairs(v, "points")?;
                let incoming = TimeSeries::from_parts(
                    crate::sinks::SeriesSink::DEFAULT_CAPACITY,
                    clock,
                    stride,
                    total,
                    points,
                );
                self.series
                    .entry((name, tid))
                    .and_modify(|s| s.merge(&incoming))
                    .or_insert(incoming);
            }
            "hist" => {
                // Fall back to the f64 path for producers whose spacing
                // defeats the raw scan (e.g. `"sum" : 1`).
                let sum = get_u128_raw(raw, "sum")
                    .or_else(|| get_u64(v, "sum").map(u128::from))?;
                let min = get_u64(v, "min")?;
                let max = get_u64(v, "max")?;
                let buckets = get_pairs(v, "buckets")?;
                let incoming = Histogram::from_parts(
                    buckets.into_iter().map(|(lo, n)| (lo, n as u64)),
                    sum,
                    min,
                    max,
                );
                self.hists.entry(name).and_modify(|h| h.merge(&incoming)).or_insert(incoming);
            }
            _ => return None,
        }
        Some(())
    }

    /// Number of distinct `(name, tid)` series folded.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Number of distinct histograms folded.
    pub fn hist_count(&self) -> usize {
        self.hists.len()
    }

    /// Aggregate-record lines that failed to parse or validate.
    pub fn bad_records(&self) -> u64 {
        self.bad_records
    }

    /// A folded series by name and track id.
    pub fn series(&self, name: &str, tid: u32) -> Option<&TimeSeries> {
        self.series.get(&(name.to_string(), tid))
    }

    /// A folded histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Renders the folded aggregates as JSONL record lines in the same
    /// deterministic (BTreeMap) order `SeriesSink::render_jsonl` uses,
    /// one trailing newline per line; empty when nothing folded.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for ((name, tid), series) in &self.series {
            out.push_str(&series.to_json_record(name, *tid));
            out.push('\n');
        }
        for (name, hist) in &self.hists {
            out.push_str(&hist.to_json_record(name));
            out.push('\n');
        }
        out
    }
}

fn get_u64(v: &Json, key: &str) -> Option<u64> {
    match v.get(key)? {
        Json::Num { value, is_int } if *is_int && *value >= 0.0 => Some(*value as u64),
        _ => None,
    }
}

/// Reads an unsigned integer field straight from the record's raw JSON
/// text. The histogram `sum` is a `u128`; [`Json::Num`] carries an f64,
/// which silently rounds integers above 2^53 and cannot represent large
/// sums at all — so the exact histogram fold must bypass it. The key
/// cannot collide with string *values*: `"sum":` contains an unescaped
/// quote, which never occurs inside an escaped JSON string.
fn get_u128_raw(raw: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\":");
    let rest = raw[raw.find(&pat)? + pat.len()..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    if matches!(rest[end..].chars().next(), Some('.' | 'e' | 'E')) {
        return None; // a float token is a malformed record, not a sum
    }
    rest[..end].parse::<u128>().ok()
}

/// Reads a `[[u64, f64], ...]` pair array (series points / hist buckets).
fn get_pairs(v: &Json, key: &str) -> Option<Vec<(u64, f64)>> {
    let items = match v.get(key)? {
        Json::Arr(items) => items,
        _ => return None,
    };
    let mut pairs = Vec::with_capacity(items.len());
    for item in items {
        let pair = match item {
            Json::Arr(pair) if pair.len() == 2 => pair,
            _ => return None,
        };
        let first = match &pair[0] {
            Json::Num { value, is_int } if *is_int && *value >= 0.0 => *value as u64,
            _ => return None,
        };
        let second = match &pair[1] {
            Json::Num { value, .. } => *value,
            _ => return None,
        };
        pairs.push((first, second));
    }
    Some(pairs)
}

/// Merges several JSONL trace documents: every shard's event lines pass
/// through in input order, then the folded aggregate records follow in
/// one deterministic block. The result validates under
/// [`crate::schema::validate_jsonl`] whenever the inputs did.
pub fn merge_aggregate_jsonl<'a>(docs: impl IntoIterator<Item = &'a str>) -> String {
    let mut acc = AggregateMerge::new();
    let mut out = String::new();
    for doc in docs {
        for line in acc.fold_jsonl(doc) {
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str(&acc.render_jsonl());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Stamp};

    fn series_line(name: &str, tid: u32, pts: &[(u64, f64)], total: u64) -> String {
        TimeSeries::from_parts(64, "cycles", 1, total, pts.to_vec()).to_json_record(name, tid)
    }

    #[test]
    fn folding_two_shards_equals_recording_union() {
        // Two shards each record half the samples of one histogram; the
        // fold must equal one histogram of the union (hist merge is
        // exact).
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for v in [3u64, 17, 900] {
            a.record(v);
            union.record(v);
        }
        for v in [5u64, 80_000] {
            b.record(v);
            union.record(v);
        }
        let mut acc = AggregateMerge::new();
        acc.fold_jsonl(&a.to_json_record("figure.run.seconds_us"));
        acc.fold_jsonl(&b.to_json_record("figure.run.seconds_us"));
        let folded = acc.hist("figure.run.seconds_us").expect("folded hist");
        assert_eq!(folded.count(), union.count());
        assert_eq!(folded.sum(), union.sum());
        assert_eq!(folded.min(), union.min());
        assert_eq!(folded.max(), union.max());
        assert_eq!(folded.p50(), union.p50());
    }

    #[test]
    fn huge_hist_sums_survive_the_fold_exactly() {
        // Sums above 2^53 are not representable in the f64 the JSON
        // parser carries; the fold must read them from the raw token.
        let sum = (1u128 << 90) + 12_345;
        let h = Histogram::from_parts([(1024u64, 3u64)], sum, 1000, 2000);
        let mut acc = AggregateMerge::new();
        acc.fold_jsonl(&h.to_json_record("sim.latency.sum"));
        acc.fold_jsonl(&h.to_json_record("sim.latency.sum"));
        let folded = acc.hist("sim.latency.sum").expect("folded hist");
        assert_eq!(folded.sum(), sum * 2, "u128 sums must fold without f64 rounding");
        assert_eq!(acc.bad_records(), 0);
    }

    #[test]
    fn series_records_fold_by_name_and_tid() {
        let mut acc = AggregateMerge::new();
        acc.fold_jsonl(&series_line("m.x", 1, &[(0, 1.0), (2, 2.0)], 2));
        acc.fold_jsonl(&series_line("m.x", 1, &[(1, 5.0)], 1));
        acc.fold_jsonl(&series_line("m.x", 2, &[(0, 9.0)], 1));
        assert_eq!(acc.series_count(), 2);
        let s = acc.series("m.x", 1).expect("merged series");
        assert_eq!(s.points(), &[(0, 1.0), (1, 5.0), (2, 2.0)]);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn event_lines_pass_through_in_order() {
        let ev1 = Event::instant("a.b", Stamp::WallUs(1)).to_jsonl();
        let ev2 = Event::counter("c.d", Stamp::Cycles(2)).field("n", 1u64).to_jsonl();
        let hist = {
            let mut h = Histogram::new();
            h.record(7);
            h.to_json_record("h")
        };
        let doc = format!("{ev1}\n{hist}\n\n{ev2}\n");
        let mut acc = AggregateMerge::new();
        let events = acc.fold_jsonl(&doc);
        assert_eq!(events, vec![ev1.as_str(), ev2.as_str()]);
        assert_eq!(acc.hist_count(), 1);
        assert_eq!(acc.bad_records(), 0);
    }

    #[test]
    fn malformed_records_are_counted_not_fatal() {
        let mut acc = AggregateMerge::new();
        let events = acc.fold_jsonl(
            "{\"record\":\"blob\",\"name\":\"x\"}\n{\"record\":\"series\",\"name\":\"\"}\n{\"record\": truncated",
        );
        assert!(events.is_empty());
        assert_eq!(acc.bad_records(), 3);
        assert_eq!(acc.series_count() + acc.hist_count(), 0);
    }

    #[test]
    fn merged_document_validates() {
        let ev = Event::instant("a.b", Stamp::WallUs(1)).to_jsonl();
        let mut h = Histogram::new();
        h.record_n(1000, 3);
        let shard1 = format!("{ev}\n{}\n", h.to_json_record("lat"));
        let shard2 = format!("{}\n{}\n", series_line("m", 0, &[(5, 1.5)], 1), h.to_json_record("lat"));
        let merged = merge_aggregate_jsonl([shard1.as_str(), shard2.as_str()]);
        let n = crate::schema::validate_jsonl(&merged).expect("merged trace validates");
        assert_eq!(n, 3, "1 event + 1 series + 1 folded hist");
        // The two hist records folded into one with doubled counts.
        let mut acc = AggregateMerge::new();
        acc.fold_jsonl(&merged);
        assert_eq!(acc.hist("lat").unwrap().count(), 6);
    }

    #[test]
    fn roundtrip_through_render_is_stable() {
        let mut acc = AggregateMerge::new();
        acc.fold_jsonl(&series_line("m", 1, &[(0, 1.0)], 1));
        let once = acc.render_jsonl();
        let mut again = AggregateMerge::new();
        again.fold_jsonl(&once);
        assert_eq!(again.render_jsonl(), once);
    }
}
