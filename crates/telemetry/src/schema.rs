//! The JSONL trace schema and its validator.
//!
//! One record per line. A line is either an **event** — a JSON object
//! with exactly this shape (extra keys are rejected so producers and
//! consumers cannot silently drift):
//!
//! ```json
//! {"name": "dyn.decision",           // non-empty string
//!  "kind": "instant",                // begin | end | instant | counter
//!  "clock": "cycles",                // cycles | wall_us
//!  "ts": 160000,                     // non-negative integer
//!  "tid": 3,                         // non-negative integer
//!  "fields": {"raw_mpki": 12.3}}     // object of scalars (string/number/bool/null)
//! ```
//!
//! — or an **aggregate record**, marked by a `record` key. Four record
//! types exist (key sets again exact). `series` and `hist` are produced
//! by `sinks::SeriesSink`:
//!
//! ```json
//! {"record": "series", "name": "perfmon.window.mpki", "tid": 3,
//!  "clock": "cycles", "stride": 1, "total": 42,
//!  "points": [[160000, 12.3], [320000, 11.9]]}
//!
//! {"record": "hist", "name": "figure.run.seconds_us",
//!  "count": 4, "sum": 3100000, "min": 250000, "max": 1500000,
//!  "p50": 700000, "p90": 1500000, "p99": 1500000,
//!  "buckets": [[245760, 1], [688128, 2], [1441792, 1]]}
//! ```
//!
//! `status` is a worker heartbeat (`progress::snapshot_json`, written to
//! each spool's `status.json` and legal mixed into traces), and `verdict`
//! is a machine-readable sentry judgement (`sentry --json`):
//!
//! ```json
//! {"record": "status", "worker": "1-of-2", "phase": "fig12",
//!  "runs_done": 3, "runs_total": 10, "mem_hits": 0, "disk_hits": 1,
//!  "misses": 2, "waits": 0, "takeovers": 0, "claims_held": 1,
//!  "ns_per_access": 99.4, "done": false, "at_unix_ms": 1754700000000}
//!
//! {"record": "verdict", "metric": "current_cold_s", "verdict": "pass",
//!  "current": 1.2, "median": 1.1, "threshold": 1.4, "n": 5}
//! ```
//!
//! The validator is used by `scripts/ci.sh` via the `validate_trace`
//! binary, and is deliberately `jq`-free: it ships its own minimal JSON
//! parser so the check runs in the offline vendored-stub environment.

/// A parsed JSON value (minimal model, enough to validate traces).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (validation only needs f64 plus an integer flag).
    Num { value: f64, is_int: bool },
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object (insertion order preserved)
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_int = true;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_int = false;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number")?;
    let value: f64 = text.parse().map_err(|_| format!("bad number `{text}`"))?;
    Ok(Json::Num { value, is_int })
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by our producers;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: validate at most one scalar's worth of
                // bytes — validating the whole remaining input here would
                // make document parsing quadratic.
                let chunk = &b[*pos..(*pos + 4).min(b.len())];
                let c = match std::str::from_utf8(chunk) {
                    Ok(s) => s.chars().next().ok_or("unterminated string")?,
                    Err(e) if e.valid_up_to() > 0 => std::str::from_utf8(&chunk[..e.valid_up_to()])
                        .expect("validated prefix")
                        .chars()
                        .next()
                        .expect("non-empty prefix"),
                    Err(_) => return Err("non-utf8 string".into()),
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

// ------------------------------------------------------------- validation

/// The exact key set every event line must carry.
const REQUIRED_KEYS: [&str; 6] = ["name", "kind", "clock", "ts", "tid", "fields"];
/// Legal `kind` values.
const KINDS: [&str; 4] = ["begin", "end", "instant", "counter"];
/// Legal `clock` values.
const CLOCKS: [&str; 2] = ["cycles", "wall_us"];
/// The exact key set of a `{"record":"series",...}` line.
const SERIES_KEYS: [&str; 7] = ["record", "name", "tid", "clock", "stride", "total", "points"];
/// The exact key set of a `{"record":"hist",...}` line.
const HIST_KEYS: [&str; 10] =
    ["record", "name", "count", "sum", "min", "max", "p50", "p90", "p99", "buckets"];
/// The exact key set of a `{"record":"status",...}` worker heartbeat
/// (see `progress::snapshot_json`).
const STATUS_KEYS: [&str; 14] = [
    "record",
    "worker",
    "phase",
    "runs_done",
    "runs_total",
    "mem_hits",
    "disk_hits",
    "misses",
    "waits",
    "takeovers",
    "claims_held",
    "ns_per_access",
    "done",
    "at_unix_ms",
];
/// The exact key set of a `{"record":"verdict",...}` line (`sentry --json`).
const VERDICT_KEYS: [&str; 7] =
    ["record", "metric", "verdict", "current", "median", "threshold", "n"];
/// Legal `verdict` values.
const VERDICTS: [&str; 4] = ["pass", "regression", "insufficient_history", "skip"];

/// Validates one JSONL line — an event or an aggregate record — against
/// the schema in the module docs.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = parse_json(line)?;
    let fields = match &v {
        Json::Obj(f) => f,
        _ => return Err("event line is not a JSON object".into()),
    };
    if v.get("record").is_some() {
        return validate_record(&v, fields);
    }
    for key in REQUIRED_KEYS {
        if v.get(key).is_none() {
            return Err(format!("missing required key `{key}`"));
        }
    }
    for (k, _) in fields {
        if !REQUIRED_KEYS.contains(&k.as_str()) {
            return Err(format!("unknown key `{k}`"));
        }
    }
    match v.get("name") {
        Some(Json::Str(s)) if !s.is_empty() => {}
        _ => return Err("`name` must be a non-empty string".into()),
    }
    match v.get("kind") {
        Some(Json::Str(s)) if KINDS.contains(&s.as_str()) => {}
        other => return Err(format!("`kind` must be one of {KINDS:?}, got {other:?}")),
    }
    match v.get("clock") {
        Some(Json::Str(s)) if CLOCKS.contains(&s.as_str()) => {}
        other => return Err(format!("`clock` must be one of {CLOCKS:?}, got {other:?}")),
    }
    for key in ["ts", "tid"] {
        match v.get(key) {
            Some(Json::Num { value, is_int }) if *is_int && *value >= 0.0 => {}
            other => return Err(format!("`{key}` must be a non-negative integer, got {other:?}")),
        }
    }
    match v.get("fields") {
        Some(Json::Obj(payload)) => {
            for (k, fv) in payload {
                match fv {
                    Json::Null | Json::Bool(_) | Json::Num { .. } | Json::Str(_) => {}
                    _ => return Err(format!("field `{k}` must be a scalar")),
                }
            }
        }
        _ => return Err("`fields` must be an object".into()),
    }
    Ok(())
}

/// Validates an aggregate-record line (`record` key present).
fn validate_record(v: &Json, fields: &[(String, Json)]) -> Result<(), String> {
    let kind = match v.get("record") {
        Some(Json::Str(s)) => s.as_str(),
        other => return Err(format!("`record` must be a string, got {other:?}")),
    };
    let required: &[&str] = match kind {
        "series" => &SERIES_KEYS,
        "hist" => &HIST_KEYS,
        "status" => &STATUS_KEYS,
        "verdict" => &VERDICT_KEYS,
        _ => {
            return Err(format!(
                "`record` must be \"series\", \"hist\", \"status\", or \"verdict\", got `{kind}`"
            ))
        }
    };
    for key in required {
        if v.get(key).is_none() {
            return Err(format!("{kind} record missing required key `{key}`"));
        }
    }
    for (k, _) in fields {
        if !required.contains(&k.as_str()) {
            return Err(format!("unknown key `{k}` in {kind} record"));
        }
    }
    if matches!(kind, "series" | "hist") {
        match v.get("name") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err("`name` must be a non-empty string".into()),
        }
    }
    match kind {
        "series" => {
            match v.get("clock") {
                Some(Json::Str(s)) if CLOCKS.contains(&s.as_str()) => {}
                other => return Err(format!("`clock` must be one of {CLOCKS:?}, got {other:?}")),
            }
            for key in ["tid", "total"] {
                non_neg_int(v, key)?;
            }
            match v.get("stride") {
                Some(Json::Num { value, is_int }) if *is_int && *value >= 1.0 => {}
                other => return Err(format!("`stride` must be a positive integer, got {other:?}")),
            }
            pair_array(v, "points", |second| matches!(second, Json::Num { .. }))
        }
        "hist" => {
            for key in ["count", "sum", "min", "max", "p50", "p90", "p99"] {
                non_neg_int(v, key)?;
            }
            pair_array(v, "buckets", |second| {
                matches!(second, Json::Num { value, is_int } if *is_int && *value >= 1.0)
            })
        }
        "status" => {
            match v.get("worker") {
                Some(Json::Str(s)) if !s.is_empty() => {}
                _ => return Err("`worker` must be a non-empty string".into()),
            }
            match v.get("phase") {
                Some(Json::Str(_)) => {}
                other => return Err(format!("`phase` must be a string, got {other:?}")),
            }
            for key in [
                "runs_done",
                "runs_total",
                "mem_hits",
                "disk_hits",
                "misses",
                "waits",
                "takeovers",
                "claims_held",
                "at_unix_ms",
            ] {
                non_neg_int(v, key)?;
            }
            match v.get("ns_per_access") {
                Some(Json::Null) => {}
                Some(Json::Num { value, .. }) if *value >= 0.0 => {}
                other => {
                    return Err(format!(
                        "`ns_per_access` must be null or a non-negative number, got {other:?}"
                    ))
                }
            }
            match v.get("done") {
                Some(Json::Bool(_)) => Ok(()),
                other => Err(format!("`done` must be a boolean, got {other:?}")),
            }
        }
        "verdict" => {
            match v.get("metric") {
                Some(Json::Str(s)) if !s.is_empty() => {}
                _ => return Err("`metric` must be a non-empty string".into()),
            }
            match v.get("verdict") {
                Some(Json::Str(s)) if VERDICTS.contains(&s.as_str()) => {}
                other => return Err(format!("`verdict` must be one of {VERDICTS:?}, got {other:?}")),
            }
            for key in ["current", "median", "threshold"] {
                match v.get(key) {
                    Some(Json::Null) | Some(Json::Num { .. }) => {}
                    other => return Err(format!("`{key}` must be null or a number, got {other:?}")),
                }
            }
            non_neg_int(v, "n")
        }
        _ => unreachable!("record kind checked above"),
    }
}

fn non_neg_int(v: &Json, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Json::Num { value, is_int }) if *is_int && *value >= 0.0 => Ok(()),
        other => Err(format!("`{key}` must be a non-negative integer, got {other:?}")),
    }
}

/// Checks that `key` is an array of `[non-negative-int, X]` pairs where
/// `ok_second` accepts X.
fn pair_array(v: &Json, key: &str, ok_second: impl Fn(&Json) -> bool) -> Result<(), String> {
    let items = match v.get(key) {
        Some(Json::Arr(items)) => items,
        other => return Err(format!("`{key}` must be an array, got {other:?}")),
    };
    for (i, item) in items.iter().enumerate() {
        let pair = match item {
            Json::Arr(pair) if pair.len() == 2 => pair,
            _ => return Err(format!("`{key}[{i}]` must be a 2-element array")),
        };
        match &pair[0] {
            Json::Num { value, is_int } if *is_int && *value >= 0.0 => {}
            _ => return Err(format!("`{key}[{i}][0]` must be a non-negative integer")),
        }
        if !ok_second(&pair[1]) {
            return Err(format!("`{key}[{i}][1]` has the wrong type"));
        }
    }
    Ok(())
}

/// Validates a whole JSONL document (events and aggregate records may be
/// mixed freely); returns the number of non-empty lines. Empty lines are
/// ignored; the first invalid line fails with its number.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Stamp};

    #[test]
    fn emitted_events_validate() {
        let lines = [
            Event::instant("dyn.decision", Stamp::Cycles(160_000))
                .field("raw_mpki", 12.31)
                .field("realloc", true)
                .to_jsonl(),
            Event::begin("runner.pair", Stamp::Cycles(0)).field("fg", "429.mcf").to_jsonl(),
            Event::counter("sweep.progress", Stamp::WallUs(55)).field("done", 3u64).to_jsonl(),
        ];
        let doc = lines.join("\n");
        assert_eq!(validate_jsonl(&doc), Ok(3));
    }

    #[test]
    fn rejects_missing_and_unknown_keys() {
        assert!(validate_line("{\"name\":\"x\"}").unwrap_err().contains("missing required key"));
        let extra = "{\"name\":\"x\",\"kind\":\"instant\",\"clock\":\"cycles\",\"ts\":1,\
                     \"tid\":0,\"fields\":{},\"extra\":1}";
        assert!(validate_line(extra).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn rejects_bad_enum_values_and_types() {
        let bad_kind = "{\"name\":\"x\",\"kind\":\"weird\",\"clock\":\"cycles\",\"ts\":1,\"tid\":0,\"fields\":{}}";
        assert!(validate_line(bad_kind).is_err());
        let bad_ts = "{\"name\":\"x\",\"kind\":\"instant\",\"clock\":\"cycles\",\"ts\":1.5,\"tid\":0,\"fields\":{}}";
        assert!(validate_line(bad_ts).is_err());
        let nested = "{\"name\":\"x\",\"kind\":\"instant\",\"clock\":\"cycles\",\"ts\":1,\"tid\":0,\
                      \"fields\":{\"deep\":[1]}}";
        assert!(validate_line(nested).is_err());
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(validate_jsonl("{\"name\":").is_err());
        assert!(validate_jsonl("[1,2,3]").is_err());
    }

    #[test]
    fn blank_lines_are_ignored() {
        let ev = Event::instant("a.b", Stamp::WallUs(1)).to_jsonl();
        let doc = format!("\n{ev}\n\n{ev}\n");
        assert_eq!(validate_jsonl(&doc), Ok(2));
    }

    #[test]
    fn aggregate_records_validate() {
        let series = "{\"record\":\"series\",\"name\":\"perfmon.window.mpki\",\"tid\":3,\
                      \"clock\":\"cycles\",\"stride\":2,\"total\":42,\
                      \"points\":[[160000,12.3],[320000,11.9]]}";
        let hist = "{\"record\":\"hist\",\"name\":\"figure.run.seconds_us\",\"count\":4,\
                    \"sum\":3100000,\"min\":250000,\"max\":1500000,\"p50\":700000,\
                    \"p90\":1500000,\"p99\":1500000,\"buckets\":[[245760,1],[688128,3]]}";
        validate_line(series).expect("series record");
        validate_line(hist).expect("hist record");
        // Mixed event + record documents validate as a whole.
        let ev = Event::instant("a.b", Stamp::WallUs(1)).to_jsonl();
        assert_eq!(validate_jsonl(&format!("{ev}\n{series}\n{hist}\n")), Ok(3));
    }

    #[test]
    fn status_and_verdict_records_validate() {
        let status = "{\"record\":\"status\",\"worker\":\"1-of-2\",\"phase\":\"fig12\",\
                      \"runs_done\":3,\"runs_total\":10,\"mem_hits\":0,\"disk_hits\":1,\
                      \"misses\":2,\"waits\":0,\"takeovers\":0,\"claims_held\":1,\
                      \"ns_per_access\":99.4,\"done\":false,\"at_unix_ms\":1754700000000}";
        validate_line(status).expect("status record");
        // ns_per_access is nullable (no estimate yet).
        let no_rate = status.replace("99.4", "null");
        validate_line(&no_rate).expect("status record with null rate");
        let verdict = "{\"record\":\"verdict\",\"metric\":\"current_cold_s\",\
                       \"verdict\":\"pass\",\"current\":1.2,\"median\":1.1,\
                       \"threshold\":1.4,\"n\":5}";
        validate_line(verdict).expect("verdict record");
        let skip = "{\"record\":\"verdict\",\"metric\":\"sharded_cold_s\",\
                    \"verdict\":\"insufficient_history\",\"current\":1.2,\
                    \"median\":null,\"threshold\":null,\"n\":1}";
        validate_line(skip).expect("insufficient-history verdict");
        // Heartbeats and verdicts may be mixed into event traces.
        let ev = Event::instant("a.b", Stamp::WallUs(1)).to_jsonl();
        assert_eq!(validate_jsonl(&format!("{ev}\n{status}\n{verdict}\n")), Ok(3));
    }

    #[test]
    fn rejects_bad_status_and_verdict_records() {
        // done must be a boolean.
        let torn = "{\"record\":\"status\",\"worker\":\"1-of-2\",\"phase\":\"\",\
                    \"runs_done\":0,\"runs_total\":0,\"mem_hits\":0,\"disk_hits\":0,\
                    \"misses\":0,\"waits\":0,\"takeovers\":0,\"claims_held\":0,\
                    \"ns_per_access\":null,\"done\":\"yes\",\"at_unix_ms\":1}";
        assert!(validate_line(torn).unwrap_err().contains("`done`"));
        // Unknown verdict value.
        let odd = "{\"record\":\"verdict\",\"metric\":\"x\",\"verdict\":\"meh\",\
                   \"current\":null,\"median\":null,\"threshold\":null,\"n\":0}";
        assert!(validate_line(odd).unwrap_err().contains("`verdict`"));
        // Missing key.
        assert!(validate_line("{\"record\":\"status\",\"worker\":\"w\"}")
            .unwrap_err()
            .contains("missing required key"));
    }

    #[test]
    fn rejects_bad_records() {
        assert!(validate_line("{\"record\":\"blob\",\"name\":\"x\"}")
            .unwrap_err()
            .contains("\"series\", \"hist\", \"status\", or \"verdict\""));
        // Missing key.
        let err = validate_line(
            "{\"record\":\"series\",\"name\":\"x\",\"tid\":0,\"clock\":\"cycles\",\
             \"stride\":1,\"total\":0}",
        )
        .unwrap_err();
        assert!(err.contains("missing required key `points`"), "{err}");
        // Unknown key.
        let err = validate_line(
            "{\"record\":\"series\",\"name\":\"x\",\"tid\":0,\"clock\":\"cycles\",\
             \"stride\":1,\"total\":0,\"points\":[],\"extra\":1}",
        )
        .unwrap_err();
        assert!(err.contains("unknown key `extra`"), "{err}");
        // Malformed pair arrays.
        let err = validate_line(
            "{\"record\":\"series\",\"name\":\"x\",\"tid\":0,\"clock\":\"cycles\",\
             \"stride\":1,\"total\":1,\"points\":[[1,2,3]]}",
        )
        .unwrap_err();
        assert!(err.contains("2-element"), "{err}");
        // Hist bucket counts must be positive integers.
        let err = validate_line(
            "{\"record\":\"hist\",\"name\":\"x\",\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\
             \"p50\":1,\"p90\":1,\"p99\":1,\"buckets\":[[1,0]]}",
        )
        .unwrap_err();
        assert!(err.contains("buckets[0][1]"), "{err}");
        // Stride 0 is meaningless.
        assert!(validate_line(
            "{\"record\":\"series\",\"name\":\"x\",\"tid\":0,\"clock\":\"cycles\",\
             \"stride\":0,\"total\":0,\"points\":[]}",
        )
        .is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse_json("{\"k\":\"a\\n\\u0041ü\"}").unwrap();
        assert_eq!(v.get("k"), Some(&Json::Str("a\nAü".into())));
    }
}
