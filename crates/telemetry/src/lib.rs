//! # waypart-telemetry
//!
//! Structured tracing and metrics for the sim → runner → lab pipeline.
//!
//! The paper's contribution is *measurement* — 100 ms counter windows,
//! MPKI-delta phase detection, way-reallocation traces (§6.2, Fig 12) —
//! and this crate gives the reproduction the same introspection into its
//! own runtime: every sampler window, controller decision, sweep chunk,
//! and run-cache lookup can be exported as a machine-readable event
//! stream without perturbing the simulation.
//!
//! ## Design rules
//!
//! 1. **Two clocks, never mixed.** Events from simulated code are stamped
//!    in machine cycles ([`Stamp::Cycles`]); harness events are stamped in
//!    host microseconds since process start ([`Stamp::WallUs`]). No
//!    wall-clock reads ever happen inside the simulator.
//! 2. **Observation only.** Nothing downstream of a sink can influence
//!    simulation state; the golden-fingerprint tests enforce that enabling
//!    telemetry changes no simulation output byte.
//! 3. **Free when off.** With no sink installed, [`emit_with`] is one
//!    relaxed atomic load and the event closure never runs. The per-access
//!    tallies in `waypart-sim` are additionally gated behind that crate's
//!    default-off `telemetry` feature so the hot path is untouched by
//!    default builds.
//!
//! ## Usage
//!
//! ```
//! use std::sync::Arc;
//! use waypart_telemetry::{self as telemetry, Event, Stamp};
//! use waypart_telemetry::sinks::CollectingSink;
//!
//! let sink = Arc::new(CollectingSink::new());
//! telemetry::set_sink(sink.clone());
//! telemetry::emit_with(|| Event::instant("doc.example", Stamp::WallUs(telemetry::wall_now_us())));
//! telemetry::clear_sink();
//! assert_eq!(sink.take().len(), 1);
//! ```

pub mod event;
pub mod hist;
pub mod merge;
pub mod progress;
pub mod schema;
pub mod series;
pub mod sinks;

pub use event::{Event, EventKind, FieldValue, Stamp};
pub use hist::Histogram;
pub use series::TimeSeries;

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A destination for events. Sinks must be thread-safe: sweeps emit from
/// every worker concurrently.
pub trait Sink: Send + Sync {
    /// Records one event. Called with the sink installed globally, from
    /// arbitrary threads.
    fn record(&self, event: &Event);
    /// Flushes buffered output (optional).
    fn flush(&self) {}
}

/// Fast-path flag mirroring whether a sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn Sink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Sink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs `sink` as the process-global event destination, replacing any
/// previous sink. Instrumentation points all over the workspace start
/// emitting immediately.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *sink_slot().write().expect("telemetry sink lock") = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the global sink (events become no-ops again) and returns it so
/// the caller can flush/finish it.
pub fn clear_sink() -> Option<Arc<dyn Sink>> {
    let prev = sink_slot().write().expect("telemetry sink lock").take();
    ENABLED.store(false, Ordering::Release);
    prev
}

/// Whether any sink is installed — the one-atomic fast path
/// instrumentation sites use to skip event construction entirely.
#[inline]
pub fn sink_attached() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Builds and records an event only if a sink is attached. The closure
/// runs *after* the cheap flag check, so disabled telemetry never pays
/// for field formatting or allocation.
#[inline]
pub fn emit_with<F: FnOnce() -> Event>(f: F) {
    if !sink_attached() {
        return;
    }
    let guard = sink_slot().read().expect("telemetry sink lock");
    if let Some(sink) = guard.as_ref() {
        let mut ev = f();
        ev.tid = match ev.stamp {
            Stamp::Cycles(_) => sim_track(),
            Stamp::WallUs(_) => host_tid(),
        };
        sink.record(&ev);
    }
}

// ------------------------------------------------------------------ clocks

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Host microseconds since the first telemetry call of the process.
/// Monotonic; used only for [`Stamp::WallUs`] — never inside the sim.
pub fn wall_now_us() -> u64 {
    process_start().elapsed().as_micros() as u64
}

// ------------------------------------------------------------------ tracks
//
// Cycle-stamped events restart at cycle 0 for every run, so putting two
// runs on one Chrome track would overlay their spans. Each run instead
// claims a fresh *sim track* id and installs it thread-locally; every
// cycle-stamped event emitted while the run executes lands on that track.
// Wall-stamped events use a per-host-thread id so host activity nests
// correctly per thread.

static NEXT_TRACK: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static SIM_TRACK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    static HOST_TID: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Claims a fresh sim-track id and makes it current for this thread.
/// Returns the id (useful for correlating events). Runs are executed
/// start-to-finish on one thread, so thread-local scoping is exact.
pub fn begin_sim_track() -> u32 {
    let id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
    SIM_TRACK.with(|t| t.set(id));
    id
}

/// The current thread's sim track (0 if no run is active).
pub fn sim_track() -> u32 {
    SIM_TRACK.with(|t| t.get())
}

/// A small stable id for the current host thread.
pub fn host_tid() -> u32 {
    HOST_TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TRACK.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::CollectingSink;

    #[test]
    fn emit_is_noop_without_sink() {
        // Must not panic or allocate state; mostly a smoke test for the
        // fast path.
        let mut built = false;
        // No sink installed by this test; another test's sink may be, so
        // only assert the closure-skip when detached.
        if !sink_attached() {
            emit_with(|| {
                built = true;
                Event::instant("lib.noop", Stamp::WallUs(0))
            });
            assert!(!built, "event closure must not run without a sink");
        }
    }

    #[test]
    fn set_emit_clear_roundtrip() {
        let sink = Arc::new(CollectingSink::new());
        set_sink(sink.clone());
        emit_with(|| Event::instant("lib.roundtrip", Stamp::Cycles(5)).field("x", 1u64));
        clear_sink();
        let events: Vec<_> =
            sink.take().into_iter().filter(|e| e.name == "lib.roundtrip").collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stamp, Stamp::Cycles(5));
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let a = wall_now_us();
        let b = wall_now_us();
        assert!(b >= a);
    }

    #[test]
    fn sim_tracks_are_distinct() {
        let a = begin_sim_track();
        let b = begin_sim_track();
        assert_ne!(a, b);
        assert_eq!(sim_track(), b);
    }
}
