//! The event model: what an instrumentation point reports.
//!
//! Every event carries a [`Stamp`] from one of two clocks that must never
//! be mixed up:
//!
//! * [`Stamp::Cycles`] — **simulated time**. Events from inside the sim →
//!   runner pipeline (run spans, sampler windows, controller decisions)
//!   are stamped with the machine's cycle counter. They are fully
//!   deterministic: the same run produces the same stamps.
//! * [`Stamp::WallUs`] — **host time**, microseconds since process start.
//!   Events about the *harness* (sweep progress, run-cache traffic,
//!   per-figure timing) are wall-stamped; they vary run to run and must
//!   never feed back into simulation state.

/// Which clock a stamp was read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stamp {
    /// Simulated machine cycles (deterministic).
    Cycles(u64),
    /// Host microseconds since process start (nondeterministic).
    WallUs(u64),
}

impl Stamp {
    /// The raw tick value, whichever clock it came from.
    pub fn ticks(self) -> u64 {
        match self {
            Stamp::Cycles(t) | Stamp::WallUs(t) => t,
        }
    }

    /// Schema name of the clock (`"cycles"` or `"wall_us"`).
    pub fn clock_name(self) -> &'static str {
        match self {
            Stamp::Cycles(_) => "cycles",
            Stamp::WallUs(_) => "wall_us",
        }
    }
}

/// Event shape, mirroring the Chrome `trace_event` phases we export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Opens a span (Chrome `B`). Must be closed by an `End` with the
    /// same name on the same track.
    Begin,
    /// Closes the innermost span of the same name (Chrome `E`).
    End,
    /// A point-in-time marker (Chrome `i`).
    Instant,
    /// A counter sample (Chrome `C`); numeric fields become series.
    Counter,
}

impl EventKind {
    /// Schema name (`"begin" | "end" | "instant" | "counter"`).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        }
    }
}

/// A field value. Numbers stay typed so exporters can render them
/// losslessly (u64 cycle counts must not round-trip through f64).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values export as JSON `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `"runner.pair"`, `"dyn.decision"`.
    pub name: &'static str,
    /// Span/instant/counter shape.
    pub kind: EventKind,
    /// Timestamp (see [`Stamp`] for the two-clock rule).
    pub stamp: Stamp,
    /// Track id: the run track for cycle-stamped events, the host thread
    /// for wall-stamped ones. Filled in by [`crate::emit_with`].
    pub tid: u32,
    /// Payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// An event with no fields; chain [`Self::field`] to add payload.
    pub fn new(name: &'static str, kind: EventKind, stamp: Stamp) -> Self {
        Event { name, kind, stamp, tid: 0, fields: Vec::new() }
    }

    /// A span-begin event.
    pub fn begin(name: &'static str, stamp: Stamp) -> Self {
        Self::new(name, EventKind::Begin, stamp)
    }

    /// A span-end event.
    pub fn end(name: &'static str, stamp: Stamp) -> Self {
        Self::new(name, EventKind::End, stamp)
    }

    /// An instant event.
    pub fn instant(name: &'static str, stamp: Stamp) -> Self {
        Self::new(name, EventKind::Instant, stamp)
    }

    /// A counter event.
    pub fn counter(name: &'static str, stamp: Stamp) -> Self {
        Self::new(name, EventKind::Counter, stamp)
    }

    /// Appends one field (builder style).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Looks a field up by key.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders this event as one line of the JSONL schema (no trailing
    /// newline). See [`crate::schema`] for the format contract.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96 + self.fields.len() * 24);
        out.push_str("{\"name\":");
        push_json_str(&mut out, self.name);
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.name());
        out.push_str("\",\"clock\":\"");
        out.push_str(self.stamp.clock_name());
        out.push_str("\",\"ts\":");
        out.push_str(&self.stamp.ticks().to_string());
        out.push_str(",\"tid\":");
        out.push_str(&self.tid.to_string());
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_json_value(&mut out, v);
        }
        out.push_str("}}");
        out
    }
}

/// Appends `s` as a JSON string literal (with escaping).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a field value as a JSON scalar.
pub(crate) fn push_json_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::I64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(x) if x.is_finite() => {
            // Rust's Display for f64 is shortest-roundtrip, like the
            // vendored serde stub uses for the run cache.
            let s = x.to_string();
            out.push_str(&s);
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Str(s) => push_json_str(out, s),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rendering_escapes_and_types() {
        let ev = Event::instant("test.event", Stamp::Cycles(42))
            .field("s", "a\"b\\c\n")
            .field("u", 7u64)
            .field("i", -3i64)
            .field("f", 1.5)
            .field("b", true);
        let line = ev.to_jsonl();
        assert_eq!(
            line,
            "{\"name\":\"test.event\",\"kind\":\"instant\",\"clock\":\"cycles\",\"ts\":42,\
             \"tid\":0,\"fields\":{\"s\":\"a\\\"b\\\\c\\n\",\"u\":7,\"i\":-3,\"f\":1.5,\"b\":true}}"
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        let ev = Event::counter("x", Stamp::WallUs(1)).field("nan", f64::NAN);
        assert!(ev.to_jsonl().contains("\"nan\":null"));
    }

    #[test]
    fn get_finds_fields() {
        let ev = Event::begin("b", Stamp::Cycles(0)).field("k", 9u64);
        assert_eq!(ev.get("k"), Some(&FieldValue::U64(9)));
        assert_eq!(ev.get("missing"), None);
    }
}
