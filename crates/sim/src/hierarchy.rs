//! The three-level cache hierarchy walk.
//!
//! [`Hierarchy`] owns the per-core L1 and L2 caches, the shared inclusive
//! LLC, and the per-core prefetch engines, and implements the full demand
//! path: L1 → L2 → (ring) → LLC → (DRAM), including
//!
//! * write-back dirty-victim cascades at every level,
//! * **inclusive back-invalidation**: an LLC eviction removes the line from
//!   every inner cache (the modeled LLC is inclusive, §2.1),
//! * **way-masked LLC fills**: the requesting core's way allocation
//!   restricts victim selection in the LLC and nowhere else,
//! * prefetch issue and fill (prefetches are real fills that consume DRAM
//!   bandwidth and may pollute).

use crate::addr::LineAddr;
use crate::cache::SetAssocCache;
use crate::coloring::ColorAssignment;
use crate::config::MachineConfig;
use crate::dram::DramModel;
use crate::msr::PrefetcherMask;
use crate::prefetch::{PrefetchEngine, PrefetchLevel, PrefetchRequest};
use crate::ring::RingModel;
use crate::stream::Access;
use crate::umon::UtilityMonitor;
use crate::waymask::WayMask;
use crate::CoreId;

/// Where a demand access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// Shared LLC.
    Llc,
    /// Off-chip DRAM (LLC miss).
    Dram,
    /// Non-temporal access that bypassed the hierarchy entirely.
    Bypass,
}

impl HitLevel {
    /// Number of levels (array-index space for per-level aggregates).
    pub const COUNT: usize = 5;

    /// A dense index, stable across releases (L1=0 .. Bypass=4).
    pub fn index(self) -> usize {
        match self {
            HitLevel::L1 => 0,
            HitLevel::L2 => 1,
            HitLevel::Llc => 2,
            HitLevel::Dram => 3,
            HitLevel::Bypass => 4,
        }
    }

    /// Lower-case level name for event fields and report labels.
    pub fn name(self) -> &'static str {
        match self {
            HitLevel::L1 => "l1",
            HitLevel::L2 => "l2",
            HitLevel::Llc => "llc",
            HitLevel::Dram => "dram",
            HitLevel::Bypass => "bypass",
        }
    }

    /// All levels in index order.
    pub fn all() -> [HitLevel; Self::COUNT] {
        [HitLevel::L1, HitLevel::L2, HitLevel::Llc, HitLevel::Dram, HitLevel::Bypass]
    }
}

/// Everything the machine needs to charge one demand access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Raw latency in cycles (before the issuing thread's MLP division).
    pub latency: u64,
    /// Level that satisfied the access.
    pub level: HitLevel,
    /// Dirty write-backs to DRAM triggered by this access's fills.
    pub dram_writebacks: u32,
    /// Prefetch requests issued while servicing this access.
    pub prefetches_issued: u32,
}

/// The socket's cache hierarchy.
pub struct Hierarchy {
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    engines: Vec<PrefetchEngine>,
    latency: crate::config::LatencyConfig,
    cores: usize,
    /// Scratch buffer for prefetch requests (avoids per-access allocation).
    pf_buf: Vec<PrefetchRequest>,
    /// Second scratch buffer: `access` swaps `pf_buf` here before issuing,
    /// so requests can be drained while `&mut self` methods run, without
    /// the per-access `mem::take`/restore churn on the field.
    pf_scratch: Vec<PrefetchRequest>,
    /// Full way masks for the private levels, precomputed at construction
    /// (L1/L2 fills are never way-restricted).
    l1_full: WayMask,
    l2_full: WayMask,
    /// Optional per-core utility monitors (UMON; disabled by default — the
    /// paper's platform has no such hardware, the UCP baseline needs it).
    umon: Option<Vec<UtilityMonitor>>,
    /// Optional page-coloring map (set partitioning, the §7 software
    /// baseline). Mutually exclusive with hashed LLC indexing.
    coloring: Option<ColorAssignment>,
    /// Per-core memory-bandwidth throttle (percent, MBA-style): demand
    /// DRAM accesses from a throttled core pay `100/percent ×` latency and
    /// only `percent`% of its prefetches are admitted, which both slows
    /// the core and relieves the shared channel — the §8 future-work QoS
    /// knob.
    mba_percent: Vec<u8>,
    /// Token buckets for prefetch admission under MBA throttling.
    pf_admit: Vec<u32>,
    /// Telemetry-only per-level tallies. Never read by simulation logic.
    #[cfg(feature = "telemetry")]
    tallies: crate::tallies::LevelTallies,
    /// Telemetry-only per-access latency histograms, indexed by
    /// [`HitLevel::index`]. Never read by simulation logic.
    #[cfg(feature = "telemetry")]
    latency_hists: [waypart_telemetry::Histogram; HitLevel::COUNT],
}

impl Hierarchy {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        Hierarchy {
            l1: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l2)).collect(),
            llc: SetAssocCache::new(cfg.llc),
            engines: (0..cfg.cores).map(|_| PrefetchEngine::new()).collect(),
            latency: cfg.latency,
            cores: cfg.cores,
            pf_buf: Vec::with_capacity(8),
            pf_scratch: Vec::with_capacity(8),
            l1_full: WayMask::all(cfg.l1.ways),
            l2_full: WayMask::all(cfg.l2.ways),
            umon: None,
            coloring: None,
            mba_percent: vec![100; cfg.cores],
            pf_admit: vec![0; cfg.cores],
            #[cfg(feature = "telemetry")]
            tallies: Default::default(),
            #[cfg(feature = "telemetry")]
            latency_hists: Default::default(),
        }
    }

    /// Snapshot of the cumulative per-level tallies (telemetry builds).
    #[cfg(feature = "telemetry")]
    pub fn tallies(&self) -> crate::tallies::LevelTallies {
        self.tallies
    }

    /// Per-access latency histograms by satisfying level, indexed by
    /// [`HitLevel::index`] (telemetry builds).
    #[cfg(feature = "telemetry")]
    pub fn latency_hists(&self) -> &[waypart_telemetry::Histogram; HitLevel::COUNT] {
        &self.latency_hists
    }

    /// Sets core `core`'s memory-bandwidth throttle (percent, 10..=100).
    pub fn set_mba(&mut self, core: CoreId, percent: u8) {
        assert!((10..=100).contains(&percent), "MBA throttle {percent}% outside 10..=100");
        self.mba_percent[core] = percent;
    }

    /// Applies the core's MBA throttle to a DRAM latency.
    #[inline]
    fn throttle(&self, core: CoreId, dram_latency: u64) -> u64 {
        let pct = u64::from(self.mba_percent[core]);
        if pct == 100 {
            // Unthrottled is the overwhelmingly common case; skip the
            // division on the demand-miss path.
            return dram_latency;
        }
        dram_latency * 100 / pct
    }

    /// Enables page coloring with `groups` color groups.
    ///
    /// # Panics
    /// Panics if the LLC uses a hashed index function — randomized
    /// indexing scatters page-contiguous lines and defeats coloring, which
    /// is exactly why the technique stopped working on Sandy Bridge-class
    /// parts (§7 context).
    pub fn enable_coloring(&mut self, groups: usize) {
        assert!(
            self.llc.geometry().index == crate::addr::IndexHash::Modulo,
            "page coloring requires a physically indexed (modulo) LLC"
        );
        self.coloring = Some(ColorAssignment::new(self.llc.num_sets(), groups));
    }

    /// The coloring map, if enabled.
    pub fn coloring(&self) -> Option<&ColorAssignment> {
        self.coloring.as_ref()
    }

    /// Mutable access to the coloring map (for assignments/recoloring).
    pub fn coloring_mut(&mut self) -> Option<&mut ColorAssignment> {
        self.coloring.as_mut()
    }

    /// Translates a demand line into LLC (colored) space.
    #[inline]
    fn to_llc(&self, line: LineAddr) -> LineAddr {
        match &self.coloring {
            Some(c) => c.effective_line(line),
            None => line,
        }
    }

    /// Translates an LLC (colored) line back to program space.
    #[inline]
    fn from_llc(&self, line: LineAddr) -> LineAddr {
        match &self.coloring {
            Some(c) => c.original_line(line),
            None => line,
        }
    }

    /// Attaches a UMON to every core (idempotent).
    pub fn enable_umon(&mut self) {
        if self.umon.is_none() {
            let sets = self.llc.num_sets();
            let ways = self.llc.geometry().ways;
            self.umon = Some((0..self.cores).map(|_| UtilityMonitor::new(sets, ways)).collect());
        }
    }

    /// Core `core`'s utility monitor, if enabled.
    pub fn umon(&self, core: CoreId) -> Option<&UtilityMonitor> {
        self.umon.as_ref().map(|u| &u[core])
    }

    /// Decays every monitor's counters (call at each repartition interval).
    pub fn decay_umons(&mut self) {
        if let Some(umons) = &mut self.umon {
            for u in umons {
                u.decay();
            }
        }
    }

    /// Services a demand access from `core` under LLC way allocation
    /// `mask`, charging ring/DRAM bandwidth as it goes.
    pub fn access(
        &mut self,
        core: CoreId,
        access: &Access,
        mask: WayMask,
        pf_mask: PrefetcherMask,
        ring: &mut RingModel,
        dram: &mut DramModel,
    ) -> AccessOutcome {
        debug_assert!(core < self.cores);

        if access.non_temporal {
            // Specially tagged loads/stores stream through memory without
            // caching (the stream_uncached microbenchmark, §2.3).
            let latency = self.throttle(core, dram.access(self.latency.dram));
            #[cfg(feature = "telemetry")]
            {
                self.tallies.bypasses += 1;
                self.latency_hists[HitLevel::Bypass.index()].record(latency);
            }
            return AccessOutcome { latency, level: HitLevel::Bypass, dram_writebacks: 0, prefetches_issued: 0 };
        }

        let mut writebacks = 0u32;

        // The DCU units observe every L1 access, hit or miss.
        self.pf_buf.clear();
        self.engines[core].observe_l1(access.line, access.pc, pf_mask, &mut self.pf_buf);

        // Each level's set index is computed once and shared between the
        // probe and the (possible) fill — the index hash is on the hottest
        // path in the whole simulator.
        let level;
        let mut latency;
        let l1_set = self.l1[core].set_index(access.line);
        if self.l1[core].probe_in(l1_set, access.line, access.write).is_some() {
            level = HitLevel::L1;
            latency = self.latency.l1_hit;
        } else {
            // The MLC units observe L2 accesses (== L1 misses).
            self.engines[core].observe_l2(access.line, pf_mask, &mut self.pf_buf);

            let l2_set = self.l2[core].set_index(access.line);
            if self.l2[core].probe_in(l2_set, access.line, false).is_some() {
                level = HitLevel::L2;
                latency = self.latency.l2_hit;
            } else {
                if let Some(umons) = &mut self.umon {
                    let set = self.llc.geometry().index.index(access.line, self.llc.num_sets());
                    umons[core].observe(access.line, set);
                }
                latency = ring.access(self.latency.llc_hit);
                let llc_line = self.to_llc(access.line);
                let llc_set = self.llc.set_index(llc_line);
                if self.llc.probe_in(llc_set, llc_line, false).is_some() {
                    level = HitLevel::Llc;
                } else {
                    level = HitLevel::Dram;
                    latency += self.throttle(core, dram.access(self.latency.dram));
                    writebacks += self.fill_llc(core, llc_set, llc_line, mask, dram);
                }
                writebacks += self.fill_l2(core, l2_set, access.line, false, dram);
            }
            writebacks += self.fill_l1(core, l1_set, access.line, access.write, dram);
        }

        // Issue the collected prefetches after the demand access. Swapping
        // into the persistent scratch vector releases the borrow on
        // `pf_buf` without replacing the field's allocation every access.
        let issued = self.pf_buf.len() as u32;
        std::mem::swap(&mut self.pf_buf, &mut self.pf_scratch);
        for i in 0..issued as usize {
            let req = self.pf_scratch[i];
            writebacks += self.issue_prefetch(core, &req, mask, ring, dram);
        }
        self.pf_scratch.clear();

        #[cfg(feature = "telemetry")]
        {
            match level {
                HitLevel::L1 => self.tallies.l1_hits += 1,
                HitLevel::L2 => {
                    self.tallies.l1_misses += 1;
                    self.tallies.l2_hits += 1;
                }
                HitLevel::Llc => {
                    self.tallies.l1_misses += 1;
                    self.tallies.l2_misses += 1;
                    self.tallies.llc_hits += 1;
                }
                HitLevel::Dram => {
                    self.tallies.l1_misses += 1;
                    self.tallies.l2_misses += 1;
                    self.tallies.llc_misses += 1;
                }
                HitLevel::Bypass => {}
            }
            self.tallies.dram_writebacks += u64::from(writebacks);
            self.tallies.pf_issued += u64::from(issued);
            self.latency_hists[level.index()].record(latency);
        }

        AccessOutcome { latency, level, dram_writebacks: writebacks, prefetches_issued: issued }
    }

    /// Fills `line` (already in LLC/colored space, mapping to `set`) into
    /// the LLC under `mask`; handles inclusive back-invalidation and the
    /// dirty write-back of the victim. Returns DRAM write-backs performed.
    fn fill_llc(&mut self, core: CoreId, set: usize, line: LineAddr, mask: WayMask, dram: &mut DramModel) -> u32 {
        let mut writebacks = 0;
        #[cfg(feature = "telemetry")]
        {
            self.tallies.llc_fills += 1;
        }
        if let Some(ev) = self.llc.fill_in(set, line, mask, false, core as u8) {
            #[cfg(feature = "telemetry")]
            {
                self.tallies.llc_evictions += 1;
            }
            let mut victim_dirty = ev.dirty;
            // Inclusion: the victim vanishes from every inner cache (which
            // hold *program-space* lines — translate back from LLC space).
            // A dirty inner copy is the freshest; it must reach DRAM.
            let victim_program_line = self.from_llc(ev.line);
            for c in 0..self.cores {
                if let Some(inner) = self.l1[c].invalidate(victim_program_line) {
                    victim_dirty |= inner.dirty;
                }
                if let Some(inner) = self.l2[c].invalidate(victim_program_line) {
                    victim_dirty |= inner.dirty;
                }
            }
            if victim_dirty {
                dram.consume();
                writebacks += 1;
            }
        }
        writebacks
    }

    /// Fills into `core`'s L2 (at precomputed `set`), cascading the dirty
    /// victim to the LLC (or DRAM if the LLC no longer holds it).
    fn fill_l2(&mut self, core: CoreId, set: usize, line: LineAddr, dirty: bool, dram: &mut DramModel) -> u32 {
        let mut writebacks = 0;
        if let Some(ev) = self.l2[core].fill_in(set, line, self.l2_full, dirty, core as u8) {
            if ev.dirty {
                let llc_line = self.to_llc(ev.line);
                if self.llc.probe(llc_line, true).is_none() {
                    // Inclusion violation can't normally happen; treat as a
                    // direct write-back for robustness.
                    dram.consume();
                    writebacks += 1;
                }
            }
        }
        writebacks
    }

    /// Fills into `core`'s L1 (at precomputed `set`), cascading the dirty
    /// victim to L2.
    fn fill_l1(&mut self, core: CoreId, set: usize, line: LineAddr, dirty: bool, dram: &mut DramModel) -> u32 {
        let mut writebacks = 0;
        if let Some(ev) = self.l1[core].fill_in(set, line, self.l1_full, dirty, core as u8) {
            if ev.dirty {
                let l2_set = self.l2[core].set_index(ev.line);
                if self.l2[core].probe_in(l2_set, ev.line, true).is_none() {
                    writebacks += self.fill_l2(core, l2_set, ev.line, true, dram);
                }
            }
        }
        writebacks
    }

    /// Executes one prefetch request; returns DRAM write-backs caused.
    ///
    /// Prefetches that would miss to DRAM are *dropped* when the channel
    /// is near saturation — hardware prefetchers throttle under load, and
    /// this is what exposes streaming applications to bandwidth contention
    /// (Fig 4): once a co-runner saturates the channel, their prefetch
    /// cover disappears and demand misses pay the inflated latency.
    fn issue_prefetch(
        &mut self,
        core: CoreId,
        req: &PrefetchRequest,
        mask: WayMask,
        ring: &mut RingModel,
        dram: &mut DramModel,
    ) -> u32 {
        /// DRAM utilization above which DRAM-bound prefetches are dropped.
        const PREFETCH_DROP_UTILIZATION: f64 = 0.92;
        // MBA admission: a core throttled to p% issues only p% of its
        // prefetches (token bucket, deterministic).
        let pct = u32::from(self.mba_percent[core]);
        if pct < 100 {
            self.pf_admit[core] += pct;
            if self.pf_admit[core] < 100 {
                #[cfg(feature = "telemetry")]
                {
                    self.tallies.pf_dropped += 1;
                }
                return 0;
            }
            self.pf_admit[core] -= 100;
        }
        let mut writebacks = 0;
        let line = req.line;
        let l2_set = self.l2[core].set_index(line);
        let in_l2 = self.l2[core].contains_in(l2_set, line);
        let llc_line = self.to_llc(line);
        let llc_set = self.llc.set_index(llc_line);
        let in_llc = in_l2 || self.llc.contains_in(llc_set, llc_line);
        if !in_llc {
            if dram.utilization() > PREFETCH_DROP_UTILIZATION {
                #[cfg(feature = "telemetry")]
                {
                    self.tallies.pf_dropped += 1;
                }
                return 0;
            }
            ring.access(0);
            dram.consume();
            writebacks += self.fill_llc(core, llc_set, llc_line, mask, dram);
        }
        match req.level {
            PrefetchLevel::L1 => {
                if !in_l2 {
                    writebacks += self.fill_l2(core, l2_set, line, false, dram);
                }
                let l1_set = self.l1[core].set_index(line);
                if !self.l1[core].contains_in(l1_set, line) {
                    writebacks += self.fill_l1(core, l1_set, line, false, dram);
                }
            }
            PrefetchLevel::L2 => {
                if !in_l2 {
                    writebacks += self.fill_l2(core, l2_set, line, false, dram);
                }
            }
        }
        writebacks
    }

    /// LLC lines currently owned (filled) by `core`.
    pub fn llc_occupancy_of(&self, core: CoreId) -> usize {
        self.llc.occupancy_of(core as u8)
    }

    /// Total valid LLC lines.
    pub fn llc_occupancy(&self) -> usize {
        self.llc.occupancy()
    }

    /// Read-only view of the LLC (for invariant checks in tests).
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// Read-only views of a core's private caches.
    pub fn l1(&self, core: CoreId) -> &SetAssocCache {
        &self.l1[core]
    }

    /// Read-only view of a core's L2.
    pub fn l2(&self, core: CoreId) -> &SetAssocCache {
        &self.l2[core]
    }

    /// Per-core prefetch engine statistics.
    pub fn engine(&self, core: CoreId) -> &PrefetchEngine {
        &self.engines[core]
    }

    /// Flushes `core`-owned LLC lines outside `mask` (ablation: the real
    /// mechanism never flushes on reallocation). Dropped dirty lines are
    /// written back. Returns lines flushed.
    pub fn flush_llc_outside_mask(&mut self, core: CoreId, mask: WayMask, dram: &mut DramModel) -> usize {
        let dropped_dirty = self.llc.flush_owned_outside(core as u8, mask);
        for _ in 0..dropped_dirty {
            dram.consume();
        }
        dropped_dirty
    }
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("cores", &self.cores)
            .field("llc_occupancy", &self.llc.occupancy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn tiny() -> (Hierarchy, RingModel, DramModel, MachineConfig) {
        let cfg = MachineConfig::scaled(64);
        let h = Hierarchy::new(&cfg);
        let ring = RingModel::new(cfg.ring);
        let dram = DramModel::new(cfg.dram);
        (h, ring, dram, cfg)
    }

    fn plain(line: LineAddr) -> Access {
        Access { line, write: false, pc: 3, non_temporal: false, mlp: 1.0 }
    }

    #[test]
    fn first_touch_misses_to_dram_then_hits_l1() {
        let (mut h, mut ring, mut dram, _) = tiny();
        let pf = PrefetcherMask::all_disabled();
        let a = plain(LineAddr::in_space(0, 123));
        let o1 = h.access(0, &a, WayMask::all(12), pf, &mut ring, &mut dram);
        assert_eq!(o1.level, HitLevel::Dram);
        assert!(o1.latency >= 190);
        let o2 = h.access(0, &a, WayMask::all(12), pf, &mut ring, &mut dram);
        assert_eq!(o2.level, HitLevel::L1);
        assert_eq!(o2.latency, 0);
    }

    #[test]
    fn cross_core_data_hits_in_llc() {
        let (mut h, mut ring, mut dram, _) = tiny();
        let pf = PrefetcherMask::all_disabled();
        let a = plain(LineAddr::in_space(0, 9));
        h.access(0, &a, WayMask::all(12), pf, &mut ring, &mut dram);
        // A different core finds the line in the (shared) LLC, not DRAM.
        let o = h.access(3, &a, WayMask::all(12), pf, &mut ring, &mut dram);
        assert_eq!(o.level, HitLevel::Llc);
    }

    #[test]
    fn non_temporal_bypasses_and_consumes_bandwidth() {
        let (mut h, mut ring, mut dram, _) = tiny();
        let pf = PrefetcherMask::all_enabled();
        let mut a = plain(LineAddr::in_space(0, 77));
        a.non_temporal = true;
        let before = dram.total_lines;
        let o = h.access(0, &a, WayMask::all(12), pf, &mut ring, &mut dram);
        assert_eq!(o.level, HitLevel::Bypass);
        assert_eq!(dram.total_lines, before + 1);
        // Nothing cached anywhere.
        assert!(!h.l1(0).contains(a.line));
        assert!(!h.llc().contains(a.line));
    }

    #[test]
    fn inclusive_back_invalidation() {
        let (mut h, mut ring, mut dram, cfg) = tiny();
        let pf = PrefetcherMask::all_disabled();
        let victim = LineAddr::in_space(0, 0);
        h.access(0, &plain(victim), WayMask::all(12), pf, &mut ring, &mut dram);
        assert!(h.l1(0).contains(victim));

        // Thrash the LLC from core 1 with the full mask until `victim`
        // leaves the LLC; its L1 copy on core 0 must vanish with it.
        let llc_lines = (cfg.llc.size_bytes / cfg.line_bytes) as u64;
        for i in 1..llc_lines * 4 {
            h.access(1, &plain(LineAddr::in_space(0, i)), WayMask::all(12), pf, &mut ring, &mut dram);
            if !h.llc().contains(victim) {
                break;
            }
        }
        assert!(!h.llc().contains(victim), "victim never evicted from LLC");
        assert!(!h.l1(0).contains(victim), "inclusion violated: L1 copy outlived LLC eviction");
        assert!(!h.l2(0).contains(victim), "inclusion violated: L2 copy outlived LLC eviction");
    }

    #[test]
    fn way_mask_confines_thrashing() {
        let (mut h, mut ring, mut dram, cfg) = tiny();
        let pf = PrefetcherMask::all_disabled();
        // Core 0 owns ways 0..6; fill a small resident set.
        let fg_mask = WayMask::contiguous(0, 6);
        let bg_mask = WayMask::contiguous(6, 6);
        let resident: Vec<LineAddr> = (0..64u64).map(|i| LineAddr::in_space(1, i)).collect();
        for r in &resident {
            h.access(0, &plain(*r), fg_mask, pf, &mut ring, &mut dram);
        }
        // Core 2 thrashes with 4× LLC worth of lines, confined to its ways.
        let llc_lines = (cfg.llc.size_bytes / cfg.line_bytes) as u64;
        for i in 0..llc_lines * 4 {
            h.access(2, &plain(LineAddr::in_space(2, i)), bg_mask, pf, &mut ring, &mut dram);
        }
        let survivors = resident.iter().filter(|r| h.llc().contains(**r)).count();
        assert_eq!(survivors, resident.len(), "partitioned thrashing evicted foreground lines");
    }

    #[test]
    fn shared_mask_lets_thrashing_evict() {
        let (mut h, mut ring, mut dram, cfg) = tiny();
        let pf = PrefetcherMask::all_disabled();
        let all = WayMask::all(12);
        let resident: Vec<LineAddr> = (0..64u64).map(|i| LineAddr::in_space(1, i)).collect();
        for r in &resident {
            h.access(0, &plain(*r), all, pf, &mut ring, &mut dram);
        }
        let llc_lines = (cfg.llc.size_bytes / cfg.line_bytes) as u64;
        for i in 0..llc_lines * 4 {
            h.access(2, &plain(LineAddr::in_space(2, i)), all, pf, &mut ring, &mut dram);
        }
        let survivors = resident.iter().filter(|r| h.llc().contains(**r)).count();
        assert!(survivors < resident.len() / 2, "{survivors} survivors under shared thrashing");
    }

    #[test]
    fn prefetch_fills_convert_misses_to_hits() {
        let (mut h, mut ring, mut dram, _) = tiny();
        let pf = PrefetcherMask::all_enabled();
        // A long sequential walk: after the streamer warms up, most
        // accesses should hit in L1/L2 thanks to prefetching.
        let mut dram_hits = 0;
        for i in 0..512u64 {
            let mut a = plain(LineAddr::in_space(0, i));
            a.pc = 7;
            let o = h.access(0, &a, WayMask::all(12), pf, &mut ring, &mut dram);
            if i >= 64 && o.level == HitLevel::Dram {
                dram_hits += 1;
            }
        }
        assert!(dram_hits < 150, "prefetchers left {dram_hits} DRAM accesses in the steady state");
        assert!(h.engine(0).total_issued() > 0);
    }

    #[test]
    fn dirty_lines_write_back_on_llc_eviction() {
        let (mut h, mut ring, mut dram, cfg) = tiny();
        let pf = PrefetcherMask::all_disabled();
        let mut w = plain(LineAddr::in_space(0, 5));
        w.write = true;
        h.access(0, &w, WayMask::all(12), pf, &mut ring, &mut dram);
        // Evict everything via thrashing and count write-backs.
        let llc_lines = (cfg.llc.size_bytes / cfg.line_bytes) as u64;
        let mut wbs = 0;
        for i in 100..100 + llc_lines * 4 {
            let o = h.access(1, &plain(LineAddr::in_space(3, i)), WayMask::all(12), pf, &mut ring, &mut dram);
            wbs += o.dram_writebacks;
        }
        assert!(wbs >= 1, "dirty line evicted without write-back");
    }
}
