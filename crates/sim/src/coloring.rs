//! Page-coloring (set-partitioning) support — the §7 software baseline.
//!
//! Before hardware way partitioning, the OS could partition a physically
//! indexed LLC by *page color*: restricting a process's physical pages to
//! frames whose set-index bits fall in its share of the sets (Cho & Jin;
//! Tam et al.; Lin et al. — all discussed in the paper's §7). The paper
//! contrasts its mechanism with coloring on two points this module lets
//! experiments reproduce:
//!
//! 1. **Recoloring is expensive** — moving a page to a new color means
//!    physically copying it, so changing a partition costs work
//!    proportional to the footprint, where a way-mask write costs nothing;
//! 2. coloring needs a *physically indexed* LLC — a randomized (hashed)
//!    index function like Sandy Bridge's scatters page-contiguous lines
//!    across all sets and defeats coloring entirely
//!    ([`ColorAssignment`] therefore refuses to run on a hashed LLC).
//!
//! The model divides the LLC's sets into [`ColorAssignment::groups`]
//! equal *color groups* and gives each address space a subset. The page→
//! frame choice is modeled by deterministically hashing each line into one
//! of its space's allowed groups.

use crate::addr::{mix64, LineAddr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-address-space color-group assignments over an LLC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColorAssignment {
    /// Number of color groups the sets divide into.
    groups: usize,
    /// Sets per group.
    sets_per_group: usize,
    /// log2 of the total set count (bits replaced by the coloring map).
    set_bits: u32,
    /// Allowed-group bitmask per address space (default: all groups).
    masks: HashMap<u16, u32>,
    /// Pages (lines) recolored so far — the migration cost counter.
    pub recolored_lines: u64,
}

impl ColorAssignment {
    /// Default number of color groups (a 4 KB page on the full-scale LLC
    /// gives 6 MB / (12 ways × 4 KB) = 128 frame colors; 16 groups keeps
    /// partitions coarse enough to exist at every scale).
    pub const DEFAULT_GROUPS: usize = 16;

    /// Builds an assignment for an LLC with `num_sets` sets.
    ///
    /// # Panics
    /// Panics if `groups` is 0, exceeds 32, or does not divide `num_sets`.
    pub fn new(num_sets: usize, groups: usize) -> Self {
        assert!(groups >= 1 && groups <= 32, "1..=32 color groups supported");
        assert!(num_sets % groups == 0, "{groups} groups must divide {num_sets} sets");
        assert!(num_sets.is_power_of_two());
        ColorAssignment {
            groups,
            sets_per_group: num_sets / groups,
            set_bits: num_sets.trailing_zeros(),
            masks: HashMap::new(),
            recolored_lines: 0,
        }
    }

    /// Number of color groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Assigns `mask` (bit `g` = group `g` allowed) to address space
    /// `asid`. Returns the previous mask if one was set — callers model
    /// the recoloring cost when it changes.
    ///
    /// # Panics
    /// Panics if the mask is empty or grants unknown groups.
    pub fn assign(&mut self, asid: u16, mask: u32) -> Option<u32> {
        assert!(mask != 0, "an address space needs at least one color");
        assert!(
            self.groups == 32 || mask < (1u32 << self.groups),
            "mask grants groups beyond the {} available",
            self.groups
        );
        self.masks.insert(asid, mask)
    }

    /// The mask for `asid` (all groups if never assigned).
    pub fn mask_of(&self, asid: u16) -> u32 {
        self.masks.get(&asid).copied().unwrap_or(if self.groups == 32 {
            u32::MAX
        } else {
            (1u32 << self.groups) - 1
        })
    }

    /// Maps `line` to its colored effective address: the set-index bits
    /// are forced into one of the space's allowed groups, and the full
    /// original offset moves into the tag bits (so distinct lines stay
    /// distinct).
    ///
    /// The mapping is deterministic per line — the model's analog of a
    /// page's physical frame being fixed at allocation.
    pub fn effective_line(&self, line: LineAddr) -> LineAddr {
        let mask = self.mask_of(line.asid());
        let allowed = mask.count_ones() as u64;
        let h = mix64(line.offset());
        // Pick the (h % allowed)-th set group from the mask.
        let mut pick = h % allowed;
        let mut group = 0usize;
        for g in 0..self.groups {
            if (mask >> g) & 1 == 1 {
                if pick == 0 {
                    group = g;
                    break;
                }
                pick -= 1;
            }
        }
        let set_in_group = (h >> 32) % self.sets_per_group as u64;
        let set = group as u64 * self.sets_per_group as u64 + set_in_group;
        LineAddr::in_space(line.asid(), (line.offset() << self.set_bits) | set)
    }

    /// Recovers the original line from a colored effective address.
    pub fn original_line(&self, effective: LineAddr) -> LineAddr {
        LineAddr::in_space(effective.asid(), effective.offset() >> self.set_bits)
    }

    /// Records that `lines` cache lines' worth of pages were physically
    /// copied to new frames (the recoloring cost the paper's §7 cites).
    pub fn charge_recolor(&mut self, lines: u64) {
        self.recolored_lines += lines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca() -> ColorAssignment {
        ColorAssignment::new(256, 16) // 16 sets per group
    }

    #[test]
    fn default_mask_allows_all_groups() {
        let c = ca();
        assert_eq!(c.mask_of(5), 0xFFFF);
    }

    #[test]
    fn effective_lines_land_in_allowed_groups() {
        let mut c = ca();
        c.assign(1, 0b0000_0000_0000_1111); // groups 0..4 → sets 0..64
        for i in 0..1000u64 {
            let eff = c.effective_line(LineAddr::in_space(1, i));
            let set = eff.offset() & 0xFF;
            assert!(set < 64, "line {i} colored into set {set}");
        }
    }

    #[test]
    fn disjoint_masks_keep_spaces_apart() {
        let mut c = ca();
        c.assign(1, 0x00FF);
        c.assign(2, 0xFF00);
        for i in 0..500u64 {
            let s1 = c.effective_line(LineAddr::in_space(1, i)).offset() & 0xFF;
            let s2 = c.effective_line(LineAddr::in_space(2, i)).offset() & 0xFF;
            assert!(s1 < 128 && s2 >= 128);
        }
    }

    #[test]
    fn mapping_is_deterministic_and_invertible() {
        let c = ca();
        let line = LineAddr::in_space(3, 0xABCDE);
        let e1 = c.effective_line(line);
        let e2 = c.effective_line(line);
        assert_eq!(e1, e2);
        assert_eq!(c.original_line(e1), line);
    }

    #[test]
    fn distinct_lines_stay_distinct() {
        let mut c = ca();
        c.assign(1, 0b1); // a single group: maximum collision pressure
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(c.effective_line(LineAddr::in_space(1, i))), "collision at line {i}");
        }
    }

    #[test]
    fn reassignment_returns_previous_mask() {
        let mut c = ca();
        assert_eq!(c.assign(1, 0x000F), None);
        assert_eq!(c.assign(1, 0x00F0), Some(0x000F));
        c.charge_recolor(512);
        assert_eq!(c.recolored_lines, 512);
    }

    #[test]
    #[should_panic(expected = "at least one color")]
    fn empty_mask_rejected() {
        let mut c = ca();
        c.assign(1, 0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn groups_must_divide_sets() {
        let _ = ColorAssignment::new(100, 16);
    }
}
