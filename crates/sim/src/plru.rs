//! Tree pseudo-LRU replacement with way-mask-restricted victim selection.
//!
//! The modeled LLC uses pseudo-LRU (§3.2 credits pseudo-LRU as one of the
//! reasons real machines show no sharp working-set knees). Partitioning is
//! implemented *in the replacement path*: victim selection is restricted to
//! the requesting core's allowed ways, while the recency state is still
//! updated globally on hits from any core.
//!
//! The tree is a complete binary tree over `ways.next_power_of_two()`
//! leaves; each internal node holds one bit pointing toward the
//! least-recently-used half.

/// Per-set tree-PLRU state for up to 16 ways.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlruTree {
    /// Bit for heap node `i` (1-based) is stored at bit `i` of `bits`.
    /// Convention: bit 0 → left child is the LRU side, 1 → right child.
    bits: u16,
}

impl PlruTree {
    /// A tree with all bits cleared (way 0 is the initial victim).
    pub fn new() -> Self {
        PlruTree { bits: 0 }
    }

    /// Marks `way` as most recently used: flips path bits to point away
    /// from it. `leaves` must be the power-of-two leaf count used for
    /// victim selection.
    ///
    /// The walk is branchless: the descend direction is computed as an
    /// integer and folded into the node index and range arithmetic, so the
    /// per-level work is a handful of ALU ops with no unpredictable
    /// branches (replacement-path traffic has essentially random ways).
    #[inline]
    pub fn touch(&mut self, way: usize, leaves: usize) {
        debug_assert!(leaves.is_power_of_two() && leaves <= 16);
        debug_assert!(way < leaves);
        let mut bits = self.bits;
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut half = leaves >> 1;
        while half >= 1 {
            // Going left (way in the low half) points the LRU side right,
            // i.e. sets the bit; going right clears it.
            let right = usize::from(way >= lo + half);
            bits = (bits & !(1 << node)) | ((right as u16 ^ 1) << node);
            node = 2 * node + right;
            lo += half & right.wrapping_neg();
            half >>= 1;
        }
        self.bits = bits;
    }

    /// Selects a victim among ways permitted by `allowed` (a bitmask over
    /// leaf indices), following LRU-side bits and deviating only when the
    /// preferred subtree contains no permitted way.
    ///
    /// Returns `None` when `allowed` is empty.
    ///
    /// Like [`PlruTree::touch`] the walk is branchless; per level the
    /// direction is `(prefer_right & has_right) | (!prefer_right &
    /// !has_left)`, which always descends into a subtree that still
    /// contains an allowed way, so the final leaf is allowed whenever
    /// `allowed` is confined to `[0, leaves)`.
    #[inline]
    pub fn victim(&self, allowed: u32, leaves: usize) -> Option<usize> {
        debug_assert!(leaves.is_power_of_two() && leaves <= 16);
        if allowed == 0 {
            return None;
        }
        let bits = self.bits as usize;
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut half = leaves >> 1;
        while half >= 1 {
            let left_mask = ((1u32 << half) - 1) << lo;
            let has_left = usize::from(allowed & left_mask != 0);
            let has_right = usize::from(allowed & (left_mask << half) != 0);
            let prefer_right = (bits >> node) & 1;
            let go_right = (prefer_right & has_right) | ((prefer_right ^ 1) & (has_left ^ 1));
            node = 2 * node + go_right;
            lo += half & go_right.wrapping_neg();
            half >>= 1;
        }
        if (allowed >> lo) & 1 == 1 {
            Some(lo)
        } else {
            // Reachable only when every allowed bit lies at or above
            // `leaves`; keep the historical fallback to the lowest allowed
            // way for that degenerate case.
            Some(allowed.trailing_zeros() as usize)
        }
    }
}

/// Bitmask with bits `[lo, hi)` set. Used only by the test-side
/// reference victim walk the branchless version is pinned against.
#[cfg(test)]
fn range_mask(lo: usize, hi: usize) -> u32 {
    debug_assert!(lo < hi && hi <= 32);
    let hi_bits = if hi == 32 { u32::MAX } else { (1u32 << hi) - 1 };
    hi_bits & !((1u32 << lo) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_victimizes_way_zero() {
        let t = PlruTree::new();
        assert_eq!(t.victim(0xFFFF, 16), Some(0));
    }

    #[test]
    fn touch_steers_victim_away() {
        let mut t = PlruTree::new();
        t.touch(0, 8);
        let v = t.victim(0xFF, 8).unwrap();
        assert_ne!(v, 0);
        // Touching the victim too must move selection elsewhere.
        t.touch(v, 8);
        let v2 = t.victim(0xFF, 8).unwrap();
        assert_ne!(v2, v);
    }

    #[test]
    fn masked_victim_respects_mask() {
        let mut t = PlruTree::new();
        for w in 0..8 {
            t.touch(w, 8);
        }
        for mask in 1u32..256 {
            let v = t.victim(mask, 8).unwrap();
            assert!((mask >> v) & 1 == 1, "victim {v} not in mask {mask:#b}");
        }
    }

    #[test]
    fn empty_mask_returns_none() {
        let t = PlruTree::new();
        assert_eq!(t.victim(0, 8), None);
    }

    #[test]
    fn plru_approximates_lru_on_round_robin() {
        // Touch ways 0..7 in order; the victim should be way 0 (the least
        // recently touched) for a true LRU; tree-PLRU guarantees it here
        // because the access pattern is a clean sweep.
        let mut t = PlruTree::new();
        for w in 0..8 {
            t.touch(w, 8);
        }
        assert_eq!(t.victim(0xFF, 8), Some(0));
    }

    #[test]
    fn single_way_mask_always_selected() {
        let mut t = PlruTree::new();
        for w in [3usize, 1, 4, 1, 5] {
            t.touch(w, 8);
        }
        for w in 0..8 {
            assert_eq!(t.victim(1 << w, 8), Some(w));
        }
    }

    /// Reference (branchy) victim walk, kept verbatim from the original
    /// implementation to pin the branchless rewrite to it.
    fn ref_victim(bits: u16, allowed: u32, leaves: usize) -> Option<usize> {
        if allowed == 0 {
            return None;
        }
        let (mut lo, mut hi) = (0usize, leaves);
        let mut node = 1usize;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let left_mask = range_mask(lo, mid);
            let right_mask = range_mask(mid, hi);
            let prefer_right = (bits >> node) & 1 == 1;
            let go_right = if prefer_right {
                allowed & right_mask != 0
            } else {
                allowed & left_mask == 0
            };
            if go_right {
                node = 2 * node + 1;
                lo = mid;
            } else {
                node = 2 * node;
                hi = mid;
            }
        }
        if (allowed >> lo) & 1 == 1 {
            Some(lo)
        } else {
            Some(allowed.trailing_zeros() as usize)
        }
    }

    #[test]
    fn branchless_victim_matches_reference_exhaustively() {
        // 8 leaves → internal nodes 1..=7 → 2^7 tree states; sweep every
        // state against every non-empty mask.
        for state in 0u16..128 {
            let t = PlruTree { bits: state << 1 };
            for mask in 1u32..256 {
                assert_eq!(
                    t.victim(mask, 8),
                    ref_victim(state << 1, mask, 8),
                    "state {state:#b} mask {mask:#b}"
                );
            }
        }
    }

    #[test]
    fn range_mask_edges() {
        assert_eq!(range_mask(0, 32), u32::MAX);
        assert_eq!(range_mask(0, 1), 1);
        assert_eq!(range_mask(4, 8), 0xF0);
    }
}
