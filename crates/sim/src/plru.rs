//! Tree pseudo-LRU replacement with way-mask-restricted victim selection.
//!
//! The modeled LLC uses pseudo-LRU (§3.2 credits pseudo-LRU as one of the
//! reasons real machines show no sharp working-set knees). Partitioning is
//! implemented *in the replacement path*: victim selection is restricted to
//! the requesting core's allowed ways, while the recency state is still
//! updated globally on hits from any core.
//!
//! The tree is a complete binary tree over `ways.next_power_of_two()`
//! leaves; each internal node holds one bit pointing toward the
//! least-recently-used half.

/// Per-set tree-PLRU state for up to 16 ways.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlruTree {
    /// Bit for heap node `i` (1-based) is stored at bit `i` of `bits`.
    /// Convention: bit 0 → left child is the LRU side, 1 → right child.
    bits: u16,
}

impl PlruTree {
    /// A tree with all bits cleared (way 0 is the initial victim).
    pub fn new() -> Self {
        PlruTree { bits: 0 }
    }

    /// Marks `way` as most recently used: flips path bits to point away
    /// from it. `leaves` must be the power-of-two leaf count used for
    /// victim selection.
    #[inline]
    pub fn touch(&mut self, way: usize, leaves: usize) {
        debug_assert!(leaves.is_power_of_two() && leaves <= 16);
        debug_assert!(way < leaves);
        let (mut lo, mut hi) = (0usize, leaves);
        let mut node = 1usize;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // `way` is on the left: the LRU side becomes the right.
                self.bits |= 1 << node;
                node = 2 * node;
                hi = mid;
            } else {
                self.bits &= !(1 << node);
                node = 2 * node + 1;
                lo = mid;
            }
        }
    }

    /// Selects a victim among ways permitted by `allowed` (a bitmask over
    /// leaf indices), following LRU-side bits and deviating only when the
    /// preferred subtree contains no permitted way.
    ///
    /// Returns `None` when `allowed` is empty.
    #[inline]
    pub fn victim(&self, allowed: u32, leaves: usize) -> Option<usize> {
        debug_assert!(leaves.is_power_of_two() && leaves <= 16);
        if allowed == 0 {
            return None;
        }
        let (mut lo, mut hi) = (0usize, leaves);
        let mut node = 1usize;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let left_mask = range_mask(lo, mid);
            let right_mask = range_mask(mid, hi);
            let prefer_right = (self.bits >> node) & 1 == 1;
            let go_right = if prefer_right {
                allowed & right_mask != 0
            } else {
                allowed & left_mask == 0
            };
            if go_right {
                node = 2 * node + 1;
                lo = mid;
            } else {
                node = 2 * node;
                hi = mid;
            }
        }
        if (allowed >> lo) & 1 == 1 {
            Some(lo)
        } else {
            // The chosen leaf is disallowed only if the whole path had no
            // allowed option, which the checks above exclude; keep a
            // defensive fallback to the lowest allowed way.
            Some(allowed.trailing_zeros() as usize)
        }
    }
}

/// Bitmask with bits `[lo, hi)` set.
#[inline]
fn range_mask(lo: usize, hi: usize) -> u32 {
    debug_assert!(lo < hi && hi <= 32);
    let hi_bits = if hi == 32 { u32::MAX } else { (1u32 << hi) - 1 };
    hi_bits & !((1u32 << lo) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_victimizes_way_zero() {
        let t = PlruTree::new();
        assert_eq!(t.victim(0xFFFF, 16), Some(0));
    }

    #[test]
    fn touch_steers_victim_away() {
        let mut t = PlruTree::new();
        t.touch(0, 8);
        let v = t.victim(0xFF, 8).unwrap();
        assert_ne!(v, 0);
        // Touching the victim too must move selection elsewhere.
        t.touch(v, 8);
        let v2 = t.victim(0xFF, 8).unwrap();
        assert_ne!(v2, v);
    }

    #[test]
    fn masked_victim_respects_mask() {
        let mut t = PlruTree::new();
        for w in 0..8 {
            t.touch(w, 8);
        }
        for mask in 1u32..256 {
            let v = t.victim(mask, 8).unwrap();
            assert!((mask >> v) & 1 == 1, "victim {v} not in mask {mask:#b}");
        }
    }

    #[test]
    fn empty_mask_returns_none() {
        let t = PlruTree::new();
        assert_eq!(t.victim(0, 8), None);
    }

    #[test]
    fn plru_approximates_lru_on_round_robin() {
        // Touch ways 0..7 in order; the victim should be way 0 (the least
        // recently touched) for a true LRU; tree-PLRU guarantees it here
        // because the access pattern is a clean sweep.
        let mut t = PlruTree::new();
        for w in 0..8 {
            t.touch(w, 8);
        }
        assert_eq!(t.victim(0xFF, 8), Some(0));
    }

    #[test]
    fn single_way_mask_always_selected() {
        let mut t = PlruTree::new();
        for w in [3usize, 1, 4, 1, 5] {
            t.touch(w, 8);
        }
        for w in 0..8 {
            assert_eq!(t.victim(1 << w, 8), Some(w));
        }
    }

    #[test]
    fn range_mask_edges() {
        assert_eq!(range_mask(0, 32), u32::MAX);
        assert_eq!(range_mask(0, 1), 1);
        assert_eq!(range_mask(4, 8), 0xF0);
    }
}
