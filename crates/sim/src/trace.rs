//! Access-trace capture and replay.
//!
//! The simulator is execution-driven, but trace-driven workflows are often
//! what downstream users need: capture one run's exact memory behaviour,
//! archive it, and replay it against modified hardware configurations so
//! that *only* the hardware changes between experiments (the methodology
//! trade-off §2's real-hardware argument is about).
//!
//! [`TraceRecorder`] wraps any [`AccessStream`] and records every event;
//! the resulting [`Trace`] serializes to a compact little-endian binary
//! format and replays through [`TraceReplay`].

use crate::addr::LineAddr;
use crate::stream::{Access, AccessStream, StreamEvent};

/// One recorded stream event.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Record {
    Access { instr_gap: u32, access: Access },
    Compute { instrs: u32 },
}

/// A captured access trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<Record>,
    base_cpi: f64,
}

/// Magic bytes of the binary format.
const MAGIC: &[u8; 4] = b"WPT1";

/// Errors from decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// The buffer did not start with the format magic.
    BadMagic,
    /// The buffer ended mid-record.
    Truncated,
    /// An unknown record tag was encountered.
    UnknownTag(u8),
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::BadMagic => write!(f, "not a waypart trace (bad magic)"),
            DecodeTraceError::Truncated => write!(f, "trace truncated mid-record"),
            DecodeTraceError::UnknownTag(t) => write!(f, "unknown record tag {t}"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instructions the trace represents.
    pub fn instructions(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                Record::Access { instr_gap, .. } => u64::from(*instr_gap) + 1,
                Record::Compute { instrs } => u64::from(*instrs),
            })
            .sum()
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.records.len() * 20);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.base_cpi.to_le_bytes());
        for r in &self.records {
            match r {
                Record::Compute { instrs } => {
                    out.push(0);
                    out.extend_from_slice(&instrs.to_le_bytes());
                }
                Record::Access { instr_gap, access } => {
                    out.push(1);
                    out.extend_from_slice(&instr_gap.to_le_bytes());
                    out.extend_from_slice(&access.line.0.to_le_bytes());
                    out.extend_from_slice(&access.pc.to_le_bytes());
                    out.extend_from_slice(&access.mlp.to_le_bytes());
                    out.push(u8::from(access.write) | (u8::from(access.non_temporal) << 1));
                }
            }
        }
        out
    }

    /// Decodes a serialized trace.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeTraceError> {
        if bytes.len() < 12 || &bytes[..4] != MAGIC {
            return Err(DecodeTraceError::BadMagic);
        }
        let base_cpi = f64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let mut records = Vec::new();
        let mut i = 12usize;
        let take = |i: &mut usize, n: usize| -> Result<&[u8], DecodeTraceError> {
            if *i + n > bytes.len() {
                return Err(DecodeTraceError::Truncated);
            }
            let s = &bytes[*i..*i + n];
            *i += n;
            Ok(s)
        };
        while i < bytes.len() {
            let tag = take(&mut i, 1)?[0];
            match tag {
                0 => {
                    let instrs = u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4"));
                    records.push(Record::Compute { instrs });
                }
                1 => {
                    let instr_gap = u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4"));
                    let line = u64::from_le_bytes(take(&mut i, 8)?.try_into().expect("8"));
                    let pc = u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4"));
                    let mlp = f32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4"));
                    let flags = take(&mut i, 1)?[0];
                    records.push(Record::Access {
                        instr_gap,
                        access: Access {
                            line: LineAddr(line),
                            write: flags & 1 == 1,
                            pc,
                            non_temporal: flags & 2 == 2,
                            mlp,
                        },
                    });
                }
                t => return Err(DecodeTraceError::UnknownTag(t)),
            }
        }
        Ok(Trace { records, base_cpi })
    }

    /// A replaying stream over this trace.
    pub fn replay(&self) -> TraceReplay {
        TraceReplay { trace: self.clone(), pos: 0, issued: 0 }
    }
}

/// Wraps a stream and records everything it emits.
pub struct TraceRecorder<S> {
    inner: S,
    trace: Trace,
}

impl<S: AccessStream> TraceRecorder<S> {
    /// Starts recording `inner`.
    pub fn new(inner: S) -> Self {
        let base_cpi = inner.base_cpi();
        TraceRecorder { inner, trace: Trace { records: Vec::new(), base_cpi } }
    }

    /// Stops recording and returns the captured trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl<S: AccessStream> AccessStream for TraceRecorder<S> {
    fn next_event(&mut self) -> StreamEvent {
        let e = self.inner.next_event();
        match e {
            StreamEvent::Access { instr_gap, access } => {
                self.trace.records.push(Record::Access { instr_gap, access })
            }
            StreamEvent::Compute { instrs } => self.trace.records.push(Record::Compute { instrs }),
            StreamEvent::Done => {}
        }
        e
    }

    fn base_cpi(&self) -> f64 {
        self.inner.base_cpi()
    }
}

/// Replays a [`Trace`] as an [`AccessStream`].
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    pos: usize,
    issued: u64,
}

impl AccessStream for TraceReplay {
    fn next_event(&mut self) -> StreamEvent {
        match self.trace.records.get(self.pos) {
            None => StreamEvent::Done,
            Some(&Record::Access { instr_gap, access }) => {
                self.pos += 1;
                self.issued += u64::from(instr_gap) + 1;
                StreamEvent::Access { instr_gap, access }
            }
            Some(&Record::Compute { instrs }) => {
                self.pos += 1;
                self.issued += u64::from(instrs);
                StreamEvent::Compute { instrs }
            }
        }
    }

    fn base_cpi(&self) -> f64 {
        self.trace.base_cpi
    }

    fn instructions_issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SequentialStream;

    fn record_all(mut rec: TraceRecorder<SequentialStream>) -> Trace {
        while rec.next_event() != StreamEvent::Done {}
        rec.into_trace()
    }

    #[test]
    fn recorder_captures_everything() {
        let trace = record_all(TraceRecorder::new(SequentialStream::new(1, 16, 100, 5)));
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.instructions(), 600);
    }

    #[test]
    fn replay_reproduces_the_stream() {
        let trace = record_all(TraceRecorder::new(SequentialStream::new(1, 16, 50, 3)));
        let mut original = SequentialStream::new(1, 16, 50, 3);
        let mut replay = trace.replay();
        loop {
            let a = original.next_event();
            let b = replay.next_event();
            assert_eq!(a, b);
            if a == StreamEvent::Done {
                break;
            }
        }
    }

    #[test]
    fn binary_roundtrip() {
        let trace = record_all(TraceRecorder::new(SequentialStream::new(3, 8, 40, 2)));
        let bytes = trace.to_bytes();
        let decoded = Trace::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(decoded, trace);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Trace::from_bytes(b"nope").unwrap_err(), DecodeTraceError::BadMagic);
        let trace = record_all(TraceRecorder::new(SequentialStream::new(1, 8, 3, 1)));
        let mut bytes = trace.to_bytes();
        bytes.truncate(bytes.len() - 2);
        assert_eq!(Trace::from_bytes(&bytes).unwrap_err(), DecodeTraceError::Truncated);
        let mut bad_tag = trace.to_bytes();
        let tag_pos = 12;
        bad_tag[tag_pos] = 9;
        assert_eq!(Trace::from_bytes(&bad_tag).unwrap_err(), DecodeTraceError::UnknownTag(9));
    }

    #[test]
    fn replay_is_rewindable_via_clone() {
        let trace = record_all(TraceRecorder::new(SequentialStream::new(1, 8, 10, 1)));
        let mut r1 = trace.replay();
        let first = r1.next_event();
        let mut r2 = trace.replay();
        assert_eq!(r2.next_event(), first);
    }
}
