//! The simulated socket: cores, hyperthreads, and the quantum scheduler.
//!
//! [`Machine`] ties the hierarchy, bandwidth models, MSR bank, and
//! performance counters together and advances attached
//! [`AccessStream`](crate::stream::AccessStream)s in fixed-length quanta.
//! Within a quantum each hardware thread runs independently against
//! contention multipliers measured over the previous quantum — the standard
//! interval-simulation trade-off that keeps multi-application co-simulation
//! fast while preserving steady-state contention effects.
//!
//! Applications are identified by their address-space id (`asid`); an
//! application "finishes" when every thread attached under its asid has
//! returned [`StreamEvent::Done`](crate::stream::StreamEvent::Done).

use crate::config::MachineConfig;
use crate::counters::HwCounters;
use crate::dram::DramModel;
use crate::hierarchy::{AccessOutcome, Hierarchy, HitLevel};
use crate::msr::{MsrBank, PrefetcherMask};
use crate::ring::RingModel;
use crate::stream::{AccessStream, StreamEvent};
use crate::waymask::WayMask;
use crate::{CoreId, Cycles, HwThreadId};
use waypart_telemetry::progress::{self, Phase};

/// Events pulled per [`AccessStream::fill`] call. Large enough to amortize
/// the virtual dispatch and the models' per-burst setup, small enough that
/// a full buffer stays in the simulating machine's L1.
const EVENT_BUF: usize = 256;

/// One hardware thread's execution context.
struct ThreadSlot {
    stream: Box<dyn AccessStream>,
    asid: u16,
    done: bool,
    /// Cycles this thread overshot its previous quantum by.
    carry: f64,
    /// Bulk event buffer; `buf[pos..len]` are generated-but-unconsumed
    /// events that persist across quantum boundaries, so the per-quantum
    /// cycle accounting is identical to the one-event-at-a-time engine.
    buf: Box<[StreamEvent]>,
    pos: usize,
    len: usize,
    /// Set when a `fill` came back short: the stream is exhausted and the
    /// buffered tail is all that remains.
    exhausted: bool,
    /// Counter deltas of this thread's most recent *measurement* quantum;
    /// warming and fast-forward quanta (sampled fidelity) extrapolate from
    /// these rates.
    rate: Option<HwCounters>,
    /// Fractional counter remainders carried across fast-forward
    /// extrapolations so long skips stay unbiased (one slot per
    /// extrapolated counter field; see `fast_forward_thread`).
    ff_frac: [f64; 9],
    /// Instructions this thread has fallen behind the rate trajectory
    /// (positive = behind). Warming quanta run slower than steady state
    /// because they re-fill stale caches; fast-forwards recover the
    /// deficit so sampled finish times track the extrapolated pace.
    lag: i64,
}

impl ThreadSlot {
    fn new(stream: Box<dyn AccessStream>, asid: u16) -> Self {
        ThreadSlot {
            stream,
            asid,
            done: false,
            carry: 0.0,
            buf: vec![StreamEvent::Done; EVENT_BUF].into_boxed_slice(),
            pos: 0,
            len: 0,
            exhausted: false,
            rate: None,
            ff_frac: [0.0; 9],
            lag: 0,
        }
    }
}

/// Activity summary for one quantum, consumed by the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuantumActivity {
    /// Length of the quantum in cycles.
    pub cycles: Cycles,
    /// Number of hyperthreads that executed this quantum.
    pub active_threads: usize,
    /// Number of cores with at least one active hyperthread.
    pub active_cores: usize,
    /// Instructions retired socket-wide this quantum.
    pub instructions: u64,
    /// LLC accesses this quantum.
    pub llc_accesses: u64,
    /// DRAM line transfers this quantum (reads + write-backs + prefetches).
    pub dram_lines: u64,
    /// True when at least one thread is still runnable.
    pub any_active: bool,
}

/// The simulated 4-core / 8-thread socket.
pub struct Machine {
    cfg: MachineConfig,
    hierarchy: Hierarchy,
    ring: RingModel,
    dram: DramModel,
    msr: MsrBank,
    threads: Vec<Option<ThreadSlot>>,
    counters: Vec<HwCounters>,
    now: Cycles,
    /// Cycle at which each asid's last thread finished.
    finish_times: std::collections::HashMap<u16, Cycles>,
    /// When false, threads run the one-event-at-a-time loop instead of the
    /// buffered drain. The two paths are semantically identical (the
    /// equivalence harness pins this); the scalar path exists as the test
    /// oracle and costs one branch per thread-quantum to keep compiled.
    batching: bool,
}

impl Machine {
    /// Builds an idle machine.
    pub fn new(cfg: MachineConfig) -> Self {
        let n = cfg.hw_threads();
        Machine {
            hierarchy: Hierarchy::new(&cfg),
            ring: RingModel::new(cfg.ring),
            dram: DramModel::new(cfg.dram),
            msr: MsrBank::new(cfg.cores, cfg.llc.ways),
            threads: (0..n).map(|_| None).collect(),
            counters: vec![HwCounters::default(); n],
            now: 0,
            finish_times: std::collections::HashMap::new(),
            batching: true,
            cfg,
        }
    }

    /// Selects between the buffered drain loop (default) and the scalar
    /// one-event-at-a-time loop. The scalar path is the oracle the batched
    /// engine is tested against; production code never turns it on.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current wall-clock cycle.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Pins `stream` to hardware thread `ht` under address space `asid`
    /// (the simulator's `taskset`).
    ///
    /// # Panics
    /// Panics if `ht` is out of range or already occupied.
    pub fn attach(&mut self, ht: HwThreadId, asid: u16, stream: Box<dyn AccessStream>) {
        assert!(ht < self.threads.len(), "hardware thread {ht} out of range");
        assert!(self.threads[ht].is_none(), "hardware thread {ht} already occupied");
        self.threads[ht] = Some(ThreadSlot::new(stream, asid));
        self.finish_times.remove(&asid);
    }

    /// Removes whatever runs on `ht`.
    pub fn detach(&mut self, ht: HwThreadId) {
        self.threads[ht] = None;
    }

    /// Programs core `core`'s LLC way allocation (via the MSR bank; takes
    /// effect on the next replacement, no flush).
    pub fn set_way_mask(&mut self, core: CoreId, mask: WayMask) {
        self.msr.set_way_mask(core, mask);
    }

    /// Core `core`'s current way allocation.
    pub fn way_mask(&self, core: CoreId) -> WayMask {
        self.msr.way_mask(core)
    }

    /// Programs the prefetcher enable MSR bits.
    pub fn set_prefetchers(&mut self, mask: PrefetcherMask) {
        self.msr.set_prefetchers(mask);
    }

    /// Programs core `core`'s memory-bandwidth throttle (MBA analog,
    /// percent of full bandwidth) — the §8 future-work QoS knob.
    pub fn set_mba(&mut self, core: CoreId, percent: u8) {
        self.msr.set_mba(core, percent);
        self.hierarchy.set_mba(core, percent);
    }

    /// Core `core`'s current bandwidth throttle.
    pub fn mba(&self, core: CoreId) -> u8 {
        self.msr.mba(core)
    }

    /// Counter file of hardware thread `ht`.
    pub fn counters(&self, ht: HwThreadId) -> &HwCounters {
        &self.counters[ht]
    }

    /// Aggregated counters of every thread attached under `asid`.
    pub fn app_counters(&self, asid: u16) -> HwCounters {
        let mut total = HwCounters::default();
        for (ht, slot) in self.threads.iter().enumerate() {
            if let Some(s) = slot {
                if s.asid == asid {
                    total = total.merge(&self.counters[ht]);
                }
            }
        }
        total
    }

    /// Whether every thread of `asid` has finished.
    pub fn app_done(&self, asid: u16) -> bool {
        let mut saw = false;
        for slot in self.threads.iter().flatten() {
            if slot.asid == asid {
                saw = true;
                if !slot.done {
                    return false;
                }
            }
        }
        saw
    }

    /// Cycle at which `asid`'s last thread finished, if it has.
    pub fn finish_time(&self, asid: u16) -> Option<Cycles> {
        self.finish_times.get(&asid).copied()
    }

    /// Whether any attached thread is still runnable.
    pub fn any_active(&self) -> bool {
        self.threads.iter().flatten().any(|s| !s.done)
    }

    /// LLC lines currently owned by `core`'s fills.
    pub fn llc_occupancy_of(&self, core: CoreId) -> usize {
        self.hierarchy.llc_occupancy_of(core)
    }

    /// The hierarchy (for invariant checks and ablations).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Snapshot of the hierarchy's per-level telemetry tallies.
    #[cfg(feature = "telemetry")]
    pub fn tallies(&self) -> crate::tallies::LevelTallies {
        self.hierarchy.tallies()
    }

    /// Per-access latency histograms by satisfying level, indexed by
    /// [`crate::hierarchy::HitLevel::index`] (telemetry builds).
    #[cfg(feature = "telemetry")]
    pub fn latency_hists(
        &self,
    ) -> &[waypart_telemetry::Histogram; crate::hierarchy::HitLevel::COUNT] {
        self.hierarchy.latency_hists()
    }

    /// Enables per-core utility monitors (for the UCP baseline).
    pub fn enable_umon(&mut self) {
        self.hierarchy.enable_umon();
    }

    /// Core `core`'s utility monitor, if enabled.
    pub fn umon(&self, core: CoreId) -> Option<&crate::umon::UtilityMonitor> {
        self.hierarchy.umon(core)
    }

    /// Decays all utility-monitor counters (UCP repartition interval).
    pub fn decay_umons(&mut self) {
        self.hierarchy.decay_umons();
    }

    /// Enables page coloring (set partitioning) with `groups` color
    /// groups. Requires a modulo-indexed LLC; see
    /// [`crate::coloring::ColorAssignment`].
    pub fn enable_coloring(&mut self, groups: usize) {
        self.hierarchy.enable_coloring(groups);
    }

    /// Assigns color groups to an address space; returns the previous
    /// mask so callers can model the recoloring (page-copy) cost.
    ///
    /// # Panics
    /// Panics if coloring is not enabled.
    pub fn assign_colors(&mut self, asid: u16, mask: u32) -> Option<u32> {
        self.hierarchy
            .coloring_mut()
            .expect("enable_coloring first")
            .assign(asid, mask)
    }

    /// Flushes `core`-owned LLC lines outside its current mask — the
    /// "flush on reallocation" ablation. The real mechanism never does
    /// this.
    pub fn flush_llc_outside_mask(&mut self, core: CoreId) {
        let mask = self.msr.way_mask(core);
        self.hierarchy.flush_llc_outside_mask(core, mask, &mut self.dram);
    }

    /// Advances every runnable thread by one quantum and updates the
    /// bandwidth models. Returns the quantum's activity summary.
    pub fn run_quantum(&mut self) -> QuantumActivity {
        self.run_detailed_quantum(false)
    }

    /// A detailed quantum whose purpose is re-warming cache state after a
    /// sampled-fidelity skip. Accesses walk the full hierarchy (restoring
    /// cache, prefetcher, and bandwidth state), but each thread's
    /// state-dependent counter deltas — misses, LLC traffic, prefetches —
    /// are *replaced* by its measurement-rate extrapolation: the re-warm
    /// miss burst is a sampling artifact, not application behavior, and
    /// counting it would bias sampled MPKI far above exact. Instruction
    /// and cycle progress stay as measured (they are real stream
    /// position/time); the instruction shortfall versus the rate
    /// trajectory accrues in `ThreadSlot::lag` and is recovered by the
    /// next fast-forward. Rates are *not* recorded here — only
    /// measurement quanta ([`Machine::run_quantum`]) update them.
    pub fn run_quantum_warming(&mut self) -> QuantumActivity {
        self.run_detailed_quantum(true)
    }

    fn run_detailed_quantum(&mut self, warming: bool) -> QuantumActivity {
        let quantum = self.cfg.quantum_cycles;
        let tpc = self.cfg.threads_per_core;
        let dram_before = self.dram.total_lines;

        // Sibling activity decides SMT dilation for the whole quantum.
        // Kept as bitmasks: run_quantum is called once per quantum for the
        // entire run, and the per-call Vec allocations used to show up in
        // profiles of short-quantum configurations.
        debug_assert!(self.threads.len() <= 128, "thread bitmask limited to 128 hw threads");
        let mut active = 0u128;
        for (ht, s) in self.threads.iter().enumerate() {
            if s.as_ref().map(|t| !t.done).unwrap_or(false) {
                active |= 1 << ht;
            }
        }

        let mut act = QuantumActivity { cycles: quantum, any_active: false, ..Default::default() };
        let mut core_active = 0u128;

        for ht in 0..self.threads.len() {
            if active >> ht & 1 == 0 {
                continue;
            }
            act.any_active = true;
            act.active_threads += 1;
            let core = ht / tpc;
            core_active |= 1 << core;

            // Any *other* active hyperthread on the same core?
            let core_mask = (((1u128 << tpc) - 1) << (core * tpc)) & !(1u128 << ht);
            let sibling_active = active & core_mask != 0;
            let dilation =
                if sibling_active { self.cfg.smt.compute_dilation } else { 1.0 };

            let before = self.counters[ht];
            let finished = self.run_thread_quantum(ht, core, quantum, dilation, !warming);
            if warming {
                self.rewrite_warm_delta(ht, &before);
            }
            let delta = self.counters[ht].delta(&before);
            act.instructions += delta.instructions;
            act.llc_accesses += delta.llc_accesses;

            if finished {
                let slot = self.threads[ht].as_mut().expect("active thread");
                slot.done = true;
                let asid = slot.asid;
                if self.app_done(asid) {
                    self.finish_times.insert(asid, self.now + quantum);
                }
            }
        }

        act.active_cores = core_active.count_ones() as usize;
        act.dram_lines = self.dram.total_lines - dram_before;

        self.ring.end_quantum(quantum);
        self.dram.end_quantum(quantum);
        self.now += quantum;
        act
    }

    /// Runs thread `ht` for up to `quantum` cycles. Returns true if the
    /// stream completed. `record_rate` remembers this quantum's counter
    /// deltas as the thread's extrapolation rates; warming quanta pass
    /// false so a polluted post-skip quantum never becomes the rate.
    fn run_thread_quantum(
        &mut self,
        ht: HwThreadId,
        core: CoreId,
        quantum: Cycles,
        dilation: f64,
        record_rate: bool,
    ) -> bool {
        let budget = quantum as f64;
        let mask = self.msr.way_mask(core);
        let pf_mask = self.msr.prefetchers();
        let store_stall = self.cfg.store_stall_factor;

        // Temporarily take the slot to satisfy the borrow checker while the
        // hierarchy runs; cheap pointer moves only.
        let mut slot = self.threads[ht].take().expect("runnable thread");
        let cpi = slot.stream.base_cpi() * dilation;
        let mut used = slot.carry;
        let counters = &mut self.counters[ht];
        let rate_before = *counters;
        let mut finished = false;

        // Phase attribution (observation-only, off by default): wall time
        // inside this function partitions into stream generation (the
        // `fill` calls) and probe+fill (everything else). Sampled at
        // buffer/quantum granularity — never per event — so the enabled
        // cost is two clock reads per 256-event refill.
        let mut drain_seg = progress::phase_begin();

        if self.batching {
            // Drain buffered events; refill in bulk when the buffer runs
            // dry. An event is consumed exactly when the scalar loop would
            // have generated it (`used < budget`), and unconsumed buffered
            // events carry over to the next quantum via `pos`, so the two
            // paths execute the identical event sequence.
            while used < budget {
                if slot.pos == slot.len {
                    if slot.exhausted {
                        finished = true;
                        break;
                    }
                    progress::phase_add(Phase::ProbeFill, drain_seg);
                    let fill_t0 = progress::phase_begin();
                    slot.len = slot.stream.fill(&mut slot.buf);
                    progress::phase_add(Phase::StreamGen, fill_t0);
                    if fill_t0.is_some() {
                        progress::count_sim_accesses(slot.len as u64);
                    }
                    drain_seg = progress::phase_begin();
                    slot.pos = 0;
                    slot.exhausted = slot.len < slot.buf.len();
                    if slot.len == 0 {
                        finished = true;
                        break;
                    }
                }
                // SAFETY: `pos < len <= buf.len()` by the refill above.
                let ev = unsafe { *slot.buf.get_unchecked(slot.pos) };
                slot.pos += 1;
                match ev {
                    StreamEvent::Access { instr_gap, access } => {
                        counters.instructions += u64::from(instr_gap) + 1;
                        used += (f64::from(instr_gap) + 1.0) * cpi;
                        let outcome = self
                            .hierarchy
                            .access(core, &access, mask, pf_mask, &mut self.ring, &mut self.dram);
                        Self::charge(counters, &access, &outcome, store_stall, &mut used);
                    }
                    StreamEvent::Compute { instrs } => {
                        counters.instructions += u64::from(instrs);
                        used += f64::from(instrs) * cpi;
                    }
                    // `fill` never stores `Done`.
                    StreamEvent::Done => unreachable!("Done event in bulk buffer"),
                }
            }
        } else {
            while used < budget {
                match slot.stream.next_event() {
                    StreamEvent::Compute { instrs } => {
                        counters.instructions += u64::from(instrs);
                        used += f64::from(instrs) * cpi;
                    }
                    StreamEvent::Access { instr_gap, access } => {
                        counters.instructions += u64::from(instr_gap) + 1;
                        used += (f64::from(instr_gap) + 1.0) * cpi;
                        let outcome = self
                            .hierarchy
                            .access(core, &access, mask, pf_mask, &mut self.ring, &mut self.dram);
                        Self::charge(counters, &access, &outcome, store_stall, &mut used);
                    }
                    StreamEvent::Done => {
                        finished = true;
                        break;
                    }
                }
            }
        }
        progress::phase_add(Phase::ProbeFill, drain_seg);

        slot.carry = (used - budget).max(0.0);
        counters.cycles += if finished { used.min(budget) as u64 } else { quantum };
        if record_rate {
            // Remember this quantum's rates for sampled-fidelity warming
            // replacements and fast-forwards.
            slot.rate = Some(counters.delta(&rate_before));
        }
        self.threads[ht] = Some(slot);
        finished
    }

    /// Replaces thread `ht`'s state-dependent counter deltas from the
    /// warming quantum that just ran (`before` = counters at its start)
    /// with its measurement-rate extrapolation, scaled to the instructions
    /// the quantum actually retired. Instructions, cycles, and L1 accesses
    /// are exact functions of the stream position and stay as measured.
    /// No-op for a thread with no recorded rate yet (e.g. the first
    /// period's warm-up, which is exact anyway).
    fn rewrite_warm_delta(&mut self, ht: HwThreadId, before: &HwCounters) {
        let mut slot = self.threads[ht].take().expect("thread just ran");
        let Some(rate) = slot.rate.filter(|r| r.instructions > 0) else {
            self.threads[ht] = Some(slot);
            return;
        };
        let counters = &mut self.counters[ht];
        let delta = counters.delta(before);
        slot.lag += rate.instructions as i64 - delta.instructions as i64;
        let factor = delta.instructions as f64 / rate.instructions as f64;
        let set = |dst: &mut u64, base: u64, per_quantum: u64, frac: &mut f64| {
            let x = per_quantum as f64 * factor + *frac;
            let whole = x.floor();
            *dst = base + whole as u64;
            *frac = x - whole;
        };
        set(&mut counters.l1_misses, before.l1_misses, rate.l1_misses, &mut slot.ff_frac[1]);
        set(&mut counters.l2_misses, before.l2_misses, rate.l2_misses, &mut slot.ff_frac[2]);
        set(&mut counters.llc_accesses, before.llc_accesses, rate.llc_accesses, &mut slot.ff_frac[3]);
        set(&mut counters.llc_misses, before.llc_misses, rate.llc_misses, &mut slot.ff_frac[4]);
        set(&mut counters.dram_writebacks, before.dram_writebacks, rate.dram_writebacks, &mut slot.ff_frac[5]);
        set(&mut counters.prefetches_issued, before.prefetches_issued, rate.prefetches_issued, &mut slot.ff_frac[6]);
        set(&mut counters.prefetch_hits, before.prefetch_hits, rate.prefetch_hits, &mut slot.ff_frac[7]);
        set(&mut counters.non_temporal, before.non_temporal, rate.non_temporal, &mut slot.ff_frac[8]);
        self.threads[ht] = Some(slot);
    }

    /// Advances every runnable thread by one quantum *without* simulating
    /// its accesses — the sampled-fidelity fast-forward window.
    ///
    /// Each thread skips as many instructions as its most recent detailed
    /// quantum retired (buffered events are consumed first, then the
    /// stream's [`AccessStream::skip_instructions`]), and its counters
    /// advance by that quantum's rates scaled to the instructions actually
    /// skipped, with fractional remainders carried so long skips stay
    /// unbiased. The ring/DRAM queue multipliers are *frozen* (no
    /// `end_quantum`): contention state persists across the skip and the
    /// next detailed window resumes under the measured load. A thread that
    /// has never run a detailed quantum falls back to a detailed one.
    ///
    /// Deterministic: extrapolation is pure arithmetic and
    /// `skip_instructions` is required to be deterministic. Approximations
    /// (documented in DESIGN.md §5e): skipped accesses do not move cache,
    /// prefetcher, or bandwidth state, and the workload models leave their
    /// RNG position untouched while skipping.
    pub fn fast_forward_quantum(&mut self) -> QuantumActivity {
        let quantum = self.cfg.quantum_cycles;
        let tpc = self.cfg.threads_per_core;
        let dram_before = self.dram.total_lines;

        debug_assert!(self.threads.len() <= 128, "thread bitmask limited to 128 hw threads");
        let mut active = 0u128;
        for (ht, s) in self.threads.iter().enumerate() {
            if s.as_ref().map(|t| !t.done).unwrap_or(false) {
                active |= 1 << ht;
            }
        }

        let mut act = QuantumActivity { cycles: quantum, any_active: false, ..Default::default() };
        let mut core_active = 0u128;

        for ht in 0..self.threads.len() {
            if active >> ht & 1 == 0 {
                continue;
            }
            act.any_active = true;
            act.active_threads += 1;
            let core = ht / tpc;
            core_active |= 1 << core;

            let has_rate = self.threads[ht]
                .as_ref()
                .and_then(|s| s.rate)
                .map(|r| r.instructions > 0)
                .unwrap_or(false);
            let before = self.counters[ht];
            let (finished, extrapolated) = if has_rate {
                (self.fast_forward_thread(ht, quantum), true)
            } else {
                let core_mask = (((1u128 << tpc) - 1) << (core * tpc)) & !(1u128 << ht);
                let dilation =
                    if active & core_mask != 0 { self.cfg.smt.compute_dilation } else { 1.0 };
                (self.run_thread_quantum(ht, core, quantum, dilation, true), false)
            };
            let delta = self.counters[ht].delta(&before);
            act.instructions += delta.instructions;
            act.llc_accesses += delta.llc_accesses;
            if extrapolated {
                // Extrapolated DRAM traffic for the energy model (real
                // traffic from the detailed fallback lands in the
                // `total_lines` delta below).
                act.dram_lines += delta.llc_misses + delta.dram_writebacks;
            }

            if finished {
                let slot = self.threads[ht].as_mut().expect("active thread");
                slot.done = true;
                let asid = slot.asid;
                if self.app_done(asid) {
                    self.finish_times.insert(asid, self.now + quantum);
                }
            }
        }

        act.active_cores = core_active.count_ones() as usize;
        act.dram_lines += self.dram.total_lines - dram_before;
        self.now += quantum;
        act
    }

    /// Fast-forwards one thread by its measurement quantum's instruction
    /// count plus any accrued warming lag; returns true if the stream ran
    /// out of work.
    fn fast_forward_thread(&mut self, ht: HwThreadId, quantum: Cycles) -> bool {
        let mut slot = self.threads[ht].take().expect("runnable thread");
        let rate = slot.rate.expect("caller checked rate");
        // Catch up to the rate trajectory: warming quanta retire fewer
        // instructions than steady state (stale-cache stalls), and leaving
        // that deficit in place would inflate sampled finish times by the
        // warm-up tax once per period.
        let target = (rate.instructions as i64 + slot.lag).max(1) as u64;

        // Consume generated-but-unconsumed buffered events first: they are
        // by construction the very next events the stream produces, so the
        // stream position stays exact across the skip.
        let mut advanced = 0u64;
        let mut finished = false;
        while advanced < target && slot.pos < slot.len {
            match slot.buf[slot.pos] {
                StreamEvent::Access { instr_gap, .. } => advanced += u64::from(instr_gap) + 1,
                StreamEvent::Compute { instrs } => advanced += u64::from(instrs),
                StreamEvent::Done => unreachable!("Done event in bulk buffer"),
            }
            slot.pos += 1;
        }
        if advanced < target {
            if slot.exhausted {
                finished = true;
            } else {
                let want = target - advanced;
                let skipped = slot.stream.skip_instructions(want);
                advanced += skipped;
                if skipped < want {
                    finished = true;
                }
            }
        }

        slot.lag += rate.instructions as i64 - advanced as i64;

        let counters = &mut self.counters[ht];
        counters.instructions += advanced;
        // Counter extrapolation scales with instructions against the
        // measured rate (catch-up quanta carry proportionally more
        // misses); elapsed time scales against the quantum's own target.
        let factor = advanced as f64 / rate.instructions as f64;
        let quantum_frac = advanced as f64 / target as f64;
        counters.cycles += if finished { (quantum as f64 * quantum_frac) as u64 } else { quantum };
        let add = |dst: &mut u64, per_quantum: u64, frac: &mut f64| {
            let x = per_quantum as f64 * factor + *frac;
            let whole = x.floor();
            *dst += whole as u64;
            *frac = x - whole;
        };
        add(&mut counters.l1_accesses, rate.l1_accesses, &mut slot.ff_frac[0]);
        add(&mut counters.l1_misses, rate.l1_misses, &mut slot.ff_frac[1]);
        add(&mut counters.l2_misses, rate.l2_misses, &mut slot.ff_frac[2]);
        add(&mut counters.llc_accesses, rate.llc_accesses, &mut slot.ff_frac[3]);
        add(&mut counters.llc_misses, rate.llc_misses, &mut slot.ff_frac[4]);
        add(&mut counters.dram_writebacks, rate.dram_writebacks, &mut slot.ff_frac[5]);
        add(&mut counters.prefetches_issued, rate.prefetches_issued, &mut slot.ff_frac[6]);
        add(&mut counters.prefetch_hits, rate.prefetch_hits, &mut slot.ff_frac[7]);
        add(&mut counters.non_temporal, rate.non_temporal, &mut slot.ff_frac[8]);

        self.threads[ht] = Some(slot);
        finished
    }

    /// Updates `counters` and the thread's consumed cycles for one access.
    fn charge(
        counters: &mut HwCounters,
        access: &crate::stream::Access,
        outcome: &AccessOutcome,
        store_stall_factor: f64,
        used: &mut f64,
    ) {
        counters.l1_accesses += 1;
        match outcome.level {
            HitLevel::L1 => {}
            HitLevel::L2 => {
                counters.l1_misses += 1;
            }
            HitLevel::Llc => {
                counters.l1_misses += 1;
                counters.l2_misses += 1;
                counters.llc_accesses += 1;
            }
            HitLevel::Dram => {
                counters.l1_misses += 1;
                counters.l2_misses += 1;
                counters.llc_accesses += 1;
                counters.llc_misses += 1;
            }
            HitLevel::Bypass => {
                // Non-temporal references still appear as LLC traffic on
                // the uncore counters (they cross the ring and miss).
                counters.llc_accesses += 1;
                counters.llc_misses += 1;
                counters.non_temporal += 1;
            }
        }
        counters.dram_writebacks += u64::from(outcome.dram_writebacks);
        counters.prefetches_issued += u64::from(outcome.prefetches_issued);

        let mlp = f64::from(access.mlp.max(1.0));
        let mut stall = outcome.latency as f64 / mlp;
        if access.write && !access.non_temporal {
            stall *= store_stall_factor;
        }
        *used += stall;
    }

    /// Runs quanta until no thread is runnable or `max_quanta` elapse.
    /// Returns the number of quanta executed.
    pub fn run_to_completion(&mut self, max_quanta: u64) -> u64 {
        let mut n = 0;
        while n < max_quanta {
            let act = self.run_quantum();
            n += 1;
            if !act.any_active {
                break;
            }
        }
        n
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("threads", &self.threads.iter().filter(|t| t.is_some()).count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SequentialStream;

    fn machine() -> Machine {
        Machine::new(MachineConfig::scaled(64))
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 128, 10_000, 10)));
        let quanta = m.run_to_completion(100_000);
        assert!(quanta > 0);
        assert!(m.app_done(1));
        assert!(m.finish_time(1).is_some());
        let c = m.counters(0);
        assert_eq!(c.instructions, 10_000 * 11);
        assert!(c.cycles > 0);
        assert!(c.l1_accesses == 10_000);
    }

    #[test]
    fn repeated_small_working_set_hits_cache() {
        let mut m = machine();
        // 32 lines fits in L1: after warmup everything hits.
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 50_000, 5)));
        m.run_to_completion(100_000);
        let c = m.counters(0);
        assert!(c.llc_misses < 200, "llc misses {} too high for L1-resident set", c.llc_misses);
    }

    #[test]
    fn smt_sibling_dilates_compute() {
        // Same workload alone vs with a sibling on the same core: the
        // shared-core run must take longer per thread.
        let mut alone = machine();
        alone.attach(0, 1, Box::new(SequentialStream::new(1, 32, 20_000, 20)));
        alone.run_to_completion(100_000);
        let t_alone = alone.finish_time(1).unwrap();

        let mut shared = machine();
        shared.attach(0, 1, Box::new(SequentialStream::new(1, 32, 20_000, 20)));
        shared.attach(1, 2, Box::new(SequentialStream::new(2, 32, 20_000, 20)));
        shared.run_to_completion(100_000);
        let t_shared = shared.finish_time(1).unwrap();

        assert!(t_shared > t_alone, "SMT sharing must dilate compute ({t_shared} <= {t_alone})");
        // But both threads together beat two sequential runs.
        assert!((t_shared as f64) < 2.0 * t_alone as f64);
    }

    #[test]
    fn separate_cores_do_not_dilate() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 20_000, 20)));
        m.attach(2, 2, Box::new(SequentialStream::new(2, 32, 20_000, 20)));
        m.run_to_completion(100_000);
        let t = m.finish_time(1).unwrap();

        let mut alone = machine();
        alone.attach(0, 1, Box::new(SequentialStream::new(1, 32, 20_000, 20)));
        alone.run_to_completion(100_000);
        let t_alone = alone.finish_time(1).unwrap();

        // Small working sets on separate cores barely interact.
        let ratio = t as f64 / t_alone as f64;
        assert!(ratio < 1.1, "cross-core interference {ratio} too high for tiny working sets");
    }

    #[test]
    fn app_counters_aggregate_threads() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 5_000, 10)));
        m.attach(2, 1, Box::new(SequentialStream::new(1, 32, 5_000, 10)));
        m.run_to_completion(100_000);
        let total = m.app_counters(1);
        assert_eq!(total.l1_accesses, 10_000);
    }

    #[test]
    fn quantum_activity_reports_threads_and_cores() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 1_000_000, 10)));
        m.attach(1, 1, Box::new(SequentialStream::new(1, 32, 1_000_000, 10)));
        m.attach(4, 2, Box::new(SequentialStream::new(2, 32, 1_000_000, 10)));
        let act = m.run_quantum();
        assert_eq!(act.active_threads, 3);
        assert_eq!(act.active_cores, 2);
        assert!(act.instructions > 0);
        assert!(act.any_active);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_attach_rejected() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 10, 1)));
        m.attach(0, 2, Box::new(SequentialStream::new(2, 32, 10, 1)));
    }

    #[test]
    fn mba_throttle_slows_memory_bound_thread() {
        // A DRAM-bound stream at 25% bandwidth must run measurably slower
        // than unthrottled, and the knob must not touch other cores.
        let llc_lines = MachineConfig::scaled(64).llc.size_bytes as u64 / 64;
        let run = |throttle: Option<u8>| {
            let mut m = machine();
            if let Some(p) = throttle {
                m.set_mba(0, p);
            }
            m.attach(0, 1, Box::new(SequentialStream::new(1, llc_lines * 8, 30_000, 2)));
            m.run_to_completion(200_000);
            m.finish_time(1).unwrap()
        };
        let free = run(None);
        let throttled = run(Some(25));
        assert!(
            throttled as f64 > free as f64 * 1.3,
            "25% MBA throttle only slowed {free} → {throttled}"
        );
    }

    #[test]
    fn way_mask_programming_reaches_llc() {
        let mut m = machine();
        m.set_way_mask(0, WayMask::contiguous(0, 3));
        assert_eq!(m.way_mask(0).count(), 3);
        // Attach a stream bigger than 3 ways' worth of LLC: occupancy of
        // core 0 must max out near 3/12 of the LLC.
        let llc_lines = m.config().llc.size_bytes / m.config().line_bytes;
        m.attach(0, 1, Box::new(SequentialStream::new(1, llc_lines as u64 * 2, 400_000, 0)));
        m.run_to_completion(200_000);
        let occ = m.llc_occupancy_of(0);
        let limit = llc_lines * 3 / 12;
        assert!(occ <= limit + llc_lines / 64, "occupancy {occ} exceeds 3-way share {limit}");
    }
}
