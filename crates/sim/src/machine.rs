//! The simulated socket: cores, hyperthreads, and the quantum scheduler.
//!
//! [`Machine`] ties the hierarchy, bandwidth models, MSR bank, and
//! performance counters together and advances attached
//! [`AccessStream`](crate::stream::AccessStream)s in fixed-length quanta.
//! Within a quantum each hardware thread runs independently against
//! contention multipliers measured over the previous quantum — the standard
//! interval-simulation trade-off that keeps multi-application co-simulation
//! fast while preserving steady-state contention effects.
//!
//! Applications are identified by their address-space id (`asid`); an
//! application "finishes" when every thread attached under its asid has
//! returned [`StreamEvent::Done`](crate::stream::StreamEvent::Done).

use crate::config::MachineConfig;
use crate::counters::HwCounters;
use crate::dram::DramModel;
use crate::hierarchy::{AccessOutcome, Hierarchy, HitLevel};
use crate::msr::{MsrBank, PrefetcherMask};
use crate::ring::RingModel;
use crate::stream::{AccessStream, StreamEvent};
use crate::waymask::WayMask;
use crate::{CoreId, Cycles, HwThreadId};

/// One hardware thread's execution context.
struct ThreadSlot {
    stream: Box<dyn AccessStream>,
    asid: u16,
    done: bool,
    /// Cycles this thread overshot its previous quantum by.
    carry: f64,
}

/// Activity summary for one quantum, consumed by the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuantumActivity {
    /// Length of the quantum in cycles.
    pub cycles: Cycles,
    /// Number of hyperthreads that executed this quantum.
    pub active_threads: usize,
    /// Number of cores with at least one active hyperthread.
    pub active_cores: usize,
    /// Instructions retired socket-wide this quantum.
    pub instructions: u64,
    /// LLC accesses this quantum.
    pub llc_accesses: u64,
    /// DRAM line transfers this quantum (reads + write-backs + prefetches).
    pub dram_lines: u64,
    /// True when at least one thread is still runnable.
    pub any_active: bool,
}

/// The simulated 4-core / 8-thread socket.
pub struct Machine {
    cfg: MachineConfig,
    hierarchy: Hierarchy,
    ring: RingModel,
    dram: DramModel,
    msr: MsrBank,
    threads: Vec<Option<ThreadSlot>>,
    counters: Vec<HwCounters>,
    now: Cycles,
    /// Cycle at which each asid's last thread finished.
    finish_times: std::collections::HashMap<u16, Cycles>,
}

impl Machine {
    /// Builds an idle machine.
    pub fn new(cfg: MachineConfig) -> Self {
        let n = cfg.hw_threads();
        Machine {
            hierarchy: Hierarchy::new(&cfg),
            ring: RingModel::new(cfg.ring),
            dram: DramModel::new(cfg.dram),
            msr: MsrBank::new(cfg.cores, cfg.llc.ways),
            threads: (0..n).map(|_| None).collect(),
            counters: vec![HwCounters::default(); n],
            now: 0,
            finish_times: std::collections::HashMap::new(),
            cfg,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current wall-clock cycle.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Pins `stream` to hardware thread `ht` under address space `asid`
    /// (the simulator's `taskset`).
    ///
    /// # Panics
    /// Panics if `ht` is out of range or already occupied.
    pub fn attach(&mut self, ht: HwThreadId, asid: u16, stream: Box<dyn AccessStream>) {
        assert!(ht < self.threads.len(), "hardware thread {ht} out of range");
        assert!(self.threads[ht].is_none(), "hardware thread {ht} already occupied");
        self.threads[ht] = Some(ThreadSlot { stream, asid, done: false, carry: 0.0 });
        self.finish_times.remove(&asid);
    }

    /// Removes whatever runs on `ht`.
    pub fn detach(&mut self, ht: HwThreadId) {
        self.threads[ht] = None;
    }

    /// Programs core `core`'s LLC way allocation (via the MSR bank; takes
    /// effect on the next replacement, no flush).
    pub fn set_way_mask(&mut self, core: CoreId, mask: WayMask) {
        self.msr.set_way_mask(core, mask);
    }

    /// Core `core`'s current way allocation.
    pub fn way_mask(&self, core: CoreId) -> WayMask {
        self.msr.way_mask(core)
    }

    /// Programs the prefetcher enable MSR bits.
    pub fn set_prefetchers(&mut self, mask: PrefetcherMask) {
        self.msr.set_prefetchers(mask);
    }

    /// Programs core `core`'s memory-bandwidth throttle (MBA analog,
    /// percent of full bandwidth) — the §8 future-work QoS knob.
    pub fn set_mba(&mut self, core: CoreId, percent: u8) {
        self.msr.set_mba(core, percent);
        self.hierarchy.set_mba(core, percent);
    }

    /// Core `core`'s current bandwidth throttle.
    pub fn mba(&self, core: CoreId) -> u8 {
        self.msr.mba(core)
    }

    /// Counter file of hardware thread `ht`.
    pub fn counters(&self, ht: HwThreadId) -> &HwCounters {
        &self.counters[ht]
    }

    /// Aggregated counters of every thread attached under `asid`.
    pub fn app_counters(&self, asid: u16) -> HwCounters {
        let mut total = HwCounters::default();
        for (ht, slot) in self.threads.iter().enumerate() {
            if let Some(s) = slot {
                if s.asid == asid {
                    total = total.merge(&self.counters[ht]);
                }
            }
        }
        total
    }

    /// Whether every thread of `asid` has finished.
    pub fn app_done(&self, asid: u16) -> bool {
        let mut saw = false;
        for slot in self.threads.iter().flatten() {
            if slot.asid == asid {
                saw = true;
                if !slot.done {
                    return false;
                }
            }
        }
        saw
    }

    /// Cycle at which `asid`'s last thread finished, if it has.
    pub fn finish_time(&self, asid: u16) -> Option<Cycles> {
        self.finish_times.get(&asid).copied()
    }

    /// Whether any attached thread is still runnable.
    pub fn any_active(&self) -> bool {
        self.threads.iter().flatten().any(|s| !s.done)
    }

    /// LLC lines currently owned by `core`'s fills.
    pub fn llc_occupancy_of(&self, core: CoreId) -> usize {
        self.hierarchy.llc_occupancy_of(core)
    }

    /// The hierarchy (for invariant checks and ablations).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Snapshot of the hierarchy's per-level telemetry tallies.
    #[cfg(feature = "telemetry")]
    pub fn tallies(&self) -> crate::tallies::LevelTallies {
        self.hierarchy.tallies()
    }

    /// Per-access latency histograms by satisfying level, indexed by
    /// [`crate::hierarchy::HitLevel::index`] (telemetry builds).
    #[cfg(feature = "telemetry")]
    pub fn latency_hists(
        &self,
    ) -> &[waypart_telemetry::Histogram; crate::hierarchy::HitLevel::COUNT] {
        self.hierarchy.latency_hists()
    }

    /// Enables per-core utility monitors (for the UCP baseline).
    pub fn enable_umon(&mut self) {
        self.hierarchy.enable_umon();
    }

    /// Core `core`'s utility monitor, if enabled.
    pub fn umon(&self, core: CoreId) -> Option<&crate::umon::UtilityMonitor> {
        self.hierarchy.umon(core)
    }

    /// Decays all utility-monitor counters (UCP repartition interval).
    pub fn decay_umons(&mut self) {
        self.hierarchy.decay_umons();
    }

    /// Enables page coloring (set partitioning) with `groups` color
    /// groups. Requires a modulo-indexed LLC; see
    /// [`crate::coloring::ColorAssignment`].
    pub fn enable_coloring(&mut self, groups: usize) {
        self.hierarchy.enable_coloring(groups);
    }

    /// Assigns color groups to an address space; returns the previous
    /// mask so callers can model the recoloring (page-copy) cost.
    ///
    /// # Panics
    /// Panics if coloring is not enabled.
    pub fn assign_colors(&mut self, asid: u16, mask: u32) -> Option<u32> {
        self.hierarchy
            .coloring_mut()
            .expect("enable_coloring first")
            .assign(asid, mask)
    }

    /// Flushes `core`-owned LLC lines outside its current mask — the
    /// "flush on reallocation" ablation. The real mechanism never does
    /// this.
    pub fn flush_llc_outside_mask(&mut self, core: CoreId) {
        let mask = self.msr.way_mask(core);
        self.hierarchy.flush_llc_outside_mask(core, mask, &mut self.dram);
    }

    /// Advances every runnable thread by one quantum and updates the
    /// bandwidth models. Returns the quantum's activity summary.
    pub fn run_quantum(&mut self) -> QuantumActivity {
        let quantum = self.cfg.quantum_cycles;
        let tpc = self.cfg.threads_per_core;
        let dram_before = self.dram.total_lines;

        // Sibling activity decides SMT dilation for the whole quantum.
        // Kept as bitmasks: run_quantum is called once per quantum for the
        // entire run, and the per-call Vec allocations used to show up in
        // profiles of short-quantum configurations.
        debug_assert!(self.threads.len() <= 128, "thread bitmask limited to 128 hw threads");
        let mut active = 0u128;
        for (ht, s) in self.threads.iter().enumerate() {
            if s.as_ref().map(|t| !t.done).unwrap_or(false) {
                active |= 1 << ht;
            }
        }

        let mut act = QuantumActivity { cycles: quantum, any_active: false, ..Default::default() };
        let mut core_active = 0u128;

        for ht in 0..self.threads.len() {
            if active >> ht & 1 == 0 {
                continue;
            }
            act.any_active = true;
            act.active_threads += 1;
            let core = ht / tpc;
            core_active |= 1 << core;

            // Any *other* active hyperthread on the same core?
            let core_mask = (((1u128 << tpc) - 1) << (core * tpc)) & !(1u128 << ht);
            let sibling_active = active & core_mask != 0;
            let dilation =
                if sibling_active { self.cfg.smt.compute_dilation } else { 1.0 };

            let before = self.counters[ht];
            let finished = self.run_thread_quantum(ht, core, quantum, dilation);
            let delta = self.counters[ht].delta(&before);
            act.instructions += delta.instructions;
            act.llc_accesses += delta.llc_accesses;

            if finished {
                let slot = self.threads[ht].as_mut().expect("active thread");
                slot.done = true;
                let asid = slot.asid;
                if self.app_done(asid) {
                    self.finish_times.insert(asid, self.now + quantum);
                }
            }
        }

        act.active_cores = core_active.count_ones() as usize;
        act.dram_lines = self.dram.total_lines - dram_before;

        self.ring.end_quantum(quantum);
        self.dram.end_quantum(quantum);
        self.now += quantum;
        act
    }

    /// Runs thread `ht` for up to `quantum` cycles. Returns true if the
    /// stream completed.
    fn run_thread_quantum(&mut self, ht: HwThreadId, core: CoreId, quantum: Cycles, dilation: f64) -> bool {
        let budget = quantum as f64;
        let mask = self.msr.way_mask(core);
        let pf_mask = self.msr.prefetchers();
        let store_stall = self.cfg.store_stall_factor;

        // Temporarily take the slot to satisfy the borrow checker while the
        // hierarchy runs; cheap pointer moves only.
        let mut slot = self.threads[ht].take().expect("runnable thread");
        let cpi = slot.stream.base_cpi() * dilation;
        let mut used = slot.carry;
        let counters = &mut self.counters[ht];
        let mut finished = false;

        while used < budget {
            match slot.stream.next_event() {
                StreamEvent::Compute { instrs } => {
                    counters.instructions += u64::from(instrs);
                    used += f64::from(instrs) * cpi;
                }
                StreamEvent::Access { instr_gap, access } => {
                    counters.instructions += u64::from(instr_gap) + 1;
                    used += (f64::from(instr_gap) + 1.0) * cpi;
                    let outcome =
                        self.hierarchy.access(core, &access, mask, pf_mask, &mut self.ring, &mut self.dram);
                    Self::charge(counters, &access, &outcome, store_stall, &mut used);
                }
                StreamEvent::Done => {
                    finished = true;
                    break;
                }
            }
        }

        slot.carry = (used - budget).max(0.0);
        counters.cycles += if finished { used.min(budget) as u64 } else { quantum };
        self.threads[ht] = Some(slot);
        finished
    }

    /// Updates `counters` and the thread's consumed cycles for one access.
    fn charge(
        counters: &mut HwCounters,
        access: &crate::stream::Access,
        outcome: &AccessOutcome,
        store_stall_factor: f64,
        used: &mut f64,
    ) {
        counters.l1_accesses += 1;
        match outcome.level {
            HitLevel::L1 => {}
            HitLevel::L2 => {
                counters.l1_misses += 1;
            }
            HitLevel::Llc => {
                counters.l1_misses += 1;
                counters.l2_misses += 1;
                counters.llc_accesses += 1;
            }
            HitLevel::Dram => {
                counters.l1_misses += 1;
                counters.l2_misses += 1;
                counters.llc_accesses += 1;
                counters.llc_misses += 1;
            }
            HitLevel::Bypass => {
                // Non-temporal references still appear as LLC traffic on
                // the uncore counters (they cross the ring and miss).
                counters.llc_accesses += 1;
                counters.llc_misses += 1;
                counters.non_temporal += 1;
            }
        }
        counters.dram_writebacks += u64::from(outcome.dram_writebacks);
        counters.prefetches_issued += u64::from(outcome.prefetches_issued);

        let mlp = f64::from(access.mlp.max(1.0));
        let mut stall = outcome.latency as f64 / mlp;
        if access.write && !access.non_temporal {
            stall *= store_stall_factor;
        }
        *used += stall;
    }

    /// Runs quanta until no thread is runnable or `max_quanta` elapse.
    /// Returns the number of quanta executed.
    pub fn run_to_completion(&mut self, max_quanta: u64) -> u64 {
        let mut n = 0;
        while n < max_quanta {
            let act = self.run_quantum();
            n += 1;
            if !act.any_active {
                break;
            }
        }
        n
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("threads", &self.threads.iter().filter(|t| t.is_some()).count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SequentialStream;

    fn machine() -> Machine {
        Machine::new(MachineConfig::scaled(64))
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 128, 10_000, 10)));
        let quanta = m.run_to_completion(100_000);
        assert!(quanta > 0);
        assert!(m.app_done(1));
        assert!(m.finish_time(1).is_some());
        let c = m.counters(0);
        assert_eq!(c.instructions, 10_000 * 11);
        assert!(c.cycles > 0);
        assert!(c.l1_accesses == 10_000);
    }

    #[test]
    fn repeated_small_working_set_hits_cache() {
        let mut m = machine();
        // 32 lines fits in L1: after warmup everything hits.
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 50_000, 5)));
        m.run_to_completion(100_000);
        let c = m.counters(0);
        assert!(c.llc_misses < 200, "llc misses {} too high for L1-resident set", c.llc_misses);
    }

    #[test]
    fn smt_sibling_dilates_compute() {
        // Same workload alone vs with a sibling on the same core: the
        // shared-core run must take longer per thread.
        let mut alone = machine();
        alone.attach(0, 1, Box::new(SequentialStream::new(1, 32, 20_000, 20)));
        alone.run_to_completion(100_000);
        let t_alone = alone.finish_time(1).unwrap();

        let mut shared = machine();
        shared.attach(0, 1, Box::new(SequentialStream::new(1, 32, 20_000, 20)));
        shared.attach(1, 2, Box::new(SequentialStream::new(2, 32, 20_000, 20)));
        shared.run_to_completion(100_000);
        let t_shared = shared.finish_time(1).unwrap();

        assert!(t_shared > t_alone, "SMT sharing must dilate compute ({t_shared} <= {t_alone})");
        // But both threads together beat two sequential runs.
        assert!((t_shared as f64) < 2.0 * t_alone as f64);
    }

    #[test]
    fn separate_cores_do_not_dilate() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 20_000, 20)));
        m.attach(2, 2, Box::new(SequentialStream::new(2, 32, 20_000, 20)));
        m.run_to_completion(100_000);
        let t = m.finish_time(1).unwrap();

        let mut alone = machine();
        alone.attach(0, 1, Box::new(SequentialStream::new(1, 32, 20_000, 20)));
        alone.run_to_completion(100_000);
        let t_alone = alone.finish_time(1).unwrap();

        // Small working sets on separate cores barely interact.
        let ratio = t as f64 / t_alone as f64;
        assert!(ratio < 1.1, "cross-core interference {ratio} too high for tiny working sets");
    }

    #[test]
    fn app_counters_aggregate_threads() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 5_000, 10)));
        m.attach(2, 1, Box::new(SequentialStream::new(1, 32, 5_000, 10)));
        m.run_to_completion(100_000);
        let total = m.app_counters(1);
        assert_eq!(total.l1_accesses, 10_000);
    }

    #[test]
    fn quantum_activity_reports_threads_and_cores() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 1_000_000, 10)));
        m.attach(1, 1, Box::new(SequentialStream::new(1, 32, 1_000_000, 10)));
        m.attach(4, 2, Box::new(SequentialStream::new(2, 32, 1_000_000, 10)));
        let act = m.run_quantum();
        assert_eq!(act.active_threads, 3);
        assert_eq!(act.active_cores, 2);
        assert!(act.instructions > 0);
        assert!(act.any_active);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_attach_rejected() {
        let mut m = machine();
        m.attach(0, 1, Box::new(SequentialStream::new(1, 32, 10, 1)));
        m.attach(0, 2, Box::new(SequentialStream::new(2, 32, 10, 1)));
    }

    #[test]
    fn mba_throttle_slows_memory_bound_thread() {
        // A DRAM-bound stream at 25% bandwidth must run measurably slower
        // than unthrottled, and the knob must not touch other cores.
        let llc_lines = MachineConfig::scaled(64).llc.size_bytes as u64 / 64;
        let run = |throttle: Option<u8>| {
            let mut m = machine();
            if let Some(p) = throttle {
                m.set_mba(0, p);
            }
            m.attach(0, 1, Box::new(SequentialStream::new(1, llc_lines * 8, 30_000, 2)));
            m.run_to_completion(200_000);
            m.finish_time(1).unwrap()
        };
        let free = run(None);
        let throttled = run(Some(25));
        assert!(
            throttled as f64 > free as f64 * 1.3,
            "25% MBA throttle only slowed {free} → {throttled}"
        );
    }

    #[test]
    fn way_mask_programming_reaches_llc() {
        let mut m = machine();
        m.set_way_mask(0, WayMask::contiguous(0, 3));
        assert_eq!(m.way_mask(0).count(), 3);
        // Attach a stream bigger than 3 ways' worth of LLC: occupancy of
        // core 0 must max out near 3/12 of the LLC.
        let llc_lines = m.config().llc.size_bytes / m.config().line_bytes;
        m.attach(0, 1, Box::new(SequentialStream::new(1, llc_lines as u64 * 2, 400_000, 0)));
        m.run_to_completion(200_000);
        let occ = m.llc_occupancy_of(0);
        let limit = llc_lines * 3 / 12;
        assert!(occ <= limit + llc_lines / 64, "occupancy {occ} exceeds 3-way share {limit}");
    }
}
