//! Per-level cache tallies — the simulator's telemetry metrics snapshot.
//!
//! Only compiled with the crate's `telemetry` feature. The counters are
//! plain `u64` increments on paths that already branch on the outcome
//! being counted, and they never influence any simulation decision — the
//! `telemetry_inert` integration test holds golden fingerprints
//! byte-identical between feature-on and feature-off builds.

/// Cumulative per-level hit/miss/fill/evict counts for one hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelTallies {
    /// Demand accesses that hit in L1.
    pub l1_hits: u64,
    /// Demand accesses that missed L1.
    pub l1_misses: u64,
    /// L1 misses that hit in L2.
    pub l2_hits: u64,
    /// L1 misses that also missed L2.
    pub l2_misses: u64,
    /// L2 misses that hit in the shared LLC.
    pub llc_hits: u64,
    /// L2 misses that went to DRAM.
    pub llc_misses: u64,
    /// Lines filled into the LLC (demand + prefetch).
    pub llc_fills: u64,
    /// Valid LLC victims evicted by fills (inclusive back-invalidation).
    pub llc_evictions: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Prefetch requests issued into the hierarchy.
    pub pf_issued: u64,
    /// Prefetch requests dropped (MBA admission or DRAM saturation).
    pub pf_dropped: u64,
    /// Non-temporal accesses that bypassed the hierarchy.
    pub bypasses: u64,
}

impl LevelTallies {
    /// Field-name/value pairs for exporting as telemetry event payloads.
    pub fn entries(&self) -> [(&'static str, u64); 12] {
        [
            ("l1_hits", self.l1_hits),
            ("l1_misses", self.l1_misses),
            ("l2_hits", self.l2_hits),
            ("l2_misses", self.l2_misses),
            ("llc_hits", self.llc_hits),
            ("llc_misses", self.llc_misses),
            ("llc_fills", self.llc_fills),
            ("llc_evictions", self.llc_evictions),
            ("dram_writebacks", self.dram_writebacks),
            ("pf_issued", self.pf_issued),
            ("pf_dropped", self.pf_dropped),
            ("bypasses", self.bypasses),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_cover_every_field() {
        let t = LevelTallies { l1_hits: 1, bypasses: 12, ..Default::default() };
        let entries = t.entries();
        assert_eq!(entries.len(), 12);
        assert_eq!(entries[0], ("l1_hits", 1));
        assert_eq!(entries[11], ("bypasses", 12));
    }
}
