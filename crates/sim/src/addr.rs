//! Line-granularity addresses and LLC index hashing.
//!
//! The simulator works at cache-line granularity: workloads emit
//! [`LineAddr`]s (a byte address shifted right by `log2(line_bytes)`).
//! Distinct applications get disjoint address spaces by folding an address
//! space id into the upper bits.
//!
//! The LLC of the modeled platform uses a *randomized (hashed) index
//! function*; the paper credits this hashing (together with pseudo-LRU and
//! prefetching) for the absence of sharp working-set knees in real-machine
//! measurements (§3.2). Inner levels use conventional modulo indexing. Both
//! are provided here and are selectable per cache so the ablation benches can
//! compare them.

use serde::{Deserialize, Serialize};

/// A cache-line address: byte address divided by the line size.
///
/// `LineAddr` is deliberately opaque about the line size; all components of
/// the simulator agree on the machine-wide line size from
/// [`crate::config::MachineConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Number of upper bits reserved for the address-space id.
    const ASID_SHIFT: u32 = 48;

    /// Builds a line address inside the address space `asid`.
    ///
    /// Address spaces keep co-scheduled applications from aliasing in the
    /// simulated caches, mirroring distinct processes under Linux.
    #[inline]
    pub fn in_space(asid: u16, line: u64) -> Self {
        debug_assert!(line < (1 << Self::ASID_SHIFT));
        LineAddr(((asid as u64) << Self::ASID_SHIFT) | line)
    }

    /// The address-space id this line belongs to.
    #[inline]
    pub fn asid(self) -> u16 {
        (self.0 >> Self::ASID_SHIFT) as u16
    }

    /// The line offset within its address space.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & ((1 << Self::ASID_SHIFT) - 1)
    }

    /// The next sequential line (wrapping within the address space).
    #[inline]
    pub fn next(self) -> Self {
        LineAddr::in_space(self.asid(), (self.offset() + 1) & ((1 << Self::ASID_SHIFT) - 1))
    }

    /// The line `delta` lines after this one within the same space.
    #[inline]
    pub fn advance(self, delta: u64) -> Self {
        LineAddr::in_space(
            self.asid(),
            (self.offset().wrapping_add(delta)) & ((1 << Self::ASID_SHIFT) - 1),
        )
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{:#x}", self.asid(), self.offset())
    }
}

/// How a cache maps a line address to a set index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexHash {
    /// Conventional modulo indexing: low-order line-address bits.
    Modulo,
    /// Randomized index function mixing high and low bits, as used by the
    /// Sandy Bridge LLC. Spreads strided and page-aligned access patterns
    /// across sets, smoothing working-set knees.
    Hashed,
}

impl IndexHash {
    /// Maps `line` to a set index in `0..num_sets`.
    ///
    /// `num_sets` must be a power of two.
    #[inline]
    pub fn index(self, line: LineAddr, num_sets: usize) -> usize {
        debug_assert!(num_sets.is_power_of_two());
        let mask = (num_sets - 1) as u64;
        match self {
            IndexHash::Modulo => (line.0 & mask) as usize,
            IndexHash::Hashed => (mix64(line.0) & mask) as usize,
        }
    }
}

/// A fast, high-quality 64-bit mixer (splitmix64 finalizer).
///
/// Used for hashed set indexing and by workload generators that need a
/// stateless pseudo-random mapping.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asid_roundtrip() {
        let a = LineAddr::in_space(7, 0xdead_beef);
        assert_eq!(a.asid(), 7);
        assert_eq!(a.offset(), 0xdead_beef);
    }

    #[test]
    fn next_stays_in_space() {
        let a = LineAddr::in_space(3, 41);
        let b = a.next();
        assert_eq!(b.asid(), 3);
        assert_eq!(b.offset(), 42);
    }

    #[test]
    fn advance_wraps_within_space() {
        let max = (1u64 << 48) - 1;
        let a = LineAddr::in_space(2, max);
        let b = a.advance(1);
        assert_eq!(b.asid(), 2);
        assert_eq!(b.offset(), 0);
    }

    #[test]
    fn modulo_index_uses_low_bits() {
        let h = IndexHash::Modulo;
        assert_eq!(h.index(LineAddr(0x12345), 0x1000), 0x345);
    }

    #[test]
    fn hashed_index_spreads_strides() {
        // A power-of-two stride maps to a single set under modulo indexing
        // but should spread widely under hashing.
        let sets = 1024usize;
        let mut seen = std::collections::HashSet::new();
        for i in 0..sets as u64 {
            let line = LineAddr(i * sets as u64); // stride == num_sets
            seen.insert(IndexHash::Hashed.index(line, sets));
        }
        // Modulo indexing would visit exactly 1 set; hashing should cover
        // the majority of them.
        assert!(seen.len() > sets / 2, "hashed covered {} sets", seen.len());
    }

    #[test]
    fn hashed_index_in_range() {
        for i in 0..10_000u64 {
            let idx = IndexHash::Hashed.index(LineAddr(i.wrapping_mul(0x9e3779b9)), 512);
            assert!(idx < 512);
        }
    }

    #[test]
    fn display_shows_space_and_offset() {
        let a = LineAddr::in_space(1, 0x10);
        assert_eq!(format!("{a}"), "1:0x10");
    }
}
