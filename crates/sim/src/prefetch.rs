//! The four Sandy Bridge hardware prefetchers (§3.3).
//!
//! Two L1 ("DCU") units observe every data-cache access:
//!
//! * **DCU IP-prefetcher** — tracks per-PC load history; on a confirmed
//!   stride it prefetches the next expected line into L1.
//! * **DCU streamer** — detects multiple reads to a single line within a
//!   short window and prefetches the following line into L1.
//!
//! Two mid-level-cache ("MLC") units observe L2 accesses (L1 misses):
//!
//! * **MLC spatial** — on a request whose *preceding* adjacent line was
//!   recently requested, prefetches the next adjacent line into L2.
//! * **MLC streamer** — maintains a small table of ascending streams and
//!   prefetches several lines ahead of a confirmed stream into L2.
//!
//! Each unit is gated by its [`crate::msr::PrefetcherMask`] bit, mirroring
//! the per-prefetcher MSR controls the paper toggles for Figure 3.
//! Prefetched fills are real fills: they consume DRAM bandwidth and can
//! *pollute* a cache by evicting useful lines, which is how the model
//! reproduces applications (e.g. `lusearch`) that run slower with
//! prefetching enabled.

use crate::addr::LineAddr;
use crate::msr::{Prefetcher, PrefetcherMask};

/// Target level for a prefetch fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchLevel {
    /// Fill into L1 (and all outer levels, for inclusion).
    L1,
    /// Fill into L2 (and the LLC).
    L2,
}

/// A prefetch the engine wants issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Line to fetch.
    pub line: LineAddr,
    /// Destination level.
    pub level: PrefetchLevel,
    /// Which unit issued it (for statistics).
    pub source: Prefetcher,
}

const IP_TABLE_SIZE: usize = 64;
const STREAM_TABLE_SIZE: usize = 8;
const DCU_RECENT_SIZE: usize = 8;
/// Lines the MLC streamer runs ahead of a confirmed stream.
const MLC_STREAM_DISTANCE: u64 = 3;

#[derive(Debug, Clone, Copy, Default)]
struct IpEntry {
    pc: u32,
    last_line: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    asid: u16,
    /// Next line expected in the stream.
    head: u64,
    confidence: u8,
    valid: bool,
    /// Age for replacement.
    lru: u32,
}

/// One core's prefetch engine (all four units).
#[derive(Debug, Clone)]
pub struct PrefetchEngine {
    ip_table: [IpEntry; IP_TABLE_SIZE],
    streams: [StreamEntry; STREAM_TABLE_SIZE],
    /// Recently touched lines (for the DCU streamer's repeated-read
    /// detection and the MLC spatial adjacency check).
    dcu_recent: [u64; DCU_RECENT_SIZE],
    dcu_recent_pos: usize,
    mlc_recent: [u64; DCU_RECENT_SIZE],
    mlc_recent_pos: usize,
    clock: u32,
    /// Prefetches issued by each unit, indexed like [`Prefetcher::ALL`].
    pub issued: [u64; 4],
}

impl Default for PrefetchEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefetchEngine {
    /// A fresh engine with no history.
    pub fn new() -> Self {
        PrefetchEngine {
            ip_table: [IpEntry::default(); IP_TABLE_SIZE],
            streams: [StreamEntry::default(); STREAM_TABLE_SIZE],
            dcu_recent: [u64::MAX; DCU_RECENT_SIZE],
            dcu_recent_pos: 0,
            mlc_recent: [u64::MAX; DCU_RECENT_SIZE],
            mlc_recent_pos: 0,
            clock: 0,
            issued: [0; 4],
        }
    }

    /// Observes an L1 data-cache access and appends any DCU prefetches to
    /// `out`.
    pub fn observe_l1(&mut self, line: LineAddr, pc: u32, mask: PrefetcherMask, out: &mut Vec<PrefetchRequest>) {
        self.clock = self.clock.wrapping_add(1);
        if mask.enabled(Prefetcher::DcuIp) {
            self.ip_prefetch(line, pc, out);
        }
        if mask.enabled(Prefetcher::DcuStreamer) {
            self.dcu_stream(line, out);
        }
    }

    /// Observes an L2 access (an L1 miss) and appends any MLC prefetches to
    /// `out`.
    pub fn observe_l2(&mut self, line: LineAddr, mask: PrefetcherMask, out: &mut Vec<PrefetchRequest>) {
        if mask.enabled(Prefetcher::MlcSpatial) {
            self.mlc_spatial(line, out);
        }
        if mask.enabled(Prefetcher::MlcStreamer) {
            self.mlc_stream(line, out);
        }
    }

    fn ip_prefetch(&mut self, line: LineAddr, pc: u32, out: &mut Vec<PrefetchRequest>) {
        let slot = (pc as usize) % IP_TABLE_SIZE;
        let e = &mut self.ip_table[slot];
        if e.valid && e.pc == pc {
            let stride = line.0 as i64 - e.last_line as i64;
            if stride != 0 && stride == e.stride {
                if e.confidence < 3 {
                    e.confidence += 1;
                }
            } else {
                e.stride = stride;
                e.confidence = 0;
            }
            e.last_line = line.0;
            if e.confidence >= 2 {
                let target = LineAddr((line.0 as i64 + e.stride) as u64);
                if target.asid() == line.asid() {
                    out.push(PrefetchRequest { line: target, level: PrefetchLevel::L1, source: Prefetcher::DcuIp });
                    self.issued[0] += 1;
                }
            }
        } else {
            *e = IpEntry { pc, last_line: line.0, stride: 0, confidence: 0, valid: true };
        }
    }

    fn dcu_stream(&mut self, line: LineAddr, out: &mut Vec<PrefetchRequest>) {
        // "Multiple reads to a single cache line in a certain period of
        // time" → next-line prefetch.
        let repeated = self.dcu_recent.contains(&line.0);
        self.dcu_recent[self.dcu_recent_pos] = line.0;
        self.dcu_recent_pos = (self.dcu_recent_pos + 1) % DCU_RECENT_SIZE;
        if repeated {
            out.push(PrefetchRequest { line: line.next(), level: PrefetchLevel::L1, source: Prefetcher::DcuStreamer });
            self.issued[1] += 1;
        }
    }

    fn mlc_spatial(&mut self, line: LineAddr, out: &mut Vec<PrefetchRequest>) {
        // Triggered by requests to two successive lines: if line-1 was
        // recently requested at this level, fetch line+1.
        let prev = line.0.wrapping_sub(1);
        let adjacent = self.mlc_recent.contains(&prev);
        self.mlc_recent[self.mlc_recent_pos] = line.0;
        self.mlc_recent_pos = (self.mlc_recent_pos + 1) % DCU_RECENT_SIZE;
        if adjacent {
            out.push(PrefetchRequest { line: line.next(), level: PrefetchLevel::L2, source: Prefetcher::MlcSpatial });
            self.issued[2] += 1;
        }
    }

    fn mlc_stream(&mut self, line: LineAddr, out: &mut Vec<PrefetchRequest>) {
        // Find a stream whose head this access matches (within 2 lines).
        let mut found = false;
        for e in self.streams.iter_mut() {
            if e.valid && e.asid == line.asid() && line.offset() >= e.head && line.offset() <= e.head + 2 {
                e.head = line.offset() + 1;
                e.lru = self.clock;
                if e.confidence < 3 {
                    e.confidence += 1;
                }
                if e.confidence >= 2 {
                    for d in 1..=MLC_STREAM_DISTANCE {
                        out.push(PrefetchRequest {
                            line: line.advance(d),
                            level: PrefetchLevel::L2,
                            source: Prefetcher::MlcStreamer,
                        });
                        self.issued[3] += 1;
                    }
                }
                found = true;
                break;
            }
        }
        if !found {
            // Allocate a new stream: the first invalid slot, else the
            // valid slot with the smallest wrapping clock distance (first
            // on ties). One pass replaces the `min_by_key` + `position`
            // double scan — allocation runs on every unmatched L2 access,
            // so this is the streamer's hot path.
            let mut slot = usize::MAX;
            let mut best_dist = u64::MAX;
            for (i, e) in self.streams.iter().enumerate() {
                if !e.valid {
                    slot = i;
                    break;
                }
                let dist = u64::from(self.clock.wrapping_sub(e.lru));
                if dist < best_dist {
                    best_dist = dist;
                    slot = i;
                }
            }
            self.streams[slot] =
                StreamEntry { asid: line.asid(), head: line.offset() + 1, confidence: 0, valid: true, lru: self.clock };
        }
    }

    /// Total prefetches issued across all four units.
    pub fn total_issued(&self) -> u64 {
        self.issued.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> PrefetcherMask {
        PrefetcherMask::all_enabled()
    }

    #[test]
    fn ip_prefetcher_learns_stride() {
        let mut e = PrefetchEngine::new();
        let mut out = Vec::new();
        // Stride-2 loads from the same PC.
        for i in 0..6u64 {
            out.clear();
            e.observe_l1(LineAddr::in_space(0, i * 2), 42, all(), &mut out);
        }
        let ip_reqs: Vec<_> = out.iter().filter(|r| r.source == Prefetcher::DcuIp).collect();
        assert_eq!(ip_reqs.len(), 1);
        assert_eq!(ip_reqs[0].line, LineAddr::in_space(0, 12));
        assert_eq!(ip_reqs[0].level, PrefetchLevel::L1);
    }

    #[test]
    fn ip_prefetcher_ignores_random_pattern() {
        let mut e = PrefetchEngine::new();
        let mut out = Vec::new();
        let lines = [10u64, 500, 3, 999, 47, 2000];
        for &l in &lines {
            e.observe_l1(LineAddr::in_space(0, l), 42, all(), &mut out);
        }
        assert!(out.iter().all(|r| r.source != Prefetcher::DcuIp));
    }

    #[test]
    fn dcu_streamer_triggers_on_repeated_line() {
        let mut e = PrefetchEngine::new();
        let mut out = Vec::new();
        let line = LineAddr::in_space(0, 7);
        e.observe_l1(line, 1, all(), &mut out);
        assert!(out.is_empty());
        e.observe_l1(line, 2, all(), &mut out);
        let req = out.iter().find(|r| r.source == Prefetcher::DcuStreamer).unwrap();
        assert_eq!(req.line, line.next());
    }

    #[test]
    fn mlc_spatial_needs_adjacent_pair() {
        let mut e = PrefetchEngine::new();
        let mut out = Vec::new();
        e.observe_l2(LineAddr::in_space(0, 100), all(), &mut out);
        assert!(out.is_empty());
        e.observe_l2(LineAddr::in_space(0, 101), all(), &mut out);
        assert!(out
            .iter()
            .any(|r| r.source == Prefetcher::MlcSpatial && r.line == LineAddr::in_space(0, 102)));
    }

    #[test]
    fn mlc_streamer_runs_ahead() {
        let mut e = PrefetchEngine::new();
        let mut out = Vec::new();
        for i in 0..8u64 {
            out.clear();
            e.observe_l2(LineAddr::in_space(0, i), all(), &mut out);
        }
        let targets: Vec<_> =
            out.iter().filter(|r| r.source == Prefetcher::MlcStreamer).map(|r| r.line.offset()).collect();
        assert_eq!(targets, vec![8, 9, 10]);
    }

    #[test]
    fn disabled_units_stay_silent() {
        let mut e = PrefetchEngine::new();
        let mut out = Vec::new();
        let none = PrefetcherMask::all_disabled();
        for i in 0..10u64 {
            e.observe_l1(LineAddr::in_space(0, i), 9, none, &mut out);
            e.observe_l2(LineAddr::in_space(0, i), none, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(e.total_issued(), 0);
    }

    #[test]
    fn streams_tracked_per_address_space() {
        let mut e = PrefetchEngine::new();
        let mut out = Vec::new();
        // Interleaved ascending streams from two address spaces must both
        // be detected.
        for i in 0..8u64 {
            e.observe_l2(LineAddr::in_space(1, i), all(), &mut out);
            e.observe_l2(LineAddr::in_space(2, i), all(), &mut out);
        }
        let spaces: std::collections::HashSet<u16> = out
            .iter()
            .filter(|r| r.source == Prefetcher::MlcStreamer)
            .map(|r| r.line.asid())
            .collect();
        assert!(spaces.contains(&1) && spaces.contains(&2));
    }
}
