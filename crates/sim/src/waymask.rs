//! Per-core LLC way-allocation masks.
//!
//! The prototype's partitioning mechanism is *way-based* and implemented in
//! the replacement path: each core is assigned a subset of the LLC's 12
//! ways. Allocations may be private, fully shared, or overlapping. All cores
//! hit on data in any way; a core only *replaces* data within its assigned
//! ways, and nothing is flushed when the assignment changes (§2.1).
//! [`WayMask`] captures one core's assignment.

use serde::{Deserialize, Serialize};

/// A bitmask over cache ways; bit `i` set means way `i` may be replaced
/// into by the owning core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WayMask(u32);

impl WayMask {
    /// Mask granting all `ways` ways.
    ///
    /// # Panics
    /// Panics if `ways` is 0 or greater than 32.
    pub fn all(ways: usize) -> Self {
        assert!(ways > 0 && ways <= 32, "way count {ways} out of range");
        WayMask(if ways == 32 { u32::MAX } else { (1 << ways) - 1 })
    }

    /// Mask granting the contiguous range of ways `[start, start + count)`.
    ///
    /// Contiguous ranges are how the paper's experiments slice the LLC
    /// between a foreground and a background partition.
    ///
    /// # Panics
    /// Panics if the range is empty or extends past way 32.
    pub fn contiguous(start: usize, count: usize) -> Self {
        assert!(count > 0, "empty way mask");
        assert!(start + count <= 32, "way range out of bounds");
        let bits = if count == 32 { u32::MAX } else { (1 << count) - 1 };
        WayMask(bits << start)
    }

    /// Builds a mask from raw bits.
    ///
    /// # Panics
    /// Panics if `bits` is zero: a core must always be able to allocate
    /// somewhere, otherwise it could never fill a line it misses on.
    pub fn from_bits(bits: u32) -> Self {
        assert!(bits != 0, "a way mask must grant at least one way");
        WayMask(bits)
    }

    /// The raw bits of the mask.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Number of ways granted.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether way `w` is allocatable under this mask.
    #[inline]
    pub fn allows(self, w: usize) -> bool {
        w < 32 && (self.0 >> w) & 1 == 1
    }

    /// The union of two masks (overlapping allocations are permitted by the
    /// hardware mechanism).
    #[inline]
    pub fn union(self, other: WayMask) -> WayMask {
        WayMask(self.0 | other.0)
    }

    /// Whether the two masks share any way.
    #[inline]
    pub fn overlaps(self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates over the way indices granted by this mask.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..32).filter(move |&w| self.allows(w))
    }
}

impl Default for WayMask {
    /// The default mask grants all 12 ways of the modeled LLC.
    fn default() -> Self {
        WayMask::all(12)
    }
}

impl std::fmt::Display for WayMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ways[{:#014b}]", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_grants_every_way() {
        let m = WayMask::all(12);
        assert_eq!(m.count(), 12);
        assert!((0..12).all(|w| m.allows(w)));
        assert!(!m.allows(12));
    }

    #[test]
    fn contiguous_range() {
        let m = WayMask::contiguous(4, 3);
        assert_eq!(m.count(), 3);
        assert!(!m.allows(3));
        assert!(m.allows(4) && m.allows(5) && m.allows(6));
        assert!(!m.allows(7));
    }

    #[test]
    fn union_and_overlap() {
        let a = WayMask::contiguous(0, 6);
        let b = WayMask::contiguous(6, 6);
        assert!(!a.overlaps(b));
        let u = a.union(b);
        assert_eq!(u.count(), 12);
        let c = WayMask::contiguous(5, 2);
        assert!(a.overlaps(c) && b.overlaps(c));
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_mask_rejected() {
        let _ = WayMask::from_bits(0);
    }

    #[test]
    fn iter_yields_granted_ways() {
        let m = WayMask::from_bits(0b1010);
        let ways: Vec<_> = m.iter().collect();
        assert_eq!(ways, vec![1, 3]);
    }

    #[test]
    fn full_32_way_masks() {
        assert_eq!(WayMask::all(32).count(), 32);
        assert_eq!(WayMask::contiguous(0, 32).count(), 32);
    }
}
