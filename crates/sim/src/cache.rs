//! A set-associative cache array with way-mask-aware replacement.
//!
//! [`SetAssocCache`] is the building block for all three levels of the
//! modeled hierarchy. It supports:
//!
//! * modulo or hashed set indexing ([`crate::addr::IndexHash`]);
//! * tree pseudo-LRU or true-LRU replacement (the latter for ablations);
//! * **masked fills**: a fill may be restricted to a subset of ways — this
//!   is the LLC partitioning mechanism (hits are never masked);
//! * per-line owner tracking, used for occupancy statistics and inclusive
//!   back-invalidation bookkeeping.
//!
//! # Hot-path layout
//!
//! Line metadata is packed into one 16-byte [`LineState`] record per line,
//! laid out set-contiguously, so a probe touches one cache line of
//! simulator memory per 4 ways instead of striding across six parallel
//! arrays. Each set additionally keeps a valid-way bitmask in its
//! [`SetMeta`], which lets probes iterate only the valid ways
//! (`trailing_zeros`) and fills find the lowest invalid allowed way with
//! one mask operation. The `*_in` entry points take a precomputed set
//! index so the hierarchy can compute each level's set (a multiply or a
//! 64-bit hash) once per access instead of once per probe *and* per fill.

use crate::addr::{IndexHash, LineAddr};
use crate::plru::PlruTree;
use crate::waymask::WayMask;
use serde::{Deserialize, Serialize};

/// Replacement policy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplPolicy {
    /// Tree pseudo-LRU (the modeled hardware's policy).
    PseudoLru,
    /// True LRU via per-way age counters (ablation only; more state than
    /// real hardware keeps per set).
    TrueLru,
    /// Static re-reference interval prediction (SRRIP-HP, Jaleel et al.):
    /// 2-bit re-reference predictions per line, scan-resistant — the
    /// replacement family the fine-grain partitioning literature the
    /// paper cites (Vantage [30]) builds on. Ablation only.
    Srrip,
}

/// SRRIP's maximum re-reference prediction value (2-bit counters).
const RRPV_MAX: u8 = 3;
/// SRRIP-HP inserts new lines as "long re-reference interval".
const RRPV_INSERT: u8 = 2;

/// `LineState.flags` bit: the line holds valid data.
const FLAG_VALID: u8 = 1;
/// `LineState.flags` bit: the line is dirty (modified vs DRAM).
const FLAG_DIRTY: u8 = 2;

/// Geometry and policy of one cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Set index function.
    pub index: IndexHash,
    /// Replacement policy.
    pub replacement: ReplPolicy,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry does not yield a power-of-two set count of at
    /// least one set.
    pub fn num_sets(&self) -> usize {
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(sets > 0, "cache too small for its associativity");
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        sets
    }
}

/// Result of a fill: what (if anything) was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the evicted line was dirty (needs write-back).
    pub dirty: bool,
    /// The core that owned (filled) the evicted line.
    pub owner: u8,
}

/// One line's complete metadata, packed to 16 bytes so a whole 4-way set
/// spans a single 64-byte cache line of the *simulating* machine.
#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    /// True-LRU age (only maintained under [`ReplPolicy::TrueLru`]).
    age: u32,
    /// Core that filled the line (for occupancy stats and back-inval).
    owner: u8,
    /// Re-reference prediction value (only under [`ReplPolicy::Srrip`]).
    rrpv: u8,
    /// [`FLAG_VALID`] | [`FLAG_DIRTY`].
    flags: u8,
}

impl LineState {
    #[inline]
    fn empty() -> Self {
        LineState { tag: 0, age: 0, owner: 0, rrpv: RRPV_INSERT, flags: 0 }
    }
}

/// One set's shared metadata.
#[derive(Debug, Clone, Copy)]
struct SetMeta {
    plru: PlruTree,
    /// Bitmask of valid ways — probes iterate only these, and fills find
    /// the lowest invalid allowed way with `(allowed & !valid)`.
    valid: u16,
    /// Monotonic per-set counter for true-LRU ages.
    clock: u32,
}

/// A set-associative cache array.
///
/// The array does not model data contents, only tags and metadata: the
/// simulator is trace/execution driven and data values never matter.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    num_sets: usize,
    leaves: usize,
    /// Valid-way bits for this associativity (`ways` low bits set).
    ways_bits: u32,
    /// Per-line records, `num_sets * ways`, row-major by set.
    lines: Vec<LineState>,
    meta: Vec<SetMeta>,
}

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    /// Panics if `ways` exceeds 16 (the PLRU tree limit) or the set count is
    /// not a power of two.
    pub fn new(geom: CacheGeometry) -> Self {
        assert!(geom.ways >= 1 && geom.ways <= 16, "ways must be 1..=16");
        let num_sets = geom.num_sets();
        SetAssocCache {
            geom,
            num_sets,
            leaves: geom.ways.next_power_of_two(),
            ways_bits: (1u32 << geom.ways) - 1,
            lines: vec![LineState::empty(); num_sets * geom.ways],
            meta: vec![SetMeta { plru: PlruTree::new(), valid: 0, clock: 0 }; num_sets],
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// The set `line` maps to. Callers walking probe-then-fill should
    /// compute this once and use the `*_in` methods.
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> usize {
        self.geom.index.index(line, self.num_sets)
    }

    /// Looks up `line`; on a hit, updates recency state and (optionally)
    /// marks the line dirty. Returns the hit way.
    ///
    /// Hits are *never* restricted by way masks: the hardware mechanism
    /// allows any core to hit on data in any way (§2.1).
    #[inline]
    pub fn probe(&mut self, line: LineAddr, write: bool) -> Option<usize> {
        self.probe_in(self.set_index(line), line, write)
    }

    /// Branchless whole-set tag compare: builds an equality bitmask over
    /// *every* way of the set (valid or not), ANDs it with the valid mask,
    /// and extracts the hit way with one `trailing_zeros`.
    ///
    /// This replaces the bit-serial walk (`trailing_zeros` + compare per
    /// valid way) that dominated probe time: comparing all ways
    /// unconditionally has no loop-carried branch, so the fixed-width
    /// variants below unroll into straight-line compare/or chains the
    /// backend can vectorize over the packed 16-byte [`LineState`] records.
    ///
    /// Correctness relies on two invariants:
    /// * valid tags are unique within a set (fills happen only on misses),
    ///   so `eq & valid` has at most one bit set and `trailing_zeros`
    ///   yields the same way the serial first-match walk would;
    /// * stale tags in invalid slots may compare equal, but the AND with
    ///   `meta[set].valid` discards them.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.geom.ways;
        debug_assert!(base + self.geom.ways <= self.lines.len());
        // Fixed-width dispatch so the hot geometries (8-way L1/L2, 12-way
        // LLC) compile to fully unrolled compare chains.
        let eq = match self.geom.ways {
            4 => self.eq_mask::<4>(base, tag),
            8 => self.eq_mask::<8>(base, tag),
            12 => self.eq_mask::<12>(base, tag),
            16 => self.eq_mask::<16>(base, tag),
            n => {
                let mut eq = 0u32;
                for w in 0..n {
                    // SAFETY: `base + n <= lines.len()` (asserted above);
                    // rows are `ways` long by construction.
                    eq |= u32::from(unsafe { self.lines.get_unchecked(base + w) }.tag == tag) << w;
                }
                eq
            }
        };
        let hit = eq & u32::from(self.meta[set].valid);
        if hit != 0 {
            Some(hit.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Fixed-width equality mask over `N` consecutive line records.
    #[inline]
    fn eq_mask<const N: usize>(&self, base: usize, tag: u64) -> u32 {
        let mut eq = 0u32;
        for w in 0..N {
            // SAFETY: caller (`find_way`) checked `base + N <= lines.len()`.
            eq |= u32::from(unsafe { self.lines.get_unchecked(base + w) }.tag == tag) << w;
        }
        eq
    }

    /// [`Self::probe`] with the set index already computed.
    #[inline]
    pub fn probe_in(&mut self, set: usize, line: LineAddr, write: bool) -> Option<usize> {
        let way = self.find_way(set, line.0)?;
        if write {
            let base = set * self.geom.ways;
            // SAFETY: `way` came from `find_way`, hence < ways.
            unsafe { self.lines.get_unchecked_mut(base + way) }.flags |= FLAG_DIRTY;
        }
        self.touch(set, way);
        Some(way)
    }

    /// Looks up `line` without disturbing replacement state or dirty bits.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.contains_in(self.set_index(line), line)
    }

    /// [`Self::contains`] with the set index already computed.
    #[inline]
    pub fn contains_in(&self, set: usize, line: LineAddr) -> bool {
        self.find_way(set, line.0).is_some()
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        match self.geom.replacement {
            ReplPolicy::PseudoLru => self.meta[set].plru.touch(way, self.leaves),
            ReplPolicy::TrueLru => {
                let clock = self.meta[set].clock.wrapping_add(1);
                self.meta[set].clock = clock;
                self.lines[set * self.geom.ways + way].age = clock;
            }
            ReplPolicy::Srrip => {
                // A re-reference promotes the line to "near-immediate".
                self.lines[set * self.geom.ways + way].rrpv = 0;
            }
        }
    }

    /// Fills `line` into the set, replacing only within `mask`.
    ///
    /// Preference order: the lowest invalid allowed way, then the policy's
    /// victim among allowed valid ways. Returns the eviction, if a valid
    /// line was displaced.
    ///
    /// # Panics
    /// Panics in debug builds if `mask` grants no way within this cache's
    /// associativity.
    pub fn fill(&mut self, line: LineAddr, mask: WayMask, dirty: bool, owner: u8) -> Option<Eviction> {
        self.fill_in(self.set_index(line), line, mask, dirty, owner)
    }

    /// [`Self::fill`] with the set index already computed.
    pub fn fill_in(
        &mut self,
        set: usize,
        line: LineAddr,
        mask: WayMask,
        dirty: bool,
        owner: u8,
    ) -> Option<Eviction> {
        let allowed = mask.bits() & self.ways_bits;
        debug_assert!(allowed != 0, "fill mask grants no way in a {}-way cache", self.geom.ways);

        let valid = u32::from(self.meta[set].valid);
        let invalid_allowed = allowed & !valid;
        let way = if invalid_allowed != 0 {
            // Lowest invalid allowed way, matching the pre-packed layout's
            // first-invalid scan order.
            invalid_allowed.trailing_zeros() as usize
        } else {
            self.select_victim(set, allowed)
        };

        let s = set * self.geom.ways + way;
        let old = self.lines[s];
        let evicted = if old.flags & FLAG_VALID != 0 {
            Some(Eviction {
                line: LineAddr(old.tag),
                dirty: old.flags & FLAG_DIRTY != 0,
                owner: old.owner,
            })
        } else {
            None
        };
        self.lines[s] = LineState {
            tag: line.0,
            age: old.age,
            owner,
            // SRRIP inserts at a long predicted interval instead of MRU.
            rrpv: RRPV_INSERT,
            flags: FLAG_VALID | if dirty { FLAG_DIRTY } else { 0 },
        };
        self.meta[set].valid |= 1 << way;
        if self.geom.replacement != ReplPolicy::Srrip {
            self.touch(set, way);
        }
        evicted
    }

    #[inline]
    fn select_victim(&mut self, set: usize, allowed: u32) -> usize {
        let base = set * self.geom.ways;
        match self.geom.replacement {
            ReplPolicy::PseudoLru => self.meta[set]
                .plru
                .victim(allowed, self.leaves)
                .expect("non-empty mask"),
            ReplPolicy::Srrip => {
                // Find a distant line among allowed ways; age the allowed
                // ways until one appears (bounded by RRPV_MAX rounds).
                loop {
                    let mut rem = allowed;
                    while rem != 0 {
                        let way = rem.trailing_zeros() as usize;
                        rem &= rem - 1;
                        if self.lines[base + way].rrpv >= RRPV_MAX {
                            return way;
                        }
                    }
                    let mut rem = allowed;
                    while rem != 0 {
                        let way = rem.trailing_zeros() as usize;
                        rem &= rem - 1;
                        let r = &mut self.lines[base + way].rrpv;
                        *r = (*r + 1).min(RRPV_MAX);
                    }
                }
            }
            ReplPolicy::TrueLru => {
                let clock = self.meta[set].clock;
                let mut best_way = allowed.trailing_zeros() as usize;
                let mut best_age = u32::MAX;
                let mut rem = allowed;
                while rem != 0 {
                    let way = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    // Older (== larger wrapping distance from the set
                    // clock) wins.
                    let dist = clock.wrapping_sub(self.lines[base + way].age);
                    if best_age == u32::MAX || dist > best_age {
                        best_age = dist;
                        best_way = way;
                    }
                }
                best_way
            }
        }
    }

    /// Invalidates `line` if present; returns its eviction record.
    ///
    /// Used for inclusive back-invalidation (LLC eviction removes the line
    /// from inner caches) and for non-temporal stores.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Eviction> {
        let set = self.set_index(line);
        let way = self.find_way(set, line.0)?;
        let base = set * self.geom.ways;
        // SAFETY: `way` came from `find_way`, hence < ways.
        let ls = unsafe { self.lines.get_unchecked_mut(base + way) };
        let dirty = ls.flags & FLAG_DIRTY != 0;
        let owner = ls.owner;
        ls.flags &= !FLAG_VALID;
        self.meta[set].valid &= !(1 << way);
        Some(Eviction { line, dirty, owner })
    }

    /// Number of valid lines currently owned by `core`.
    ///
    /// O(capacity); intended for periodic statistics, not the hot path.
    pub fn occupancy_of(&self, core: u8) -> usize {
        self.lines
            .iter()
            .filter(|l| l.flags & FLAG_VALID != 0 && l.owner == core)
            .count()
    }

    /// Total valid lines.
    pub fn occupancy(&self) -> usize {
        self.meta.iter().map(|m| m.valid.count_ones() as usize).sum()
    }

    /// Iterates over all valid entries as `(set, way, line, owner, dirty)`.
    ///
    /// O(capacity); intended for invariant checks and diagnostics.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, LineAddr, u8, bool)> + '_ {
        let ways = self.geom.ways;
        self.lines.iter().enumerate().filter_map(move |(s, l)| {
            if l.flags & FLAG_VALID != 0 {
                Some((s / ways, s % ways, LineAddr(l.tag), l.owner, l.flags & FLAG_DIRTY != 0))
            } else {
                None
            }
        })
    }

    /// Invalidates every `owner`-owned line outside `mask`; returns how
    /// many dirty lines were dropped.
    ///
    /// Used by the "flush on reallocation" ablation (the real mechanism
    /// never flushes).
    pub fn flush_owned_outside(&mut self, owner: u8, mask: WayMask) -> usize {
        let mut dropped_dirty = 0;
        for set in 0..self.num_sets {
            let base = set * self.geom.ways;
            for way in 0..self.geom.ways {
                if mask.allows(way) {
                    continue;
                }
                let l = self.lines[base + way];
                if l.flags & FLAG_VALID != 0 && l.owner == owner {
                    self.lines[base + way].flags &= !FLAG_VALID;
                    self.meta[set].valid &= !(1 << way);
                    if l.flags & FLAG_DIRTY != 0 {
                        dropped_dirty += 1;
                    }
                }
            }
        }
        dropped_dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: usize) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry {
            size_bytes: 64 * ways * 16, // 16 sets
            ways,
            line_bytes: 64,
            index: IndexHash::Modulo,
            replacement: ReplPolicy::PseudoLru,
        })
    }

    #[test]
    fn line_state_is_16_bytes() {
        // The packed layout is the point: a 4-way set must span exactly one
        // 64-byte host cache line.
        assert_eq!(std::mem::size_of::<LineState>(), 16);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(4);
        let a = LineAddr::in_space(0, 5);
        assert_eq!(c.probe(a, false), None);
        assert_eq!(c.fill(a, WayMask::all(4), false, 0), None);
        assert!(c.probe(a, false).is_some());
    }

    #[test]
    fn fill_evicts_within_mask_only() {
        let mut c = small_cache(4);
        let set_stride = 16u64; // same set every 16 lines under modulo/16 sets
        // Fill all 4 ways of set 0 from core 0 with the full mask.
        for i in 0..4 {
            c.fill(LineAddr::in_space(0, i * set_stride), WayMask::all(4), false, 0);
        }
        // Core 1 fills with a mask of only way 3.
        let newline = LineAddr::in_space(1, 0);
        let ev = c.fill(newline, WayMask::from_bits(0b1000), false, 1).unwrap();
        // Evicted line must have been in way 3; all other lines survive.
        let mut surviving = 0;
        for i in 0..4 {
            if c.contains(LineAddr::in_space(0, i * set_stride)) {
                surviving += 1;
            }
        }
        assert_eq!(surviving, 3);
        assert!(c.contains(newline));
        assert_eq!(ev.owner, 0);
    }

    #[test]
    fn hits_ignore_way_masks() {
        // Data placed by core 0 anywhere must be hittable even when the
        // prober's allocation mask excludes that way (mask only affects
        // fills, per the hardware mechanism).
        let mut c = small_cache(4);
        let a = LineAddr::in_space(0, 7);
        c.fill(a, WayMask::from_bits(0b0001), false, 0);
        assert!(c.probe(a, false).is_some());
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small_cache(2);
        let stride = 16u64;
        let a = LineAddr::in_space(0, 0);
        c.fill(a, WayMask::all(2), false, 0);
        assert!(c.probe(a, true).is_some()); // dirty it
        c.fill(LineAddr::in_space(0, stride), WayMask::all(2), false, 0);
        // Third distinct line to the same set must evict one of the two.
        let ev = c.fill(LineAddr::in_space(0, 2 * stride), WayMask::all(2), false, 0).unwrap();
        if ev.line == a {
            assert!(ev.dirty);
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(4);
        let a = LineAddr::in_space(0, 3);
        c.fill(a, WayMask::all(4), true, 2);
        let ev = c.invalidate(a).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.owner, 2);
        assert!(!c.contains(a));
        assert!(c.invalidate(a).is_none());
    }

    #[test]
    fn occupancy_tracks_owners() {
        let mut c = small_cache(4);
        for i in 0..8u64 {
            c.fill(LineAddr::in_space(0, i), WayMask::all(4), false, (i % 2) as u8);
        }
        assert_eq!(c.occupancy(), 8);
        assert_eq!(c.occupancy_of(0), 4);
        assert_eq!(c.occupancy_of(1), 4);
    }

    #[test]
    fn set_folded_entry_points_match_unfolded() {
        let mut a = small_cache(4);
        let mut b = small_cache(4);
        for i in 0..200u64 {
            let line = LineAddr::in_space(0, i * 3 % 64);
            let mask = WayMask::from_bits(0b0011 << ((i % 2) * 2));
            let write = i % 5 == 0;
            let pa = a.probe(line, write);
            let set = b.set_index(line);
            let pb = b.probe_in(set, line, write);
            assert_eq!(pa, pb, "probe diverged at step {i}");
            if pa.is_none() {
                assert_eq!(
                    a.fill(line, mask, write, (i % 3) as u8),
                    b.fill_in(set, line, mask, write, (i % 3) as u8),
                    "fill diverged at step {i}"
                );
            }
        }
        assert_eq!(a.occupancy(), b.occupancy());
    }

    #[test]
    fn true_lru_evicts_oldest() {
        let mut c = SetAssocCache::new(CacheGeometry {
            size_bytes: 64 * 4 * 16,
            ways: 4,
            line_bytes: 64,
            index: IndexHash::Modulo,
            replacement: ReplPolicy::TrueLru,
        });
        let stride = 16u64;
        for i in 0..4 {
            c.fill(LineAddr::in_space(0, i * stride), WayMask::all(4), false, 0);
        }
        // Touch lines 1..4, leaving line 0 oldest.
        for i in 1..4 {
            c.probe(LineAddr::in_space(0, i * stride), false);
        }
        let ev = c.fill(LineAddr::in_space(0, 4 * stride), WayMask::all(4), false, 0).unwrap();
        assert_eq!(ev.line, LineAddr::in_space(0, 0));
    }

    #[test]
    fn srrip_scan_resistance() {
        // A reused working set plus a one-pass scan: SRRIP keeps the
        // reused lines (promoted to RRPV 0) and victimizes scan lines
        // (inserted at long intervals and never re-referenced).
        let mut c = SetAssocCache::new(CacheGeometry {
            size_bytes: 64 * 4 * 16,
            ways: 4,
            line_bytes: 64,
            index: IndexHash::Modulo,
            replacement: ReplPolicy::Srrip,
        });
        let stride = 16u64;
        let hot: Vec<LineAddr> = (0..2).map(|i| LineAddr::in_space(0, i * stride)).collect();
        for h in &hot {
            c.fill(*h, WayMask::all(4), false, 0);
        }
        // Re-reference the hot lines so they hold RRPV 0.
        for _ in 0..3 {
            for h in &hot {
                assert!(c.probe(*h, false).is_some());
            }
        }
        // Scan 8 distinct lines through the same set.
        for i in 10..18u64 {
            c.fill(LineAddr::in_space(0, i * stride), WayMask::all(4), false, 0);
            for h in &hot {
                c.probe(*h, false);
            }
        }
        for h in &hot {
            assert!(c.contains(*h), "scan evicted a hot line under SRRIP");
        }
    }

    #[test]
    fn srrip_respects_way_masks() {
        let mut c = SetAssocCache::new(CacheGeometry {
            size_bytes: 64 * 4 * 16,
            ways: 4,
            line_bytes: 64,
            index: IndexHash::Modulo,
            replacement: ReplPolicy::Srrip,
        });
        let stride = 16u64;
        for i in 0..4 {
            c.fill(LineAddr::in_space(0, i * stride), WayMask::all(4), false, 0);
        }
        // Fills restricted to way 2 must only ever displace way 2.
        for i in 100..120u64 {
            let ev = c.fill(LineAddr::in_space(1, i * stride), WayMask::from_bits(0b0100), false, 1);
            if let Some(e) = ev {
                // Everything except the original way-2 line (or previous
                // restricted fills) survives.
                assert!(e.owner == 1 || e.line.asid() == 0);
            }
        }
        let survivors =
            (0..4).filter(|&i| c.contains(LineAddr::in_space(0, i * stride))).count();
        assert_eq!(survivors, 3);
    }

    #[test]
    fn flush_outside_mask_drops_only_owned() {
        let mut c = small_cache(4);
        let stride = 16u64;
        c.fill(LineAddr::in_space(0, 0), WayMask::from_bits(0b0001), true, 0);
        c.fill(LineAddr::in_space(0, stride), WayMask::from_bits(0b0010), false, 1);
        // Shrink core 0 to way 1 only: its line in way 0 must be flushed.
        let dropped = c.flush_owned_outside(0, WayMask::from_bits(0b0010));
        assert_eq!(dropped, 1); // it was dirty
        assert!(!c.contains(LineAddr::in_space(0, 0)));
        assert!(c.contains(LineAddr::in_space(0, stride)));
    }
}
