//! A set-associative cache array with way-mask-aware replacement.
//!
//! [`SetAssocCache`] is the building block for all three levels of the
//! modeled hierarchy. It supports:
//!
//! * modulo or hashed set indexing ([`crate::addr::IndexHash`]);
//! * tree pseudo-LRU or true-LRU replacement (the latter for ablations);
//! * **masked fills**: a fill may be restricted to a subset of ways — this
//!   is the LLC partitioning mechanism (hits are never masked);
//! * per-line owner tracking, used for occupancy statistics and inclusive
//!   back-invalidation bookkeeping.

use crate::addr::{IndexHash, LineAddr};
use crate::plru::PlruTree;
use crate::waymask::WayMask;
use serde::{Deserialize, Serialize};

/// Replacement policy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplPolicy {
    /// Tree pseudo-LRU (the modeled hardware's policy).
    PseudoLru,
    /// True LRU via per-way age counters (ablation only; more state than
    /// real hardware keeps per set).
    TrueLru,
    /// Static re-reference interval prediction (SRRIP-HP, Jaleel et al.):
    /// 2-bit re-reference predictions per line, scan-resistant — the
    /// replacement family the fine-grain partitioning literature the
    /// paper cites (Vantage [30]) builds on. Ablation only.
    Srrip,
}

/// SRRIP's maximum re-reference prediction value (2-bit counters).
const RRPV_MAX: u8 = 3;
/// SRRIP-HP inserts new lines as "long re-reference interval".
const RRPV_INSERT: u8 = 2;

/// Geometry and policy of one cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Set index function.
    pub index: IndexHash,
    /// Replacement policy.
    pub replacement: ReplPolicy,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry does not yield a power-of-two set count of at
    /// least one set.
    pub fn num_sets(&self) -> usize {
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(sets > 0, "cache too small for its associativity");
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        sets
    }
}

/// Result of a fill: what (if anything) was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the evicted line was dirty (needs write-back).
    pub dirty: bool,
    /// The core that owned (filled) the evicted line.
    pub owner: u8,
}

/// One set's metadata, kept in struct-of-arrays form inside the cache.
#[derive(Debug, Clone)]
struct SetState {
    plru: PlruTree,
    /// Monotonic per-set counter for true-LRU ages.
    clock: u32,
}

/// A set-associative cache array.
///
/// The array does not model data contents, only tags and metadata: the
/// simulator is trace/execution driven and data values never matter.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    num_sets: usize,
    leaves: usize,
    /// Tags, `num_sets * ways`, row-major by set.
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    /// Core that filled each line (for occupancy stats and back-inval).
    owner: Vec<u8>,
    /// True-LRU ages (only maintained under [`ReplPolicy::TrueLru`]).
    age: Vec<u32>,
    /// Re-reference prediction values (only under [`ReplPolicy::Srrip`]).
    rrpv: Vec<u8>,
    sets: Vec<SetState>,
}

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    /// Panics if `ways` exceeds 16 (the PLRU tree limit) or the set count is
    /// not a power of two.
    pub fn new(geom: CacheGeometry) -> Self {
        assert!(geom.ways >= 1 && geom.ways <= 16, "ways must be 1..=16");
        let num_sets = geom.num_sets();
        let n = num_sets * geom.ways;
        SetAssocCache {
            geom,
            num_sets,
            leaves: geom.ways.next_power_of_two(),
            tags: vec![0; n],
            valid: vec![false; n],
            dirty: vec![false; n],
            owner: vec![0; n],
            age: vec![0; n],
            rrpv: vec![RRPV_INSERT; n],
            sets: vec![SetState { plru: PlruTree::new(), clock: 0 }; num_sets],
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        self.geom.index.index(line, self.num_sets)
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.geom.ways + way
    }

    /// Looks up `line`; on a hit, updates recency state and (optionally)
    /// marks the line dirty. Returns the hit way.
    ///
    /// Hits are *never* restricted by way masks: the hardware mechanism
    /// allows any core to hit on data in any way (§2.1).
    #[inline]
    pub fn probe(&mut self, line: LineAddr, write: bool) -> Option<usize> {
        let set = self.set_of(line);
        for way in 0..self.geom.ways {
            let s = self.slot(set, way);
            if self.valid[s] && self.tags[s] == line.0 {
                self.touch(set, way);
                if write {
                    self.dirty[s] = true;
                }
                return Some(way);
            }
        }
        None
    }

    /// Looks up `line` without disturbing replacement state or dirty bits.
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        (0..self.geom.ways).any(|way| {
            let s = self.slot(set, way);
            self.valid[s] && self.tags[s] == line.0
        })
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        match self.geom.replacement {
            ReplPolicy::PseudoLru => self.sets[set].plru.touch(way, self.leaves),
            ReplPolicy::TrueLru => {
                self.sets[set].clock = self.sets[set].clock.wrapping_add(1);
                let clock = self.sets[set].clock;
                let s = self.slot(set, way);
                self.age[s] = clock;
            }
            ReplPolicy::Srrip => {
                // A re-reference promotes the line to "near-immediate".
                let s = self.slot(set, way);
                self.rrpv[s] = 0;
            }
        }
    }

    /// Fills `line` into the set, replacing only within `mask`.
    ///
    /// Preference order: an invalid allowed way, then the policy's victim
    /// among allowed valid ways. Returns the eviction, if a valid line was
    /// displaced.
    ///
    /// # Panics
    /// Panics in debug builds if `mask` grants no way within this cache's
    /// associativity.
    pub fn fill(&mut self, line: LineAddr, mask: WayMask, dirty: bool, owner: u8) -> Option<Eviction> {
        let set = self.set_of(line);
        let ways_bits = if self.geom.ways == 32 { u32::MAX } else { (1u32 << self.geom.ways) - 1 };
        let allowed = mask.bits() & ways_bits;
        debug_assert!(allowed != 0, "fill mask grants no way in a {}-way cache", self.geom.ways);

        // Prefer an invalid allowed way.
        let mut chosen = None;
        for way in WayMask::from_bits(allowed).iter() {
            let s = self.slot(set, way);
            if !self.valid[s] {
                chosen = Some(way);
                break;
            }
        }
        let way = match chosen {
            Some(w) => w,
            None => self.select_victim(set, allowed),
        };

        let s = self.slot(set, way);
        let evicted = if self.valid[s] {
            Some(Eviction { line: LineAddr(self.tags[s]), dirty: self.dirty[s], owner: self.owner[s] })
        } else {
            None
        };
        self.tags[s] = line.0;
        self.valid[s] = true;
        self.dirty[s] = dirty;
        self.owner[s] = owner;
        if self.geom.replacement == ReplPolicy::Srrip {
            // SRRIP inserts at a long predicted interval instead of MRU.
            self.rrpv[s] = RRPV_INSERT;
        } else {
            self.touch(set, way);
        }
        evicted
    }

    #[inline]
    fn select_victim(&mut self, set: usize, allowed: u32) -> usize {
        match self.geom.replacement {
            ReplPolicy::PseudoLru => self.sets[set]
                .plru
                .victim(allowed, self.leaves)
                .expect("non-empty mask"),
            ReplPolicy::Srrip => {
                // Find a distant line among allowed ways; age the allowed
                // ways until one appears (bounded by RRPV_MAX rounds).
                loop {
                    for way in 0..self.geom.ways {
                        if (allowed >> way) & 1 == 1 && self.rrpv[self.slot(set, way)] >= RRPV_MAX {
                            return way;
                        }
                    }
                    for way in 0..self.geom.ways {
                        if (allowed >> way) & 1 == 1 {
                            let s = self.slot(set, way);
                            self.rrpv[s] = (self.rrpv[s] + 1).min(RRPV_MAX);
                        }
                    }
                }
            }
            ReplPolicy::TrueLru => {
                let mut best_way = allowed.trailing_zeros() as usize;
                let mut best_age = u32::MAX;
                for way in 0..self.geom.ways {
                    if (allowed >> way) & 1 == 1 {
                        let s = self.slot(set, way);
                        // Older (smaller modulo clock) age wins; use wrapping
                        // distance from the set clock for robustness.
                        let dist = self.sets[set].clock.wrapping_sub(self.age[s]);
                        if best_age == u32::MAX || dist > best_age {
                            // NOTE: dist is larger for older entries.
                            best_age = dist;
                            best_way = way;
                        }
                    }
                }
                best_way
            }
        }
    }

    /// Invalidates `line` if present; returns its eviction record.
    ///
    /// Used for inclusive back-invalidation (LLC eviction removes the line
    /// from inner caches) and for non-temporal stores.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Eviction> {
        let set = self.set_of(line);
        for way in 0..self.geom.ways {
            let s = self.slot(set, way);
            if self.valid[s] && self.tags[s] == line.0 {
                self.valid[s] = false;
                return Some(Eviction { line, dirty: self.dirty[s], owner: self.owner[s] });
            }
        }
        None
    }

    /// Number of valid lines currently owned by `core`.
    ///
    /// O(capacity); intended for periodic statistics, not the hot path.
    pub fn occupancy_of(&self, core: u8) -> usize {
        (0..self.tags.len())
            .filter(|&s| self.valid[s] && self.owner[s] == core)
            .count()
    }

    /// Total number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Iterates over all valid entries as `(set, way, line, owner, dirty)`.
    ///
    /// O(capacity); intended for invariant checks and diagnostics.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, LineAddr, u8, bool)> + '_ {
        let ways = self.geom.ways;
        (0..self.tags.len()).filter_map(move |s| {
            if self.valid[s] {
                Some((s / ways, s % ways, LineAddr(self.tags[s]), self.owner[s], self.dirty[s]))
            } else {
                None
            }
        })
    }

    /// Invalidates every line; returns how many dirty lines were dropped.
    ///
    /// Used by the "flush on reallocation" ablation (the real mechanism
    /// never flushes).
    pub fn flush_owned_outside(&mut self, owner: u8, mask: WayMask) -> usize {
        let mut dropped_dirty = 0;
        for set in 0..self.num_sets {
            for way in 0..self.geom.ways {
                if mask.allows(way) {
                    continue;
                }
                let s = self.slot(set, way);
                if self.valid[s] && self.owner[s] == owner {
                    self.valid[s] = false;
                    if self.dirty[s] {
                        dropped_dirty += 1;
                    }
                }
            }
        }
        dropped_dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: usize) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry {
            size_bytes: 64 * ways * 16, // 16 sets
            ways,
            line_bytes: 64,
            index: IndexHash::Modulo,
            replacement: ReplPolicy::PseudoLru,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(4);
        let a = LineAddr::in_space(0, 5);
        assert_eq!(c.probe(a, false), None);
        assert_eq!(c.fill(a, WayMask::all(4), false, 0), None);
        assert!(c.probe(a, false).is_some());
    }

    #[test]
    fn fill_evicts_within_mask_only() {
        let mut c = small_cache(4);
        let set_stride = 16u64; // same set every 16 lines under modulo/16 sets
        // Fill all 4 ways of set 0 from core 0 with the full mask.
        for i in 0..4 {
            c.fill(LineAddr::in_space(0, i * set_stride), WayMask::all(4), false, 0);
        }
        // Core 1 fills with a mask of only way 3.
        let newline = LineAddr::in_space(1, 0);
        let ev = c.fill(newline, WayMask::from_bits(0b1000), false, 1).unwrap();
        // Evicted line must have been in way 3; all other lines survive.
        let mut surviving = 0;
        for i in 0..4 {
            if c.contains(LineAddr::in_space(0, i * set_stride)) {
                surviving += 1;
            }
        }
        assert_eq!(surviving, 3);
        assert!(c.contains(newline));
        assert_eq!(ev.owner, 0);
    }

    #[test]
    fn hits_ignore_way_masks() {
        // Data placed by core 0 anywhere must be hittable even when the
        // prober's allocation mask excludes that way (mask only affects
        // fills, per the hardware mechanism).
        let mut c = small_cache(4);
        let a = LineAddr::in_space(0, 7);
        c.fill(a, WayMask::from_bits(0b0001), false, 0);
        assert!(c.probe(a, false).is_some());
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small_cache(2);
        let stride = 16u64;
        let a = LineAddr::in_space(0, 0);
        c.fill(a, WayMask::all(2), false, 0);
        assert!(c.probe(a, true).is_some()); // dirty it
        c.fill(LineAddr::in_space(0, stride), WayMask::all(2), false, 0);
        // Third distinct line to the same set must evict one of the two.
        let ev = c.fill(LineAddr::in_space(0, 2 * stride), WayMask::all(2), false, 0).unwrap();
        if ev.line == a {
            assert!(ev.dirty);
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(4);
        let a = LineAddr::in_space(0, 3);
        c.fill(a, WayMask::all(4), true, 2);
        let ev = c.invalidate(a).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.owner, 2);
        assert!(!c.contains(a));
        assert!(c.invalidate(a).is_none());
    }

    #[test]
    fn occupancy_tracks_owners() {
        let mut c = small_cache(4);
        for i in 0..8u64 {
            c.fill(LineAddr::in_space(0, i), WayMask::all(4), false, (i % 2) as u8);
        }
        assert_eq!(c.occupancy(), 8);
        assert_eq!(c.occupancy_of(0), 4);
        assert_eq!(c.occupancy_of(1), 4);
    }

    #[test]
    fn true_lru_evicts_oldest() {
        let mut c = SetAssocCache::new(CacheGeometry {
            size_bytes: 64 * 4 * 16,
            ways: 4,
            line_bytes: 64,
            index: IndexHash::Modulo,
            replacement: ReplPolicy::TrueLru,
        });
        let stride = 16u64;
        for i in 0..4 {
            c.fill(LineAddr::in_space(0, i * stride), WayMask::all(4), false, 0);
        }
        // Touch lines 1..4, leaving line 0 oldest.
        for i in 1..4 {
            c.probe(LineAddr::in_space(0, i * stride), false);
        }
        let ev = c.fill(LineAddr::in_space(0, 4 * stride), WayMask::all(4), false, 0).unwrap();
        assert_eq!(ev.line, LineAddr::in_space(0, 0));
    }

    #[test]
    fn srrip_scan_resistance() {
        // A reused working set plus a one-pass scan: SRRIP keeps the
        // reused lines (promoted to RRPV 0) and victimizes scan lines
        // (inserted at long intervals and never re-referenced).
        let mut c = SetAssocCache::new(CacheGeometry {
            size_bytes: 64 * 4 * 16,
            ways: 4,
            line_bytes: 64,
            index: IndexHash::Modulo,
            replacement: ReplPolicy::Srrip,
        });
        let stride = 16u64;
        let hot: Vec<LineAddr> = (0..2).map(|i| LineAddr::in_space(0, i * stride)).collect();
        for h in &hot {
            c.fill(*h, WayMask::all(4), false, 0);
        }
        // Re-reference the hot lines so they hold RRPV 0.
        for _ in 0..3 {
            for h in &hot {
                assert!(c.probe(*h, false).is_some());
            }
        }
        // Scan 8 distinct lines through the same set.
        for i in 10..18u64 {
            c.fill(LineAddr::in_space(0, i * stride), WayMask::all(4), false, 0);
            for h in &hot {
                c.probe(*h, false);
            }
        }
        for h in &hot {
            assert!(c.contains(*h), "scan evicted a hot line under SRRIP");
        }
    }

    #[test]
    fn srrip_respects_way_masks() {
        let mut c = SetAssocCache::new(CacheGeometry {
            size_bytes: 64 * 4 * 16,
            ways: 4,
            line_bytes: 64,
            index: IndexHash::Modulo,
            replacement: ReplPolicy::Srrip,
        });
        let stride = 16u64;
        for i in 0..4 {
            c.fill(LineAddr::in_space(0, i * stride), WayMask::all(4), false, 0);
        }
        // Fills restricted to way 2 must only ever displace way 2.
        for i in 100..120u64 {
            let ev = c.fill(LineAddr::in_space(1, i * stride), WayMask::from_bits(0b0100), false, 1);
            if let Some(e) = ev {
                // Everything except the original way-2 line (or previous
                // restricted fills) survives.
                assert!(e.owner == 1 || e.line.asid() == 0);
            }
        }
        let survivors =
            (0..4).filter(|&i| c.contains(LineAddr::in_space(0, i * stride))).count();
        assert_eq!(survivors, 3);
    }

    #[test]
    fn flush_outside_mask_drops_only_owned() {
        let mut c = small_cache(4);
        let stride = 16u64;
        c.fill(LineAddr::in_space(0, 0), WayMask::from_bits(0b0001), true, 0);
        c.fill(LineAddr::in_space(0, stride), WayMask::from_bits(0b0010), false, 1);
        // Shrink core 0 to way 1 only: its line in way 0 must be flushed.
        let dropped = c.flush_owned_outside(0, WayMask::from_bits(0b0010));
        assert_eq!(dropped, 1); // it was dirty
        assert!(!c.contains(LineAddr::in_space(0, 0)));
        assert!(c.contains(LineAddr::in_space(0, stride)));
    }
}
