//! On-chip ring interconnect model.
//!
//! All cores reach the LLC over a shared ring (§2.1). Like DRAM bandwidth,
//! ring bandwidth cannot be partitioned; under co-scheduling it is a second
//! source of contention (§5.2 attributes residual degradation to "bandwidth
//! contention on the on-chip ring interconnect or off-chip DRAM
//! interface"). The model mirrors [`crate::dram::DramModel`]: quantum-
//! averaged utilization drives a queueing multiplier on LLC access latency.

use crate::config::RingConfig;
use serde::{Deserialize, Serialize};

/// Quantum-averaged ring bandwidth model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingModel {
    cfg: RingConfig,
    requests: u64,
    utilization: f64,
    queue_mult: f64,
    /// Total LLC requests ever carried.
    pub total_requests: u64,
}

impl RingModel {
    /// A fresh, idle ring.
    pub fn new(cfg: RingConfig) -> Self {
        RingModel { cfg, requests: 0, utilization: 0.0, queue_mult: 1.0, total_requests: 0 }
    }

    /// Records one LLC request and returns the effective LLC access latency
    /// for `base_latency`.
    #[inline]
    pub fn access(&mut self, base_latency: u64) -> u64 {
        self.requests += 1;
        self.total_requests += 1;
        (base_latency as f64 * self.queue_mult) as u64
    }

    /// Closes a quantum: updates utilization and next quantum's multiplier.
    pub fn end_quantum(&mut self, quantum_cycles: u64) {
        let capacity = self.cfg.requests_per_cycle * quantum_cycles as f64;
        self.utilization = self.requests as f64 / capacity.max(1.0);
        let rho = self.utilization.min(0.98);
        let mult = 1.0 + rho / (2.0 * (1.0 - rho));
        let overload = (self.utilization - 1.0).max(0.0);
        self.queue_mult = (mult + overload).min(self.cfg.max_queue_mult);
        self.requests = 0;
    }

    /// Ring utilization over the last completed quantum.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The multiplier applied to LLC latency this quantum.
    pub fn queue_mult(&self) -> f64 {
        self.queue_mult
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_ring_is_free() {
        let mut r = RingModel::new(RingConfig { requests_per_cycle: 1.0, max_queue_mult: 3.0 });
        assert_eq!(r.access(30), 30);
        r.end_quantum(1000);
        assert!(r.queue_mult() < 1.01);
    }

    #[test]
    fn saturated_ring_slows_llc() {
        let mut r = RingModel::new(RingConfig { requests_per_cycle: 0.5, max_queue_mult: 3.0 });
        for _ in 0..490 {
            r.access(30);
        }
        r.end_quantum(1000); // ρ = 0.98
        assert!(r.queue_mult() > 2.0);
        assert!(r.access(30) > 60);
    }

    #[test]
    fn multiplier_capped() {
        let mut r = RingModel::new(RingConfig { requests_per_cycle: 0.1, max_queue_mult: 3.0 });
        for _ in 0..10_000 {
            r.access(30);
        }
        r.end_quantum(1000);
        assert!((r.queue_mult() - 3.0).abs() < 1e-9);
    }
}
