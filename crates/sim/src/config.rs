//! Machine configuration and the Sandy Bridge preset.
//!
//! [`MachineConfig::sandy_bridge`] reproduces the platform of §2.1: 4
//! quad-issue out-of-order cores with 2 hyperthreads each, 32 KB private L1
//! data caches, 256 KB private L2s, and a 12-way 6 MB inclusive LLC shared
//! over a ring. [`MachineConfig::scaled`] shrinks cache capacities (keeping
//! associativity) for fast tests; workloads shrink their working sets by the
//! same factor so capacity *ratios* — which drive every result in the paper
//! — are preserved.

use crate::addr::IndexHash;
use crate::cache::{CacheGeometry, ReplPolicy};
use serde::{Deserialize, Serialize};

/// Load-to-use and miss latencies, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Extra cycles charged for an L1 hit beyond the pipelined base CPI.
    pub l1_hit: u64,
    /// L2 hit latency.
    pub l2_hit: u64,
    /// LLC hit latency (before ring queueing).
    pub llc_hit: u64,
    /// DRAM access latency (before queueing).
    pub dram: u64,
}

/// DRAM channel model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Sustainable bandwidth in cache lines per core cycle (all channels).
    ///
    /// Dual-channel DDR3-1600 ≈ 25 GB/s ≈ 0.11 lines/cycle at 3.4 GHz.
    pub lines_per_cycle: f64,
    /// Cap on the queueing latency multiplier when the channel saturates.
    pub max_queue_mult: f64,
}

/// Ring interconnect model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingConfig {
    /// LLC request slots per core cycle across the ring.
    pub requests_per_cycle: f64,
    /// Cap on the LLC-access queueing multiplier.
    pub max_queue_mult: f64,
}

/// Simultaneous-multithreading model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmtConfig {
    /// Factor by which one hyperthread's *compute* cycles dilate when its
    /// sibling is active (shared issue slots). 1.45 gives a per-core
    /// throughput gain of 2/1.45 ≈ 1.38× from enabling the second thread,
    /// in line with the scaling the paper observes from hyperthread pairs.
    pub compute_dilation: f64,
}

/// Full machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of physical cores.
    pub cores: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Cache line size in bytes (uniform across levels).
    pub line_bytes: usize,
    /// Per-core L1 data cache.
    pub l1: CacheGeometry,
    /// Per-core L2 cache.
    pub l2: CacheGeometry,
    /// Shared, inclusive last-level cache.
    pub llc: CacheGeometry,
    pub latency: LatencyConfig,
    pub dram: DramConfig,
    pub ring: RingConfig,
    pub smt: SmtConfig,
    /// Core frequency in GHz (converts cycles to wall time for energy).
    pub freq_ghz: f64,
    /// Simulation quantum in cycles: threads advance round-robin in slices
    /// of this length, and contention rates update once per quantum.
    pub quantum_cycles: u64,
    /// Fraction of a store miss's latency charged as stall (store buffers
    /// hide most of it).
    pub store_stall_factor: f64,
}

impl MachineConfig {
    /// The prototype platform of the paper (§2.1).
    pub fn sandy_bridge() -> Self {
        let line_bytes = 64;
        MachineConfig {
            cores: 4,
            threads_per_core: 2,
            line_bytes,
            l1: CacheGeometry {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes,
                index: IndexHash::Modulo,
                replacement: ReplPolicy::PseudoLru,
            },
            l2: CacheGeometry {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes,
                index: IndexHash::Modulo,
                replacement: ReplPolicy::PseudoLru,
            },
            llc: CacheGeometry {
                size_bytes: 6 * 1024 * 1024,
                ways: 12,
                line_bytes,
                index: IndexHash::Hashed,
                replacement: ReplPolicy::PseudoLru,
            },
            latency: LatencyConfig { l1_hit: 0, l2_hit: 12, llc_hit: 30, dram: 190 },
            dram: DramConfig { lines_per_cycle: 0.11, max_queue_mult: 6.0 },
            ring: RingConfig { requests_per_cycle: 1.0, max_queue_mult: 3.0 },
            smt: SmtConfig { compute_dilation: 1.45 },
            freq_ghz: 3.4,
            quantum_cycles: 100_000,
            store_stall_factor: 0.35,
        }
    }

    /// A capacity-scaled machine: caches shrink by `div` (associativity and
    /// latencies unchanged). Use together with equally scaled workloads.
    ///
    /// # Panics
    /// Panics if `div` is zero, not a power of two, or would shrink a cache
    /// below one set.
    pub fn scaled(div: usize) -> Self {
        assert!(div > 0 && div.is_power_of_two(), "scale divisor must be a power of two");
        let mut cfg = Self::sandy_bridge();
        for geom in [&mut cfg.l1, &mut cfg.l2, &mut cfg.llc] {
            geom.size_bytes /= div;
            assert!(
                geom.size_bytes >= geom.ways * geom.line_bytes,
                "scale divisor {div} shrinks a cache below one set"
            );
        }
        cfg
    }

    /// Total hardware threads on the socket.
    pub fn hw_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// The core a hardware thread belongs to.
    pub fn core_of(&self, ht: usize) -> usize {
        ht / self.threads_per_core
    }

    /// LLC capacity granted by `ways` ways, in bytes.
    pub fn llc_bytes_for_ways(&self, ways: usize) -> usize {
        self.llc.size_bytes * ways / self.llc.ways
    }

    /// Converts cycles to seconds at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Converts seconds to cycles at the configured frequency.
    pub fn seconds_to_cycles(&self, secs: f64) -> u64 {
        (secs * self.freq_ghz * 1e9) as u64
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::sandy_bridge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandy_bridge_geometry() {
        let cfg = MachineConfig::sandy_bridge();
        assert_eq!(cfg.hw_threads(), 8);
        assert_eq!(cfg.llc.num_sets(), 8192);
        assert_eq!(cfg.l1.num_sets(), 64);
        assert_eq!(cfg.l2.num_sets(), 512);
        assert_eq!(cfg.llc_bytes_for_ways(12), 6 * 1024 * 1024);
        assert_eq!(cfg.llc_bytes_for_ways(1), 512 * 1024);
    }

    #[test]
    fn scaled_keeps_ways() {
        let cfg = MachineConfig::scaled(16);
        assert_eq!(cfg.llc.ways, 12);
        assert_eq!(cfg.llc.size_bytes, 6 * 1024 * 1024 / 16);
        assert_eq!(cfg.llc.num_sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn scale_must_be_power_of_two() {
        let _ = MachineConfig::scaled(3);
    }

    #[test]
    fn core_mapping_follows_hyperthread_pairs() {
        let cfg = MachineConfig::sandy_bridge();
        assert_eq!(cfg.core_of(0), 0);
        assert_eq!(cfg.core_of(1), 0);
        assert_eq!(cfg.core_of(2), 1);
        assert_eq!(cfg.core_of(7), 3);
    }

    #[test]
    fn time_conversions_roundtrip() {
        let cfg = MachineConfig::sandy_bridge();
        let cycles = cfg.seconds_to_cycles(0.25);
        let secs = cfg.cycles_to_seconds(cycles);
        assert!((secs - 0.25).abs() < 1e-9);
    }
}
