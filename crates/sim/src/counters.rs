//! Hardware performance-event counters.
//!
//! The paper reads the machine's counters through libpfm/perf_events (§2.2).
//! [`HwCounters`] is the per-hyperthread counter file the `waypart-perfmon`
//! crate samples; it is maintained inline by the machine on every access.

use serde::{Deserialize, Serialize};

/// Per-hyperthread hardware event counts since machine reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwCounters {
    /// Instructions retired.
    pub instructions: u64,
    /// Core cycles this thread was executing (including stalls).
    pub cycles: u64,
    /// L1 data-cache loads+stores issued.
    pub l1_accesses: u64,
    /// L1 misses (== L2 accesses).
    pub l1_misses: u64,
    /// L2 misses (== LLC demand accesses over the ring).
    pub l2_misses: u64,
    /// LLC demand accesses (same as `l2_misses`, kept separate because the
    /// real event encodings differ and perfmon exposes both).
    pub llc_accesses: u64,
    /// LLC demand misses (→ DRAM reads).
    pub llc_misses: u64,
    /// Dirty lines written back to DRAM on behalf of this thread.
    pub dram_writebacks: u64,
    /// Prefetch requests issued by this thread's core on its behalf.
    pub prefetches_issued: u64,
    /// Prefetched lines that later saw a demand hit before eviction is not
    /// tracked per line; this counts demand hits on prefetched fills at
    /// fill-granularity approximation (see `hierarchy`).
    pub prefetch_hits: u64,
    /// Non-temporal accesses that bypassed the hierarchy.
    pub non_temporal: u64,
}

impl HwCounters {
    /// LLC misses per kilo-instruction — the paper's central metric (Figs
    /// 6, 12; Algorithms 6.1/6.2 key off windowed deltas of this value).
    ///
    /// Returns 0 when no instructions have retired.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// LLC accesses per kilo-instruction (Table 2 bolds apps above 10).
    pub fn apki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_accesses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Element-wise difference `self - earlier`, for windowed sampling.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn delta(&self, earlier: &HwCounters) -> HwCounters {
        debug_assert!(self.instructions >= earlier.instructions);
        HwCounters {
            instructions: self.instructions - earlier.instructions,
            cycles: self.cycles - earlier.cycles,
            l1_accesses: self.l1_accesses - earlier.l1_accesses,
            l1_misses: self.l1_misses - earlier.l1_misses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            llc_accesses: self.llc_accesses - earlier.llc_accesses,
            llc_misses: self.llc_misses - earlier.llc_misses,
            dram_writebacks: self.dram_writebacks - earlier.dram_writebacks,
            prefetches_issued: self.prefetches_issued - earlier.prefetches_issued,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            non_temporal: self.non_temporal - earlier.non_temporal,
        }
    }

    /// Element-wise sum, for aggregating an application's threads.
    pub fn merge(&self, other: &HwCounters) -> HwCounters {
        HwCounters {
            instructions: self.instructions + other.instructions,
            cycles: self.cycles + other.cycles,
            l1_accesses: self.l1_accesses + other.l1_accesses,
            l1_misses: self.l1_misses + other.l1_misses,
            l2_misses: self.l2_misses + other.l2_misses,
            llc_accesses: self.llc_accesses + other.llc_accesses,
            llc_misses: self.llc_misses + other.llc_misses,
            dram_writebacks: self.dram_writebacks + other.dram_writebacks,
            prefetches_issued: self.prefetches_issued + other.prefetches_issued,
            prefetch_hits: self.prefetch_hits + other.prefetch_hits,
            non_temporal: self.non_temporal + other.non_temporal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_and_apki() {
        let c = HwCounters { instructions: 10_000, llc_misses: 50, llc_accesses: 120, ..Default::default() };
        assert!((c.mpki() - 5.0).abs() < 1e-12);
        assert!((c.apki() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn zero_instructions_safe() {
        let c = HwCounters::default();
        assert_eq!(c.mpki(), 0.0);
        assert_eq!(c.apki(), 0.0);
        assert_eq!(c.ipc(), 0.0);
    }

    #[test]
    fn delta_and_merge() {
        let a = HwCounters { instructions: 100, cycles: 200, llc_misses: 10, ..Default::default() };
        let b = HwCounters { instructions: 300, cycles: 500, llc_misses: 25, ..Default::default() };
        let d = b.delta(&a);
        assert_eq!(d.instructions, 200);
        assert_eq!(d.llc_misses, 15);
        let m = a.merge(&b);
        assert_eq!(m.instructions, 400);
        assert_eq!(m.cycles, 700);
    }

    #[test]
    fn ipc() {
        let c = HwCounters { instructions: 300, cycles: 150, ..Default::default() };
        assert!((c.ipc() - 2.0).abs() < 1e-12);
    }
}
