//! Simulated machine-state registers.
//!
//! The prototype exposes its knobs through MSRs: the four hardware
//! prefetchers are enabled/disabled by setting MSR bits (§3.3), and the
//! customized BIOS exposes per-core LLC way-allocation registers (§2.1).
//! [`MsrBank`] is the software-visible control surface of the simulated
//! machine; the partitioning policies in `waypart-core` program it exactly
//! the way the paper's framework programs the real registers.

use crate::waymask::WayMask;
use serde::{Deserialize, Serialize};

/// The four Sandy Bridge hardware prefetchers (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Prefetcher {
    /// Per-core L1 (DCU) IP-prefetcher: sequential load history per PC.
    DcuIp,
    /// L1 (DCU) streamer: multiple reads to one line trigger next-line
    /// prefetch.
    DcuStreamer,
    /// Mid-level-cache spatial prefetcher: adjacent-line pairs into L2.
    MlcSpatial,
    /// Mid-level-cache streamer: ascending-stream detection into L2.
    MlcStreamer,
}

impl Prefetcher {
    /// All four prefetchers.
    pub const ALL: [Prefetcher; 4] =
        [Prefetcher::DcuIp, Prefetcher::DcuStreamer, Prefetcher::MlcSpatial, Prefetcher::MlcStreamer];

    fn bit(self) -> u8 {
        match self {
            Prefetcher::DcuIp => 0,
            Prefetcher::DcuStreamer => 1,
            Prefetcher::MlcSpatial => 2,
            Prefetcher::MlcStreamer => 3,
        }
    }
}

/// Enable mask over the four prefetchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetcherMask(u8);

impl PrefetcherMask {
    /// All prefetchers enabled (the machine's reset state).
    pub fn all_enabled() -> Self {
        PrefetcherMask(0b1111)
    }

    /// All prefetchers disabled.
    pub fn all_disabled() -> Self {
        PrefetcherMask(0)
    }

    /// Enables or disables one prefetcher, returning the new mask.
    #[must_use]
    pub fn with(self, p: Prefetcher, enabled: bool) -> Self {
        if enabled {
            PrefetcherMask(self.0 | (1 << p.bit()))
        } else {
            PrefetcherMask(self.0 & !(1 << p.bit()))
        }
    }

    /// Whether `p` is enabled.
    pub fn enabled(self, p: Prefetcher) -> bool {
        (self.0 >> p.bit()) & 1 == 1
    }
}

impl Default for PrefetcherMask {
    fn default() -> Self {
        Self::all_enabled()
    }
}

/// The machine's control-register bank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsrBank {
    way_masks: Vec<WayMask>,
    prefetchers: PrefetcherMask,
    llc_ways: usize,
    /// Per-core memory-bandwidth throttle in percent (10..=100). The
    /// paper's §8 names bandwidth QoS as the missing hardware knob; Intel
    /// later shipped exactly this as Memory Bandwidth Allocation (MBA).
    mba_percent: Vec<u8>,
}

impl MsrBank {
    /// Reset state: every core owns all LLC ways; all prefetchers on;
    /// no bandwidth throttling.
    pub fn new(cores: usize, llc_ways: usize) -> Self {
        MsrBank {
            way_masks: vec![WayMask::all(llc_ways); cores],
            prefetchers: PrefetcherMask::all_enabled(),
            llc_ways,
            mba_percent: vec![100; cores],
        }
    }

    /// Programs core `core`'s memory-bandwidth throttle (MBA-style):
    /// `percent` of unthrottled request bandwidth, 10..=100.
    ///
    /// # Panics
    /// Panics if `core` is out of range or `percent` is outside 10..=100.
    pub fn set_mba(&mut self, core: usize, percent: u8) {
        assert!(core < self.mba_percent.len(), "core {core} out of range");
        assert!((10..=100).contains(&percent), "MBA throttle {percent}% outside 10..=100");
        self.mba_percent[core] = percent;
    }

    /// Core `core`'s current bandwidth throttle.
    pub fn mba(&self, core: usize) -> u8 {
        self.mba_percent[core]
    }

    /// Programs core `core`'s LLC way allocation.
    ///
    /// Takes effect on the next replacement — existing lines are never
    /// flushed, matching the hardware (§2.1: "Data is not flushed when the
    /// way allocation changes").
    ///
    /// # Panics
    /// Panics if `core` is out of range or `mask` grants ways beyond the
    /// LLC's associativity.
    pub fn set_way_mask(&mut self, core: usize, mask: WayMask) {
        assert!(core < self.way_masks.len(), "core {core} out of range");
        assert!(
            mask.bits() < (1u32 << self.llc_ways),
            "mask {mask} grants ways beyond the {}-way LLC",
            self.llc_ways
        );
        self.way_masks[core] = mask;
    }

    /// Core `core`'s current LLC way allocation.
    pub fn way_mask(&self, core: usize) -> WayMask {
        self.way_masks[core]
    }

    /// Reprograms the prefetcher enable bits.
    pub fn set_prefetchers(&mut self, mask: PrefetcherMask) {
        self.prefetchers = mask;
    }

    /// Current prefetcher enable bits.
    pub fn prefetchers(&self) -> PrefetcherMask {
        self.prefetchers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_grants_everything() {
        let b = MsrBank::new(4, 12);
        for c in 0..4 {
            assert_eq!(b.way_mask(c).count(), 12);
        }
        for p in Prefetcher::ALL {
            assert!(b.prefetchers().enabled(p));
        }
    }

    #[test]
    fn way_mask_programming() {
        let mut b = MsrBank::new(4, 12);
        b.set_way_mask(1, WayMask::contiguous(0, 3));
        assert_eq!(b.way_mask(1).count(), 3);
        assert_eq!(b.way_mask(0).count(), 12);
    }

    #[test]
    #[should_panic(expected = "beyond the 12-way")]
    fn mask_beyond_associativity_rejected() {
        let mut b = MsrBank::new(4, 12);
        b.set_way_mask(0, WayMask::contiguous(6, 7));
    }

    #[test]
    fn mba_programming_and_validation() {
        let mut b = MsrBank::new(4, 12);
        assert_eq!(b.mba(0), 100);
        b.set_mba(2, 30);
        assert_eq!(b.mba(2), 30);
        assert_eq!(b.mba(0), 100);
    }

    #[test]
    #[should_panic(expected = "outside 10..=100")]
    fn mba_rejects_full_stall() {
        let mut b = MsrBank::new(4, 12);
        b.set_mba(0, 0);
    }

    #[test]
    fn prefetcher_toggling() {
        let mut m = PrefetcherMask::all_enabled();
        m = m.with(Prefetcher::MlcStreamer, false);
        assert!(!m.enabled(Prefetcher::MlcStreamer));
        assert!(m.enabled(Prefetcher::DcuIp));
        m = m.with(Prefetcher::MlcStreamer, true);
        assert!(m.enabled(Prefetcher::MlcStreamer));
    }
}
