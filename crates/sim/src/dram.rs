//! Off-chip DRAM bandwidth and queueing model.
//!
//! Memory bandwidth is a shared resource that *cannot* be partitioned on the
//! modeled platform (§3.4); contention for it is what produces the paper's
//! worst-case slowdowns even under optimal LLC partitioning (§8). The model
//! is a quantum-averaged open queue: each simulation quantum the machine
//! reports the number of line transfers demanded, the model computes channel
//! utilization, and the *next* quantum's accesses pay an M/D/1-style
//! queueing penalty on top of the base DRAM latency. Saturation also caps
//! achievable throughput by inflating per-access stall proportionally.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};

/// Quantum-averaged DRAM channel model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramModel {
    cfg: DramConfig,
    /// Line transfers requested in the quantum being accumulated.
    demand_lines: u64,
    /// Utilization measured over the previous quantum, in `[0, ∞)`.
    utilization: f64,
    /// Latency multiplier derived from `utilization`, applied this quantum.
    queue_mult: f64,
    /// Total line transfers ever serviced (reads + writes + prefetches).
    pub total_lines: u64,
}

impl DramModel {
    /// A fresh, idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        DramModel { cfg, demand_lines: 0, utilization: 0.0, queue_mult: 1.0, total_lines: 0 }
    }

    /// Records one line transfer and returns the effective latency in
    /// cycles for a demand access (`base_latency` scaled by the current
    /// queueing multiplier).
    #[inline]
    pub fn access(&mut self, base_latency: u64) -> u64 {
        self.demand_lines += 1;
        self.total_lines += 1;
        (base_latency as f64 * self.queue_mult) as u64
    }

    /// Records a bandwidth-consuming transfer that adds no stall to the
    /// requester (write-backs, prefetch fills).
    #[inline]
    pub fn consume(&mut self) {
        self.demand_lines += 1;
        self.total_lines += 1;
    }

    /// Closes a quantum of `quantum_cycles` cycles: computes utilization
    /// and the queueing multiplier to apply next quantum.
    pub fn end_quantum(&mut self, quantum_cycles: u64) {
        let capacity = self.cfg.lines_per_cycle * quantum_cycles as f64;
        self.utilization = self.demand_lines as f64 / capacity.max(1.0);
        // M/D/1 waiting-time growth, clamped: W ≈ ρ / (2 (1 - ρ)).
        let rho = self.utilization.min(0.98);
        let mult = 1.0 + rho / (2.0 * (1.0 - rho));
        // Past saturation, throughput must not exceed capacity: stretch
        // latency linearly with the overload factor.
        let overload = (self.utilization - 1.0).max(0.0);
        self.queue_mult = (mult + overload * 2.0).min(self.cfg.max_queue_mult);
        self.demand_lines = 0;
    }

    /// Channel utilization measured over the last completed quantum
    /// (may exceed 1.0 when demand outstrips capacity).
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The latency multiplier currently applied to demand accesses.
    pub fn queue_mult(&self) -> f64 {
        self.queue_mult
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig { lines_per_cycle: 0.1, max_queue_mult: 8.0 }
    }

    #[test]
    fn idle_channel_charges_base_latency() {
        let mut d = DramModel::new(cfg());
        assert_eq!(d.access(200), 200);
    }

    #[test]
    fn light_load_keeps_multiplier_near_one() {
        let mut d = DramModel::new(cfg());
        for _ in 0..100 {
            d.access(200);
        }
        d.end_quantum(100_000); // capacity 10_000 lines, demand 100 → ρ=0.01
        assert!(d.queue_mult() < 1.05, "mult = {}", d.queue_mult());
    }

    #[test]
    fn heavy_load_inflates_latency() {
        let mut d = DramModel::new(cfg());
        for _ in 0..9_500 {
            d.consume();
        }
        d.end_quantum(100_000); // ρ = 0.95
        assert!(d.queue_mult() > 5.0, "mult = {}", d.queue_mult());
        assert!(d.access(200) > 1000);
    }

    #[test]
    fn overload_hits_the_cap() {
        let mut d = DramModel::new(cfg());
        for _ in 0..40_000 {
            d.consume();
        }
        d.end_quantum(100_000); // ρ = 4.0
        assert!((d.queue_mult() - 8.0).abs() < 1e-9);
        assert!(d.utilization() > 3.9);
    }

    #[test]
    fn quantum_resets_demand() {
        let mut d = DramModel::new(cfg());
        for _ in 0..9_000 {
            d.consume();
        }
        d.end_quantum(100_000);
        let busy_mult = d.queue_mult();
        d.end_quantum(100_000); // empty quantum
        assert!(d.queue_mult() < busy_mult);
        assert!(d.queue_mult() >= 1.0);
    }
}
