//! # waypart-sim
//!
//! An execution-driven multicore cache-hierarchy simulator modeled on the
//! prototype Sandy Bridge client platform used by Cook et al. (ISCA 2013) in
//! *"A Hardware Evaluation of Cache Partitioning to Improve Utilization and
//! Energy-Efficiency while Preserving Responsiveness"*.
//!
//! The simulated machine has:
//!
//! * 4 out-of-order cores, each with 2 hyperthreads (8 hardware threads);
//! * private 32 KB L1 data caches and 256 KB non-inclusive L2 caches;
//! * a shared 12-way, 6 MB **inclusive** last-level cache (LLC) reached over
//!   a ring interconnect;
//! * **way-based LLC partitioning**: each core owns a subset of the 12 ways.
//!   A core may *hit* on data held in any way but may only *replace* data in
//!   its assigned ways, and data is not flushed when allocations change —
//!   exactly the mechanism semantics of the paper's prototype;
//! * four hardware prefetchers (DCU IP, DCU streamer, MLC spatial, MLC
//!   streamer), individually switchable through a simulated MSR bank;
//! * bandwidth/queueing models for the on-chip ring and off-chip DRAM;
//! * per-hyperthread hardware performance counters (the substrate for the
//!   `waypart-perfmon` libpfm analog).
//!
//! Applications drive the machine through the [`stream::AccessStream`] trait:
//! a stream yields memory accesses separated by instruction gaps, and the
//! machine charges compute cycles, cache latencies, and queueing delays to
//! the issuing hyperthread.
//!
//! ```
//! use waypart_sim::config::MachineConfig;
//! use waypart_sim::machine::Machine;
//!
//! let cfg = MachineConfig::sandy_bridge();
//! let machine = Machine::new(cfg);
//! assert_eq!(machine.config().cores, 4);
//! assert_eq!(machine.config().llc.ways, 12);
//! ```

pub mod addr;
pub mod cache;
pub mod coloring;
pub mod config;
pub mod counters;
pub mod dram;
pub mod hierarchy;
pub mod machine;
pub mod msr;
pub mod plru;
pub mod prefetch;
pub mod ring;
pub mod stream;
#[cfg(feature = "telemetry")]
pub mod tallies;
pub mod trace;
pub mod umon;
pub mod waymask;

pub use addr::LineAddr;
pub use config::MachineConfig;
pub use machine::Machine;
pub use waymask::WayMask;

/// Identifier of a physical core (0-based).
pub type CoreId = usize;

/// Identifier of a hardware thread (hyperthread), 0-based across the socket.
///
/// Hyperthread `h` belongs to core `h / 2`; the paper pins applications to
/// hyperthreads with `taskset`, which we model with explicit assignment.
pub type HwThreadId = usize;

/// Simulated clock cycles.
pub type Cycles = u64;
