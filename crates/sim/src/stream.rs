//! The interface between workloads and the machine.
//!
//! A hardware thread executes an [`AccessStream`]: a deterministic generator
//! that interleaves instruction bursts with memory accesses. The simulator
//! charges compute cycles for the instruction gaps and walks the cache
//! hierarchy for each access. Streams are how the `waypart-workloads` crate
//! plugs its 45 synthetic application models into the machine without the
//! simulator knowing anything about applications.

use crate::addr::LineAddr;

/// One memory reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Access {
    /// The referenced line.
    pub line: LineAddr,
    /// Store (true) or load (false).
    pub write: bool,
    /// Issuing instruction address, used by the per-PC (IP) prefetcher.
    pub pc: u32,
    /// Non-temporal access: bypasses all cache levels and goes straight to
    /// DRAM (models the specially tagged loads/stores of the
    /// `stream_uncached` bandwidth hog, §2.3).
    pub non_temporal: bool,
    /// Memory-level parallelism: how many misses of this kind the core can
    /// overlap. Stall time charged is `latency / mlp`. Pointer-chasing
    /// streams use 1.0 (fully serialized); software-pipelined streaming
    /// loops use values up to ~8.
    pub mlp: f32,
}

impl Access {
    /// A plain dependent load with no overlap.
    pub fn load(line: LineAddr) -> Self {
        Access { line, write: false, pc: 0, non_temporal: false, mlp: 1.0 }
    }
}

/// What a hardware thread does next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamEvent {
    /// Execute `instr_gap` instructions, then perform `access`.
    ///
    /// The gap instructions are charged at the stream's base CPI (dilated
    /// when the sibling hyperthread is active); the access adds memory
    /// stall cycles on top.
    Access { instr_gap: u32, access: Access },
    /// Execute `instrs` instructions with no memory reference (the
    /// cache-resident tail of the instruction mix).
    Compute { instrs: u32 },
    /// The thread has retired all its work.
    Done,
}

/// A deterministic instruction/access generator driven by the machine.
///
/// Implementations live in `waypart-workloads`. Streams must be
/// deterministic given their construction parameters so experiments are
/// reproducible; use seeded RNGs internally.
pub trait AccessStream {
    /// Produces the next event. Once `Done` is returned, subsequent calls
    /// must keep returning `Done`.
    fn next_event(&mut self) -> StreamEvent;

    /// Cycles per instruction for compute (non-stalled) work.
    fn base_cpi(&self) -> f64;

    /// Instructions retired so far (for throughput counters; the machine
    /// also counts retirement itself, this is for streams that want to
    /// expose progress such as phase position).
    fn instructions_issued(&self) -> u64 {
        0
    }
}

/// A trivial stream for tests: `n` sequential loads over a working set,
/// `gap` instructions apart.
#[derive(Debug, Clone)]
pub struct SequentialStream {
    asid: u16,
    next_line: u64,
    ws_lines: u64,
    remaining: u64,
    gap: u32,
    cpi: f64,
    issued: u64,
}

impl SequentialStream {
    /// Creates a stream of `accesses` sequential loads cycling over
    /// `ws_lines` lines of address space `asid`, with `gap` instructions
    /// between accesses.
    pub fn new(asid: u16, ws_lines: u64, accesses: u64, gap: u32) -> Self {
        assert!(ws_lines > 0, "working set must be non-empty");
        SequentialStream { asid, next_line: 0, ws_lines, remaining: accesses, gap, cpi: 1.0, issued: 0 }
    }
}

impl AccessStream for SequentialStream {
    fn next_event(&mut self) -> StreamEvent {
        if self.remaining == 0 {
            return StreamEvent::Done;
        }
        self.remaining -= 1;
        let line = LineAddr::in_space(self.asid, self.next_line);
        self.next_line = (self.next_line + 1) % self.ws_lines;
        self.issued += u64::from(self.gap) + 1;
        StreamEvent::Access {
            instr_gap: self.gap,
            access: Access { line, write: false, pc: 1, non_temporal: false, mlp: 4.0 },
        }
    }

    fn base_cpi(&self) -> f64 {
        self.cpi
    }

    fn instructions_issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_wraps_and_finishes() {
        let mut s = SequentialStream::new(1, 4, 6, 10);
        let mut lines = Vec::new();
        loop {
            match s.next_event() {
                StreamEvent::Access { access, instr_gap } => {
                    assert_eq!(instr_gap, 10);
                    lines.push(access.line.offset());
                }
                StreamEvent::Done => break,
                StreamEvent::Compute { .. } => unreachable!(),
            }
        }
        assert_eq!(lines, vec![0, 1, 2, 3, 0, 1]);
        assert_eq!(s.next_event(), StreamEvent::Done);
        assert_eq!(s.instructions_issued(), 66);
    }
}
