//! The interface between workloads and the machine.
//!
//! A hardware thread executes an [`AccessStream`]: a deterministic generator
//! that interleaves instruction bursts with memory accesses. The simulator
//! charges compute cycles for the instruction gaps and walks the cache
//! hierarchy for each access. Streams are how the `waypart-workloads` crate
//! plugs its 45 synthetic application models into the machine without the
//! simulator knowing anything about applications.

use crate::addr::LineAddr;

/// One memory reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Access {
    /// The referenced line.
    pub line: LineAddr,
    /// Store (true) or load (false).
    pub write: bool,
    /// Issuing instruction address, used by the per-PC (IP) prefetcher.
    pub pc: u32,
    /// Non-temporal access: bypasses all cache levels and goes straight to
    /// DRAM (models the specially tagged loads/stores of the
    /// `stream_uncached` bandwidth hog, §2.3).
    pub non_temporal: bool,
    /// Memory-level parallelism: how many misses of this kind the core can
    /// overlap. Stall time charged is `latency / mlp`. Pointer-chasing
    /// streams use 1.0 (fully serialized); software-pipelined streaming
    /// loops use values up to ~8.
    pub mlp: f32,
}

impl Access {
    /// A plain dependent load with no overlap.
    pub fn load(line: LineAddr) -> Self {
        Access { line, write: false, pc: 0, non_temporal: false, mlp: 1.0 }
    }
}

/// What a hardware thread does next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamEvent {
    /// Execute `instr_gap` instructions, then perform `access`.
    ///
    /// The gap instructions are charged at the stream's base CPI (dilated
    /// when the sibling hyperthread is active); the access adds memory
    /// stall cycles on top.
    Access { instr_gap: u32, access: Access },
    /// Execute `instrs` instructions with no memory reference (the
    /// cache-resident tail of the instruction mix).
    Compute { instrs: u32 },
    /// The thread has retired all its work.
    Done,
}

/// A deterministic instruction/access generator driven by the machine.
///
/// Implementations live in `waypart-workloads`. Streams must be
/// deterministic given their construction parameters so experiments are
/// reproducible; use seeded RNGs internally.
pub trait AccessStream {
    /// Produces the next event. Once `Done` is returned, subsequent calls
    /// must keep returning `Done`.
    fn next_event(&mut self) -> StreamEvent;

    /// Bulk-generates upcoming events into `buf` and returns how many were
    /// written. A return shorter than `buf.len()` means the stream is
    /// exhausted: no event was available for the first unwritten slot, and
    /// every later call must return 0. `Done` itself is never stored.
    ///
    /// The default forwards to [`Self::next_event`]; implementations with
    /// cheap per-event state (the workload models) override it with a
    /// native loop so the machine pays one virtual call per buffer instead
    /// of one per access. Overrides must emit the byte-identical event
    /// sequence `next_event` would — the golden fingerprints pin this.
    fn fill(&mut self, buf: &mut [StreamEvent]) -> usize {
        for (i, slot) in buf.iter_mut().enumerate() {
            match self.next_event() {
                StreamEvent::Done => return i,
                ev => *slot = ev,
            }
        }
        buf.len()
    }

    /// Advances the stream past roughly `n` instructions without
    /// materializing events — the sampled-fidelity fast-forward. Returns
    /// the instructions actually skipped; fewer than `n` means the stream
    /// ran out of work. Implementations may advance generator state
    /// approximately (e.g. leave RNG position untouched) as long as the
    /// result is deterministic; exact-mode runs never call this.
    fn skip_instructions(&mut self, n: u64) -> u64 {
        let mut skipped = 0u64;
        while skipped < n {
            match self.next_event() {
                StreamEvent::Access { instr_gap, .. } => skipped += u64::from(instr_gap) + 1,
                StreamEvent::Compute { instrs } => skipped += u64::from(instrs),
                StreamEvent::Done => break,
            }
        }
        skipped
    }

    /// Cycles per instruction for compute (non-stalled) work.
    fn base_cpi(&self) -> f64;

    /// Instructions retired so far (for throughput counters; the machine
    /// also counts retirement itself, this is for streams that want to
    /// expose progress such as phase position).
    fn instructions_issued(&self) -> u64 {
        0
    }
}

/// A sliding window over one generator's event sequence, shared by the
/// machines of a lockstep pair batch.
///
/// A policy sweep runs the same (fg, bg) workloads under N different way
/// allocations. The event streams are pure functions of (app, scale,
/// seed, thread) — allocation never feeds back into generation — so the
/// N machines consume byte-identical sequences. Sharing one generator
/// behind per-reader cursors makes the batch pay generation once instead
/// of N times, and the window only retains events between the slowest
/// and fastest reader (readers drift apart because different allocations
/// retire different instruction counts per quantum). A dropped reader
/// (its machine finished) stops holding the window back.
///
/// Single-threaded by construction (`Rc`): a batch's machines advance in
/// lockstep rounds on one worker thread (`core::sweep::run_lockstep`).
pub struct SharedTrace {
    src: Box<dyn AccessStream>,
    cpi: f64,
    /// Absolute event index of `window[0]`.
    base: u64,
    window: std::collections::VecDeque<StreamEvent>,
    /// The source returned a short fill: no events exist past the window.
    src_exhausted: bool,
    /// Per-reader absolute cursors; `u64::MAX` marks a dropped reader.
    cursors: Vec<u64>,
}

impl SharedTrace {
    /// Events pulled from the source per refill.
    const GEN_CHUNK: usize = 256;

    /// Wraps `src` and returns one reader per batch member. Each reader
    /// replays the source's exact event sequence independently.
    pub fn share(src: Box<dyn AccessStream>, readers: usize) -> Vec<SharedTraceReader> {
        let cpi = src.base_cpi();
        let trace = std::rc::Rc::new(std::cell::RefCell::new(SharedTrace {
            src,
            cpi,
            base: 0,
            window: std::collections::VecDeque::new(),
            src_exhausted: false,
            cursors: vec![0; readers],
        }));
        (0..readers).map(|id| SharedTraceReader { trace: trace.clone(), id }).collect()
    }

    fn fill_for(&mut self, id: usize, buf: &mut [StreamEvent]) -> usize {
        let cursor = self.cursors[id];
        let want_end = cursor + buf.len() as u64;
        while !self.src_exhausted && self.base + (self.window.len() as u64) < want_end {
            let mut chunk = [StreamEvent::Done; Self::GEN_CHUNK];
            let n = self.src.fill(&mut chunk);
            self.window.extend(chunk[..n].iter().copied());
            if n < chunk.len() {
                self.src_exhausted = true;
            }
        }
        let avail_end = self.base + self.window.len() as u64;
        let n = (want_end.min(avail_end).saturating_sub(cursor)) as usize;
        let start = (cursor - self.base) as usize;
        for (i, slot) in buf[..n].iter_mut().enumerate() {
            *slot = self.window[start + i];
        }
        self.cursors[id] = cursor + n as u64;
        self.evict();
        n
    }

    /// Drops window events every reader has passed.
    fn evict(&mut self) {
        let min = self.cursors.iter().copied().filter(|&c| c != u64::MAX).min();
        let keep_from = match min {
            Some(m) => m.min(self.base + self.window.len() as u64),
            // All readers dropped: nobody will read again.
            None => self.base + self.window.len() as u64,
        };
        let drop = (keep_from - self.base) as usize;
        if drop > 0 {
            self.window.drain(..drop);
            self.base += drop as u64;
        }
    }

    fn release(&mut self, id: usize) {
        self.cursors[id] = u64::MAX;
        self.evict();
    }
}

/// One batch member's view of a [`SharedTrace`]; replays the source's
/// event sequence exactly. Dropping the reader releases its window claim.
pub struct SharedTraceReader {
    trace: std::rc::Rc<std::cell::RefCell<SharedTrace>>,
    id: usize,
}

impl AccessStream for SharedTraceReader {
    fn next_event(&mut self) -> StreamEvent {
        let mut buf = [StreamEvent::Done; 1];
        match self.fill(&mut buf) {
            0 => StreamEvent::Done,
            _ => buf[0],
        }
    }

    fn fill(&mut self, buf: &mut [StreamEvent]) -> usize {
        self.trace.borrow_mut().fill_for(self.id, buf)
    }

    fn base_cpi(&self) -> f64 {
        // Constant per workload model; snapshotted at `share` time so the
        // hot path skips the source dispatch.
        self.trace.borrow().cpi
    }
}

impl Drop for SharedTraceReader {
    fn drop(&mut self) {
        self.trace.borrow_mut().release(self.id);
    }
}

/// A trivial stream for tests: `n` sequential loads over a working set,
/// `gap` instructions apart.
#[derive(Debug, Clone)]
pub struct SequentialStream {
    asid: u16,
    next_line: u64,
    ws_lines: u64,
    remaining: u64,
    gap: u32,
    cpi: f64,
    issued: u64,
}

impl SequentialStream {
    /// Creates a stream of `accesses` sequential loads cycling over
    /// `ws_lines` lines of address space `asid`, with `gap` instructions
    /// between accesses.
    pub fn new(asid: u16, ws_lines: u64, accesses: u64, gap: u32) -> Self {
        assert!(ws_lines > 0, "working set must be non-empty");
        SequentialStream { asid, next_line: 0, ws_lines, remaining: accesses, gap, cpi: 1.0, issued: 0 }
    }
}

impl AccessStream for SequentialStream {
    fn next_event(&mut self) -> StreamEvent {
        if self.remaining == 0 {
            return StreamEvent::Done;
        }
        self.remaining -= 1;
        let line = LineAddr::in_space(self.asid, self.next_line);
        self.next_line = (self.next_line + 1) % self.ws_lines;
        self.issued += u64::from(self.gap) + 1;
        StreamEvent::Access {
            instr_gap: self.gap,
            access: Access { line, write: false, pc: 1, non_temporal: false, mlp: 4.0 },
        }
    }

    fn base_cpi(&self) -> f64 {
        self.cpi
    }

    fn instructions_issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_wraps_and_finishes() {
        let mut s = SequentialStream::new(1, 4, 6, 10);
        let mut lines = Vec::new();
        loop {
            match s.next_event() {
                StreamEvent::Access { access, instr_gap } => {
                    assert_eq!(instr_gap, 10);
                    lines.push(access.line.offset());
                }
                StreamEvent::Done => break,
                StreamEvent::Compute { .. } => unreachable!(),
            }
        }
        assert_eq!(lines, vec![0, 1, 2, 3, 0, 1]);
        assert_eq!(s.next_event(), StreamEvent::Done);
        assert_eq!(s.instructions_issued(), 66);
    }

    #[test]
    fn default_fill_matches_next_event() {
        let mut scalar = SequentialStream::new(1, 4, 6, 10);
        let mut batched = SequentialStream::new(1, 4, 6, 10);
        let mut buf = [StreamEvent::Done; 4];
        let n = batched.fill(&mut buf);
        assert_eq!(n, 4, "stream with 6 events must fill a 4-slot buffer");
        for ev in &buf[..n] {
            assert_eq!(*ev, scalar.next_event());
        }
        // Second fill drains the remaining 2 events and signals exhaustion.
        let n = batched.fill(&mut buf);
        assert_eq!(n, 2);
        for ev in &buf[..n] {
            assert_eq!(*ev, scalar.next_event());
        }
        assert_eq!(batched.fill(&mut buf), 0);
    }

    #[test]
    fn shared_readers_replay_the_source_sequence() {
        let mut solo = SequentialStream::new(1, 7, 40, 3);
        let mut expected = Vec::new();
        loop {
            match solo.next_event() {
                StreamEvent::Done => break,
                ev => expected.push(ev),
            }
        }

        let readers = SharedTrace::share(Box::new(SequentialStream::new(1, 7, 40, 3)), 3);
        // Drain each reader at a different granularity: one event at a
        // time, a small fill, and a fill larger than the window chunk.
        let sizes = [1usize, 5, 300];
        for (mut reader, size) in readers.into_iter().zip(sizes) {
            let mut got = Vec::new();
            let mut buf = vec![StreamEvent::Done; size];
            loop {
                let n = reader.fill(&mut buf);
                got.extend_from_slice(&buf[..n]);
                if n < buf.len() {
                    break;
                }
            }
            assert_eq!(got, expected);
            assert_eq!(reader.fill(&mut buf), 0, "exhausted reader must stay exhausted");
            assert_eq!(reader.next_event(), StreamEvent::Done);
        }
    }

    #[test]
    fn shared_window_tracks_the_slowest_reader() {
        let mut readers = SharedTrace::share(Box::new(SequentialStream::new(1, 4, 2_000, 0)), 2);
        let trace = readers[0].trace.clone();
        let mut buf = [StreamEvent::Done; 64];
        // Reader 0 races ahead; reader 1 stays at 0, pinning the window.
        for _ in 0..8 {
            assert_eq!(readers[0].fill(&mut buf), 64);
        }
        assert_eq!(trace.borrow().base, 0, "slow reader pins eviction");
        assert!(trace.borrow().window.len() >= 512);
        // Reader 1 advances partway: everything both passed is evicted.
        for _ in 0..4 {
            assert_eq!(readers[1].fill(&mut buf), 64);
        }
        assert_eq!(trace.borrow().base, 256);
        // Dropping the laggard unpins the window for the fast reader.
        let laggard = readers.pop().unwrap();
        drop(laggard);
        assert_eq!(trace.borrow().base, 512, "eviction catches up to the survivor");
        assert_eq!(readers[0].fill(&mut buf), 64);
        assert_eq!(trace.borrow().base, 512 + 64);
    }

    #[test]
    fn default_skip_consumes_instructions() {
        // 6 accesses of 11 instructions each = 66 total; skipping 30 lands
        // mid-stream (event granularity), skipping the rest exhausts it.
        let mut s = SequentialStream::new(1, 4, 6, 10);
        let first = s.skip_instructions(30);
        assert!((30..=33).contains(&first), "skipped {first}");
        let rest = s.skip_instructions(1_000);
        assert_eq!(first + rest, 66, "whole stream must be skippable");
        assert_eq!(s.skip_instructions(5), 0, "exhausted stream skips nothing");
    }
}
