//! Utility monitors (UMON) — the hardware the paper's §7 baseline needs.
//!
//! Qureshi & Patt's utility-based cache partitioning (UCP, MICRO 2006),
//! which the paper discusses as prior simulation-based work [29], requires
//! per-core *utility monitors*: small shadow tag directories that sample a
//! subset of LLC sets, track them with true LRU at full associativity, and
//! count hits per recency position. The counters give each core's
//! miss-rate-versus-ways curve ("stack distance histogram") without
//! perturbing the real cache.
//!
//! The paper pointedly notes such hardware "require[s] hardware
//! modifications and will not work on current processors" (§7) — its own
//! controller needs only MPKI counters. Implementing UMON lets the
//! reproduction compare both (see `waypart-core::ucp`).

use crate::addr::LineAddr;
use serde::{Deserialize, Serialize};

/// Sample one out of this many LLC sets (UMON-DSS's dynamic set sampling).
pub const SAMPLING_RATIO: usize = 32;

/// One sampled set's true-LRU shadow stack.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ShadowSet {
    /// Tags, most recently used first; at most `ways` entries.
    stack: Vec<u64>,
}

/// A per-core utility monitor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilityMonitor {
    ways: usize,
    num_sets: usize,
    sampled: Vec<ShadowSet>,
    /// `hits[d]` = hits at stack depth `d` (0 = MRU). A hit at depth `d`
    /// would be captured by any allocation of more than `d` ways.
    hits: Vec<u64>,
    /// Accesses that missed the full-associativity shadow stack.
    misses: u64,
    /// Total accesses observed (sampled sets only).
    accesses: u64,
}

impl UtilityMonitor {
    /// A monitor for an LLC with `num_sets` sets and `ways` ways.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "empty monitor geometry");
        let sampled_count = (num_sets / SAMPLING_RATIO).max(1);
        UtilityMonitor {
            ways,
            num_sets,
            sampled: vec![ShadowSet::default(); sampled_count],
            hits: vec![0; ways],
            misses: 0,
            accesses: 0,
        }
    }

    /// Observes one LLC access by the owning core. Only accesses that map
    /// to a sampled set update the monitor.
    pub fn observe(&mut self, line: LineAddr, set_index: usize) {
        debug_assert!(set_index < self.num_sets);
        if set_index % SAMPLING_RATIO != 0 {
            return;
        }
        let slot = (set_index / SAMPLING_RATIO) % self.sampled.len();
        let set = &mut self.sampled[slot];
        self.accesses += 1;
        match set.stack.iter().position(|&t| t == line.0) {
            Some(depth) => {
                self.hits[depth] += 1;
                let tag = set.stack.remove(depth);
                set.stack.insert(0, tag);
            }
            None => {
                self.misses += 1;
                set.stack.insert(0, line.0);
                set.stack.truncate(self.ways);
            }
        }
    }

    /// Hits this core would see with a `ways`-way allocation (cumulative
    /// stack-distance counts).
    ///
    /// # Panics
    /// Panics if `ways` exceeds the monitored associativity.
    pub fn hits_with_ways(&self, ways: usize) -> u64 {
        assert!(ways <= self.ways, "allocation beyond monitored associativity");
        self.hits[..ways].iter().sum()
    }

    /// Marginal utility of growing an allocation from `from` to `to` ways
    /// (extra hits gained), as used by UCP's lookahead algorithm.
    pub fn marginal_utility(&self, from: usize, to: usize) -> u64 {
        assert!(from <= to, "shrinking has no utility");
        self.hits_with_ways(to) - self.hits_with_ways(from)
    }

    /// Total sampled accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Sampled misses at full associativity.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Halves every counter — UCP's periodic decay so the curves track
    /// phase changes.
    pub fn decay(&mut self) {
        for h in &mut self.hits {
            *h /= 2;
        }
        self.misses /= 2;
        self.accesses /= 2;
    }

    /// Monitored associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon() -> UtilityMonitor {
        UtilityMonitor::new(SAMPLING_RATIO * 4, 4)
    }

    #[test]
    fn only_sampled_sets_count() {
        let mut m = mon();
        m.observe(LineAddr(1), 0); // sampled
        m.observe(LineAddr(2), 1); // not sampled
        m.observe(LineAddr(3), SAMPLING_RATIO); // sampled
        assert_eq!(m.accesses(), 2);
    }

    #[test]
    fn stack_depth_counts_hits() {
        let mut m = mon();
        // Touch A, B, then A again: A hits at depth 1.
        m.observe(LineAddr(0xA), 0);
        m.observe(LineAddr(0xB), 0);
        m.observe(LineAddr(0xA), 0);
        assert_eq!(m.hits_with_ways(1), 0, "A was not MRU when re-touched");
        assert_eq!(m.hits_with_ways(2), 1);
        assert_eq!(m.misses(), 2);
    }

    #[test]
    fn mru_hit_counts_at_depth_zero() {
        let mut m = mon();
        m.observe(LineAddr(0xA), 0);
        m.observe(LineAddr(0xA), 0);
        assert_eq!(m.hits_with_ways(1), 1);
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let mut m = mon();
        for i in 0..5u64 {
            m.observe(LineAddr(i), 0); // 4-way stack: line 0 falls out
        }
        m.observe(LineAddr(0), 0);
        assert_eq!(m.hits_with_ways(4), 0, "evicted line must miss");
        assert_eq!(m.misses(), 6);
    }

    #[test]
    fn marginal_utility_is_monotone_cumulative() {
        let mut m = mon();
        let lines = [1u64, 2, 3, 1, 2, 3, 1, 2, 3];
        for &l in &lines {
            m.observe(LineAddr(l), 0);
        }
        let total = m.hits_with_ways(4);
        assert_eq!(m.marginal_utility(0, 4), total);
        assert!(m.marginal_utility(0, 3) <= total);
        assert_eq!(
            m.marginal_utility(0, 2) + m.marginal_utility(2, 4),
            total
        );
    }

    #[test]
    fn decay_halves_counters() {
        let mut m = mon();
        m.observe(LineAddr(7), 0);
        m.observe(LineAddr(7), 0);
        m.observe(LineAddr(7), 0);
        assert_eq!(m.hits_with_ways(4), 2);
        m.decay();
        assert_eq!(m.hits_with_ways(4), 1);
        assert_eq!(m.accesses(), 1);
    }
}
