//! Curve classification for Tables 1 and 2.
//!
//! Table 1 sorts applications by thread scalability (low / saturated /
//! high); Table 2 by LLC-capacity utility (low / saturated / high,
//! ignoring the pathological 0.5 MB direct-mapped point). These
//! classifiers turn measured curves into those classes so the experiment
//! harness can compare against the paper's assignments.

use serde::{Deserialize, Serialize};

/// The three-way classification both tables use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreeClass {
    /// Flat response.
    Low,
    /// Improves up to a saturation point.
    Saturated,
    /// Keeps improving across the whole range.
    High,
}

impl std::fmt::Display for ThreeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ThreeClass::Low => "low",
            ThreeClass::Saturated => "saturated",
            ThreeClass::High => "high",
        };
        f.write_str(s)
    }
}

/// Classifies a thread-scalability curve: `speedups[i]` is the speedup
/// with `i + 1` threads (so `speedups[0] == 1.0`).
///
/// * peak speedup below 1.6× → `Low` (Table 1's "low scalability");
/// * speedup still growing meaningfully at the top thread count → `High`;
/// * otherwise → `Saturated`.
///
/// # Panics
/// Panics if fewer than two points are given.
pub fn classify_scalability(speedups: &[f64]) -> ThreeClass {
    assert!(speedups.len() >= 2, "need at least two points");
    let peak = speedups.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if peak < 1.6 {
        return ThreeClass::Low;
    }
    // "Still growing": the last step adds at least 5% of the peak.
    let n = speedups.len();
    let last_gain = speedups[n - 1] - speedups[n - 2];
    if last_gain > 0.05 * peak && speedups[n - 1] >= peak - 1e-9 {
        ThreeClass::High
    } else {
        ThreeClass::Saturated
    }
}

/// Classifies an LLC-capacity curve: `times[i]` is the execution time with
/// allocation `i` (smallest to largest, pathological smallest point
/// already excluded).
///
/// * total improvement below 5% → `Low` utility;
/// * still improving by >1.8% over the last quarter of the range → `High`
///   (above the residual slope an inclusive LLC shows for *any* workload
///   via inclusion-victim refreshes);
/// * otherwise → `Saturated`.
///
/// # Panics
/// Panics if fewer than four points are given or any time is zero.
pub fn classify_llc_utility(times: &[f64]) -> ThreeClass {
    assert!(times.len() >= 4, "need at least four allocations");
    assert!(times.iter().all(|&t| t > 0.0), "times must be positive");
    let first = times[0];
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let total_gain = (first - best) / first;
    if total_gain < 0.05 {
        return ThreeClass::Low;
    }
    let tail_start = times.len() - times.len() / 4 - 1;
    let tail_gain = (times[tail_start] - times[times.len() - 1]) / times[tail_start];
    if tail_gain > 0.018 {
        ThreeClass::High
    } else {
        ThreeClass::Saturated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_speedup_is_low() {
        assert_eq!(classify_scalability(&[1.0, 1.1, 1.2, 1.25, 1.3, 1.3, 1.3, 1.3]), ThreeClass::Low);
    }

    #[test]
    fn linear_speedup_is_high() {
        let s: Vec<f64> = (1..=8).map(|t| 0.7 * t as f64 + 0.3).collect();
        assert_eq!(classify_scalability(&s), ThreeClass::High);
    }

    #[test]
    fn plateau_speedup_is_saturated() {
        assert_eq!(
            classify_scalability(&[1.0, 1.8, 2.5, 3.0, 3.1, 3.1, 3.1, 3.1]),
            ThreeClass::Saturated
        );
    }

    #[test]
    fn flat_llc_curve_is_low() {
        assert_eq!(classify_llc_utility(&[100.0; 10]), ThreeClass::Low);
    }

    #[test]
    fn always_improving_llc_curve_is_high() {
        let t: Vec<f64> = (0..10).map(|i| 200.0 - 12.0 * i as f64).collect();
        assert_eq!(classify_llc_utility(&t), ThreeClass::High);
    }

    #[test]
    fn saturating_llc_curve_is_saturated() {
        let t = [200.0, 160.0, 130.0, 110.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0];
        assert_eq!(classify_llc_utility(&t), ThreeClass::Saturated);
    }

    #[test]
    fn display_labels() {
        assert_eq!(ThreeClass::Low.to_string(), "low");
        assert_eq!(ThreeClass::Saturated.to_string(), "saturated");
        assert_eq!(ThreeClass::High.to_string(), "high");
    }
}
