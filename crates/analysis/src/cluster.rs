//! Agglomerative hierarchical clustering, single-linkage criterion.
//!
//! "The clustering algorithm finds the smallest Euclidean distance of a
//! pair of feature vectors and forms a cluster containing that pair. […]
//! The single-linkage we selected uses the minimum distance between a pair
//! of objects in different clusters to determine the distance between
//! them." (§3.5). The output mirrors scipy's linkage matrix so Figure 5's
//! dendrogram can be regenerated row for row.

use crate::features::euclidean;
use serde::{Deserialize, Serialize};

/// One agglomeration step: clusters `a` and `b` merge at `distance` into a
/// new cluster whose id is `n + step` (scipy convention: leaves are
/// `0..n`, the i-th merge creates id `n + i`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happens.
    pub distance: f64,
    /// Number of leaves under the new cluster.
    pub size: usize,
}

/// A full dendrogram: `n - 1` merges over `n` leaves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    /// Number of leaves clustered.
    pub leaves: usize,
    /// Merges in non-decreasing distance order.
    pub merges: Vec<Merge>,
}

/// Runs single-linkage clustering over row vectors.
///
/// # Panics
/// Panics if `data` is empty or ragged.
pub fn single_linkage(data: &[Vec<f64>]) -> Dendrogram {
    let n = data.len();
    assert!(n > 0, "cannot cluster an empty set");
    let dims = data[0].len();
    for row in data {
        assert_eq!(row.len(), dims, "ragged data matrix");
    }

    // active[i] = Some(cluster id) for each live cluster slot; dist holds
    // current pairwise single-linkage distances between live slots.
    let mut ids: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<usize> = vec![1; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut dist = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = euclidean(&data[i], &data[j]);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    for step in 0..n.saturating_sub(1) {
        // Find the closest live pair.
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in (i + 1)..n {
                if alive[j] && dist[i][j] < best.2 {
                    best = (i, j, dist[i][j]);
                }
            }
        }
        let (i, j, d) = best;
        assert!(i != usize::MAX, "no live pair found");
        // Merge j into i: single linkage takes the minimum distance.
        let new_size = sizes[i] + sizes[j];
        merges.push(Merge { a: ids[i], b: ids[j], distance: d, size: new_size });
        for k in 0..n {
            if alive[k] && k != i && k != j {
                let m = dist[i][k].min(dist[j][k]);
                dist[i][k] = m;
                dist[k][i] = m;
            }
        }
        alive[j] = false;
        sizes[i] = new_size;
        ids[i] = n + step;
    }
    Dendrogram { leaves: n, merges }
}

/// Cuts the dendrogram at `threshold`: leaves joined by merges with
/// distance `< threshold` share a cluster. Returns a cluster index per
/// leaf, numbered 0.. in order of first appearance.
///
/// The paper cuts Figure 5 at a linkage distance of 0.9 to obtain its
/// clusters.
pub fn cut_dendrogram(dendro: &Dendrogram, threshold: f64) -> Vec<usize> {
    let n = dendro.leaves;
    // Union-find over leaf + internal ids.
    let total = n + dendro.merges.len();
    let mut parent: Vec<usize> = (0..total).collect();
    fn find(parent: &mut Vec<usize>, mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (step, m) in dendro.merges.iter().enumerate() {
        let new_id = n + step;
        if m.distance < threshold {
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        } else {
            // The internal node still exists but does not join its
            // children; nothing to do.
        }
    }
    let mut label_of_root = std::collections::HashMap::new();
    let mut labels = Vec::with_capacity(n);
    for leaf in 0..n {
        let root = find(&mut parent, leaf);
        let next = label_of_root.len();
        let l = *label_of_root.entry(root).or_insert(next);
        labels.push(l);
    }
    labels
}

/// Finds a cut threshold yielding (as close as possible to) `target`
/// clusters and returns `(threshold, labels)`.
///
/// The paper cuts its dendrogram at a linkage distance of 0.9, which on
/// its data produces seven clusters (six analyzed plus the `fluidanimate`
/// singleton). Feature scales differ between datasets, so this helper
/// derives the analogous threshold from the merge distances instead of
/// hard-coding the paper's constant.
///
/// # Panics
/// Panics if `target` is zero or exceeds the leaf count.
pub fn cut_for_cluster_count(dendro: &Dendrogram, target: usize) -> (f64, Vec<usize>) {
    let n = dendro.leaves;
    assert!(target >= 1 && target <= n, "target {target} out of range for {n} leaves");
    // Applying the first m merges leaves n - m clusters; we want
    // m = n - target, i.e. a threshold just above that merge's distance.
    let m = n - target;
    let threshold = if m == 0 {
        0.0
    } else if m >= dendro.merges.len() {
        f64::INFINITY
    } else {
        // Strictly between merge m-1 and merge m (single linkage is
        // monotone). Ties collapse extra merges; that's inherent.
        let lo = dendro.merges[m - 1].distance;
        let hi = dendro.merges[m].distance;
        if hi > lo {
            (lo + hi) / 2.0
        } else {
            hi + f64::EPSILON
        }
    };
    (threshold, cut_dendrogram(dendro, threshold))
}

/// Index of the member closest to the centroid of `members` (indices into
/// `data`) — the paper's bold "cluster representative" rule (Table 3).
///
/// # Panics
/// Panics if `members` is empty.
pub fn centroid_representative(data: &[Vec<f64>], members: &[usize]) -> usize {
    assert!(!members.is_empty(), "empty cluster");
    let dims = data[members[0]].len();
    let mut centroid = vec![0.0; dims];
    for &m in members {
        for (d, &x) in data[m].iter().enumerate() {
            centroid[d] += x;
        }
    }
    for c in &mut centroid {
        *c /= members.len() as f64;
    }
    *members
        .iter()
        .min_by(|&&a, &&b| {
            euclidean(&data[a], &centroid)
                .partial_cmp(&euclidean(&data[b], &centroid))
                .expect("finite distances")
        })
        .expect("non-empty cluster")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![5.0, 5.1],
        ]
    }

    #[test]
    fn merge_count_is_n_minus_one() {
        let d = single_linkage(&two_blobs());
        assert_eq!(d.leaves, 6);
        assert_eq!(d.merges.len(), 5);
    }

    #[test]
    fn merge_distances_nondecreasing_for_single_linkage() {
        // Single linkage is monotone: each merge distance is >= the last.
        let d = single_linkage(&two_blobs());
        for w in d.merges.windows(2) {
            assert!(w[1].distance >= w[0].distance - 1e-12);
        }
    }

    #[test]
    fn cut_separates_blobs() {
        let data = two_blobs();
        let d = single_linkage(&data);
        let labels = cut_dendrogram(&d, 1.0);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn cut_at_zero_gives_singletons() {
        let data = two_blobs();
        let d = single_linkage(&data);
        let labels = cut_dendrogram(&d, 1e-12);
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn cut_above_max_gives_one_cluster() {
        let data = two_blobs();
        let d = single_linkage(&data);
        let max_d = d.merges.last().unwrap().distance;
        let labels = cut_dendrogram(&d, max_d + 1.0);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn chaining_behaviour_of_single_linkage() {
        // A chain of equidistant points merges into ONE cluster under
        // single linkage even though its ends are far apart — the
        // defining property of the criterion.
        let chain: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.5]).collect();
        let d = single_linkage(&chain);
        let labels = cut_dendrogram(&d, 0.6);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn cut_for_count_hits_target() {
        // Distinct pairwise gaps: with tied merge distances the cut
        // legitimately collapses whole tie groups at once.
        let data: Vec<Vec<f64>> =
            [0.0, 0.1, 0.3, 5.0, 5.2, 5.6].iter().map(|&x| vec![x]).collect();
        let d = single_linkage(&data);
        for target in 1..=6 {
            let (_, labels) = cut_for_cluster_count(&d, target);
            let distinct: std::collections::HashSet<_> = labels.iter().collect();
            assert_eq!(distinct.len(), target, "target {target}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cut_for_count_rejects_zero() {
        let d = single_linkage(&two_blobs());
        let _ = cut_for_cluster_count(&d, 0);
    }

    #[test]
    fn representative_is_nearest_centroid() {
        let data = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let rep = centroid_representative(&data, &[0, 1, 2]);
        assert_eq!(rep, 1); // centroid = 1.0
    }

    #[test]
    fn singleton_cluster() {
        let d = single_linkage(&[vec![1.0, 2.0]]);
        assert_eq!(d.leaves, 1);
        assert!(d.merges.is_empty());
        assert_eq!(cut_dendrogram(&d, 0.5), vec![0]);
    }
}
