//! Per-application feature vectors (§3.5).
//!
//! "We create a feature vector of 19 values for each application […]:
//! 1) execution time as we increase the number of threads (7 features);
//! 2) execution time as we increase the LLC size (10 features);
//! 3) prefetcher sensitivity (1 feature); and 4) bandwidth sensitivity
//! (1 feature). All metrics are normalized to the interval [0, 1]."

use serde::{Deserialize, Serialize};

/// Number of thread-scaling features (runs with 2..=8 threads relative
/// to 1).
pub const THREAD_FEATURES: usize = 7;
/// Number of LLC-capacity features (10 allocations).
pub const LLC_FEATURES: usize = 10;
/// Total feature count.
pub const TOTAL_FEATURES: usize = THREAD_FEATURES + LLC_FEATURES + 2;

/// One application's raw 19-value feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Application name.
    pub name: String,
    /// The 19 feature values (thread scaling, LLC scaling, prefetcher
    /// sensitivity, bandwidth sensitivity — in that order).
    pub values: Vec<f64>,
}

impl FeatureVector {
    /// Assembles a vector from its measured components.
    ///
    /// # Panics
    /// Panics if the component slices have the wrong lengths.
    pub fn new(
        name: impl Into<String>,
        thread_scaling: &[f64],
        llc_scaling: &[f64],
        prefetch_sensitivity: f64,
        bandwidth_sensitivity: f64,
    ) -> Self {
        assert_eq!(thread_scaling.len(), THREAD_FEATURES, "need {THREAD_FEATURES} thread features");
        assert_eq!(llc_scaling.len(), LLC_FEATURES, "need {LLC_FEATURES} LLC features");
        let mut values = Vec::with_capacity(TOTAL_FEATURES);
        values.extend_from_slice(thread_scaling);
        values.extend_from_slice(llc_scaling);
        values.push(prefetch_sensitivity);
        values.push(bandwidth_sensitivity);
        FeatureVector { name: name.into(), values }
    }
}

/// Min-max normalizes each feature dimension to `[0, 1]` across the set
/// (constant dimensions map to 0). Returns the normalized matrix in the
/// same order.
pub fn normalize(vectors: &[FeatureVector]) -> Vec<Vec<f64>> {
    if vectors.is_empty() {
        return Vec::new();
    }
    let dims = vectors[0].values.len();
    for v in vectors {
        assert_eq!(v.values.len(), dims, "ragged feature matrix");
    }
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for v in vectors {
        for (d, &x) in v.values.iter().enumerate() {
            lo[d] = lo[d].min(x);
            hi[d] = hi[d].max(x);
        }
    }
    vectors
        .iter()
        .map(|v| {
            v.values
                .iter()
                .enumerate()
                .map(|(d, &x)| {
                    let range = hi[d] - lo[d];
                    if range > 1e-12 {
                        (x - lo[d]) / range
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Panics in debug builds if lengths differ.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(name: &str, fill: f64) -> FeatureVector {
        FeatureVector::new(name, &[fill; 7], &[fill; 10], fill, fill)
    }

    #[test]
    fn vector_has_19_features() {
        assert_eq!(fv("a", 0.5).values.len(), 19);
        assert_eq!(TOTAL_FEATURES, 19);
    }

    #[test]
    #[should_panic(expected = "thread features")]
    fn wrong_component_length_rejected() {
        let _ = FeatureVector::new("a", &[0.0; 6], &[0.0; 10], 0.0, 0.0);
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let vs = vec![fv("a", 2.0), fv("b", 4.0), fv("c", 10.0)];
        let n = normalize(&vs);
        for row in &n {
            for &x in row {
                assert!((0.0..=1.0).contains(&x));
            }
        }
        assert!(n[0].iter().all(|&x| x == 0.0));
        assert!(n[2].iter().all(|&x| x == 1.0));
        assert!((n[1][0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constant_dimension_normalizes_to_zero() {
        let vs = vec![fv("a", 3.0), fv("b", 3.0)];
        let n = normalize(&vs);
        assert!(n.iter().flatten().all(|&x| x == 0.0));
    }

    #[test]
    fn euclidean_distance() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }
}
