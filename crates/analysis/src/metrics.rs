//! Consolidation metrics (§5).

use serde::{Deserialize, Serialize};

/// Foreground slowdown: co-scheduled time over solo time (1.0 = no
/// degradation; the paper reports e.g. "34.5% worst-case" = 1.345).
///
/// # Panics
/// Panics if `solo` is zero.
pub fn slowdown(pair: u64, solo: u64) -> f64 {
    assert!(solo > 0, "solo time must be positive");
    pair as f64 / solo as f64
}

/// Weighted speedup of consolidation (Fig 11): time to run both
/// applications back-to-back on the whole machine, over the time to run
/// them concurrently on half a machine each.
///
/// # Panics
/// Panics if `concurrent` is zero.
pub fn weighted_speedup(solo_a: u64, solo_b: u64, concurrent: u64) -> f64 {
    assert!(concurrent > 0, "concurrent time must be positive");
    (solo_a + solo_b) as f64 / concurrent as f64
}

/// Relative energy of consolidation (Fig 10): energy of the concurrent
/// run over the summed energies of sequential runs (< 1.0 is an
/// improvement; the paper measures 0.88 on average for biased).
///
/// # Panics
/// Panics if the sequential energy is not positive.
pub fn energy_improvement(concurrent_j: f64, sequential_j: f64) -> f64 {
    assert!(sequential_j > 0.0, "sequential energy must be positive");
    concurrent_j / sequential_j
}

/// Mean / worst / best over a set of measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum (worst case for slowdowns).
    pub max: f64,
    /// Minimum.
    pub min: f64,
    /// Sample count.
    pub count: usize,
}

impl SummaryStats {
    /// Summarizes a non-empty iterator of values.
    ///
    /// # Panics
    /// Panics if the iterator is empty or yields non-finite values.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut count = 0usize;
        let mut sum = 0.0;
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        for v in values {
            assert!(v.is_finite(), "non-finite sample");
            count += 1;
            sum += v;
            max = max.max(v);
            min = min.min(v);
        }
        assert!(count > 0, "cannot summarize an empty set");
        SummaryStats { mean: sum / count as f64, max, min, count }
    }
}

impl std::fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mean {:.3}, worst {:.3}, best {:.3} (n={})", self.mean, self.max, self.min, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_ratio() {
        assert!((slowdown(134, 100) - 1.34).abs() < 1e-12);
        assert_eq!(slowdown(100, 100), 1.0);
    }

    #[test]
    fn weighted_speedup_of_perfect_overlap() {
        // Two equal apps overlap perfectly: 2x speedup.
        assert!((weighted_speedup(100, 100, 100) - 2.0).abs() < 1e-12);
        // No benefit: concurrent as long as sequential.
        assert!((weighted_speedup(100, 100, 200) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_ratio() {
        assert!((energy_improvement(88.0, 100.0) - 0.88).abs() < 1e-12);
    }

    #[test]
    fn summary_stats() {
        let s = SummaryStats::from_values([1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 1.0);
        assert!(format!("{s}").contains("mean 2.000"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_rejected() {
        let _ = SummaryStats::from_values(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "solo time")]
    fn zero_solo_rejected() {
        let _ = slowdown(10, 0);
    }
}
