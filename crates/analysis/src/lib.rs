//! # waypart-analysis
//!
//! The analytical toolbox of the paper's §3.5 and §5:
//!
//! * [`features`] — per-application feature vectors (19 values: 7 thread-
//!   scaling points, 10 LLC-capacity points, prefetcher sensitivity,
//!   bandwidth sensitivity), min-max normalized per dimension;
//! * [`cluster`] — agglomerative hierarchical clustering with the
//!   single-linkage criterion (the scipy-cluster configuration the paper
//!   uses), plus dendrogram cutting and centroid representatives;
//! * [`metrics`] — consolidation metrics: foreground slowdown, weighted
//!   speedup vs. sequential execution, energy improvement, and summary
//!   statistics;
//! * [`tables`] — classification of measured curves into the Low /
//!   Saturated / High classes of Tables 1 and 2.

pub mod cluster;
pub mod features;
pub mod metrics;
pub mod tables;

pub use cluster::{cut_dendrogram, single_linkage, Dendrogram, Merge};
pub use features::FeatureVector;
pub use metrics::{energy_improvement, slowdown, weighted_speedup, SummaryStats};
pub use tables::ThreeClass;
