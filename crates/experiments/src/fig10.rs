//! Figure 10 — socket energy of consolidation: each unordered pair of
//! representatives runs once, concurrently, under each policy, normalized
//! to running the two applications sequentially on the whole machine.
//!
//! The "optimally partitioned" (biased) bar sweeps every uneven split for
//! the pair and keeps the one that completes the pair fastest (by §4's
//! race-to-halt observation, the runtime optimum and the energy optimum
//! coincide); Figure 9's foreground-protection rule answers a different
//! question and is kept separate.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::{parallel_map, parallel_map_labeled};
use serde::{Deserialize, Serialize};
use waypart_analysis::SummaryStats;
use waypart_core::policy::PartitionPolicy;
use waypart_workloads::registry::CLUSTER_REPRESENTATIVES;

/// One unordered pair's consolidation measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Cell {
    /// First application (cores 0–1).
    pub a: String,
    /// Second application (cores 2–3).
    pub b: String,
    /// Sequential baseline: summed cycles of whole-machine solo runs.
    pub seq_cycles: u64,
    /// Sequential baseline: summed socket energy.
    pub seq_socket_j: f64,
    /// (socket J, completion cycles) with no partitioning.
    pub shared: (f64, u64),
    /// (socket J, completion cycles) with the even split.
    pub fair: (f64, u64),
    /// (socket J, completion cycles) with the best uneven split.
    pub biased: (f64, u64),
    /// Ways given to side `a` by the best uneven split.
    pub biased_ways: usize,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10 {
    /// The 21 unordered pairs (including self-pairs).
    pub cells: Vec<Fig10Cell>,
}

/// Runs the consolidation-energy experiment over unordered pairs of
/// `names`.
pub fn run_for(lab: &Lab, names: &[&str]) -> Fig10 {
    let specs: Vec<_> = names.iter().map(|n| lab.app(n).clone()).collect();
    let total_ways = lab.runner().config().machine.llc.ways;
    // Whole-machine sequential baselines.
    let seq = parallel_map((0..specs.len()).collect(), |&i| {
        let r = lab.solo(&specs[i], lab.runner().config().machine.hw_threads(), total_ways);
        (r.cycles, r.energy.socket_j)
    });
    let mut jobs = Vec::new();
    for a in 0..specs.len() {
        for b in a..specs.len() {
            jobs.push((a, b));
        }
    }
    let cells = parallel_map_labeled("fig10", jobs, |&(a, b)| {
        let fg = &specs[a];
        let bg = &specs[b];
        let run = |policy: PartitionPolicy| {
            let r = lab.pair_both_once(fg, bg, policy);
            assert!(!r.truncated, "{} + {} truncated", fg.name, bg.name);
            (r.energy.socket_j, r.total_cycles)
        };
        // Sweep every uneven split; fastest completion wins (race-to-halt
        // makes it the energy winner too), energy breaks ties.
        let mut biased = (f64::INFINITY, u64::MAX);
        let mut biased_ways = total_ways / 2;
        for fg_ways in 1..total_ways {
            let r = run(PartitionPolicy::Biased { fg_ways });
            if r.1 < biased.1 || (r.1 == biased.1 && r.0 < biased.0) {
                biased = r;
                biased_ways = fg_ways;
            }
        }
        Fig10Cell {
            a: fg.name.to_string(),
            b: bg.name.to_string(),
            seq_cycles: seq[a].0 + seq[b].0,
            seq_socket_j: seq[a].1 + seq[b].1,
            shared: run(PartitionPolicy::Shared),
            fair: run(PartitionPolicy::Fair),
            biased,
            biased_ways,
        }
    });
    Fig10 { cells }
}

/// Runs the six representatives' 21 unordered pairs.
pub fn run(lab: &Lab, _fig9: &crate::fig9::Fig9) -> Fig10 {
    run_for(lab, &CLUSTER_REPRESENTATIVES)
}

impl Fig10 {
    /// Relative socket energy (concurrent / sequential) per policy:
    /// (shared, fair, biased).
    pub fn relative_energy(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let rel = |get: fn(&Fig10Cell) -> (f64, u64)| {
            self.cells.iter().map(|c| get(c).0 / c.seq_socket_j).collect::<Vec<f64>>()
        };
        (rel(|c| c.shared), rel(|c| c.fair), rel(|c| c.biased))
    }

    /// Summary per policy.
    pub fn stats(&self) -> (SummaryStats, SummaryStats, SummaryStats) {
        let (s, f, b) = self.relative_energy();
        (
            SummaryStats::from_values(s),
            SummaryStats::from_values(f),
            SummaryStats::from_values(b),
        )
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut table = Table::new(["pair", "shared", "fair", "biased", "split"]);
        let (s, f, b) = self.relative_energy();
        for (i, c) in self.cells.iter().enumerate() {
            table.push([
                format!("{}+{}", c.a, c.b),
                format!("{:.3}", s[i]),
                format!("{:.3}", f[i]),
                format!("{:.3}", b[i]),
                format!("{}/{}", c.biased_ways, 12 - c.biased_ways),
            ]);
        }
        let (ss, fs, bs) = self.stats();
        format!(
            "Figure 10: socket energy vs sequential execution\n{}\naverages: shared {:.3}, fair {:.3}, biased {:.3}\n",
            table.render(),
            ss.mean,
            fs.mean,
            bs.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn consolidating_low_scalability_apps_saves_energy() {
        // Two single-threaded applications: run sequentially they leave 7
        // hyperthreads idle twice; run concurrently the socket's static
        // power is paid once — the paper's core consolidation win.
        let lab = Lab::new(RunnerConfig::test());
        let names = ["429.mcf", "459.GemsFDTD"];
        let f10 = run_for(&lab, &names);
        assert_eq!(f10.cells.len(), 3);
        let (_, _, biased) = f10.stats();
        let cross = f10.cells.iter().find(|c| c.a != c.b).expect("cross pair");
        let cross_rel = cross.biased.0 / cross.seq_socket_j;
        assert!(
            cross_rel < 0.95,
            "consolidating mcf+GemsFDTD should save socket energy, got {cross_rel:.3}"
        );
        assert!(biased.mean < 1.05, "average relative energy {:.3}", biased.mean);
    }

    #[test]
    fn biased_energy_never_worse_than_fair() {
        // Fair's 6/6 split is in the biased sweep, so the winner can only
        // be at least as fast — and by race-to-halt at most marginally
        // more energy-hungry.
        let lab = Lab::new(RunnerConfig::test());
        let f10 = run_for(&lab, &["fop", "dedup"]);
        for c in &f10.cells {
            assert!(
                c.biased.1 <= c.fair.1,
                "{}+{}: biased completion {} behind fair {}",
                c.a,
                c.b,
                c.biased.1,
                c.fair.1
            );
        }
    }
}
