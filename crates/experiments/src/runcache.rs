//! Persistent, content-addressed store of simulation runs.
//!
//! Every solo/pair run a [`crate::Lab`] performs is keyed by
//! `(SCHEMA_VERSION, RunnerConfig hash, run kind, app names, policy,
//! seed)` — the seed lives inside the `RunnerConfig` — and memoized at
//! two levels:
//!
//! 1. **in-memory**, so repeated figures within one `reproduce` process
//!    share runs (Fig 9's shared-policy runs are reused by Fig 13, the
//!    biased sweep feeds both Fig 9 and the headline, …);
//! 2. **on disk** (optional), so a second `reproduce` invocation, an
//!    interrupted sweep, or another process reuses every completed run.
//!
//! # Staleness rule
//!
//! The simulator is deterministic: a key collision can only serve a wrong
//! result if the *engine semantics* changed without the key changing.
//! Config changes hash into the key; engine changes do not. Therefore:
//! **whenever a change alters any golden fingerprint
//! (`tests/golden_fingerprint.rs`, `tests/determinism.rs`), bump
//! [`SCHEMA_VERSION`] in the same commit** (or purge `results/cache/`).
//! See DESIGN.md for the full rule.
//!
//! Disk entries are one JSON file per run under the cache directory
//! (default `results/cache/`, override with `WAYPART_CACHE_DIR`), named
//! by the FNV-1a hash of the full key. Each file stores the key it was
//! written for; a load whose stored key mismatches is treated as a miss,
//! so hash collisions degrade to re-simulation, never to wrong data.
//! Writes go through a temp file + atomic rename, so concurrent
//! processes and interrupted runs can never leave a torn entry.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::json::{self, Value};
use serde::{Deserialize, Serialize};
use waypart_core::runner::RunnerConfig;

/// Version of the *engine semantics* the cached results were produced
/// under. Bump whenever simulation output changes for the same
/// `RunnerConfig` (see the module docs for the rule).
pub const SCHEMA_VERSION: u32 = 1;

/// Hit/miss counters of a cache (all loads since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Served from the in-process memo.
    pub mem_hits: u64,
    /// Served from a disk entry (and promoted into the memo).
    pub disk_hits: u64,
    /// Actually simulated.
    pub misses: u64,
    /// Disk entries that existed but failed validation (torn write, old
    /// schema, key collision) and degraded to a miss.
    pub invalid_entries: u64,
    /// Bytes read from disk entries (valid or not).
    pub bytes_read: u64,
    /// Bytes written to disk entries.
    pub bytes_written: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.misses
    }

    /// Fraction of lookups served without simulating (0 when idle) — the
    /// cache's dedup ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.mem_hits + self.disk_hits) as f64 / total as f64
    }
}

/// Two-level (memory + optional disk) run memo.
pub struct RunCache {
    /// Full key → serialized result JSON.
    mem: Mutex<HashMap<String, String>>,
    /// Disk directory, `None` for in-memory-only caches.
    dir: Option<PathBuf>,
    /// FNV-1a of the canonical `RunnerConfig` JSON, baked into every key.
    cfg_hash: u64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    invalid_entries: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl RunCache {
    /// A cache that memoizes only within this process.
    pub fn in_memory(cfg: &RunnerConfig) -> Self {
        Self::build(cfg, None)
    }

    /// A cache persisted under `dir` (created on first write).
    pub fn persistent(cfg: &RunnerConfig, dir: PathBuf) -> Self {
        Self::build(cfg, Some(dir))
    }

    /// A persistent cache at the default location: `$WAYPART_CACHE_DIR`
    /// if set, else `results/cache/`.
    pub fn persistent_default(cfg: &RunnerConfig) -> Self {
        let dir = std::env::var_os("WAYPART_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results").join("cache"));
        Self::persistent(cfg, dir)
    }

    fn build(cfg: &RunnerConfig, dir: Option<PathBuf>) -> Self {
        RunCache {
            mem: Mutex::new(HashMap::new()),
            dir,
            cfg_hash: fnv1a(json::to_string(cfg).as_bytes()),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalid_entries: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        }
    }

    /// The disk directory, if persistent.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalid_entries: self.invalid_entries.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct runs memoized in memory.
    pub fn mem_len(&self) -> usize {
        self.mem.lock().expect("run cache").len()
    }

    /// Returns the cached result for `key_suffix`, or executes `run`,
    /// memoizes its result, and returns it.
    ///
    /// `key_suffix` must uniquely describe the run *given the config*
    /// (kind, app names, policy/controller parameters); the schema
    /// version and config hash are prepended automatically.
    pub fn get_or_run<T, F>(&self, key_suffix: &str, run: F) -> T
    where
        T: Serialize + Deserialize,
        F: FnOnce() -> T,
    {
        if let Some(value) = self.lookup(key_suffix) {
            return value;
        }
        let result = run();
        self.insert(key_suffix, &result);
        result
    }

    /// The lookup half of [`Self::get_or_run`]: returns the memoized
    /// result for `key_suffix` (memory, then disk) or `None`. Counts a
    /// hit when found and nothing otherwise — a batch caller probes many
    /// keys, runs the misses together, and [`Self::insert`]s each, so
    /// the hit/miss tallies come out the same as sequential
    /// `get_or_run` calls would.
    pub fn lookup<T: Serialize + Deserialize>(&self, key_suffix: &str) -> Option<T> {
        let key = self.full_key(key_suffix);

        if let Some(text) = self.mem.lock().expect("run cache").get(&key) {
            let value = json::from_str::<T>(text).expect("corrupt in-memory cache entry");
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            self.emit_lookup(key_suffix, "mem_hit");
            return Some(value);
        }

        if let Some(value) = self.load_disk::<T>(&key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.emit_lookup(key_suffix, "disk_hit");
            return Some(value);
        }
        None
    }

    /// The store half of [`Self::get_or_run`]: memoizes a freshly
    /// computed result for `key_suffix` and counts the miss.
    pub fn insert<T: Serialize>(&self, key_suffix: &str, value: &T) {
        let key = self.full_key(key_suffix);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.emit_lookup(key_suffix, "miss");
        let text = json::to_string(value);
        self.store_disk(&key, &text);
        self.mem.lock().expect("run cache").insert(key, text);
    }

    /// Prepends the schema version and config hash to a caller key.
    fn full_key(&self, key_suffix: &str) -> String {
        format!("v{SCHEMA_VERSION}|{:016x}|{key_suffix}", self.cfg_hash)
    }

    /// Emits one `cache.lookup` telemetry event (wall-stamped: cache
    /// traffic is harness activity, not simulated time).
    fn emit_lookup(&self, key_suffix: &str, outcome: &'static str) {
        use waypart_telemetry as telemetry;
        telemetry::emit_with(|| {
            let stats = self.stats();
            telemetry::Event::instant(
                "cache.lookup",
                telemetry::Stamp::WallUs(telemetry::wall_now_us()),
            )
            .field("key", key_suffix)
            .field("outcome", outcome)
            .field("hit", outcome != "miss")
            .field("bytes_read", stats.bytes_read)
            .field("bytes_written", stats.bytes_written)
        });
    }

    /// File path for `key` under the cache directory.
    fn entry_path(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{:016x}.json", fnv1a(key.as_bytes()))))
    }

    /// Loads and validates a disk entry; any mismatch or parse failure is
    /// a miss (never an error — the entry is simply re-simulated).
    fn load_disk<T: Deserialize>(&self, key: &str) -> Option<T> {
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        self.bytes_read.fetch_add(text.len() as u64, Ordering::Relaxed);
        let loaded = self.parse_entry::<T>(key, &text);
        if loaded.is_none() {
            // The file existed but didn't validate: torn write, stale
            // schema, or a key collision. Count it; the caller treats it
            // as a miss and the re-run's store overwrites it atomically.
            self.invalid_entries.fetch_add(1, Ordering::Relaxed);
        }
        loaded
    }

    /// Parses and validates one entry file's text against `key`.
    fn parse_entry<T: Deserialize>(&self, key: &str, text: &str) -> Option<T> {
        let envelope = json::parse(text).ok()?;
        let schema = envelope.field("schema").ok()?.as_u64().ok()?;
        let stored_key = envelope.field("key").ok()?.as_str().ok()?;
        if schema != u64::from(SCHEMA_VERSION) || stored_key != key {
            return None;
        }
        let value_field = envelope.field("value").ok()?;
        let result = T::from_value(value_field).ok()?;
        // Promote to the in-process memo so later lookups skip the disk.
        let text = json::to_string(value_field);
        self.mem.lock().expect("run cache").insert(key.to_string(), text);
        Some(result)
    }

    /// Writes an entry via temp file + rename; IO errors are swallowed
    /// (the cache is an accelerator, not a correctness dependency).
    fn store_disk(&self, key: &str, value_text: &str) {
        let Some(path) = self.entry_path(key) else { return };
        let Some(dir) = self.dir.as_ref() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let envelope = Value::Obj(vec![
            ("schema".to_string(), Value::U64(u64::from(SCHEMA_VERSION))),
            ("key".to_string(), Value::Str(key.to_string())),
            ("value".to_string(), json::parse(value_text).expect("own serialization parses")),
        ]);
        // Unique temp name per process+key so concurrent writers never
        // clobber each other's partial writes; rename is atomic within
        // the directory and last-writer-wins is fine (entries for one
        // key are identical by determinism).
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let text = json::to_string(&envelope);
        let len = text.len() as u64;
        if std::fs::write(&tmp, text).is_ok() {
            if std::fs::rename(&tmp, &path).is_ok() {
                self.bytes_written.fetch_add(len, Ordering::Relaxed);
            }
        }
    }
}

impl std::fmt::Debug for RunCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCache")
            .field("dir", &self.dir)
            .field("cfg_hash", &format_args!("{:016x}", self.cfg_hash))
            .field("stats", &self.stats())
            .finish()
    }
}

/// FNV-1a over bytes — stable across processes and platforms (unlike
/// `DefaultHasher`, which is randomly seeded).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("waypart-runcache-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memoizes_in_memory() {
        let cache = RunCache::in_memory(&RunnerConfig::test());
        let mut runs = 0;
        let a: u64 = cache.get_or_run("solo|x|t1w1", || {
            runs += 1;
            42
        });
        let b: u64 = cache.get_or_run("solo|x|t1w1", || {
            runs += 1;
            99
        });
        assert_eq!((a, b, runs), (42, 42, 1));
        let s = cache.stats();
        assert_eq!((s.mem_hits, s.disk_hits, s.misses), (1, 0, 1));
    }

    #[test]
    fn persists_across_instances() {
        let dir = tmp_dir("persist");
        let cfg = RunnerConfig::test();
        {
            let cache = RunCache::persistent(&cfg, dir.clone());
            let v: u64 = cache.get_or_run("pair|a+b|shared", || 7);
            assert_eq!(v, 7);
            assert_eq!(cache.stats().misses, 1);
        }
        let cache = RunCache::persistent(&cfg, dir.clone());
        let v: u64 = cache.get_or_run("pair|a+b|shared", || panic!("must hit the disk"));
        assert_eq!(v, 7);
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_changes_key() {
        let dir = tmp_dir("cfgkey");
        let cache_a = RunCache::persistent(&RunnerConfig::test(), dir.clone());
        let _: u64 = cache_a.get_or_run("solo|x", || 1);
        let mut other = RunnerConfig::test();
        other.seed ^= 1;
        let cache_b = RunCache::persistent(&other, dir.clone());
        let v: u64 = cache_b.get_or_run("solo|x", || 2);
        assert_eq!(v, 2, "different seed must not share entries");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = tmp_dir("corrupt");
        let cfg = RunnerConfig::test();
        let cache = RunCache::persistent(&cfg, dir.clone());
        let _: u64 = cache.get_or_run("solo|y", || 5);
        // Truncate every entry file.
        for f in std::fs::read_dir(&dir).unwrap() {
            std::fs::write(f.unwrap().path(), "{").unwrap();
        }
        let cache2 = RunCache::persistent(&cfg, dir.clone());
        let v: u64 = cache2.get_or_run("solo|y", || 6);
        assert_eq!(v, 6);
        assert_eq!(cache2.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The single (deterministic) entry file a one-entry cache wrote.
    fn only_entry(dir: &PathBuf) -> PathBuf {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(dir).unwrap().map(|f| f.unwrap().path()).collect();
        assert_eq!(entries.len(), 1, "expected exactly one cache entry");
        entries.pop().unwrap()
    }

    /// One degraded-entry scenario: corrupt the stored entry with
    /// `corrupt`, then assert the next lookup is a counted miss that
    /// rewrites the entry so a *third* instance disk-hits again.
    fn assert_degrades_and_heals(label: &str, corrupt: impl Fn(&PathBuf)) {
        let dir = tmp_dir(label);
        let cfg = RunnerConfig::test();
        {
            let cache = RunCache::persistent(&cfg, dir.clone());
            let _: u64 = cache.get_or_run("solo|heal", || 11);
            assert!(cache.stats().bytes_written > 0, "store must count bytes");
        }
        corrupt(&only_entry(&dir));

        let cache = RunCache::persistent(&cfg, dir.clone());
        let v: u64 = cache.get_or_run("solo|heal", || 12);
        let s = cache.stats();
        assert_eq!(v, 12, "{label}: corrupt entry served stale data");
        assert_eq!((s.disk_hits, s.misses), (0, 1), "{label}: must degrade to a miss");
        assert_eq!(s.invalid_entries, 1, "{label}: invalid entry not counted");
        assert!(s.bytes_read > 0, "{label}: read bytes not counted");

        // The miss's store must have atomically replaced the bad file:
        // a fresh instance hits disk again and sees the new value.
        let healed = RunCache::persistent(&cfg, dir.clone());
        let w: u64 = healed.get_or_run("solo|heal", || panic!("{label}: entry not rewritten"));
        assert_eq!(w, 12);
        assert_eq!(healed.stats().disk_hits, 1);
        assert_eq!(healed.stats().invalid_entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_degrades_and_is_rewritten() {
        assert_degrades_and_heals("truncated", |path| {
            let text = std::fs::read_to_string(path).unwrap();
            std::fs::write(path, &text[..text.len() / 2]).unwrap();
        });
    }

    #[test]
    fn stale_schema_version_degrades_and_is_rewritten() {
        assert_degrades_and_heals("schema", |path| {
            let text = std::fs::read_to_string(path).unwrap();
            let stale = text.replace(
                &format!("\"schema\":{SCHEMA_VERSION}"),
                &format!("\"schema\":{}", SCHEMA_VERSION + 999),
            );
            assert_ne!(text, stale, "schema field not found in entry");
            std::fs::write(path, stale).unwrap();
        });
    }

    #[test]
    fn key_mismatch_degrades_and_is_rewritten() {
        // A hash collision would store a different full key in the same
        // file; simulate one by rewriting the embedded key.
        assert_degrades_and_heals("badkey", |path| {
            let text = std::fs::read_to_string(path).unwrap();
            let swapped = text.replace("solo|heal", "solo|collision");
            assert_ne!(text, swapped, "key field not found in entry");
            std::fs::write(path, swapped).unwrap();
        });
    }

    #[test]
    fn stats_expose_bytes_and_hit_ratio() {
        let dir = tmp_dir("bytes");
        let cfg = RunnerConfig::test();
        let cache = RunCache::persistent(&cfg, dir.clone());
        let _: u64 = cache.get_or_run("solo|b", || 1);
        let _: u64 = cache.get_or_run("solo|b", || 2);
        let s = cache.stats();
        assert!(s.bytes_written > 0);
        assert_eq!(s.total(), 2);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn complex_results_roundtrip() {
        use waypart_core::policy::PartitionPolicy;
        use waypart_core::runner::Runner;
        use waypart_workloads::registry;

        let dir = tmp_dir("roundtrip");
        let cfg = RunnerConfig::test();
        let runner = Runner::new(cfg.clone());
        let fg = registry::by_name("swaptions").unwrap();
        let bg = registry::by_name("dedup").unwrap();
        let fresh = {
            let cache = RunCache::persistent(&cfg, dir.clone());
            cache.get_or_run("pair|swaptions+dedup|shared", || {
                runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Shared)
            })
        };
        let cache = RunCache::persistent(&cfg, dir.clone());
        let reloaded: waypart_core::runner::PairResult = cache
            .get_or_run("pair|swaptions+dedup|shared", || {
                panic!("second instance must hit the disk")
            });
        assert_eq!(cache.stats().disk_hits, 1);
        assert_eq!(fresh.fg_cycles, reloaded.fg_cycles);
        assert_eq!(fresh.fg_counters, reloaded.fg_counters);
        assert_eq!(fresh.bg_instructions, reloaded.bg_instructions);
        assert!((fresh.bg_rate - reloaded.bg_rate).abs() == 0.0, "f64 must roundtrip exactly");
        assert_eq!(fresh.fg_ways_trace, reloaded.fg_ways_trace);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
