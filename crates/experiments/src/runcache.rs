//! Persistent, content-addressed store of simulation runs.
//!
//! Every solo/pair run a [`crate::Lab`] performs is keyed by
//! `(SCHEMA_VERSION, RunnerConfig hash, run kind, app names, policy,
//! seed)` — the seed lives inside the `RunnerConfig` — and memoized at
//! two levels:
//!
//! 1. **in-memory**, so repeated figures within one `reproduce` process
//!    share runs (Fig 9's shared-policy runs are reused by Fig 13, the
//!    biased sweep feeds both Fig 9 and the headline, …);
//! 2. **on disk** (optional), so a second `reproduce` invocation, an
//!    interrupted sweep, or another process reuses every completed run.
//!
//! # Staleness rule
//!
//! The simulator is deterministic: a key collision can only serve a wrong
//! result if the *engine semantics* changed without the key changing.
//! Config changes hash into the key; engine changes do not. Therefore:
//! **whenever a change alters any golden fingerprint
//! (`tests/golden_fingerprint.rs`, `tests/determinism.rs`), bump
//! [`SCHEMA_VERSION`] in the same commit** (or purge `results/cache/`).
//! See DESIGN.md for the full rule.
//!
//! Disk entries are one JSON file per run under the cache directory
//! (default `results/cache/`, override with `WAYPART_CACHE_DIR`), named
//! by the FNV-1a hash of the full key. Each file stores the key it was
//! written for; a load whose stored key mismatches is treated as a miss,
//! so hash collisions degrade to re-simulation, never to wrong data.
//! Writes go through a temp file + atomic rename, so concurrent
//! processes and interrupted runs can never leave a torn entry.

use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::json::{self, Value};
use serde::{Deserialize, Serialize};
use waypart_core::runner::RunnerConfig;
use waypart_telemetry::progress::{self, Counter, Phase};

/// Version of the *engine semantics* the cached results were produced
/// under. Bump whenever simulation output changes for the same
/// `RunnerConfig` (see the module docs for the rule).
pub const SCHEMA_VERSION: u32 = 1;

/// Hit/miss counters of a cache (all loads since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Served from the in-process memo.
    pub mem_hits: u64,
    /// Served from a disk entry (and promoted into the memo).
    pub disk_hits: u64,
    /// Actually simulated.
    pub misses: u64,
    /// Disk entries that existed but failed validation (torn write, old
    /// schema, key collision) and degraded to a miss.
    pub invalid_entries: u64,
    /// Bytes read from disk entries (valid or not).
    pub bytes_read: u64,
    /// Bytes written to disk entries.
    pub bytes_written: u64,
    /// Disk stores that failed (unwritable directory, full disk, rename
    /// failure). The run still completed — the cache just couldn't keep
    /// it — so a persistent nonzero count means every future process
    /// re-simulates; `reproduce` surfaces it loudly.
    pub write_errors: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.misses
    }

    /// Fraction of lookups served without simulating (0 when idle) — the
    /// cache's dedup ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.mem_hits + self.disk_hits) as f64 / total as f64
    }
}

/// Two-level (memory + optional disk) run memo.
pub struct RunCache {
    /// Full key → serialized result JSON.
    mem: Mutex<HashMap<String, String>>,
    /// Disk directory, `None` for in-memory-only caches.
    dir: Option<PathBuf>,
    /// FNV-1a of the canonical `RunnerConfig` JSON, baked into every key.
    cfg_hash: u64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    invalid_entries: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    write_errors: AtomicU64,
    /// Every key suffix this cache was asked about (sorted, deduped) — a
    /// warm pass over the figure pipeline enumerates the full run grid
    /// here without simulating anything (the shard partition is defined
    /// over these keys' hashes).
    seen: Mutex<BTreeSet<String>>,
}

impl RunCache {
    /// A cache that memoizes only within this process.
    pub fn in_memory(cfg: &RunnerConfig) -> Self {
        Self::build(cfg, None)
    }

    /// A cache persisted under `dir` (created on first write).
    pub fn persistent(cfg: &RunnerConfig, dir: PathBuf) -> Self {
        Self::build(cfg, Some(dir))
    }

    /// A persistent cache at the default location: `$WAYPART_CACHE_DIR`
    /// if set, else `results/cache/`.
    pub fn persistent_default(cfg: &RunnerConfig) -> Self {
        let dir = std::env::var_os("WAYPART_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results").join("cache"));
        Self::persistent(cfg, dir)
    }

    fn build(cfg: &RunnerConfig, dir: Option<PathBuf>) -> Self {
        RunCache {
            mem: Mutex::new(HashMap::new()),
            dir,
            cfg_hash: fnv1a(json::to_string(cfg).as_bytes()),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalid_entries: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            seen: Mutex::new(BTreeSet::new()),
        }
    }

    /// The disk directory, if persistent.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalid_entries: self.invalid_entries.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }

    /// Every key suffix looked up or inserted so far (sorted, deduped).
    /// A cache-warm pass over the figures enumerates the global run grid
    /// here with zero simulation.
    pub fn seen_keys(&self) -> Vec<String> {
        self.seen.lock().expect("run cache").iter().cloned().collect()
    }

    /// The stable cross-process hash of a caller key — the same FNV-1a
    /// value that names the key's disk entry file. Shard slices partition
    /// the run grid by this hash (`ShardSpec::owns_hash`), so ownership is
    /// an exact cover of the key space regardless of figure structure.
    pub fn key_hash(&self, key_suffix: &str) -> u64 {
        fnv1a(self.full_key(key_suffix).as_bytes())
    }

    /// Number of distinct runs memoized in memory.
    pub fn mem_len(&self) -> usize {
        self.mem.lock().expect("run cache").len()
    }

    /// Returns the cached result for `key_suffix`, or executes `run`,
    /// memoizes its result, and returns it.
    ///
    /// `key_suffix` must uniquely describe the run *given the config*
    /// (kind, app names, policy/controller parameters); the schema
    /// version and config hash are prepended automatically.
    pub fn get_or_run<T, F>(&self, key_suffix: &str, run: F) -> T
    where
        T: Serialize + Deserialize,
        F: FnOnce() -> T,
    {
        if let Some(value) = self.lookup(key_suffix) {
            return value;
        }
        let result = run();
        self.insert(key_suffix, &result);
        result
    }

    /// The lookup half of [`Self::get_or_run`]: returns the memoized
    /// result for `key_suffix` (memory, then disk) or `None`. Counts a
    /// hit when found and nothing otherwise — a batch caller probes many
    /// keys, runs the misses together, and [`Self::insert`]s each, so
    /// the hit/miss tallies come out the same as sequential
    /// `get_or_run` calls would.
    pub fn lookup<T: Serialize + Deserialize>(&self, key_suffix: &str) -> Option<T> {
        let key = self.full_key(key_suffix);
        self.record_seen(key_suffix);

        if let Some(text) = self.mem.lock().expect("run cache").get(&key) {
            let value = json::from_str::<T>(text).expect("corrupt in-memory cache entry");
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            progress::count(Counter::MemHit);
            self.emit_lookup(key_suffix, "mem_hit");
            return Some(value);
        }

        if let Some(value) = self.load_disk::<T>(&key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            progress::count(Counter::DiskHit);
            self.emit_lookup(key_suffix, "disk_hit");
            return Some(value);
        }
        None
    }

    /// The store half of [`Self::get_or_run`]: memoizes a freshly
    /// computed result for `key_suffix` and counts the miss.
    pub fn insert<T: Serialize>(&self, key_suffix: &str, value: &T) {
        let key = self.full_key(key_suffix);
        self.record_seen(key_suffix);
        self.misses.fetch_add(1, Ordering::Relaxed);
        progress::count(Counter::Miss);
        self.emit_lookup(key_suffix, "miss");
        let text = json::to_string(value);
        self.store_disk(&key, &text);
        self.mem.lock().expect("run cache").insert(key, text);
    }

    /// Prepends the schema version and config hash to a caller key.
    fn full_key(&self, key_suffix: &str) -> String {
        format!("v{SCHEMA_VERSION}|{:016x}|{key_suffix}", self.cfg_hash)
    }

    /// Records a key suffix in the seen-key grid enumeration. A *new*
    /// key also grows the heartbeat's run-grid total.
    fn record_seen(&self, key_suffix: &str) {
        let mut seen = self.seen.lock().expect("run cache");
        if !seen.contains(key_suffix) {
            seen.insert(key_suffix.to_string());
            progress::count(Counter::RunSeen);
        }
    }

    /// Emits one `cache.lookup` telemetry event (wall-stamped: cache
    /// traffic is harness activity, not simulated time).
    fn emit_lookup(&self, key_suffix: &str, outcome: &'static str) {
        use waypart_telemetry as telemetry;
        telemetry::emit_with(|| {
            let stats = self.stats();
            telemetry::Event::instant(
                "cache.lookup",
                telemetry::Stamp::WallUs(telemetry::wall_now_us()),
            )
            .field("key", key_suffix)
            .field("outcome", outcome)
            .field("hit", outcome != "miss")
            .field("bytes_read", stats.bytes_read)
            .field("bytes_written", stats.bytes_written)
        });
    }

    /// File path for `key` under the cache directory.
    fn entry_path(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{:016x}.json", fnv1a(key.as_bytes()))))
    }

    /// Claim-file path for `key` under the cache directory.
    fn claim_path(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{:016x}.claim", fnv1a(key.as_bytes()))))
    }

    /// Loads and validates a disk entry; any mismatch or parse failure is
    /// a miss (never an error — the entry is simply re-simulated).
    fn load_disk<T: Deserialize>(&self, key: &str) -> Option<T> {
        let path = self.entry_path(key)?;
        let io_t0 = progress::phase_begin();
        let text = std::fs::read_to_string(path).ok();
        progress::phase_add(Phase::RuncacheIo, io_t0);
        let text = text?;
        self.bytes_read.fetch_add(text.len() as u64, Ordering::Relaxed);
        let loaded = self.parse_entry::<T>(key, &text);
        if loaded.is_none() {
            // The file existed but didn't validate: torn write, stale
            // schema, or a key collision. Count it; the caller treats it
            // as a miss and the re-run's store overwrites it atomically.
            self.invalid_entries.fetch_add(1, Ordering::Relaxed);
        }
        loaded
    }

    /// Parses and validates one entry file's text against `key`.
    fn parse_entry<T: Deserialize>(&self, key: &str, text: &str) -> Option<T> {
        let envelope = json::parse(text).ok()?;
        let schema = envelope.field("schema").ok()?.as_u64().ok()?;
        let stored_key = envelope.field("key").ok()?.as_str().ok()?;
        if schema != u64::from(SCHEMA_VERSION) || stored_key != key {
            return None;
        }
        let value_field = envelope.field("value").ok()?;
        let result = T::from_value(value_field).ok()?;
        // Promote to the in-process memo so later lookups skip the disk.
        let text = json::to_string(value_field);
        self.mem.lock().expect("run cache").insert(key.to_string(), text);
        Some(result)
    }

    /// Writes an entry via temp file + rename. IO errors don't propagate
    /// (the cache is an accelerator, not a correctness dependency) but
    /// they are *counted* and emitted as `cache.write_error` events — a
    /// read-only or full disk silently re-running everything forever is
    /// exactly the failure mode the stats line in `reproduce` exists to
    /// surface.
    fn store_disk(&self, key: &str, value_text: &str) {
        let Some(path) = self.entry_path(key) else { return };
        let Some(dir) = self.dir.as_ref() else { return };
        if let Err(e) = std::fs::create_dir_all(dir) {
            self.count_write_error("create_dir", &e);
            return;
        }
        let envelope = Value::Obj(vec![
            ("schema".to_string(), Value::U64(u64::from(SCHEMA_VERSION))),
            ("key".to_string(), Value::Str(key.to_string())),
            ("value".to_string(), json::parse(value_text).expect("own serialization parses")),
        ]);
        // Unique temp name per process+key so concurrent writers never
        // clobber each other's partial writes; rename is atomic within
        // the directory and last-writer-wins is fine (entries for one
        // key are identical by determinism).
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let text = json::to_string(&envelope);
        let len = text.len() as u64;
        let io_t0 = progress::phase_begin();
        match std::fs::write(&tmp, text) {
            Err(e) => self.count_write_error("write", &e),
            Ok(()) => match std::fs::rename(&tmp, &path) {
                Err(e) => {
                    self.count_write_error("rename", &e);
                    let _ = std::fs::remove_file(&tmp);
                }
                Ok(()) => {
                    self.bytes_written.fetch_add(len, Ordering::Relaxed);
                }
            },
        }
        progress::phase_add(Phase::RuncacheIo, io_t0);
    }

    /// Counts one failed disk store and emits a `cache.write_error`
    /// telemetry event naming the failing operation.
    fn count_write_error(&self, op: &'static str, err: &std::io::Error) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
        use waypart_telemetry as telemetry;
        telemetry::emit_with(|| {
            telemetry::Event::instant(
                "cache.write_error",
                telemetry::Stamp::WallUs(telemetry::wall_now_us()),
            )
            .field("op", op)
            .field("error", err.to_string().as_str())
            .field("write_errors", self.write_errors.load(Ordering::Relaxed))
        });
    }

    // ------------------------------------------------------------- claims
    //
    // Two shards can race one *shared* dependency (a run neither owns
    // exclusively — e.g. a characterization solo both figures need). A
    // claim file `<entry-hash>.claim`, created with `create_new`, marks
    // "some worker is simulating this key right now"; peers poll the
    // entry instead of duplicating a 100-second run. Claims are strictly
    // best-effort: every failure mode (unwritable dir, crashed claimant,
    // clock skew) degrades to both workers running the key and the
    // last-writer-wins entry store — never to a missing or wrong result.

    /// Tries to claim `key_suffix` for this process. `Some` means the
    /// caller should simulate the key (it either holds the claim, or the
    /// cache has no claim machinery — in-memory, or an unwritable dir);
    /// `None` means another live worker holds a claim. The returned guard
    /// releases the claim on drop; insert the entry *before* dropping it
    /// so pollers observe the result no later than the release.
    pub fn try_claim(&self, key_suffix: &str) -> Option<ClaimGuard> {
        let key = self.full_key(key_suffix);
        let Some(path) = self.claim_path(&key) else {
            return Some(ClaimGuard { path: None });
        };
        let Some(dir) = self.dir.as_ref() else {
            return Some(ClaimGuard { path: None });
        };
        if std::fs::create_dir_all(dir).is_err() {
            return Some(ClaimGuard { path: None });
        }
        match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(_) => {
                progress::claim_acquired();
                Some(ClaimGuard { path: Some(path) })
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => None,
            // Any other failure: no cross-process arbitration available;
            // run it ourselves (duplicated work beats a deadlock).
            Err(_) => Some(ClaimGuard { path: None }),
        }
    }

    /// Age in seconds of the claim file for `key_suffix`, or `None` when
    /// no claim exists (or the cache is in-memory). A waiting worker
    /// treats a claim older than its grace period as abandoned and takes
    /// the key over.
    pub fn claim_age_secs(&self, key_suffix: &str) -> Option<f64> {
        let key = self.full_key(key_suffix);
        let path = self.claim_path(&key)?;
        let modified = std::fs::metadata(&path).ok()?.modified().ok()?;
        Some(modified.elapsed().map(|d| d.as_secs_f64()).unwrap_or(0.0))
    }

    /// Removes the claim file for `key_suffix` if it is at least
    /// `older_than` old; returns whether a stale claim was removed. A
    /// claim whose owner died without running [`ClaimGuard::drop`] (OOM,
    /// SIGKILL) would otherwise block [`Self::try_claim`]'s `create_new`
    /// forever — a waiter past its grace period calls this first so the
    /// takeover can actually succeed. Best-effort like every claim
    /// operation: racing a live re-claimant at worst duplicates one run.
    pub fn break_stale_claim(&self, key_suffix: &str, older_than: std::time::Duration) -> bool {
        let key = self.full_key(key_suffix);
        let Some(path) = self.claim_path(&key) else {
            return false;
        };
        let stale = std::fs::metadata(&path)
            .ok()
            .and_then(|m| m.modified().ok())
            .is_some_and(|t| t.elapsed().map(|age| age >= older_than).unwrap_or(false));
        stale && std::fs::remove_file(&path).is_ok()
    }
}

/// Holds a best-effort cross-process claim on one run-cache key;
/// removes the claim file when dropped. See [`RunCache::try_claim`].
#[derive(Debug)]
pub struct ClaimGuard {
    /// `None` when no claim file backs the guard (in-memory cache or an
    /// unwritable directory): the caller still simulates, there is just
    /// nothing to release.
    path: Option<PathBuf>,
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
            progress::claim_released();
        }
    }
}

impl std::fmt::Debug for RunCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCache")
            .field("dir", &self.dir)
            .field("cfg_hash", &format_args!("{:016x}", self.cfg_hash))
            .field("stats", &self.stats())
            .finish()
    }
}

/// FNV-1a over bytes — stable across processes and platforms (unlike
/// `DefaultHasher`, which is randomly seeded).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("waypart-runcache-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memoizes_in_memory() {
        let cache = RunCache::in_memory(&RunnerConfig::test());
        let mut runs = 0;
        let a: u64 = cache.get_or_run("solo|x|t1w1", || {
            runs += 1;
            42
        });
        let b: u64 = cache.get_or_run("solo|x|t1w1", || {
            runs += 1;
            99
        });
        assert_eq!((a, b, runs), (42, 42, 1));
        let s = cache.stats();
        assert_eq!((s.mem_hits, s.disk_hits, s.misses), (1, 0, 1));
    }

    #[test]
    fn persists_across_instances() {
        let dir = tmp_dir("persist");
        let cfg = RunnerConfig::test();
        {
            let cache = RunCache::persistent(&cfg, dir.clone());
            let v: u64 = cache.get_or_run("pair|a+b|shared", || 7);
            assert_eq!(v, 7);
            assert_eq!(cache.stats().misses, 1);
        }
        let cache = RunCache::persistent(&cfg, dir.clone());
        let v: u64 = cache.get_or_run("pair|a+b|shared", || panic!("must hit the disk"));
        assert_eq!(v, 7);
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_changes_key() {
        let dir = tmp_dir("cfgkey");
        let cache_a = RunCache::persistent(&RunnerConfig::test(), dir.clone());
        let _: u64 = cache_a.get_or_run("solo|x", || 1);
        let mut other = RunnerConfig::test();
        other.seed ^= 1;
        let cache_b = RunCache::persistent(&other, dir.clone());
        let v: u64 = cache_b.get_or_run("solo|x", || 2);
        assert_eq!(v, 2, "different seed must not share entries");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = tmp_dir("corrupt");
        let cfg = RunnerConfig::test();
        let cache = RunCache::persistent(&cfg, dir.clone());
        let _: u64 = cache.get_or_run("solo|y", || 5);
        // Truncate every entry file.
        for f in std::fs::read_dir(&dir).unwrap() {
            std::fs::write(f.unwrap().path(), "{").unwrap();
        }
        let cache2 = RunCache::persistent(&cfg, dir.clone());
        let v: u64 = cache2.get_or_run("solo|y", || 6);
        assert_eq!(v, 6);
        assert_eq!(cache2.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The single (deterministic) entry file a one-entry cache wrote.
    fn only_entry(dir: &PathBuf) -> PathBuf {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(dir).unwrap().map(|f| f.unwrap().path()).collect();
        assert_eq!(entries.len(), 1, "expected exactly one cache entry");
        entries.pop().unwrap()
    }

    /// One degraded-entry scenario: corrupt the stored entry with
    /// `corrupt`, then assert the next lookup is a counted miss that
    /// rewrites the entry so a *third* instance disk-hits again.
    fn assert_degrades_and_heals(label: &str, corrupt: impl Fn(&PathBuf)) {
        let dir = tmp_dir(label);
        let cfg = RunnerConfig::test();
        {
            let cache = RunCache::persistent(&cfg, dir.clone());
            let _: u64 = cache.get_or_run("solo|heal", || 11);
            assert!(cache.stats().bytes_written > 0, "store must count bytes");
        }
        corrupt(&only_entry(&dir));

        let cache = RunCache::persistent(&cfg, dir.clone());
        let v: u64 = cache.get_or_run("solo|heal", || 12);
        let s = cache.stats();
        assert_eq!(v, 12, "{label}: corrupt entry served stale data");
        assert_eq!((s.disk_hits, s.misses), (0, 1), "{label}: must degrade to a miss");
        assert_eq!(s.invalid_entries, 1, "{label}: invalid entry not counted");
        assert!(s.bytes_read > 0, "{label}: read bytes not counted");

        // The miss's store must have atomically replaced the bad file:
        // a fresh instance hits disk again and sees the new value.
        let healed = RunCache::persistent(&cfg, dir.clone());
        let w: u64 = healed.get_or_run("solo|heal", || panic!("{label}: entry not rewritten"));
        assert_eq!(w, 12);
        assert_eq!(healed.stats().disk_hits, 1);
        assert_eq!(healed.stats().invalid_entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_degrades_and_is_rewritten() {
        assert_degrades_and_heals("truncated", |path| {
            let text = std::fs::read_to_string(path).unwrap();
            std::fs::write(path, &text[..text.len() / 2]).unwrap();
        });
    }

    #[test]
    fn stale_schema_version_degrades_and_is_rewritten() {
        assert_degrades_and_heals("schema", |path| {
            let text = std::fs::read_to_string(path).unwrap();
            let stale = text.replace(
                &format!("\"schema\":{SCHEMA_VERSION}"),
                &format!("\"schema\":{}", SCHEMA_VERSION + 999),
            );
            assert_ne!(text, stale, "schema field not found in entry");
            std::fs::write(path, stale).unwrap();
        });
    }

    #[test]
    fn key_mismatch_degrades_and_is_rewritten() {
        // A hash collision would store a different full key in the same
        // file; simulate one by rewriting the embedded key.
        assert_degrades_and_heals("badkey", |path| {
            let text = std::fs::read_to_string(path).unwrap();
            let swapped = text.replace("solo|heal", "solo|collision");
            assert_ne!(text, swapped, "key field not found in entry");
            std::fs::write(path, swapped).unwrap();
        });
    }

    #[test]
    fn stats_expose_bytes_and_hit_ratio() {
        let dir = tmp_dir("bytes");
        let cfg = RunnerConfig::test();
        let cache = RunCache::persistent(&cfg, dir.clone());
        let _: u64 = cache.get_or_run("solo|b", || 1);
        let _: u64 = cache.get_or_run("solo|b", || 2);
        let s = cache.stats();
        assert!(s.bytes_written > 0);
        assert_eq!(s.total(), 2);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_dir_counts_write_errors() {
        // A *file* where the cache directory should be makes every
        // create_dir_all fail — deterministic even when running as root
        // (unlike permission bits).
        let dir = tmp_dir("readonly");
        std::fs::write(&dir, "not a directory").unwrap();
        let cache = RunCache::persistent(&RunnerConfig::test(), dir.clone());
        let v: u64 = cache.get_or_run("solo|ro", || 3);
        assert_eq!(v, 3, "the run itself must still succeed");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.write_errors, 1, "failed store must be counted");
        assert_eq!(s.bytes_written, 0);
        // And the failure repeats loudly rather than silently.
        let _: u64 = cache.get_or_run("solo|ro2", || 4);
        assert_eq!(cache.stats().write_errors, 2);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn seen_keys_enumerate_the_grid_without_running() {
        let cache = RunCache::in_memory(&RunnerConfig::test());
        let _: u64 = cache.get_or_run("solo|b|t1", || 1);
        let _: u64 = cache.get_or_run("solo|a|t1", || 2);
        let _: u64 = cache.get_or_run("solo|b|t1", || 3); // dedup
        let _: Option<u64> = cache.lookup("pair|x+y|shared"); // miss still recorded
        assert_eq!(cache.seen_keys(), vec!["pair|x+y|shared", "solo|a|t1", "solo|b|t1"]);
    }

    #[test]
    fn key_hash_matches_entry_filename() {
        let dir = tmp_dir("keyhash");
        let cfg = RunnerConfig::test();
        let cache = RunCache::persistent(&cfg, dir.clone());
        let _: u64 = cache.get_or_run("solo|hash", || 9);
        let entry = only_entry(&dir);
        let name = entry.file_name().unwrap().to_str().unwrap();
        assert_eq!(name, format!("{:016x}.json", cache.key_hash("solo|hash")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claims_arbitrate_and_release() {
        let dir = tmp_dir("claims");
        let cfg = RunnerConfig::test();
        let a = RunCache::persistent(&cfg, dir.clone());
        let b = RunCache::persistent(&cfg, dir.clone());

        assert!(a.claim_age_secs("pair|c+d|shared").is_none(), "no claim yet");
        let guard = a.try_claim("pair|c+d|shared").expect("first claim succeeds");
        assert!(b.try_claim("pair|c+d|shared").is_none(), "second claimant must wait");
        let age = b.claim_age_secs("pair|c+d|shared").expect("claim file visible to peer");
        assert!(age < 60.0, "fresh claim reported ancient: {age}");
        // A different key is independent.
        assert!(b.try_claim("pair|other|shared").is_some());

        drop(guard);
        assert!(b.claim_age_secs("pair|c+d|shared").is_none(), "drop releases the claim");
        assert!(b.try_claim("pair|c+d|shared").is_some(), "released key is claimable again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_claims_can_be_broken_for_takeover() {
        let dir = tmp_dir("stale-claim");
        let cfg = RunnerConfig::test();
        let a = RunCache::persistent(&cfg, dir.clone());
        let guard = a.try_claim("pair|x+y|shared").expect("first claim");
        // The owner "crashes": ClaimGuard::drop never runs and the claim
        // file outlives the process.
        std::mem::forget(guard);
        let b = RunCache::persistent(&cfg, dir.clone());
        assert!(b.try_claim("pair|x+y|shared").is_none(), "stale claim still blocks create_new");
        assert!(
            !b.break_stale_claim("pair|x+y|shared", std::time::Duration::from_secs(60)),
            "a claim younger than the threshold must not be broken"
        );
        assert!(b.try_claim("pair|x+y|shared").is_none(), "fresh-looking claim still holds");
        assert!(
            b.break_stale_claim("pair|x+y|shared", std::time::Duration::ZERO),
            "past the threshold the dead owner's claim is removed"
        );
        assert!(b.try_claim("pair|x+y|shared").is_some(), "takeover can now claim the key");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_claims_are_noops_that_always_grant() {
        let cache = RunCache::in_memory(&RunnerConfig::test());
        let g1 = cache.try_claim("solo|x");
        let g2 = cache.try_claim("solo|x");
        assert!(g1.is_some() && g2.is_some(), "no cross-process arbitration in memory");
        assert!(cache.claim_age_secs("solo|x").is_none());
    }

    #[test]
    fn complex_results_roundtrip() {
        use waypart_core::policy::PartitionPolicy;
        use waypart_core::runner::Runner;
        use waypart_workloads::registry;

        let dir = tmp_dir("roundtrip");
        let cfg = RunnerConfig::test();
        let runner = Runner::new(cfg.clone());
        let fg = registry::by_name("swaptions").unwrap();
        let bg = registry::by_name("dedup").unwrap();
        let fresh = {
            let cache = RunCache::persistent(&cfg, dir.clone());
            cache.get_or_run("pair|swaptions+dedup|shared", || {
                runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Shared)
            })
        };
        let cache = RunCache::persistent(&cfg, dir.clone());
        let reloaded: waypart_core::runner::PairResult = cache
            .get_or_run("pair|swaptions+dedup|shared", || {
                panic!("second instance must hit the disk")
            });
        assert_eq!(cache.stats().disk_hits, 1);
        assert_eq!(fresh.fg_cycles, reloaded.fg_cycles);
        assert_eq!(fresh.fg_counters, reloaded.fg_counters);
        assert_eq!(fresh.bg_instructions, reloaded.bg_instructions);
        assert!((fresh.bg_rate - reloaded.bg_rate).abs() == 0.0, "f64 must roundtrip exactly");
        assert_eq!(fresh.fg_ways_trace, reloaded.fg_ways_trace);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
