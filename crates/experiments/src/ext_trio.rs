//! Extension experiment — §5.2's multiple-background-copies case.
//!
//! "We also examined more extreme cases with one foreground application
//! and two or more copies of the background applications continuously
//! running. However, adding additional applications only further increased
//! contention for cache capacity and DRAM bandwidth. As expected the
//! benchmarks already experiencing degradation with one background
//! application, slowed down further when more were added." This experiment
//! reproduces that observation and shows partitioning still bounding the
//! damage.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_core::policy::PartitionPolicy;

/// Foregrounds used: one bandwidth-sensitive, one capacity-sensitive, one
/// insensitive — the three §5.1 sensitivity archetypes.
pub const FOREGROUNDS: [&str; 3] = ["462.libquantum", "471.omnetpp", "swaptions"];
/// Background whose copy count scales.
pub const BACKGROUND: &str = "canneal";

/// One (foreground, copies, policy) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrioCell {
    /// Foreground application.
    pub fg: String,
    /// Number of background copies (1 or 2).
    pub copies: usize,
    /// Foreground slowdown with no partitioning.
    pub shared: f64,
    /// Foreground slowdown with a biased 9/3 split.
    pub biased: f64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtTrio {
    /// All cells.
    pub cells: Vec<TrioCell>,
}

/// Runs the copy-count sweep.
pub fn run(lab: &Lab) -> ExtTrio {
    let bg = lab.app(BACKGROUND).clone();
    let jobs: Vec<(usize, usize)> =
        (0..FOREGROUNDS.len()).flat_map(|f| [1usize, 2].map(move |c| (f, c))).collect();
    let cells = parallel_map(jobs, |&(f, copies)| {
        let fg = lab.app(FOREGROUNDS[f]).clone();
        let solo = lab.pair_baseline(&fg).cycles as f64;
        let shared = lab.pair_multi_bg(&fg, &bg, copies, PartitionPolicy::Shared);
        let biased =
            lab.pair_multi_bg(&fg, &bg, copies, PartitionPolicy::Biased { fg_ways: 9 });
        assert!(!shared.truncated && !biased.truncated, "{} truncated", fg.name);
        TrioCell {
            fg: fg.name.to_string(),
            copies,
            shared: shared.fg_cycles as f64 / solo,
            biased: biased.fg_cycles as f64 / solo,
        }
    });
    ExtTrio { cells }
}

impl ExtTrio {
    /// The cell for (fg, copies).
    pub fn cell(&self, fg: &str, copies: usize) -> Option<&TrioCell> {
        self.cells.iter().find(|c| c.fg == fg && c.copies == copies)
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = Table::new(["fg", "bg copies", "shared", "biased 9/3"]);
        for c in &self.cells {
            t.push([
                c.fg.clone(),
                c.copies.to_string(),
                format!("{:.3}x", c.shared),
                format!("{:.3}x", c.biased),
            ]);
        }
        format!("Extension: foreground slowdown vs background copy count (bg = {BACKGROUND})\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn more_copies_mean_more_degradation_for_sensitive_fg() {
        let lab = Lab::new(RunnerConfig::test());
        let ext = run(&lab);
        // §5.2: already-degraded foregrounds slow down further with a
        // second background copy.
        let one = ext.cell("471.omnetpp", 1).unwrap();
        let two = ext.cell("471.omnetpp", 2).unwrap();
        assert!(
            two.shared >= one.shared - 0.01,
            "omnetpp should not improve with more co-runners: {:.3} vs {:.3}",
            two.shared,
            one.shared
        );
        // Partitioning still bounds the capacity side of the damage.
        assert!(two.biased <= two.shared + 0.01, "biased {:.3} worse than shared {:.3}", two.biased, two.shared);
        // The insensitive archetype stays insensitive.
        let sw = ext.cell("swaptions", 2).unwrap();
        assert!(sw.shared < 1.10, "swaptions slowed {:.3} under two canneal copies", sw.shared);
    }
}
