//! Figure 9 — foreground protection under shared, fair, and best-biased
//! partitioning for the 36 ordered cluster-representative pairs.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::{parallel_map, parallel_map_labeled};
use serde::{Deserialize, Serialize};
use waypart_analysis::SummaryStats;
use waypart_core::policy::PartitionPolicy;
use waypart_core::static_search::best_biased_with;
use waypart_workloads::registry::CLUSTER_REPRESENTATIVES;

/// One ordered pair's results (values are foreground slowdowns vs. solo).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Cell {
    /// Foreground application.
    pub fg: String,
    /// Background application (continuously running).
    pub bg: String,
    /// Slowdown with no partitioning.
    pub shared: f64,
    /// Slowdown with the even split.
    pub fair: f64,
    /// Slowdown with the best biased split.
    pub biased: f64,
    /// Foreground ways of the best biased split.
    pub biased_ways: usize,
    /// Background throughput (instr/cycle) under the best biased split —
    /// reused as the "best static" baseline by Figure 13.
    pub biased_bg_rate: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    /// All ordered pairs.
    pub cells: Vec<Fig9Cell>,
}

/// Runs the policy comparison over ordered pairs of the given apps.
pub fn run_for(lab: &Lab, names: &[&str]) -> Fig9 {
    let specs: Vec<_> = names.iter().map(|n| lab.app(n).clone()).collect();
    let baselines = parallel_map((0..specs.len()).collect(), |&i| lab.pair_baseline(&specs[i]).cycles);
    let jobs: Vec<(usize, usize)> =
        (0..specs.len()).flat_map(|f| (0..specs.len()).map(move |b| (f, b))).collect();
    let cells = parallel_map_labeled("fig9", jobs, |&(f, b)| {
        let fg = &specs[f];
        let bg = &specs[b];
        let solo = baselines[f];
        // One cell = one pairing under shared, fair, and every biased
        // split — policies that differ only in way masks, so run them as
        // one lockstep batch over a shared workload trace. The biased
        // search is non-adaptive (it sweeps all splits regardless of the
        // results), so it can be fed from the pre-computed batch.
        let total_ways = lab.runner().config().machine.llc.ways;
        let policies: Vec<PartitionPolicy> = [PartitionPolicy::Shared, PartitionPolicy::Fair]
            .into_iter()
            .chain((1..total_ways).map(|fg_ways| PartitionPolicy::Biased { fg_ways }))
            .collect();
        let runs = lab.pair_endless_bg_batch(fg, bg, &policies);
        let shared = &runs[0];
        let fair = &runs[1];
        let search = best_biased_with(total_ways, solo, |policy| match policy {
            PartitionPolicy::Biased { fg_ways } => runs[1 + fg_ways].clone(),
            other => unreachable!("biased search requested {other:?}"),
        });
        Fig9Cell {
            fg: fg.name.to_string(),
            bg: bg.name.to_string(),
            shared: shared.fg_cycles as f64 / solo as f64,
            fair: fair.fg_cycles as f64 / solo as f64,
            biased: search.best.fg_cycles as f64 / solo as f64,
            biased_ways: search.fg_ways,
            biased_bg_rate: search.best.bg_rate,
        }
    });
    Fig9 { cells }
}

/// Runs the six cluster representatives (36 ordered pairs).
pub fn run(lab: &Lab) -> Fig9 {
    run_for(lab, &CLUSTER_REPRESENTATIVES)
}

impl Fig9 {
    /// The cell for an ordered (fg, bg) pair.
    pub fn cell(&self, fg: &str, bg: &str) -> Option<&Fig9Cell> {
        self.cells.iter().find(|c| c.fg == fg && c.bg == bg)
    }

    /// Slowdown summary per policy: (shared, fair, biased).
    pub fn stats(&self) -> (SummaryStats, SummaryStats, SummaryStats) {
        (
            SummaryStats::from_values(self.cells.iter().map(|c| c.shared)),
            SummaryStats::from_values(self.cells.iter().map(|c| c.fair)),
            SummaryStats::from_values(self.cells.iter().map(|c| c.biased)),
        )
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut table = Table::new(["fg", "bg", "shared", "fair", "biased", "biased ways"]);
        for c in &self.cells {
            table.push([
                c.fg.clone(),
                c.bg.clone(),
                format!("{:.3}", c.shared),
                format!("{:.3}", c.fair),
                format!("{:.3}", c.biased),
                c.biased_ways.to_string(),
            ]);
        }
        let (s, f, b) = self.stats();
        format!(
            "Figure 9: foreground slowdown by policy\n{}\naverages: shared {s}, fair {f}, biased {b}\n",
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn biased_never_loses_to_shared_on_average() {
        let lab = Lab::new(RunnerConfig::test());
        // A sensitive foreground and an aggressive background: exactly the
        // case partitioning exists for.
        let fig = run_for(&lab, &["471.omnetpp", "canneal"]);
        assert_eq!(fig.cells.len(), 4);
        let (shared, _, biased) = fig.stats();
        assert!(
            biased.mean <= shared.mean + 0.01,
            "biased mean {:.3} worse than shared {:.3}",
            biased.mean,
            shared.mean
        );
        assert!(
            biased.max <= shared.max + 0.01,
            "biased worst {:.3} worse than shared {:.3}",
            biased.max,
            shared.max
        );
    }
}
