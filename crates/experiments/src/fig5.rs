//! Figure 5 / Table 3 — hierarchical clustering of the applications and
//! the cluster representatives.
//!
//! Reassembles the 19-value feature vectors from the Fig 1–4 measurements
//! (7 thread-scaling points, 10 LLC-capacity points, prefetcher and
//! bandwidth sensitivity), normalizes each dimension to [0, 1], runs
//! single-linkage clustering, and cuts the dendrogram
//! for the paper's cluster count (its 0.9-distance cut yields seven).

use crate::fig1::Fig1;
use crate::fig3::Fig3;
use crate::fig4::Fig4;
use crate::report::Table;
use crate::table2::Table2;
use serde::{Deserialize, Serialize};
use waypart_analysis::cluster::{centroid_representative, cut_for_cluster_count, single_linkage, Dendrogram};
use waypart_analysis::features::{normalize, FeatureVector};

/// Target cluster count: the paper's cut at linkage distance 0.9 yields
/// seven clusters (six analyzed plus the `fluidanimate` singleton, which
/// the paper sets aside).
pub const TARGET_CLUSTERS: usize = 7;

/// The clustering outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// Application names, aligned with `assignments`.
    pub apps: Vec<String>,
    /// Raw (unnormalized) feature vectors.
    pub features: Vec<FeatureVector>,
    /// The dendrogram (scipy-style merge list; Figure 5's content).
    pub dendrogram: Dendrogram,
    /// Cluster index per application at the cut.
    pub assignments: Vec<usize>,
    /// The linkage distance the cut happened at.
    pub cut_distance: f64,
    /// Per-cluster representative (centroid rule; Table 3's bold names).
    pub representatives: Vec<String>,
}

/// Builds feature vectors from the characterization measurements and
/// clusters them. All four inputs must cover the same applications in the
/// same order.
///
/// # Panics
/// Panics if the inputs cover different applications.
pub fn run(fig1: &Fig1, table2: &Table2, fig3: &Fig3, fig4: &Fig4) -> Fig5 {
    run_with_target(fig1, table2, fig3, fig4, TARGET_CLUSTERS)
}

/// Like [`run`] but with an explicit cluster-count target (for reduced
/// application subsets).
///
/// # Panics
/// Panics if the inputs cover different applications.
pub fn run_with_target(fig1: &Fig1, table2: &Table2, fig3: &Fig3, fig4: &Fig4, target: usize) -> Fig5 {
    let n = fig1.curves.len();
    assert_eq!(table2.rows.len(), n, "table2 coverage mismatch");
    assert_eq!(fig3.rows.len(), n, "fig3 coverage mismatch");
    assert_eq!(fig4.rows.len(), n, "fig4 coverage mismatch");

    let mut features = Vec::with_capacity(n);
    for i in 0..n {
        let c1 = &fig1.curves[i];
        let r2 = &table2.rows[i];
        assert_eq!(c1.app, r2.app, "row order mismatch");
        assert_eq!(c1.app, fig3.rows[i].app);
        assert_eq!(c1.app, fig4.rows[i].app);
        // 7 thread features: relative execution time at 2..=8 threads.
        let threads: Vec<f64> = (1..8).map(|t| 1.0 / c1.speedups[t].max(1e-9)).collect();
        // 10 LLC features: execution time at ways 2..=11 relative to 12.
        let full = *r2.times.last().expect("sweep") as f64;
        let llc: Vec<f64> = r2.times[1..11].iter().map(|&t| t as f64 / full).collect();
        features.push(FeatureVector::new(
            c1.app.clone(),
            &threads,
            &llc,
            fig3.rows[i].ratio,
            fig4.rows[i].slowdown,
        ));
    }

    let normalized = normalize(&features);
    let dendrogram = single_linkage(&normalized);
    let (cut_distance, assignments) = cut_for_cluster_count(&dendrogram, target.min(n));

    let cluster_count = assignments.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut representatives = Vec::with_capacity(cluster_count);
    for c in 0..cluster_count {
        let members: Vec<usize> =
            (0..n).filter(|&i| assignments[i] == c).collect();
        let rep = centroid_representative(&normalized, &members);
        representatives.push(features[rep].name.clone());
    }

    Fig5 {
        apps: features.iter().map(|f| f.name.clone()).collect(),
        features,
        dendrogram,
        assignments,
        cut_distance,
        representatives,
    }
}

impl Fig5 {
    /// Number of clusters at the cut.
    pub fn cluster_count(&self) -> usize {
        self.representatives.len()
    }

    /// The members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<&str> {
        self.apps
            .iter()
            .zip(&self.assignments)
            .filter(|(_, &a)| a == c)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// The cluster an application landed in.
    pub fn cluster_of(&self, app: &str) -> Option<usize> {
        self.apps.iter().position(|a| a == app).map(|i| self.assignments[i])
    }

    /// Renders cluster membership and representatives.
    pub fn render(&self) -> String {
        let mut table = Table::new(["cluster", "representative", "members"]);
        for c in 0..self.cluster_count() {
            table.push([
                format!("C{}", c + 1),
                self.representatives[c].clone(),
                self.members(c).join(", "),
            ]);
        }
        let mut out = format!(
            "Figure 5 / Table 3: {} clusters at linkage distance {:.3}\n{}",
            self.cluster_count(),
            self.cut_distance,
            table.render()
        );
        out.push_str("\nDendrogram merges (id_a, id_b, distance):\n");
        for m in &self.dendrogram.merges {
            out.push_str(&format!("  {} + {} @ {:.3}\n", m.a, m.b, m.distance));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Lab;
    use crate::{fig1, fig3, fig4, table2};
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn similar_apps_cluster_together() {
        // Two compute-bound scalable apps and two streaming SPEC codes:
        // the pairs must land in separate clusters from each other.
        let lab = Lab::new(RunnerConfig::test());
        let names = ["swaptions", "blackscholes", "462.libquantum", "470.lbm"];
        let f1 = fig1::run_subset(&lab, Some(&names));
        let t2 = table2::run_subset(&lab, Some(&names));
        let f3 = fig3::run_subset(&lab, Some(&names));
        let f4 = fig4::run_subset(&lab, Some(&names));
        let fig5 = run_with_target(&f1, &t2, &f3, &f4, 2);
        assert_eq!(fig5.apps.len(), 4);
        assert_eq!(
            fig5.cluster_of("swaptions"),
            fig5.cluster_of("blackscholes"),
            "compute twins split: {}",
            fig5.render()
        );
        // With only four apps, min-max normalization stretches the small
        // libquantum/lbm differences, so we only require the compute and
        // streaming groups to separate (the full 45-app clustering is
        // exercised by the reproduce binary / integration tests).
        assert_ne!(fig5.cluster_of("swaptions"), fig5.cluster_of("470.lbm"));
        assert_ne!(fig5.cluster_of("blackscholes"), fig5.cluster_of("462.libquantum"));
        assert!(fig5.cluster_count() >= 2);
    }
}
