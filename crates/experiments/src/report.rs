//! Plain-text table rendering for experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a plain HTML `<table>` (header row in
    /// `<thead>`, data in `<tbody>`), cells escaped — for the offline
    /// dashboard.
    pub fn render_html(&self) -> String {
        use crate::viz::html_escape;
        let mut out = String::from("<table><thead><tr>");
        for h in &self.header {
            out.push_str(&format!("<th>{}</th>", html_escape(h)));
        }
        out.push_str("</tr></thead><tbody>");
        for row in &self.rows {
            out.push_str("<tr>");
            for cell in row {
                out.push_str(&format!("<td>{}</td>", html_escape(cell)));
            }
            out.push_str("</tr>");
        }
        out.push_str("</tbody></table>");
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    s.push_str("  ");
                }
                s.push_str(cell);
                for _ in cell.len()..widths[c] {
                    s.push(' ');
                }
            }
            s.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as e.g. `1.34x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}x")
}

/// Formats a percentage change from a ratio, e.g. 1.34 → `+34.0%`.
pub fn pct_change(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["app", "slowdown"]);
        t.push(["mcf", "1.30x"]);
        t.push(["a-very-long-name", "1.02x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with("a-very-long-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only-one"]);
    }

    #[test]
    fn renders_html_with_escaping() {
        let mut t = Table::new(["metric", "value"]);
        t.push(["fg<slowdown>", "+6%"]);
        let html = t.render_html();
        assert!(html.starts_with("<table><thead>"));
        assert!(html.ends_with("</tbody></table>"));
        assert!(html.contains("<th>metric</th>"));
        assert!(html.contains("<td>fg&lt;slowdown&gt;</td>"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.345), "1.345x");
        assert_eq!(pct_change(1.34), "+34.0%");
        assert_eq!(pct_change(0.9), "-10.0%");
    }
}
