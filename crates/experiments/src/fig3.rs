//! Figure 3 — execution time with all prefetchers enabled, normalized to
//! all prefetchers disabled (values below 1.0 mean prefetching helps).

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};

/// Threads used (the multiprogram placement: 4 threads on 2 cores).
pub const THREADS: usize = 4;

/// One application's prefetcher sensitivity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Application name.
    pub app: String,
    /// time(prefetchers on) / time(prefetchers off).
    pub ratio: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// Per-application ratios, registry order.
    pub rows: Vec<Fig3Row>,
}

/// Measures the named applications (or all 45).
pub fn run_subset(lab: &Lab, names: Option<&[&str]>) -> Fig3 {
    let apps: Vec<_> = match names {
        Some(ns) => ns.iter().map(|n| lab.app(n).clone()).collect(),
        None => lab.apps().to_vec(),
    };
    let ways = lab.runner().config().machine.llc.ways;
    let jobs: Vec<(usize, bool)> =
        (0..apps.len()).flat_map(|a| [(a, true), (a, false)]).collect();
    let times = parallel_map(jobs.clone(), |&(a, pf)| lab.solo_configured(&apps[a], THREADS, ways, pf).cycles);
    let mut on = vec![0u64; apps.len()];
    let mut off = vec![0u64; apps.len()];
    for (&(a, pf), &t) in jobs.iter().zip(&times) {
        if pf {
            on[a] = t;
        } else {
            off[a] = t;
        }
    }
    let rows = apps
        .iter()
        .enumerate()
        .map(|(a, app)| Fig3Row { app: app.name.to_string(), ratio: on[a] as f64 / off[a] as f64 })
        .collect();
    Fig3 { rows }
}

/// Measures all 45 applications.
pub fn run(lab: &Lab) -> Fig3 {
    run_subset(lab, None)
}

impl Fig3 {
    /// The ratio for one application.
    pub fn ratio(&self, app: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.app == app).map(|r| r.ratio)
    }

    /// Applications insensitive to prefetching (within ±5%), §3.3 counts
    /// 36 of 46 configurations insensitive.
    pub fn insensitive_count(&self) -> usize {
        self.rows.iter().filter(|r| (r.ratio - 1.0).abs() <= 0.05).count()
    }

    /// Renders the figure's series.
    pub fn render(&self) -> String {
        let mut table = Table::new(["app", "on/off", "effect"]);
        for r in &self.rows {
            let effect = if r.ratio < 0.95 {
                "benefits"
            } else if r.ratio > 1.05 {
                "degrades"
            } else {
                "insensitive"
            };
            table.push([r.app.clone(), format!("{:.3}", r.ratio), effect.to_string()]);
        }
        format!("Figure 3: execution time, prefetchers on / off\n{}", table.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn streaming_app_benefits_and_compute_app_does_not() {
        let lab = Lab::new(RunnerConfig::test());
        let fig = run_subset(&lab, Some(&["462.libquantum", "swaptions"]));
        let lq = fig.ratio("462.libquantum").unwrap();
        assert!(lq < 0.85, "libquantum prefetch ratio {lq:.3} should show a large benefit");
        let sw = fig.ratio("swaptions").unwrap();
        assert!((sw - 1.0).abs() < 0.05, "swaptions should be insensitive, got {sw:.3}");
    }
}
