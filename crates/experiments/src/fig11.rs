//! Figure 11 — weighted speedup of consolidation, derived from the same
//! runs as Figure 10: time to run each pair sequentially on the whole
//! machine over the time to run them concurrently.

use crate::fig10::Fig10;
use crate::report::Table;
use serde::{Deserialize, Serialize};
use waypart_analysis::{weighted_speedup, SummaryStats};

/// One pair's weighted speedups per policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Cell {
    /// First application.
    pub a: String,
    /// Second application.
    pub b: String,
    /// Speedup with no partitioning.
    pub shared: f64,
    /// Speedup with the even split.
    pub fair: f64,
    /// Speedup with the best biased split.
    pub biased: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    /// The 21 unordered pairs.
    pub cells: Vec<Fig11Cell>,
}

/// Derives the weighted speedups from the Figure 10 runs.
pub fn run(fig10: &Fig10) -> Fig11 {
    let cells = fig10
        .cells
        .iter()
        .map(|c| Fig11Cell {
            a: c.a.clone(),
            b: c.b.clone(),
            shared: weighted_speedup(c.seq_cycles, 0, c.shared.1),
            fair: weighted_speedup(c.seq_cycles, 0, c.fair.1),
            biased: weighted_speedup(c.seq_cycles, 0, c.biased.1),
        })
        .collect();
    Fig11 { cells }
}

impl Fig11 {
    /// Summary per policy: (shared, fair, biased).
    pub fn stats(&self) -> (SummaryStats, SummaryStats, SummaryStats) {
        (
            SummaryStats::from_values(self.cells.iter().map(|c| c.shared)),
            SummaryStats::from_values(self.cells.iter().map(|c| c.fair)),
            SummaryStats::from_values(self.cells.iter().map(|c| c.biased)),
        )
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut table = Table::new(["pair", "shared", "fair", "biased"]);
        for c in &self.cells {
            table.push([
                format!("{}+{}", c.a, c.b),
                format!("{:.2}", c.shared),
                format!("{:.2}", c.fair),
                format!("{:.2}", c.biased),
            ]);
        }
        let (s, f, b) = self.stats();
        format!(
            "Figure 11: weighted speedup vs sequential execution\n{}\naverages: shared {:.2}, fair {:.2}, biased {:.2}\n",
            table.render(),
            s.mean,
            f.mean,
            b.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Lab;
    use crate::fig10;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn single_threaded_pairs_approach_2x() {
        let lab = Lab::new(RunnerConfig::test());
        let names = ["429.mcf", "459.GemsFDTD"];
        let f10 = fig10::run_for(&lab, &names);
        let f11 = run(&f10);
        let cross = f11.cells.iter().find(|c| c.a != c.b).expect("cross pair");
        assert!(
            cross.biased > 1.3,
            "two single-threaded apps should consolidate well, got {:.2}",
            cross.biased
        );
        assert!(cross.biased <= 2.05, "speedup {:.2} beyond the theoretical bound", cross.biased);
    }
}
