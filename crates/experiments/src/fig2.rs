//! Figure 2 — execution time vs. allocated LLC capacity for the three
//! sensitivity archetypes: `swaptions` (low utility), `tomcat` (saturated
//! utility), `471.omnetpp` (high utility).

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};

/// The three applications the paper plots.
pub const FIG2_APPS: [&str; 3] = ["swaptions", "tomcat", "471.omnetpp"];

/// Thread counts plotted per panel.
pub const FIG2_THREADS: [usize; 4] = [1, 2, 4, 8];

/// One (app, threads) execution-time curve over way allocations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LlcCurve {
    /// Application name.
    pub app: String,
    /// Threads used.
    pub threads: usize,
    /// `times[i]` = cycles with `i + 1` LLC ways.
    pub times: Vec<u64>,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Curves for every (app, thread-count) combination.
    pub curves: Vec<LlcCurve>,
}

/// Measures LLC-capacity curves for arbitrary applications/threads.
pub fn run_for(lab: &Lab, apps: &[&str], thread_counts: &[usize]) -> Fig2 {
    let ways_total = lab.runner().config().machine.llc.ways;
    let specs: Vec<_> = apps.iter().map(|n| lab.app(n).clone()).collect();
    let mut jobs = Vec::new();
    for (a, spec) in specs.iter().enumerate() {
        // Single-threaded apps get one curve, like the paper's omnetpp
        // panel: dedupe requested thread counts by what the app can use.
        let mut seen = Vec::new();
        for &t in thread_counts {
            let eff = spec.effective_threads(t);
            if seen.contains(&eff) {
                continue;
            }
            seen.push(eff);
            for w in 1..=ways_total {
                jobs.push((a, eff, w));
            }
        }
    }
    let times = parallel_map(jobs.clone(), |&(a, t, w)| lab.solo(&specs[a], t, w).cycles);
    let mut curves: Vec<LlcCurve> = Vec::new();
    for (&(a, t, w), &cycles) in jobs.iter().zip(&times) {
        let name = specs[a].name.to_string();
        if curves.last().map(|c| c.app != name || c.threads != t).unwrap_or(true) {
            curves.push(LlcCurve { app: name, threads: t, times: Vec::new() });
        }
        let c = curves.last_mut().expect("just pushed");
        debug_assert_eq!(c.times.len() + 1, w);
        c.times.push(cycles);
    }
    Fig2 { curves }
}

/// Measures the paper's three representative applications.
pub fn run(lab: &Lab) -> Fig2 {
    run_for(lab, &FIG2_APPS, &FIG2_THREADS)
}

impl Fig2 {
    /// The curve for `(app, threads)`.
    pub fn curve(&self, app: &str, threads: usize) -> Option<&LlcCurve> {
        self.curves.iter().find(|c| c.app == app && c.threads == threads)
    }

    /// Renders execution time (normalized to the full-LLC point) per
    /// allocation.
    pub fn render(&self) -> String {
        let ways = self.curves.first().map(|c| c.times.len()).unwrap_or(0);
        let mut header = vec!["app".to_string(), "threads".to_string()];
        header.extend((1..=ways).map(|w| format!("{w}w")));
        let mut table = Table::new(header);
        for c in &self.curves {
            let full = *c.times.last().expect("non-empty curve") as f64;
            let mut row = vec![c.app.clone(), c.threads.to_string()];
            row.extend(c.times.iter().map(|&t| format!("{:.2}", t as f64 / full)));
            table.push(row);
        }
        format!("Figure 2: execution time vs LLC ways (normalized to 12 ways)\n{}", table.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn archetypes_behave_as_labeled() {
        let lab = Lab::new(RunnerConfig::test());
        let fig = run_for(&lab, &["swaptions", "471.omnetpp"], &[4]);

        // swaptions: low utility — beyond the pathological small points,
        // more ways change little.
        let sw = fig.curve("swaptions", 4).unwrap();
        let t3 = sw.times[2] as f64;
        let t12 = sw.times[11] as f64;
        assert!(t3 / t12 < 1.08, "swaptions gained {:.3} from ways 3→12", t3 / t12);

        // omnetpp: high utility — keeps improving with capacity.
        let om = fig.curve("471.omnetpp", 1).unwrap();
        let t4 = om.times[3] as f64;
        let t12 = om.times[11] as f64;
        assert!(t4 / t12 > 1.10, "omnetpp gained only {:.3} from ways 4→12", t4 / t12);
    }

    #[test]
    fn single_threaded_app_has_one_curve() {
        let lab = Lab::new(RunnerConfig::test());
        let fig = run_for(&lab, &["471.omnetpp"], &[1, 2, 4]);
        assert_eq!(fig.curves.len(), 1);
        assert_eq!(fig.curves[0].threads, 1);
    }
}
