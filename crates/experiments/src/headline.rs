//! The paper's headline numbers (§1 / §8), aggregated from Figures 9–13.
//!
//! Paper values: co-scheduling without partitioning gives a 10% energy and
//! 54% throughput improvement with 6% average / 34% worst-case foreground
//! slowdown; optimal static (biased) partitioning gives 12% / 60% with 2%
//! average / 7% worst-case; the dynamic controller holds the foreground
//! within 1–2% of best static while raising background throughput 19% on
//! average (up to 2.5×).

use crate::fig10::Fig10;
use crate::fig11::Fig11;
use crate::fig13::Fig13;
use crate::fig9::Fig9;
use crate::report::Table;
use serde::{Deserialize, Serialize};

/// The aggregated headline metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Headline {
    /// Average foreground slowdown, shared (paper: 1.06).
    pub shared_avg_slowdown: f64,
    /// Worst foreground slowdown, shared (paper: 1.345).
    pub shared_worst_slowdown: f64,
    /// Average foreground slowdown, biased (paper: 1.02).
    pub biased_avg_slowdown: f64,
    /// Worst foreground slowdown, biased (paper: 1.074).
    pub biased_worst_slowdown: f64,
    /// Average relative energy, shared (paper: 0.90).
    pub shared_energy: f64,
    /// Average relative energy, biased (paper: 0.88).
    pub biased_energy: f64,
    /// Average weighted speedup, shared (paper: 1.54).
    pub shared_speedup: f64,
    /// Average weighted speedup, biased (paper: 1.60).
    pub biased_speedup: f64,
    /// Average background gain of dynamic over best static (paper: 1.19).
    pub dynamic_bg_gain: f64,
    /// Peak background gain (paper: ~2.5×).
    pub dynamic_bg_peak: f64,
    /// Average dynamic foreground penalty vs best static (paper ≤ 1.02).
    pub dynamic_fg_penalty: f64,
}

/// Aggregates the consolidated experiments.
pub fn run(fig9: &Fig9, fig10: &Fig10, fig11: &Fig11, fig13: &Fig13) -> Headline {
    let (s9, _, b9) = fig9.stats();
    let (s10, _, b10) = fig10.stats();
    let (s11, _, b11) = fig11.stats();
    let (d13, _) = fig13.stats();
    let headline = Headline {
        shared_avg_slowdown: s9.mean,
        shared_worst_slowdown: s9.max,
        biased_avg_slowdown: b9.mean,
        biased_worst_slowdown: b9.max,
        shared_energy: s10.mean,
        biased_energy: b10.mean,
        shared_speedup: s11.mean,
        biased_speedup: b11.mean,
        dynamic_bg_gain: d13.mean,
        dynamic_bg_peak: d13.max,
        dynamic_fg_penalty: fig13.fg_penalty_stats().mean,
    };
    // One machine-readable summary event so the offline dashboard can
    // rebuild the paper-delta table from the trace alone.
    waypart_telemetry::emit_with(|| {
        waypart_telemetry::Event::instant(
            "headline.summary",
            waypart_telemetry::Stamp::WallUs(waypart_telemetry::wall_now_us()),
        )
        .field("shared_avg_slowdown", headline.shared_avg_slowdown)
        .field("shared_worst_slowdown", headline.shared_worst_slowdown)
        .field("biased_avg_slowdown", headline.biased_avg_slowdown)
        .field("biased_worst_slowdown", headline.biased_worst_slowdown)
        .field("shared_energy", headline.shared_energy)
        .field("biased_energy", headline.biased_energy)
        .field("shared_speedup", headline.shared_speedup)
        .field("biased_speedup", headline.biased_speedup)
        .field("dynamic_bg_gain", headline.dynamic_bg_gain)
        .field("dynamic_bg_peak", headline.dynamic_bg_peak)
        .field("dynamic_fg_penalty", headline.dynamic_fg_penalty)
    });
    headline
}

impl Headline {
    /// Checks the qualitative *shape* the paper reports: who wins and in
    /// what direction, without requiring matching absolute numbers.
    /// Returns human-readable violations (empty = shape holds).
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let mut check = |ok: bool, msg: String| {
            if !ok {
                v.push(msg);
            }
        };
        check(
            self.biased_avg_slowdown <= self.shared_avg_slowdown + 1e-6,
            format!(
                "biased avg slowdown {:.3} should not exceed shared {:.3}",
                self.biased_avg_slowdown, self.shared_avg_slowdown
            ),
        );
        check(
            self.biased_worst_slowdown < self.shared_worst_slowdown,
            format!(
                "biased worst slowdown {:.3} should beat shared {:.3}",
                self.biased_worst_slowdown, self.shared_worst_slowdown
            ),
        );
        check(
            self.shared_energy < 1.0 && self.biased_energy < 1.0,
            format!("consolidation should save energy: shared {:.3}, biased {:.3}", self.shared_energy, self.biased_energy),
        );
        check(
            self.biased_energy <= self.shared_energy + 0.02,
            format!("biased energy {:.3} should be at least as good as shared {:.3}", self.biased_energy, self.shared_energy),
        );
        check(
            self.shared_speedup > 1.2 && self.biased_speedup > 1.2,
            format!("consolidation speedups too low: shared {:.2}, biased {:.2}", self.shared_speedup, self.biased_speedup),
        );
        check(
            self.biased_speedup >= self.shared_speedup - 0.02,
            format!("biased speedup {:.2} should match or beat shared {:.2}", self.biased_speedup, self.shared_speedup),
        );
        // The paper's 1.19x mean gain comes from long runs where the
        // reclamation transient (the controller starts the background at
        // one way) is amortized away. At shorter scales the mean over the
        // 36 pairs hovers at 1.00 +/- 0.03 because most foregrounds are
        // flat and dynamic can only converge *to* best static. The shape
        // claim that survives scaling is therefore: no material mean
        // regression, plus a material peak gain on the pairs with slack.
        check(
            self.dynamic_bg_gain > 0.96,
            format!("dynamic background throughput should stay near best static, got {:.2}", self.dynamic_bg_gain),
        );
        check(
            self.dynamic_bg_peak > 1.1,
            format!("dynamic should materially beat best static where the foreground has slack, got peak {:.2}", self.dynamic_bg_peak),
        );
        check(
            self.dynamic_fg_penalty < 1.05,
            format!("dynamic fg penalty {:.3} should stay within a few % of best static", self.dynamic_fg_penalty),
        );
        v
    }

    /// Renders the paper-vs-measured comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(["metric", "paper", "measured"]);
        let rows: [(&str, &str, String); 11] = [
            ("shared avg fg slowdown", "+6%", format!("{:+.1}%", (self.shared_avg_slowdown - 1.0) * 100.0)),
            ("shared worst fg slowdown", "+34.5%", format!("{:+.1}%", (self.shared_worst_slowdown - 1.0) * 100.0)),
            ("biased avg fg slowdown", "+2.3%", format!("{:+.1}%", (self.biased_avg_slowdown - 1.0) * 100.0)),
            ("biased worst fg slowdown", "+7.4%", format!("{:+.1}%", (self.biased_worst_slowdown - 1.0) * 100.0)),
            ("shared rel. energy", "0.90", format!("{:.3}", self.shared_energy)),
            ("biased rel. energy", "0.88", format!("{:.3}", self.biased_energy)),
            ("shared weighted speedup", "1.54", format!("{:.2}", self.shared_speedup)),
            ("biased weighted speedup", "1.60", format!("{:.2}", self.biased_speedup)),
            ("dynamic bg gain vs best static", "1.19x", format!("{:.2}x", self.dynamic_bg_gain)),
            ("dynamic bg peak gain", "~2.5x", format!("{:.2}x", self.dynamic_bg_peak)),
            ("dynamic fg penalty", "≤ +2%", format!("{:+.1}%", (self.dynamic_fg_penalty - 1.0) * 100.0)),
        ];
        for (m, p, v) in rows {
            t.push([m.to_string(), p.to_string(), v]);
        }
        let violations = self.shape_violations();
        let verdict = if violations.is_empty() {
            "shape HOLDS".to_string()
        } else {
            format!("shape VIOLATED:\n  {}", violations.join("\n  "))
        };
        format!("Headline numbers (paper vs measured)\n{}\n{}\n", t.render(), verdict)
    }
}
