//! Figure 7 — wall-energy contour maps over the allocation space,
//! derived from the Figure 6 sweep.

use crate::fig6::Fig6;
use serde::{Deserialize, Serialize};

/// The paper's contour levels (wall energy relative to the optimum).
pub const CONTOUR_LEVELS: [f64; 9] = [1.0, 1.025, 1.05, 1.10, 1.20, 1.35, 1.50, 1.75, 2.00];

/// One application's contour grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContourGrid {
    /// Application name.
    pub app: String,
    /// `relative[t][w]` = wall energy at (t+1 threads, w+1 ways) divided
    /// by the app's optimal wall energy.
    pub relative: Vec<Vec<f64>>,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// One grid per application.
    pub grids: Vec<ContourGrid>,
}

/// Derives the contour grids from a Figure 6 sweep.
pub fn run(fig6: &Fig6) -> Fig7 {
    let grids = fig6
        .spaces
        .iter()
        .map(|s| {
            let threads = s.points.iter().map(|p| p.threads).max().unwrap_or(0);
            let ways = s.points.iter().map(|p| p.ways).max().unwrap_or(0);
            let best = s.optimal().wall_j;
            let mut relative = vec![vec![f64::NAN; ways]; threads];
            for p in &s.points {
                relative[p.threads - 1][p.ways - 1] = p.wall_j / best;
            }
            ContourGrid { app: s.app.clone(), relative }
        })
        .collect();
    Fig7 { grids }
}

impl ContourGrid {
    /// The contour-level index for a cell (0 = optimal band).
    pub fn level(&self, threads: usize, ways: usize) -> usize {
        let r = self.relative[threads - 1][ways - 1];
        CONTOUR_LEVELS.iter().rposition(|&l| r >= l).unwrap_or(0)
    }
}

impl Fig7 {
    /// The grid for one application.
    pub fn grid(&self, app: &str) -> Option<&ContourGrid> {
        self.grids.iter().find(|g| g.app == app)
    }

    /// Renders an ASCII contour map per application (digits are contour
    /// level indices; 0 is the energy-optimal band).
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 7: wall-energy contours (digit = contour level, 0 = optimal)\n");
        for g in &self.grids {
            out.push_str(&format!("\n{} (rows: ways 12..1, cols: threads 1..8)\n", g.app));
            let threads = g.relative.len();
            let ways = g.relative.first().map(|r| r.len()).unwrap_or(0);
            for w in (1..=ways).rev() {
                let mut line = format!("  {w:>2}w ");
                for t in 1..=threads {
                    let lvl = g.level(t, w);
                    line.push_str(&format!("{lvl}"));
                }
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig6;
    use crate::lab::Lab;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn contours_are_relative_to_optimum() {
        let lab = Lab::new(RunnerConfig::test());
        let f6 = fig6::run_for(&lab, &["ferret"]);
        let f7 = run(&f6);
        let g = f7.grid("ferret").unwrap();
        let min = g
            .relative
            .iter()
            .flatten()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-9, "minimum relative energy {min} should be 1.0");
        assert!(!f7.render().is_empty());
    }
}
