//! Table 1 — thread-scalability classification, measured vs. paper.

use crate::fig1::Fig1;
use crate::lab::Lab;
use crate::report::Table;
use serde::{Deserialize, Serialize};
use waypart_analysis::tables::{classify_scalability, ThreeClass};
use waypart_workloads::ScalClass;

/// One application's measured and expected class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Class measured from the Fig 1 curve.
    pub measured: ThreeClass,
    /// The paper's Table 1 class.
    pub paper: ThreeClass,
}

/// The classification comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Per-application rows.
    pub rows: Vec<Table1Row>,
}

/// Maps the registry's paper-transcribed class onto the classifier's enum.
pub fn scal_to_three(c: ScalClass) -> ThreeClass {
    match c {
        ScalClass::Low => ThreeClass::Low,
        ScalClass::Saturated => ThreeClass::Saturated,
        ScalClass::High => ThreeClass::High,
    }
}

/// Classifies the measured curves and pairs them with the paper's labels.
pub fn run(lab: &Lab, fig1: &Fig1) -> Table1 {
    let rows = fig1
        .curves
        .iter()
        .map(|c| Table1Row {
            app: c.app.clone(),
            measured: classify_scalability(&c.speedups),
            paper: scal_to_three(lab.app(&c.app).scal_class),
        })
        .collect();
    Table1 { rows }
}

impl Table1 {
    /// Fraction of applications whose measured class matches the paper's.
    pub fn agreement(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        self.rows.iter().filter(|r| r.measured == r.paper).count() as f64 / self.rows.len() as f64
    }

    /// Rows where the classes disagree.
    pub fn mismatches(&self) -> Vec<&Table1Row> {
        self.rows.iter().filter(|r| r.measured != r.paper).collect()
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut table = Table::new(["app", "measured", "paper", "match"]);
        for r in &self.rows {
            table.push([
                r.app.clone(),
                r.measured.to_string(),
                r.paper.to_string(),
                if r.measured == r.paper { "yes".into() } else { "NO".to_string() },
            ]);
        }
        format!(
            "Table 1: thread scalability classes (agreement {:.0}%)\n{}",
            self.agreement() * 100.0,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig1;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn classes_match_for_clear_cases() {
        let lab = Lab::new(RunnerConfig::test());
        let f1 = fig1::run_subset(&lab, Some(&["blackscholes", "429.mcf", "h2"]));
        let t1 = run(&lab, &f1);
        assert_eq!(t1.rows.len(), 3);
        for r in &t1.rows {
            assert_eq!(r.measured, r.paper, "{} measured {} vs paper {}", r.app, r.measured, r.paper);
        }
        assert!((t1.agreement() - 1.0).abs() < 1e-9);
    }
}
