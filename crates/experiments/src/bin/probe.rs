//! Ad-hoc diagnostics for calibration (not part of the reproduction).
//!
//! Subcommands: `dynamic` `trace` `energy` `solo` `sweep` `fig11` `fig13`.
//! `probe trace [FG [BG]]` runs a dynamically-partitioned pair with a
//! telemetry collector attached and dumps the controller's decision log —
//! one line per sampling window, with the phase verdict and allocation.
//! The cache-backed subcommands (`fig11`, `fig13`) accept `--shard K/N`
//! to act as one worker of a sharded sweep over the persistent run cache
//! (same protocol as `reproduce --shard`; see DESIGN.md §5f).

use std::process::ExitCode;
use std::sync::Arc;

use waypart_core::dynamic::DynamicConfig;
use waypart_core::policy::PartitionPolicy;
use waypart_core::runner::{Runner, RunnerConfig};
use waypart_core::sweep::ShardSpec;
use waypart_telemetry::sinks::CollectingSink;
use waypart_telemetry::{self as telemetry, FieldValue};
use waypart_workloads::{registry, AppSpec};

const USAGE: &str =
    "usage: probe [dynamic|trace|energy|solo|sweep|fig11|fig13] [--shard K/N] [ARGS...]\n\
  --shard K/N  (fig11/fig13 only) simulate only shard K of N over the shared run cache";

/// Looks `name` up in the registry; on failure prints every known app
/// (instead of panicking with an unhelpful `unwrap` backtrace) and exits.
fn lookup(name: &str) -> Result<AppSpec, ExitCode> {
    match registry::by_name(name) {
        Some(spec) => Ok(spec),
        None => {
            eprintln!("unknown app `{name}`; available:");
            for app in registry::all() {
                eprintln!("  {}", app.name);
            }
            Err(ExitCode::FAILURE)
        }
    }
}

/// Extracts a validated `--shard K/N` from argv, returning the remaining
/// positional args. A malformed spec is a usage error (nonzero exit),
/// never a panic or a silent full-grid run.
fn parse_args() -> Result<(Vec<String>, Option<ShardSpec>), ExitCode> {
    let mut positional = Vec::new();
    let mut shard = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--shard" {
            let Some(spec) = args.next() else {
                eprintln!("probe: --shard needs a K/N value\n{USAGE}");
                return Err(ExitCode::from(2));
            };
            match ShardSpec::parse(&spec) {
                Ok(s) => shard = Some(s),
                Err(e) => {
                    eprintln!("probe: bad --shard `{spec}`: {e}\n{USAGE}");
                    return Err(ExitCode::from(2));
                }
            }
        } else {
            positional.push(a);
        }
    }
    Ok((positional, shard))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

fn run() -> Result<(), ExitCode> {
    let (args, shard) = parse_args()?;
    let arg_or = |n: usize, default: &str| -> String {
        args.get(n).cloned().unwrap_or_else(|| default.into())
    };
    let which = arg_or(0, "dynamic");
    if shard.is_some() && !matches!(which.as_str(), "fig11" | "fig13") {
        eprintln!("probe: `{which}` runs the runner directly (no run cache) — --shard only applies to fig11/fig13\n{USAGE}");
        return Err(ExitCode::from(2));
    }
    /// Builds the lab the fig subcommands measure through: sharded probes
    /// must share the persistent store so peers can exchange results.
    fn fig_lab(shard: Option<ShardSpec>) -> waypart_experiments::Lab {
        use waypart_experiments::Lab;
        match shard {
            Some(spec) => Lab::persistent(RunnerConfig::test()).with_shard(spec),
            None => Lab::new(RunnerConfig::test()),
        }
    }
    let runner = Runner::new(RunnerConfig::test());
    match which.as_str() {
        "dynamic" => {
            let fg = lookup(&arg_or(1, "429.mcf"))?;
            let bg = lookup(&arg_or(2, "swaptions"))?;
            let res = runner.run_pair_dynamic(&fg, &bg, DynamicConfig::paper());
            println!("fg_cycles {} reallocs {}", res.fg_cycles, res.reallocations);
            println!("ways trace: {:?}", res.fg_ways_trace.iter().map(|p| p.1).collect::<Vec<_>>());
            println!("windows ({}):", res.fg_mpki.len());
            for (i, (instr, mpki)) in res.fg_mpki.points().iter().enumerate() {
                println!("  w{i:3} instr {instr:>10} mpki {mpki:8.2}");
            }
        }
        "trace" => {
            let fg = lookup(&arg_or(1, "429.mcf"))?;
            let bg = lookup(&arg_or(2, "swaptions"))?;
            let sink = Arc::new(CollectingSink::new());
            telemetry::set_sink(sink.clone());
            let res = runner.run_pair_dynamic(&fg, &bg, DynamicConfig::paper());
            telemetry::clear_sink();
            println!(
                "{}+{}: fg_cycles {} reallocs {} — controller decision log:",
                fg.name, bg.name, res.fg_cycles, res.reallocations
            );
            let fmt = |v: Option<&FieldValue>| match v {
                Some(FieldValue::F64(x)) => format!("{x:8.2}"),
                Some(FieldValue::U64(n)) => format!("{n}"),
                Some(FieldValue::Str(s)) => s.clone(),
                Some(FieldValue::Bool(b)) => b.to_string(),
                Some(FieldValue::I64(n)) => format!("{n}"),
                None => "-".into(),
            };
            for ev in sink.take() {
                match ev.name {
                    "dyn.decision" => println!(
                        "  cycle {:>12} raw {} smoothed {} phase {:<13} fg_ways {:>2} reclaiming {}",
                        ev.stamp.ticks(),
                        fmt(ev.get("raw_mpki")),
                        fmt(ev.get("mpki")),
                        fmt(ev.get("phase")),
                        fmt(ev.get("fg_ways")),
                        fmt(ev.get("reclaiming")),
                    ),
                    "dyn.realloc" => println!(
                        "  cycle {:>12} REALLOC {} -> {} ways ({})",
                        ev.stamp.ticks(),
                        fmt(ev.get("from_ways")),
                        fmt(ev.get("to_ways")),
                        fmt(ev.get("phase")),
                    ),
                    _ => {}
                }
            }
        }
        "energy" => {
            for (a, b) in [("429.mcf", "429.mcf"), ("429.mcf", "459.GemsFDTD"), ("459.GemsFDTD", "459.GemsFDTD")] {
                let fg = lookup(a)?;
                let bg = lookup(b)?;
                let sa = runner.run_solo(&fg, 8, 12);
                let sb = runner.run_solo(&bg, 8, 12);
                for ways in [3, 6, 9] {
                    let both = runner.run_pair_both_once(&fg, &bg, PartitionPolicy::Biased { fg_ways: ways });
                    println!(
                        "{a}+{b} fg_ways {ways}: seq cycles {} conc {} (fg {} bg {}), seq J {:.3} conc J {:.3} rel {:.3}",
                        sa.cycles + sb.cycles,
                        both.total_cycles,
                        both.fg_cycles,
                        both.bg_cycles,
                        sa.energy.socket_j + sb.energy.socket_j,
                        both.energy.socket_j,
                        both.energy.socket_j / (sa.energy.socket_j + sb.energy.socket_j)
                    );
                }
            }
        }
        "solo" => {
            let name = arg_or(1, "429.mcf");
            let app = lookup(&name)?;
            for ways in 1..=12 {
                let r = runner.run_solo(&app, 4, ways);
                println!(
                    "{name} ways {ways:>2}: cycles {:>12} mpki {:>7.2} apki {:>7.2} ipc {:.3}",
                    r.cycles,
                    r.counters.mpki(),
                    r.counters.apki(),
                    r.counters.ipc()
                );
            }
        }
        "sweep" => {
            let fg = lookup(&arg_or(1, "429.mcf"))?;
            let bg = lookup(&arg_or(2, "429.mcf"))?;
            let solo = runner.run_solo(&fg, 4, 12).cycles;
            let search = waypart_core::static_search::best_biased(&runner, &fg, &bg, solo);
            for (w, s) in &search.slowdowns {
                println!("fg_ways {w:>2}: slowdown {s:.4}");
            }
            println!("winner: {} ways", search.fg_ways);
        }
        "fig11" => {
            use waypart_experiments::{fig10, fig11, fig9};
            let lab = fig_lab(shard);
            let f9 = fig9::run(&lab);
            let f10 = fig10::run(&lab, &f9);
            let f11 = fig11::run(&f10);
            for (i, c) in f11.cells.iter().enumerate() {
                let ways = f9
                    .cell(&c.a, &c.b)
                    .map(|x| x.biased_ways)
                    .unwrap_or(0);
                println!(
                    "{:>2} {:<14}+{:<14} shared {:.3} fair {:.3} biased {:.3} (fg_ways {})",
                    i, c.a, c.b, c.shared, c.fair, c.biased, ways
                );
            }
            let (s, f, b) = f11.stats();
            println!("avg shared {:.3} fair {:.3} biased {:.3}", s.mean, f.mean, b.mean);
        }
        "fig13" => {
            use waypart_experiments::{fig13, fig9};
            let lab = fig_lab(shard);
            let f9 = fig9::run(&lab);
            let f13 = fig13::run(&lab, &f9);
            for c in &f13.cells {
                let ways = f9.cell(&c.fg, &c.bg).map(|x| x.biased_ways).unwrap_or(0);
                println!(
                    "{:<14} + {:<14} dyn {:.2}x shared {:.2}x fg_pen {:+.1}% (static fg_ways {})",
                    c.fg,
                    c.bg,
                    c.dynamic,
                    c.shared,
                    (c.dynamic_fg_penalty - 1.0) * 100.0,
                    ways
                );
            }
            let (d, s) = f13.stats();
            println!("avg dynamic {:.2}x shared {:.2}x", d.mean, s.mean);
        }
        other => {
            eprintln!("unknown probe `{other}` (use dynamic|trace|energy|solo|sweep|fig11|fig13)");
            return Err(ExitCode::FAILURE);
        }
    }
    Ok(())
}
