//! Ad-hoc diagnostics for calibration (not part of the reproduction).

use waypart_core::dynamic::DynamicConfig;
use waypart_core::policy::PartitionPolicy;
use waypart_core::runner::{Runner, RunnerConfig};
use waypart_workloads::registry;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "dynamic".into());
    let runner = Runner::new(RunnerConfig::test());
    match which.as_str() {
        "dynamic" => {
            let fg_name = std::env::args().nth(2).unwrap_or_else(|| "429.mcf".into());
            let bg_name = std::env::args().nth(3).unwrap_or_else(|| "swaptions".into());
            let fg = registry::by_name(&fg_name).unwrap();
            let bg = registry::by_name(&bg_name).unwrap();
            let res = runner.run_pair_dynamic(&fg, &bg, DynamicConfig::paper());
            println!("fg_cycles {} reallocs {}", res.fg_cycles, res.reallocations);
            println!("ways trace: {:?}", res.fg_ways_trace.iter().map(|p| p.1).collect::<Vec<_>>());
            println!("windows ({}):", res.fg_mpki.len());
            for (i, (instr, mpki)) in res.fg_mpki.points().iter().enumerate() {
                println!("  w{i:3} instr {instr:>10} mpki {mpki:8.2}");
            }
        }
        "energy" => {
            for (a, b) in [("429.mcf", "429.mcf"), ("429.mcf", "459.GemsFDTD"), ("459.GemsFDTD", "459.GemsFDTD")] {
                let fg = registry::by_name(a).unwrap();
                let bg = registry::by_name(b).unwrap();
                let sa = runner.run_solo(&fg, 8, 12);
                let sb = runner.run_solo(&bg, 8, 12);
                for ways in [3, 6, 9] {
                    let both = runner.run_pair_both_once(&fg, &bg, PartitionPolicy::Biased { fg_ways: ways });
                    println!(
                        "{a}+{b} fg_ways {ways}: seq cycles {} conc {} (fg {} bg {}), seq J {:.3} conc J {:.3} rel {:.3}",
                        sa.cycles + sb.cycles,
                        both.total_cycles,
                        both.fg_cycles,
                        both.bg_cycles,
                        sa.energy.socket_j + sb.energy.socket_j,
                        both.energy.socket_j,
                        both.energy.socket_j / (sa.energy.socket_j + sb.energy.socket_j)
                    );
                }
            }
        }
        "solo" => {
            let name = std::env::args().nth(2).unwrap_or_else(|| "429.mcf".into());
            let app = registry::by_name(&name).unwrap();
            for ways in 1..=12 {
                let r = runner.run_solo(&app, 4, ways);
                println!(
                    "{name} ways {ways:>2}: cycles {:>12} mpki {:>7.2} apki {:>7.2} ipc {:.3}",
                    r.cycles,
                    r.counters.mpki(),
                    r.counters.apki(),
                    r.counters.ipc()
                );
            }
        }
        "sweep" => {
            let a = std::env::args().nth(2).unwrap_or_else(|| "429.mcf".into());
            let b = std::env::args().nth(3).unwrap_or_else(|| "429.mcf".into());
            let fg = registry::by_name(&a).unwrap();
            let bg = registry::by_name(&b).unwrap();
            let solo = runner.run_solo(&fg, 4, 12).cycles;
            let search = waypart_core::static_search::best_biased(&runner, &fg, &bg, solo);
            for (w, s) in &search.slowdowns {
                println!("fg_ways {w:>2}: slowdown {s:.4}");
            }
            println!("winner: {} ways", search.fg_ways);
        }
        "fig11" => {
            use waypart_experiments::{fig10, fig11, fig9, Lab};
            let lab = Lab::new(RunnerConfig::test());
            let f9 = fig9::run(&lab);
            let f10 = fig10::run(&lab, &f9);
            let f11 = fig11::run(&f10);
            for (i, c) in f11.cells.iter().enumerate() {
                let ways = f9
                    .cell(&c.a, &c.b)
                    .map(|x| x.biased_ways)
                    .unwrap_or(0);
                println!(
                    "{:>2} {:<14}+{:<14} shared {:.3} fair {:.3} biased {:.3} (fg_ways {})",
                    i, c.a, c.b, c.shared, c.fair, c.biased, ways
                );
            }
            let (s, f, b) = f11.stats();
            println!("avg shared {:.3} fair {:.3} biased {:.3}", s.mean, f.mean, b.mean);
        }
        "fig13" => {
            use waypart_experiments::{fig13, fig9, Lab};
            let lab = Lab::new(RunnerConfig::test());
            let f9 = fig9::run(&lab);
            let f13 = fig13::run(&lab, &f9);
            for c in &f13.cells {
                let ways = f9.cell(&c.fg, &c.bg).map(|x| x.biased_ways).unwrap_or(0);
                println!(
                    "{:<14} + {:<14} dyn {:.2}x shared {:.2}x fg_pen {:+.1}% (static fg_ways {})",
                    c.fg,
                    c.bg,
                    c.dynamic,
                    c.shared,
                    (c.dynamic_fg_penalty - 1.0) * 100.0,
                    ways
                );
            }
            let (d, s) = f13.stats();
            println!("avg dynamic {:.2}x shared {:.2}x", d.mean, s.mean);
        }
        other => eprintln!("unknown probe {other}"),
    }
}
