//! Live fleet status: renders the worker heartbeats under
//! `<cache>/spool/` as a table, flags stalled workers, and can snapshot
//! the view as a self-contained HTML dashboard.
//!
//! ```text
//! status [--cache DIR] [--stale-secs SECS] [--watch [SECS]] [--html FILE]
//! ```
//!
//! Every `reproduce` invocation with a persistent cache maintains an
//! atomic `status.json` heartbeat in its spool directory (shard workers
//! under `<cache>/spool/K-of-N/`, unsharded runs under
//! `<cache>/spool/main/`). This binary is the read side: worker, state
//! (RUNNING / STALLED / DONE), current pipeline phase, run-grid progress,
//! cache traffic, claims held, smoothed ns/access, and heartbeat age. A
//! worker whose heartbeat is older than `--stale-secs` (default 30) and
//! not marked done is STALLED — it crashed or hung, and its claims will
//! be taken over by peers once the §5f grace period expires.
//!
//! `--watch [SECS]` re-renders every SECS (default 2) until interrupted.
//! `--html FILE` additionally writes a static dashboard snapshot that
//! passes `report --check` (balanced tags, no scripts, no URLs).
//!
//! A malformed heartbeat is reported with its path and reason, and the
//! process exits nonzero — a torn or hand-edited status file must never
//! silently vanish from a fleet report.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use waypart_experiments::fleet::{
    outstanding_claims, scan_fleet, WorkerState, WorkerStatus, DEFAULT_STALE_SECS,
};
use waypart_experiments::report::Table;
use waypart_experiments::viz::html_escape;
use waypart_telemetry::progress;

const USAGE: &str = "usage: status [--cache DIR] [--stale-secs SECS] [--watch [SECS]] [--html FILE]\n\
  --cache DIR       run-cache directory (default $WAYPART_CACHE_DIR or results/cache)\n\
  --stale-secs N    heartbeat age after which a not-done worker is STALLED (default 30)\n\
  --watch [SECS]    re-render every SECS seconds (default 2) until interrupted\n\
  --html FILE       also write a self-contained HTML snapshot of the fleet";

fn state_label(state: WorkerState) -> &'static str {
    match state {
        WorkerState::Running => "RUNNING",
        WorkerState::Stalled => "STALLED",
        WorkerState::Done => "DONE",
    }
}

/// One renderable view of the fleet at a scan instant.
struct FleetView {
    fleet: Vec<WorkerStatus>,
    claims: Vec<(PathBuf, f64)>,
    now_ms: u64,
    stale_secs: f64,
    spool: PathBuf,
}

impl FleetView {
    fn scan(cache: &PathBuf, stale_secs: f64) -> Result<FleetView, String> {
        let spool = cache.join("spool");
        let fleet = scan_fleet(&spool)?;
        Ok(FleetView {
            fleet,
            claims: outstanding_claims(cache),
            now_ms: progress::unix_now_ms(),
            stale_secs,
            spool,
        })
    }

    fn stalled(&self) -> usize {
        self.fleet
            .iter()
            .filter(|w| w.state(self.now_ms, self.stale_secs) == WorkerState::Stalled)
            .count()
    }

    fn table(&self) -> Table {
        let mut t = Table::new([
            "worker", "state", "phase", "progress", "runs", "hits", "misses", "waits",
            "takeovers", "claims", "ns/acc", "age",
        ]);
        for w in &self.fleet {
            let state = w.state(self.now_ms, self.stale_secs);
            t.push([
                w.worker.clone(),
                state_label(state).to_string(),
                w.phase.clone(),
                format!("{:.0}%", w.progress_frac() * 100.0),
                format!("{}/{}", w.runs_done, w.runs_total),
                format!("{}", w.mem_hits + w.disk_hits),
                format!("{}", w.misses),
                format!("{}", w.waits),
                format!("{}", w.takeovers),
                format!("{}", w.claims_held),
                match w.ns_per_access {
                    Some(ns) => format!("{ns:.1}"),
                    None => "—".to_string(),
                },
                format!("{:.0}s", w.age_secs(self.now_ms)),
            ]);
        }
        t
    }

    fn render_text(&self) -> String {
        let mut out = String::new();
        if self.fleet.is_empty() {
            out.push_str(&format!("no worker heartbeats under {}\n", self.spool.display()));
            return out;
        }
        out.push_str(&self.table().render());
        let stalled = self.stalled();
        if stalled > 0 {
            out.push_str(&format!(
                "\nWARNING: {stalled} worker(s) STALLED (heartbeat older than {:.0}s, not done) \
                 — crashed or hung; peers take over their claims after the grace period\n",
                self.stale_secs,
            ));
        }
        if !self.claims.is_empty() {
            out.push_str(&format!("\noutstanding claims ({}):\n", self.claims.len()));
            for (path, age) in self.claims.iter().take(8) {
                out.push_str(&format!("  {:.0}s  {}\n", age, path.display()));
            }
            if self.claims.len() > 8 {
                out.push_str(&format!("  ... and {} more\n", self.claims.len() - 8));
            }
        }
        out
    }

    /// Self-contained HTML snapshot; passes the `report --check` rules
    /// (balanced tags, `data-cells` total > 0, no scripts or URLs).
    fn render_html(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "<h1>waypart fleet status</h1><p class=\"meta\">spool: <code>{}</code> \
             &middot; {} worker(s), {} stalled, {} open claim(s) \
             &middot; stale threshold {:.0}s</p>",
            html_escape(&self.spool.display().to_string()),
            self.fleet.len(),
            self.stalled(),
            self.claims.len(),
            self.stale_secs,
        ));
        if self.fleet.is_empty() {
            body.push_str(
                "<div class=\"panel\" data-cells=\"0\"><p class=\"placeholder\">no worker \
                 heartbeats found</p></div>",
            );
        } else {
            body.push_str(&format!(
                "<div class=\"panel\" data-cells=\"{}\"><h2>Workers</h2>{}</div>",
                self.fleet.len(),
                self.table().render_html(),
            ));
        }
        if !self.claims.is_empty() {
            let mut t = Table::new(["claim", "age"]);
            for (path, age) in &self.claims {
                let name = path.file_name().unwrap_or_default().to_string_lossy().into_owned();
                t.push([name, format!("{age:.0}s")]);
            }
            body.push_str(&format!(
                "<div class=\"panel\" data-cells=\"{}\"><h2>Outstanding claims</h2>{}</div>",
                self.claims.len(),
                t.render_html(),
            ));
        }
        format!(
            "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
             <title>waypart fleet status</title><style>{STYLE}</style></head>\
             <body data-kind=\"fleet\">{body}</body></html>"
        )
    }
}

/// Inline stylesheet — the snapshot's only styling, embedded so the file
/// has zero external references.
const STYLE: &str = "body{font-family:system-ui,sans-serif;margin:2em auto;max-width:70em;\
color:#111}h1{font-size:1.5em}h2{font-size:1.1em;margin:0 0 .5em}\
.meta{color:#555}.panel{border:1px solid #ddd;border-radius:6px;padding:1em;margin:1em 0}\
.placeholder{color:#777;font-style:italic}table{border-collapse:collapse}\
th,td{border:1px solid #ccc;padding:.25em .6em;text-align:left;font-size:.9em}\
th{background:#f3f4f6}code{background:#f3f4f6;padding:0 .2em}";

fn main() -> ExitCode {
    let mut cache = std::env::var_os("WAYPART_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results").join("cache"));
    let mut stale_secs = DEFAULT_STALE_SECS;
    let mut watch: Option<f64> = None;
    let mut html: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cache" => match args.next() {
                Some(dir) => cache = PathBuf::from(dir),
                None => return usage_error("--cache needs a directory"),
            },
            "--stale-secs" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => stale_secs = v,
                _ => return usage_error("--stale-secs needs a positive number"),
            },
            "--watch" => {
                // The interval operand is optional: `--watch 5` or bare
                // `--watch`; a following flag is not an interval.
                watch = Some(
                    args.peek()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|v| *v > 0.0)
                        .map(|v| {
                            args.next();
                            v
                        })
                        .unwrap_or(2.0),
                );
            }
            "--html" => match args.next() {
                Some(p) => html = Some(PathBuf::from(p)),
                None => return usage_error("--html needs a file path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    loop {
        let view = match FleetView::scan(&cache, stale_secs) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("status: {e}");
                return ExitCode::FAILURE;
            }
        };
        if watch.is_some() {
            // Clear screen + home, like `watch(1)`.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", view.render_text());
        if let Some(path) = &html {
            if let Err(e) = std::fs::write(path, view.render_html()) {
                eprintln!("status: {}: cannot write: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("\nfleet snapshot written to {}", path.display());
        }
        match watch {
            Some(interval) => std::thread::sleep(Duration::from_secs_f64(interval)),
            None => return ExitCode::SUCCESS,
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("status: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
