//! Offline occupancy dashboard: folds a JSONL trace (and optionally a
//! metrics JSON) from `reproduce` into ONE self-contained static HTML
//! file — inline SVG sparklines, an LLC-occupancy heatmap (cores × time),
//! per-level latency-percentile tables, and a paper-delta table against
//! the headline numbers of §6.3. No JavaScript, no stylesheets, no
//! external references of any kind: the file renders from `file://` on an
//! air-gapped machine.
//!
//! ```text
//! report --trace PATH.jsonl [--metrics PATH.json] [--out report.html]
//! report --history BENCH_history.jsonl [--verdicts FILE.jsonl] [--out trend.html]
//! report --check report.html
//! ```
//!
//! `--history` renders the perf-trend analytics page instead of the run
//! dashboard: one sparkline panel per tracked metric (cold/warm seconds,
//! engine ns/access, sharded cold time, parallel efficiency) across the
//! sessions recorded in a `BENCH_history.jsonl`, segmented by host,
//! annotated with `sentry --json` verdicts when `--verdicts` is given.
//!
//! `--check` validates a generated report instead of building one:
//! balanced structural tags, non-empty data panels (`data-cells` > 0),
//! and the absence of URL-shaped strings or script tags. Exits nonzero
//! on the first violation; used by `scripts/ci.sh`. The same rules apply
//! to every page this binary emits (dashboard and trend alike).
//!
//! Cache-warm traces (a `reproduce` rerun that replayed everything from
//! `results/cache/`) carry `dyn.run` summaries but no `runner.run` spans
//! or `sim.*` events; the report then shows an explicit "replayed from
//! cache" banner and per-panel placeholders rather than empty plots.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use waypart_experiments::report::Table;
use waypart_experiments::viz::{html_escape, svg_heatmap, svg_sparkline};
use waypart_telemetry::schema::{parse_json, Json};

/// Numeric field accessor.
fn num(j: &Json, key: &str) -> Option<f64> {
    match j.get(key) {
        Some(Json::Num { value, .. }) => Some(*value),
        _ => None,
    }
}

/// String field accessor.
fn text(j: &Json, key: &str) -> Option<String> {
    match j.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// One `sim.occupancy` window: per-core resident LLC lines plus the
/// current foreground way split.
struct OccWindow {
    per_core: Vec<f64>,
    fg_ways: f64,
}

/// One `sim.latency` per-level summary (cumulative over a run).
#[derive(Clone)]
struct LatencyRow {
    count: f64,
    min: f64,
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
    mean: f64,
}

/// Everything the dashboard reads out of the trace.
#[derive(Default)]
struct TraceData {
    total_lines: u64,
    /// `runner.run` begins: (tid, kind, fg, bg).
    runs: Vec<(u32, String, String, String)>,
    /// `sim.occupancy` windows per sim track.
    occupancy: BTreeMap<u32, Vec<OccWindow>>,
    /// Best (highest-count) `sim.latency` summary per level name.
    latency: BTreeMap<String, LatencyRow>,
    /// `headline.summary` fields, if the headline artifact ran.
    headline: Option<Vec<(String, f64)>>,
    /// `figure.run` end events: (figure, seconds).
    figure_secs: Vec<(String, f64)>,
    /// `dyn.run` summaries (fire even on a warm cache).
    dyn_runs: u64,
    /// Aggregate `{"record":"series"}` lines: (name, tid, values).
    series: Vec<(String, u32, Vec<f64>)>,
    /// Fallback per-track MPKI from raw `perfmon.window` counters.
    raw_mpki: BTreeMap<u32, Vec<f64>>,
}

impl TraceData {
    /// A fully-warm trace: results were served from the run cache, so no
    /// simulation events exist to plot.
    fn is_cache_warm(&self) -> bool {
        self.runs.is_empty() && self.dyn_runs > 0
    }
}

fn parse_trace(text_body: &str) -> Result<TraceData, String> {
    let mut d = TraceData::default();
    for (i, line) in text_body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        d.total_lines += 1;
        if j.get("record").is_some() {
            if text(&j, "record").as_deref() == Some("series") {
                if let (Some(name), Some(tid), Some(Json::Arr(pts))) =
                    (text(&j, "name"), num(&j, "tid"), j.get("points"))
                {
                    let values = pts
                        .iter()
                        .filter_map(|p| match p {
                            Json::Arr(pair) if pair.len() == 2 => match &pair[1] {
                                Json::Num { value, .. } => Some(*value),
                                _ => None,
                            },
                            _ => None,
                        })
                        .collect();
                    d.series.push((name, tid as u32, values));
                }
            }
            continue;
        }
        let (name, kind) = match (text(&j, "name"), text(&j, "kind")) {
            (Some(n), Some(k)) => (n, k),
            _ => continue,
        };
        let tid = num(&j, "tid").unwrap_or(0.0) as u32;
        match (name.as_str(), kind.as_str()) {
            ("runner.run", "begin") => {
                d.runs.push((tid, field_str(&j, "kind"), field_str(&j, "fg"), field_str(&j, "bg")))
            }
            ("sim.occupancy", "counter") => {
                if let Some(Json::Obj(fields)) = j.get("fields") {
                    let mut per_core = Vec::new();
                    for core in 0..8 {
                        match fields.iter().find(|(k, _)| k == &format!("occ_c{core}")) {
                            Some((_, Json::Num { value, .. })) => per_core.push(*value),
                            _ => break,
                        }
                    }
                    let fg_ways = fields
                        .iter()
                        .find(|(k, _)| k == "fg_ways")
                        .and_then(|(_, v)| match v {
                            Json::Num { value, .. } => Some(*value),
                            _ => None,
                        })
                        .unwrap_or(0.0);
                    d.occupancy.entry(tid).or_default().push(OccWindow { per_core, fg_ways });
                }
            }
            ("sim.latency", "instant") => {
                if let Some(Json::Obj(fields)) = j.get("fields") {
                    let f = |key: &str| {
                        fields
                            .iter()
                            .find(|(k, _)| k == key)
                            .and_then(|(_, v)| match v {
                                Json::Num { value, .. } => Some(*value),
                                _ => None,
                            })
                            .unwrap_or(0.0)
                    };
                    let level = fields
                        .iter()
                        .find(|(k, _)| k == "level")
                        .and_then(|(_, v)| match v {
                            Json::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .unwrap_or_else(|| "?".into());
                    let row = LatencyRow {
                        count: f("count"),
                        min: f("min"),
                        p50: f("p50"),
                        p90: f("p90"),
                        p99: f("p99"),
                        max: f("max"),
                        mean: f("mean"),
                    };
                    if row.count > 0.0 {
                        let keep = d
                            .latency
                            .get(&level)
                            .map(|prev| row.count > prev.count)
                            .unwrap_or(true);
                        if keep {
                            d.latency.insert(level, row);
                        }
                    }
                }
            }
            ("headline.summary", "instant") => {
                if let Some(Json::Obj(fields)) = j.get("fields") {
                    d.headline = Some(
                        fields
                            .iter()
                            .filter_map(|(k, v)| match v {
                                Json::Num { value, .. } => Some((k.clone(), *value)),
                                _ => None,
                            })
                            .collect(),
                    );
                }
            }
            ("figure.run", "end") => {
                if let Some(secs) = field_num(&j, "seconds") {
                    d.figure_secs.push((field_str(&j, "figure"), secs));
                }
            }
            ("dyn.run", "instant") => d.dyn_runs += 1,
            ("perfmon.window", "counter") => {
                if let Some(mpki) = field_num(&j, "mpki") {
                    d.raw_mpki.entry(tid).or_default().push(mpki);
                }
            }
            _ => {}
        }
    }
    Ok(d)
}

/// String field from inside an event's `fields` object.
fn field_str(j: &Json, key: &str) -> String {
    match j.get("fields").and_then(|f| f.get(key)) {
        Some(Json::Str(s)) => s.clone(),
        _ => String::new(),
    }
}

/// Number field from inside an event's `fields` object.
fn field_num(j: &Json, key: &str) -> Option<f64> {
    match j.get("fields").and_then(|f| f.get(key)) {
        Some(Json::Num { value, .. }) => Some(*value),
        _ => None,
    }
}

/// The paper's headline values, keyed by the `headline.summary` field
/// names (§1/§6.3/§8 of Cook et al.).
const PAPER_HEADLINE: [(&str, &str, &str); 11] = [
    ("shared_avg_slowdown", "shared avg fg slowdown", "+6%"),
    ("shared_worst_slowdown", "shared worst fg slowdown", "+34.5%"),
    ("biased_avg_slowdown", "biased avg fg slowdown", "+2.3%"),
    ("biased_worst_slowdown", "biased worst fg slowdown", "+7.4%"),
    ("shared_energy", "shared rel. energy", "0.90"),
    ("biased_energy", "biased rel. energy", "0.88"),
    ("shared_speedup", "shared weighted speedup", "1.54"),
    ("biased_speedup", "biased weighted speedup", "1.60"),
    ("dynamic_bg_gain", "dynamic bg gain vs best static", "1.19x"),
    ("dynamic_bg_peak", "dynamic bg peak gain", "~2.5x"),
    ("dynamic_fg_penalty", "dynamic fg penalty", "<= +2%"),
];

fn panel(title: &str, body: String) -> String {
    format!("<div class=\"panel\"><h2>{}</h2>{}</div>", html_escape(title), body)
}

fn placeholder(msg: &str) -> String {
    format!("<p class=\"placeholder\">{}</p>", html_escape(msg))
}

fn build_html(d: &TraceData, metrics: Option<&Json>, trace_path: &str) -> String {
    let mut body = String::new();

    // ---- header + provenance
    let scale = metrics.and_then(|m| text(m, "scale")).unwrap_or_else(|| "?".into());
    body.push_str(&format!(
        "<h1>waypart run report</h1><p class=\"meta\">trace: <code>{}</code> \
         &middot; scale: <code>{}</code> &middot; {} trace lines, {} runs, {} controller summaries</p>",
        html_escape(trace_path),
        html_escape(&scale),
        d.total_lines,
        d.runs.len(),
        d.dyn_runs,
    ));
    if d.is_cache_warm() {
        body.push_str(
            "<div class=\"banner\">replayed from cache &mdash; this reproduction was served \
             entirely by the persistent run cache, so no simulation-level events (occupancy, \
             latency, counter windows) were generated. Rerun with <code>--no-cache</code> for \
             the full dashboard.</div>",
        );
    }

    // ---- run inventory
    let mut kind_counts: BTreeMap<String, usize> = BTreeMap::new();
    for (_, kind, _, _) in &d.runs {
        *kind_counts.entry(kind.clone()).or_default() += 1;
    }
    let runs_body = if d.runs.is_empty() {
        placeholder("no runner.run spans in this trace")
    } else {
        let mut t = Table::new(["run kind", "count"]);
        for (kind, n) in &kind_counts {
            t.push([kind.clone(), n.to_string()]);
        }
        t.render_html()
    };
    body.push_str(&panel("Simulated runs", runs_body));

    // ---- MPKI / IPC sparklines (aggregate series preferred, raw fallback)
    let mut spark_rows: Vec<(String, u32, &Vec<f64>)> = d
        .series
        .iter()
        .filter(|(name, _, values)| {
            values.len() >= 2 && (name.ends_with(".mpki") || name.ends_with(".ipc"))
        })
        .map(|(name, tid, values)| (name.clone(), *tid, values))
        .collect();
    spark_rows.sort_by(|a, b| b.2.len().cmp(&a.2.len()).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    let raw_rows: Vec<(String, u32, &Vec<f64>)> = if spark_rows.is_empty() {
        d.raw_mpki
            .iter()
            .filter(|(_, v)| v.len() >= 2)
            .map(|(tid, v)| ("perfmon.window.mpki".to_string(), *tid, v))
            .collect()
    } else {
        Vec::new()
    };
    let all_rows: Vec<&(String, u32, &Vec<f64>)> =
        spark_rows.iter().chain(raw_rows.iter()).take(12).collect();
    let spark_body = if all_rows.is_empty() {
        placeholder("no counter-window series in this trace")
    } else {
        let mut html = String::from("<table><thead><tr><th>series</th><th>track</th>\
             <th>windows</th><th>mean</th><th>trend</th></tr></thead><tbody>");
        for (name, tid, values) in all_rows {
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            html.push_str(&format!(
                "<tr><td>{}</td><td>{tid}</td><td>{}</td><td>{mean:.2}</td><td>{}</td></tr>",
                html_escape(name),
                values.len(),
                svg_sparkline(values, 220, 24),
            ));
        }
        html.push_str("</tbody></table>");
        html
    };
    body.push_str(&panel("Counter windows (MPKI / IPC)", spark_body));

    // ---- occupancy heatmap: showcase the track with the most windows
    let showcase = d.occupancy.iter().max_by_key(|(_, w)| w.len());
    let occ_body = match showcase {
        Some((tid, windows)) if !windows.is_empty() => {
            let cores = windows.iter().map(|w| w.per_core.len()).max().unwrap_or(0);
            let labels: Vec<String> = (0..cores).map(|c| format!("core{c}")).collect();
            let matrix: Vec<Vec<f64>> = (0..cores)
                .map(|c| {
                    windows.iter().map(|w| w.per_core.get(c).copied().unwrap_or(f64::NAN)).collect()
                })
                .collect();
            let fg_ways: Vec<f64> = windows.iter().map(|w| w.fg_ways).collect();
            format!(
                "<p>track {tid}, {} sampling windows; cell = LLC lines held by the core's fills \
                 (Fig 12's occupancy timeline, machine-readable). Foreground way allocation over \
                 the same windows: {}</p>{}",
                windows.len(),
                svg_sparkline(&fg_ways, 260, 24),
                svg_heatmap(&labels, &matrix, 6, 18),
            )
        }
        _ => placeholder(
            "no sim.occupancy windows — occupancy is emitted by dynamically-observed pair runs \
             (fig12/fig13) on cold simulations",
        ),
    };
    body.push_str(&panel("LLC occupancy heatmap", occ_body));

    // ---- latency percentiles
    let lat_body = if d.latency.is_empty() {
        placeholder(
            "no sim.latency summaries — build with `--features telemetry` and run cold to \
             collect per-access latency histograms",
        )
    } else {
        let mut t = Table::new(["level", "accesses", "min", "p50", "p90", "p99", "max", "mean"]);
        for level in ["l1", "l2", "llc", "dram", "bypass"] {
            if let Some(r) = d.latency.get(level) {
                t.push([
                    level.to_string(),
                    format!("{:.0}", r.count),
                    format!("{:.0}", r.min),
                    format!("{:.0}", r.p50),
                    format!("{:.0}", r.p90),
                    format!("{:.0}", r.p99),
                    format!("{:.0}", r.max),
                    format!("{:.1}", r.mean),
                ]);
            }
        }
        format!("<p>per-access latency in cycles, by satisfying level (largest run kept)</p>{}", t.render_html())
    };
    body.push_str(&panel("Access latency percentiles", lat_body));

    // ---- paper delta
    let delta_body = match &d.headline {
        Some(measured) => {
            let lookup: BTreeMap<&str, f64> =
                measured.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            let mut t = Table::new(["metric", "paper", "measured"]);
            for (key, label, paper) in PAPER_HEADLINE {
                let shown = match lookup.get(key) {
                    Some(v) if key.contains("slowdown") || key.contains("penalty") => {
                        format!("{:+.1}%", (v - 1.0) * 100.0)
                    }
                    Some(v) if key.contains("gain") || key.contains("peak") => format!("{v:.2}x"),
                    Some(v) => format!("{v:.3}"),
                    None => "—".to_string(),
                };
                t.push([label.to_string(), paper.to_string(), shown]);
            }
            t.render_html()
        }
        None => placeholder(
            "no headline.summary event — include the `headline` artifact in the reproduce \
             invocation to populate the paper-delta table",
        ),
    };
    body.push_str(&panel("Paper delta (§6.3 headline numbers)", delta_body));

    // ---- phase-level time attribution ("where the time went")
    if let Some(phases) = metrics.and_then(|m| m.get("phase_seconds")) {
        if let Json::Obj(fields) = phases {
            let wall = num(phases, "wall").unwrap_or(0.0);
            let mut t = Table::new(["phase", "seconds", "% of wall"]);
            let mut accounted = 0.0;
            for (name, v) in fields {
                let Json::Num { value, .. } = v else { continue };
                if name == "wall" {
                    continue;
                }
                if name != "other" {
                    accounted += value;
                }
                let share = if wall > 0.0 { value / wall * 100.0 } else { 0.0 };
                t.push([name.clone(), format!("{value:.2}"), format!("{share:.1}%")]);
            }
            let phase_body = format!(
                "<p>{wall:.1}s wall, {:.1}% attributed to instrumented phases \
                 (phase time sums across worker threads)</p>{}",
                if wall > 0.0 { accounted / wall * 100.0 } else { 0.0 },
                t.render_html(),
            );
            body.push_str(&panel("Where the time went (phase attribution)", phase_body));
        }
    }

    // ---- figure timings + cache traffic
    let mut timing_body = if d.figure_secs.is_empty() {
        placeholder("no figure.run spans in this trace")
    } else {
        let mut t = Table::new(["artifact", "seconds"]);
        for (fig, secs) in &d.figure_secs {
            t.push([fig.clone(), format!("{secs:.2}")]);
        }
        t.render_html()
    };
    if let Some(m) = metrics {
        if let Some(cache) = m.get("cache") {
            let g = |k: &str| num(cache, k).unwrap_or(0.0);
            timing_body.push_str(&format!(
                "<p>run cache: {:.0} memory hits, {:.0} disk hits, {:.0} misses \
                 (hit ratio {:.2}), {:.0} bytes read / {:.0} written</p>",
                g("mem_hits"),
                g("disk_hits"),
                g("misses"),
                g("hit_ratio"),
                g("bytes_read"),
                g("bytes_written"),
            ));
        }
    }
    body.push_str(&panel("Harness timing & cache", timing_body));

    format!(
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>waypart run report</title><style>{STYLE}</style></head>\
         <body>{body}</body></html>"
    )
}

/// Inline stylesheet — the report's only styling, embedded so the file
/// has zero external references.
const STYLE: &str = "body{font-family:system-ui,sans-serif;margin:2em auto;max-width:70em;\
color:#111}h1{font-size:1.5em}h2{font-size:1.1em;margin:0 0 .5em}\
.meta{color:#555}.panel{border:1px solid #ddd;border-radius:6px;padding:1em;margin:1em 0}\
.banner{background:#fef3c7;border:1px solid #d97706;border-radius:6px;padding:.8em;margin:1em 0}\
.placeholder{color:#777;font-style:italic}table{border-collapse:collapse}\
th,td{border:1px solid #ccc;padding:.25em .6em;text-align:left;font-size:.9em}\
th{background:#f3f4f6}code{background:#f3f4f6;padding:0 .2em}";

// --------------------------------------------------------------- checking

/// Structural tags that must balance exactly in a well-formed report.
const BALANCED_TAGS: [&str; 8] = ["html", "head", "body", "div", "table", "thead", "tbody", "svg"];

/// Validates a generated report: balanced tags, non-empty heatmap, no
/// external references. Returns human-readable violations.
fn check_report(html: &str) -> Vec<String> {
    let mut violations = Vec::new();
    for tag in BALANCED_TAGS {
        // Opening tags count `<tag` followed by a delimiter so `<table`
        // does not match `<tbody` etc.
        let opens = html
            .match_indices(&format!("<{tag}"))
            .filter(|(i, _)| {
                matches!(html.as_bytes().get(i + 1 + tag.len()), Some(b' ' | b'>' | b'\t'))
            })
            .count();
        let closes = html.matches(&format!("</{tag}>")).count();
        if opens != closes {
            violations.push(format!("unbalanced <{tag}>: {opens} opened, {closes} closed"));
        }
    }
    // The occupancy heatmap must have rendered actual cells.
    let heatmap_cells: u64 = html
        .match_indices("data-cells=\"")
        .filter_map(|(i, pat)| {
            let rest = &html[i + pat.len()..];
            rest.split('"').next().and_then(|n| n.parse::<u64>().ok())
        })
        .sum();
    if heatmap_cells == 0 {
        violations.push("occupancy heatmap is empty (no data-cells rendered)".to_string());
    }
    for banned in ["http://", "https://", "<script", "<link", "@import"] {
        if html.contains(banned) {
            violations.push(format!("external reference or script: found `{banned}`"));
        }
    }
    violations
}

fn main() -> ExitCode {
    let mut trace: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut history: Option<PathBuf> = None;
    let mut verdicts: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => trace = Some(PathBuf::from(args.next().expect("--trace needs a path"))),
            "--metrics" => {
                metrics = Some(PathBuf::from(args.next().expect("--metrics needs a path")))
            }
            "--history" => {
                history = Some(PathBuf::from(args.next().expect("--history needs a path")))
            }
            "--verdicts" => {
                verdicts = Some(PathBuf::from(args.next().expect("--verdicts needs a path")))
            }
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            "--check" => check = Some(PathBuf::from(args.next().expect("--check needs a path"))),
            "--help" | "-h" => {
                println!(
                    "usage: report --trace PATH.jsonl [--metrics PATH.json] [--out report.html]\n\
                     \u{20}      report --history BENCH_history.jsonl [--verdicts FILE.jsonl] [--out trend.html]\n\
                     \u{20}      report --check report.html"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = check {
        let html = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: cannot read: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let violations = check_report(&html);
        if violations.is_empty() {
            println!("{}: OK (well-formed, self-contained)", path.display());
            return ExitCode::SUCCESS;
        }
        for v in &violations {
            eprintln!("{}: {v}", path.display());
        }
        return ExitCode::FAILURE;
    }

    // Trend mode: render the historical perf analytics page and exit.
    if let Some(history_path) = history {
        use waypart_experiments::trend;
        let text_body = match std::fs::read_to_string(&history_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: cannot read: {e}", history_path.display());
                return ExitCode::FAILURE;
            }
        };
        let sessions = match trend::parse_history(&text_body) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: invalid history: {e}", history_path.display());
                return ExitCode::FAILURE;
            }
        };
        let notes = match &verdicts {
            Some(p) => {
                let t = match std::fs::read_to_string(p) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("{}: cannot read: {e}", p.display());
                        return ExitCode::FAILURE;
                    }
                };
                match trend::parse_verdicts(&t) {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("{}: invalid verdicts: {e}", p.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => Vec::new(),
        };
        let html = trend::render_trend_html(&sessions, &notes);
        let out = out.unwrap_or_else(|| PathBuf::from("trend.html"));
        if let Err(e) = std::fs::write(&out, &html) {
            eprintln!("{}: cannot write: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!(
            "trend page written to {} ({} bytes, {} sessions, {} verdicts)",
            out.display(),
            html.len(),
            sessions.len(),
            notes.len(),
        );
        return ExitCode::SUCCESS;
    }

    let trace = match trace {
        Some(t) => t,
        None => {
            eprintln!("--trace is required (see --help)");
            return ExitCode::FAILURE;
        }
    };
    let text_body = match std::fs::read_to_string(&trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{}: cannot read: {e}", trace.display());
            return ExitCode::FAILURE;
        }
    };
    let data = match parse_trace(&text_body) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{}: invalid trace: {e}", trace.display());
            return ExitCode::FAILURE;
        }
    };
    let metrics_doc = metrics.as_ref().and_then(|p| {
        let t = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("{}: cannot read: {e}", p.display()));
        match parse_json(t.trim()) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("{}: ignoring unparseable metrics: {e}", p.display());
                None
            }
        }
    });
    let html = build_html(&data, metrics_doc.as_ref(), &trace.display().to_string());
    let out = out.unwrap_or_else(|| PathBuf::from("report.html"));
    if let Err(e) = std::fs::write(&out, &html) {
        eprintln!("{}: cannot write: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "report written to {} ({} bytes, {} trace lines{})",
        out.display(),
        html.len(),
        data.total_lines,
        if data.is_cache_warm() { ", cache-warm" } else { "" },
    );
    ExitCode::SUCCESS
}
