//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--scale test|bench|full] [--fidelity exact|sampled[:D:S]]
//!           [--out DIR] [--trace PATH]... [--metrics PATH] [ARTIFACT...]
//! ```
//!
//! `ARTIFACT` is any of `fig1 table1 fig2 table2 fig3 fig4 fig5 fig6 fig7
//! fig8 fig9 fig10 fig11 fig12 fig13 headline` or `all` (default). Output
//! goes to `DIR` (default `results/<scale>/`) as one text file per
//! artifact, and to stdout.
//!
//! Completed runs are stored in a persistent cache (`results/cache/`, or
//! `$WAYPART_CACHE_DIR`), so a rerun — or an interrupted run resumed —
//! only pays for measurements it has not seen before. Pass `--no-cache`
//! to keep the cache in memory only. The final line reports hits/misses.
//!
//! ## Fidelity
//!
//! `--fidelity sampled` runs every figure with the SMARTS-style sampled
//! engine (`sampled:D:S` picks a custom detail:skip schedule) — much
//! faster, approximate results. Sampled configs hash differently, so
//! they never collide with exact entries in the run cache. When `fig12`
//! is among the artifacts, an exact-engine anchor run is replayed on the
//! figure's full-capacity allocation and the measured MPKI/IPC error
//! bars are printed alongside the figure (artifact
//! `fig12_error_bars`); DESIGN.md §5e documents the error model.
//!
//! ## Telemetry
//!
//! `--trace PATH` (repeatable) streams the structured event log of the
//! whole reproduction to `PATH`: a `.jsonl` suffix selects the JSONL
//! event schema (validate with the `validate_trace` binary), anything
//! else the Chrome `trace_event` format loadable in `chrome://tracing` /
//! Perfetto. `--metrics PATH` writes an aggregated metrics JSON (event
//! counts/sums, per-figure wall-clock, cache traffic) and prints a
//! summary table at the end. Telemetry observes and never steers:
//! simulated results are byte-identical with or without these flags.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use waypart_core::runner::{FidelityMode, RunnerConfig};
use waypart_experiments::*;
use waypart_telemetry::sinks::{ChromeTraceSink, JsonlSink, MetricsSink, MultiSink, SeriesSink};
use waypart_telemetry::{self as telemetry, Event, Stamp};

/// Wraps each artifact's computation in a wall-stamped `figure.run` span
/// and remembers the per-figure seconds for the metrics file.
struct FigureTimer {
    seconds: RefCell<Vec<(String, f64)>>,
}

impl FigureTimer {
    fn new() -> Self {
        FigureTimer { seconds: RefCell::new(Vec::new()) }
    }

    fn run<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        telemetry::emit_with(|| {
            Event::begin("figure.run", Stamp::WallUs(telemetry::wall_now_us()))
                .field("figure", name)
        });
        let t0 = Instant::now();
        let out = f();
        let secs = t0.elapsed().as_secs_f64();
        telemetry::emit_with(|| {
            Event::end("figure.run", Stamp::WallUs(telemetry::wall_now_us()))
                .field("figure", name)
                .field("seconds", secs)
        });
        self.seconds.borrow_mut().push((name.to_string(), secs));
        out
    }

    /// `{"fig1": 0.52, ...}` for embedding into the metrics JSON.
    fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, secs)) in self.seconds.borrow().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{secs:.6}"));
        }
        out.push('}');
        out
    }
}

/// Parses `--fidelity exact|sampled|sampled:D:S`.
fn parse_fidelity(arg: &str) -> FidelityMode {
    match arg {
        "exact" => FidelityMode::Exact,
        "sampled" => FidelityMode::sampled_default(),
        other => {
            let mut parts = other.splitn(3, ':');
            let (Some("sampled"), Some(d), Some(s)) = (parts.next(), parts.next(), parts.next())
            else {
                panic!("unknown fidelity {other} (use exact|sampled|sampled:D:S)");
            };
            let detail_quanta: u32 = d.parse().expect("fidelity detail quanta");
            let skip_quanta: u32 = s.parse().expect("fidelity skip quanta");
            assert!(detail_quanta >= 1, "fidelity needs at least one detailed quantum per period");
            FidelityMode::Sampled { detail_quanta, skip_quanta }
        }
    }
}

fn main() {
    let mut scale = "test".to_string();
    let mut fidelity_arg = "exact".to_string();
    let mut out: Option<PathBuf> = None;
    let mut use_cache = true;
    let mut trace_paths: Vec<PathBuf> = Vec::new();
    let mut metrics_path: Option<PathBuf> = None;
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().expect("--scale needs a value"),
            "--fidelity" => fidelity_arg = args.next().expect("--fidelity needs a value"),
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a value"))),
            "--no-cache" => use_cache = false,
            "--trace" => trace_paths.push(PathBuf::from(args.next().expect("--trace needs a path"))),
            "--metrics" => metrics_path = Some(PathBuf::from(args.next().expect("--metrics needs a path"))),
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--scale test|bench|full] [--fidelity exact|sampled[:D:S]] \
                     [--out DIR] [--no-cache] [--trace PATH]... [--metrics PATH] [ARTIFACT...]"
                );
                return;
            }
            other => {
                wanted.insert(other.to_string());
            }
        }
    }
    if wanted.is_empty() || wanted.contains("all") {
        wanted = [
            "fig1", "table1", "fig2", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13", "headline", "ext_ucp", "ext_trio",
            "ext_thresholds", "ext_coloring", "ext_qos", "ext_mba",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mut cfg = match scale.as_str() {
        "test" => RunnerConfig::test(),
        "bench" => RunnerConfig::bench(),
        "full" => RunnerConfig::full(),
        other => panic!("unknown scale {other} (use test|bench|full)"),
    };
    cfg.fidelity = parse_fidelity(&fidelity_arg);
    // Sampled artifacts are approximations; never let them overwrite the
    // committed exact artifact set under `results/<scale>/`.
    let out_dir = out.unwrap_or_else(|| {
        if cfg.fidelity == FidelityMode::Exact {
            PathBuf::from("results").join(&scale)
        } else {
            PathBuf::from("results").join(format!("{scale}-sampled"))
        }
    });
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // Install the requested telemetry sinks. The Chrome format is the
    // default; a `.jsonl` suffix selects the line-delimited event schema.
    let mut sinks: Vec<Arc<dyn telemetry::Sink>> = Vec::new();
    for path in &trace_paths {
        if path.extension().is_some_and(|e| e == "jsonl") {
            let sink = JsonlSink::create(path).expect("create --trace file");
            sinks.push(Arc::new(sink));
        } else {
            sinks.push(Arc::new(ChromeTraceSink::create(path)));
        }
    }
    let metrics = if metrics_path.is_some() || !trace_paths.is_empty() {
        let m = Arc::new(MetricsSink::new());
        sinks.push(m.clone());
        Some(m)
    } else {
        None
    };
    // Fold the event stream into named series/histograms in-process; the
    // aggregate records are appended to JSONL traces at the end so the
    // `report` dashboard gets pre-downsampled data alongside raw events.
    let series = if sinks.is_empty() {
        None
    } else {
        let s = Arc::new(SeriesSink::new());
        sinks.push(s.clone());
        Some(s)
    };
    if !sinks.is_empty() {
        telemetry::set_sink(Arc::new(MultiSink::new(sinks)));
    }
    let timer = FigureTimer::new();

    let lab = if use_cache { Lab::persistent(cfg.clone()) } else { Lab::new(cfg.clone()) };
    let started = std::time::Instant::now();
    let emit = |name: &str, text: String| {
        let path = out_dir.join(format!("{name}.txt"));
        std::fs::write(&path, &text).expect("write artifact");
        println!("\n=== {name} ({}s) ===\n{text}", started.elapsed().as_secs());
    };

    // Characterization chain (later artifacts reuse earlier data).
    let needs_characterization = ["fig1", "table1", "table2", "fig5", "headline"]
        .iter()
        .any(|n| wanted.contains(*n))
        || wanted.contains("fig3")
        || wanted.contains("fig4");

    let mut f1 = None;
    let mut t2 = None;
    let mut f3 = None;
    let mut f4 = None;
    if needs_characterization {
        let fig1_data = timer.run("fig1", || fig1::run(&lab));
        if wanted.contains("fig1") {
            emit("fig1", fig1_data.render());
        }
        if wanted.contains("table1") {
            let t1 = timer.run("table1", || table1::run(&lab, &fig1_data));
            emit("table1", t1.render());
        }
        let table2_data = timer.run("table2", || table2::run(&lab));
        if wanted.contains("table2") {
            emit("table2", table2_data.render());
            let at_1mb = table2_data.fraction_satisfied_at(1.0 / 6.0);
            let at_3mb = table2_data.fraction_satisfied_at(0.5);
            emit(
                "table2_capacity_stats",
                format!(
                    "apps within 2% of peak at 1/6 LLC: {:.0}% (paper: 44%)\napps within 2% of peak at 1/2 LLC: {:.0}% (paper: 78%)\n",
                    at_1mb * 100.0,
                    at_3mb * 100.0
                ),
            );
        }
        let fig3_data = timer.run("fig3", || fig3::run(&lab));
        if wanted.contains("fig3") {
            emit("fig3", fig3_data.render());
        }
        let fig4_data = timer.run("fig4", || fig4::run(&lab));
        if wanted.contains("fig4") {
            emit("fig4", fig4_data.render());
        }
        if wanted.contains("fig5") {
            let f5 = timer.run("fig5", || fig5::run(&fig1_data, &table2_data, &fig3_data, &fig4_data));
            emit("fig5", f5.render());
        }
        f1 = Some(fig1_data);
        t2 = Some(table2_data);
        f3 = Some(fig3_data);
        f4 = Some(fig4_data);
    }
    let _ = (f1, t2, f3, f4);

    if wanted.contains("fig2") {
        emit("fig2", timer.run("fig2", || fig2::run(&lab)).render());
    }
    if wanted.contains("fig6") || wanted.contains("fig7") {
        let f6 = timer.run("fig6", || fig6::run(&lab));
        if wanted.contains("fig6") {
            emit("fig6", f6.render());
        }
        if wanted.contains("fig7") {
            emit("fig7", timer.run("fig7", || fig7::run(&f6)).render());
        }
    }
    if wanted.contains("fig8") {
        emit("fig8", timer.run("fig8", || fig8::run(&lab)).render());
    }

    let needs_pairs = ["fig9", "fig10", "fig11", "fig13", "headline"]
        .iter()
        .any(|n| wanted.contains(*n));
    if needs_pairs {
        let f9 = timer.run("fig9", || fig9::run(&lab));
        if wanted.contains("fig9") {
            emit("fig9", f9.render());
        }
        let f10 = timer.run("fig10", || fig10::run(&lab, &f9));
        if wanted.contains("fig10") {
            emit("fig10", f10.render());
        }
        let f11 = timer.run("fig11", || fig11::run(&f10));
        if wanted.contains("fig11") {
            emit("fig11", f11.render());
        }
        let f13 = timer.run("fig13", || fig13::run(&lab, &f9));
        if wanted.contains("fig13") {
            emit("fig13", f13.render());
        }
        if wanted.contains("headline") {
            let h = timer.run("headline", || headline::run(&f9, &f10, &f11, &f13));
            emit("headline", h.render());
        }
    }
    if wanted.contains("fig12") {
        emit("fig12", timer.run("fig12", || fig12::run(&lab)).render());
        if cfg.fidelity != FidelityMode::Exact {
            // Error bars: replay the figure's full-capacity solo run on
            // the exact engine (one run — the sweep itself stays sampled)
            // and report how far the sampled headline numbers drifted.
            let bars = timer.run("fig12_error_bars", || {
                let mut exact_cfg = cfg.clone();
                exact_cfg.fidelity = FidelityMode::Exact;
                let exact_lab = lab.sibling(exact_cfg);
                let app = lab.app(fig12::APP).clone();
                let ways = cfg.machine.llc.ways;
                let sampled = lab.solo(&app, 1, ways);
                let exact = exact_lab.solo(&app, 1, ways);
                let pct = |s: f64, e: f64| if e == 0.0 { 0.0 } else { (s - e) / e * 100.0 };
                format!(
                    "fig12 sampled-vs-exact error bars ({} solo, {ways} ways, {:?}):\n\
                     mean MPKI : sampled {:.4} vs exact {:.4} ({:+.1}%)\n\
                     cum  MPKI : sampled {:.4} vs exact {:.4} ({:+.1}%)\n\
                     IPC       : sampled {:.4} vs exact {:.4} ({:+.1}%)\n\
                     (static sweep and dynamic trace above are sampled; \
                     see DESIGN.md §5e for the error model)\n",
                    fig12::APP,
                    cfg.fidelity,
                    sampled.mpki.mean(),
                    exact.mpki.mean(),
                    pct(sampled.mpki.mean(), exact.mpki.mean()),
                    sampled.counters.mpki(),
                    exact.counters.mpki(),
                    pct(sampled.counters.mpki(), exact.counters.mpki()),
                    sampled.counters.ipc(),
                    exact.counters.ipc(),
                    pct(sampled.counters.ipc(), exact.counters.ipc()),
                )
            });
            emit("fig12_error_bars", bars);
        }
    }
    if wanted.contains("ext_ucp") {
        emit("ext_ucp", timer.run("ext_ucp", || ext_ucp::run(&lab)).render());
    }
    if wanted.contains("ext_trio") {
        emit("ext_trio", timer.run("ext_trio", || ext_trio::run(&lab)).render());
    }
    if wanted.contains("ext_thresholds") {
        emit("ext_thresholds", timer.run("ext_thresholds", || ext_thresholds::run(&lab)).render());
    }
    if wanted.contains("ext_coloring") {
        emit("ext_coloring", timer.run("ext_coloring", || ext_coloring::run(&lab)).render());
    }
    if wanted.contains("ext_qos") {
        emit("ext_qos", timer.run("ext_qos", || ext_qos::run(&lab)).render());
    }
    if wanted.contains("ext_mba") {
        emit("ext_mba", timer.run("ext_mba", || ext_mba::run(&lab)).render());
    }

    let stats = lab.cache_stats();
    println!(
        "\nrun cache: {} runs ({} memory hits, {} disk hits, {} misses)",
        stats.total(),
        stats.mem_hits,
        stats.disk_hits,
        stats.misses
    );

    // Telemetry epilogue: metrics summary table, metrics JSON, trace
    // flush. All purely observational — nothing above read these sinks.
    if let Some(metrics) = &metrics {
        println!("\ntelemetry metrics:\n{}", metrics.render_table());
        println!(
            "run cache traffic: {} bytes read, {} bytes written, {} invalid entries, hit ratio {:.2}",
            stats.bytes_read,
            stats.bytes_written,
            stats.invalid_entries,
            stats.hit_ratio()
        );
        if let Some(path) = &metrics_path {
            let json = format!(
                "{{\"scale\":\"{scale}\",\"figure_seconds\":{},\"cache\":{{\"mem_hits\":{},\
                 \"disk_hits\":{},\"misses\":{},\"invalid_entries\":{},\"bytes_read\":{},\
                 \"bytes_written\":{},\"hit_ratio\":{:.6}}},\"events\":{}}}\n",
                timer.to_json(),
                stats.mem_hits,
                stats.disk_hits,
                stats.misses,
                stats.invalid_entries,
                stats.bytes_read,
                stats.bytes_written,
                stats.hit_ratio(),
                metrics.to_json_value(),
            );
            std::fs::write(path, json).expect("write --metrics file");
            println!("metrics written to {}", path.display());
        }
    }
    if let Some(sink) = telemetry::clear_sink() {
        sink.flush();
        // JSONL traces carry the aggregated series/hist records after the
        // event lines (mixed files validate; see the schema module docs).
        if let Some(series) = &series {
            let records = series.render_jsonl();
            if !records.is_empty() {
                for path in trace_paths.iter().filter(|p| p.extension().is_some_and(|e| e == "jsonl")) {
                    use std::io::Write;
                    let mut f = std::fs::OpenOptions::new()
                        .append(true)
                        .open(path)
                        .expect("append aggregate records to --trace file");
                    f.write_all(records.as_bytes()).expect("write aggregate records");
                }
            }
        }
        for path in &trace_paths {
            println!("trace written to {}", path.display());
        }
    }
    println!("done in {}s, artifacts in {}", started.elapsed().as_secs(), out_dir.display());
}
