//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--scale test|bench|full] [--fidelity exact|sampled[:D:S]]
//!           [--out DIR] [--trace PATH]... [--metrics PATH]
//!           [--shard K/N | --jobs N | --merge] [ARTIFACT...]
//! ```
//!
//! `ARTIFACT` is any of `fig1 table1 fig2 table2 fig3 fig4 fig5 fig6 fig7
//! fig8 fig9 fig10 fig11 fig12 fig13 headline` or `all` (default). Output
//! goes to `DIR` (default `results/<scale>/`) as one text file per
//! artifact, and to stdout.
//!
//! Completed runs are stored in a persistent cache (`results/cache/`, or
//! `$WAYPART_CACHE_DIR`), so a rerun — or an interrupted run resumed —
//! only pays for measurements it has not seen before. Pass `--no-cache`
//! to keep the cache in memory only. The final line reports hits/misses.
//!
//! ## Fidelity
//!
//! `--fidelity sampled` runs every figure with the SMARTS-style sampled
//! engine (`sampled:D:S` picks a custom detail:skip schedule) — much
//! faster, approximate results. Sampled configs hash differently, so
//! they never collide with exact entries in the run cache. When `fig12`
//! is among the artifacts, an exact-engine anchor run is replayed on the
//! figure's full-capacity allocation and the measured MPKI/IPC error
//! bars are printed alongside the figure (artifact
//! `fig12_error_bars`); DESIGN.md §5e documents the error model.
//!
//! ## Sharding
//!
//! `--shard K/N` runs this process as worker K of N: it walks the whole
//! figure pipeline but only *simulates* the cache keys whose stable hash
//! lands in its slice (`hash % N == K-1` — an exact disjoint cover of
//! the run grid regardless of figure structure); misses owned by other
//! workers are awaited from the shared disk cache (claim files stop two
//! workers duplicating a shared dependency). Worker artifacts, traces,
//! and a `stats.json` land in a per-shard spool under
//! `<cache>/spool/K-of-N/`. `--merge` replays the now-warm cache to emit
//! byte-identical artifacts and folds the spooled stats and telemetry
//! aggregates. `--jobs N` does both: forks N local workers and merges
//! when they finish. Sharding requires the disk cache (`--no-cache`
//! is rejected); DESIGN.md §5f documents the protocol.
//!
//! ## Telemetry
//!
//! `--trace PATH` (repeatable) streams the structured event log of the
//! whole reproduction to `PATH`: a `.jsonl` suffix selects the JSONL
//! event schema (validate with the `validate_trace` binary), anything
//! else the Chrome `trace_event` format loadable in `chrome://tracing` /
//! Perfetto. `--metrics PATH` writes an aggregated metrics JSON (event
//! counts/sums, per-figure wall-clock, cache traffic) and prints a
//! summary table at the end. Telemetry observes and never steers:
//! simulated results are byte-identical with or without these flags.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use waypart_core::runner::{FidelityMode, RunnerConfig};
use waypart_core::sweep::ShardSpec;
use waypart_experiments::*;
use waypart_telemetry::progress;
use waypart_telemetry::sinks::{ChromeTraceSink, JsonlSink, MetricsSink, MultiSink, SeriesSink};
use waypart_telemetry::{self as telemetry, Event, Stamp};

const USAGE: &str = "usage: reproduce [--scale test|bench|full] \
[--fidelity exact|sampled[:D:S]] [--out DIR] [--no-cache] [--trace PATH]... \
[--metrics PATH] [--shard K/N | --jobs N | --merge] [ARTIFACT...]\n\
  --shard K/N  run worker K of N over the shared run cache (1 <= K <= N)\n\
  --jobs N     fork N local shard workers, then merge (requires the disk cache)\n\
  --merge      replay the warm cache and fold per-shard spools";

/// Prints a flag error plus the usage block and exits nonzero — flag
/// mistakes must never panic or silently run the full grid.
fn fail_usage(msg: &str) -> ! {
    eprintln!("reproduce: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// The cache directory `Lab::persistent` will use — needed up front to
/// place the per-shard spool directories.
fn cache_dir() -> PathBuf {
    std::env::var_os("WAYPART_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results").join("cache"))
}

/// The spool directory of one worker: `<cache>/spool/<K-of-N>/`.
fn spool_dir(shard: ShardSpec) -> PathBuf {
    cache_dir().join("spool").join(shard.label())
}

/// Wraps each artifact's computation in a wall-stamped `figure.run` span
/// and remembers the per-figure seconds for the metrics file.
struct FigureTimer {
    seconds: RefCell<Vec<(String, f64)>>,
}

impl FigureTimer {
    fn new() -> Self {
        FigureTimer { seconds: RefCell::new(Vec::new()) }
    }

    fn run<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        progress::set_stage(name);
        telemetry::emit_with(|| {
            Event::begin("figure.run", Stamp::WallUs(telemetry::wall_now_us()))
                .field("figure", name)
        });
        let t0 = Instant::now();
        let out = f();
        let secs = t0.elapsed().as_secs_f64();
        telemetry::emit_with(|| {
            Event::end("figure.run", Stamp::WallUs(telemetry::wall_now_us()))
                .field("figure", name)
                .field("seconds", secs)
        });
        self.seconds.borrow_mut().push((name.to_string(), secs));
        out
    }

    /// `{"fig1": 0.52, ...}` for embedding into the metrics JSON.
    fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, secs)) in self.seconds.borrow().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{secs:.6}"));
        }
        out.push('}');
        out
    }
}

/// Parses `--fidelity exact|sampled|sampled:D:S`.
fn parse_fidelity(arg: &str) -> FidelityMode {
    match arg {
        "exact" => FidelityMode::Exact,
        "sampled" => FidelityMode::sampled_default(),
        other => {
            let mut parts = other.splitn(3, ':');
            let (Some("sampled"), Some(d), Some(s)) = (parts.next(), parts.next(), parts.next())
            else {
                panic!("unknown fidelity {other} (use exact|sampled|sampled:D:S)");
            };
            let detail_quanta: u32 = d.parse().expect("fidelity detail quanta");
            let skip_quanta: u32 = s.parse().expect("fidelity skip quanta");
            assert!(detail_quanta >= 1, "fidelity needs at least one detailed quantum per period");
            FidelityMode::Sampled { detail_quanta, skip_quanta }
        }
    }
}

fn main() {
    let mut scale = "test".to_string();
    let mut fidelity_arg = "exact".to_string();
    let mut out: Option<PathBuf> = None;
    let mut use_cache = true;
    let mut trace_paths: Vec<PathBuf> = Vec::new();
    let mut metrics_path: Option<PathBuf> = None;
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut shard: Option<ShardSpec> = None;
    let mut jobs: Option<u32> = None;
    let mut merge = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().expect("--scale needs a value"),
            "--fidelity" => fidelity_arg = args.next().expect("--fidelity needs a value"),
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a value"))),
            "--no-cache" => use_cache = false,
            "--trace" => trace_paths.push(PathBuf::from(args.next().expect("--trace needs a path"))),
            "--metrics" => metrics_path = Some(PathBuf::from(args.next().expect("--metrics needs a path"))),
            "--shard" => {
                let spec = args.next().unwrap_or_else(|| fail_usage("--shard needs a K/N value"));
                match ShardSpec::parse(&spec) {
                    Ok(s) => shard = Some(s),
                    Err(e) => fail_usage(&format!("bad --shard `{spec}`: {e}")),
                }
            }
            "--jobs" => {
                let n = args.next().unwrap_or_else(|| fail_usage("--jobs needs a worker count"));
                match n.parse::<u32>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => fail_usage(&format!("bad --jobs `{n}`: need an integer >= 1")),
                }
            }
            "--merge" => merge = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                wanted.insert(other.to_string());
            }
        }
    }
    if shard.is_some() && (jobs.is_some() || merge) {
        fail_usage("--shard is a worker-only flag; it cannot combine with --jobs/--merge");
    }
    if shard.is_some() && out.is_some() {
        fail_usage("--shard writes worker artifacts to its spool; --out applies to the merge step only");
    }
    if (shard.is_some() || jobs.is_some() || merge) && !use_cache {
        fail_usage("sharding coordinates through the disk cache; drop --no-cache");
    }
    // A standalone --merge must not fold a fleet that is still running:
    // live workers are still filling the cache, so the replay below would
    // duplicate their in-flight work and the fold would be partial.
    // Checked again inside merge_spools (cheap), but refusing up front
    // avoids paying for a whole pipeline replay first.
    if merge && jobs.is_none() {
        refuse_if_fleet_live();
    }
    if wanted.is_empty() || wanted.contains("all") {
        wanted = [
            "fig1", "table1", "fig2", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13", "headline", "ext_ucp", "ext_trio",
            "ext_thresholds", "ext_coloring", "ext_qos", "ext_mba",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mut cfg = match scale.as_str() {
        "test" => RunnerConfig::test(),
        "bench" => RunnerConfig::bench(),
        "full" => RunnerConfig::full(),
        other => panic!("unknown scale {other} (use test|bench|full)"),
    };
    cfg.fidelity = parse_fidelity(&fidelity_arg);
    // Sampled artifacts are approximations; never let them overwrite the
    // committed exact artifact set under `results/<scale>/`. A worker's
    // artifacts go to its spool — only the merge step writes the real
    // output directory.
    let out_dir = match shard {
        Some(spec) => spool_dir(spec),
        None => out.unwrap_or_else(|| {
            if cfg.fidelity == FidelityMode::Exact {
                PathBuf::from("results").join(&scale)
            } else {
                PathBuf::from("results").join(format!("{scale}-sampled"))
            }
        }),
    };
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // The fleet session id groups one coordinator invocation's worker
    // history entries; workers inherit it through the environment so the
    // merge can dedupe re-run shards by `{session}/{label}`.
    let fleet_session = std::env::var("WAYPART_SESSION")
        .unwrap_or_else(|_| format!("{}-{}", std::process::id(), progress::unix_now_ms()));

    // Coordinator: fork the workers, wait for all of them, then fall
    // through to the merge pass over the warm cache.
    if let Some(n) = jobs {
        let exe = std::env::current_exe().expect("locate reproduce binary");
        // Spools left behind by an earlier run with a *different* worker
        // count (e.g. 3-of-4 after now running --jobs 2) would fold into
        // the merge and double-count runs; start from an empty spool root.
        let _ = std::fs::remove_dir_all(cache_dir().join("spool"));
        let mut children = Vec::new();
        for index in 1..=n {
            let spec = ShardSpec { index, count: n };
            let spool = spool_dir(spec);
            std::fs::create_dir_all(&spool).expect("create shard spool");
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("--scale")
                .arg(&scale)
                .arg("--fidelity")
                .arg(&fidelity_arg)
                .arg("--shard")
                .arg(spec.to_string())
                .arg("--trace")
                .arg(spool.join("trace.jsonl"))
                .arg("--metrics")
                .arg(spool.join("metrics.json"))
                .args(wanted.iter())
                .env("WAYPART_SESSION", &fleet_session)
                .stdout(std::process::Stdio::null());
            let child = cmd.spawn().unwrap_or_else(|e| {
                eprintln!("reproduce: failed to spawn worker {spec}: {e}");
                std::process::exit(1);
            });
            println!("spawned shard worker {spec} (pid {})", child.id());
            children.push((spec, child));
        }
        let mut failed = false;
        for (spec, mut child) in children {
            let status = child.wait().expect("wait for shard worker");
            if !status.success() {
                eprintln!("reproduce: shard worker {spec} failed: {status}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        merge = true;
    }

    // Install the requested telemetry sinks. The Chrome format is the
    // default; a `.jsonl` suffix selects the line-delimited event schema.
    let mut sinks: Vec<Arc<dyn telemetry::Sink>> = Vec::new();
    for path in &trace_paths {
        if path.extension().is_some_and(|e| e == "jsonl") {
            let sink = JsonlSink::create(path).expect("create --trace file");
            sinks.push(Arc::new(sink));
        } else {
            sinks.push(Arc::new(ChromeTraceSink::create(path)));
        }
    }
    let metrics = if metrics_path.is_some() || !trace_paths.is_empty() {
        let m = Arc::new(MetricsSink::new());
        sinks.push(m.clone());
        Some(m)
    } else {
        None
    };
    // Fold the event stream into named series/histograms in-process; the
    // aggregate records are appended to JSONL traces at the end so the
    // `report` dashboard gets pre-downsampled data alongside raw events.
    let series = if sinks.is_empty() {
        None
    } else {
        let s = Arc::new(SeriesSink::new());
        sinks.push(s.clone());
        Some(s)
    };
    if !sinks.is_empty() {
        telemetry::set_sink(Arc::new(MultiSink::new(sinks)));
    }
    let timer = FigureTimer::new();

    let lab = match (use_cache, shard) {
        (true, Some(spec)) => Lab::persistent(cfg.clone()).with_shard(spec),
        (true, None) => Lab::persistent(cfg.clone()),
        (false, _) => Lab::new(cfg.clone()),
    };
    // Phase attribution is always on for `reproduce` — the accumulators
    // are a handful of relaxed atomics, and the end-of-run "where the
    // time went" table depends on them.
    progress::enable_phase_timers();
    progress::set_stage("startup");
    // Heartbeat: every persistent-cache run keeps an atomic status.json
    // alive in its spool directory (`<cache>/spool/<K-of-N>/` for shard
    // workers, `<cache>/spool/main/` otherwise) for the `status` fleet
    // table. `--no-cache` runs have no spool and get no heartbeat.
    let heartbeat = if use_cache {
        let label = shard.map(|s| s.label()).unwrap_or_else(|| "main".to_string());
        progress::start_heartbeat(
            &cache_dir().join("spool").join(&label),
            &label,
            Duration::from_secs(2),
        )
        .map_err(|e| eprintln!("reproduce: heartbeat disabled: {e}"))
        .ok()
    } else {
        None
    };
    let started = std::time::Instant::now();
    let emit = |name: &str, text: String| {
        let path = out_dir.join(format!("{name}.txt"));
        std::fs::write(&path, &text).expect("write artifact");
        println!("\n=== {name} ({}s) ===\n{text}", started.elapsed().as_secs());
    };

    // Characterization chain (later artifacts reuse earlier data).
    let needs_characterization = ["fig1", "table1", "table2", "fig5", "headline"]
        .iter()
        .any(|n| wanted.contains(*n))
        || wanted.contains("fig3")
        || wanted.contains("fig4");

    let mut f1 = None;
    let mut t2 = None;
    let mut f3 = None;
    let mut f4 = None;
    if needs_characterization {
        let fig1_data = timer.run("fig1", || fig1::run(&lab));
        if wanted.contains("fig1") {
            emit("fig1", fig1_data.render());
        }
        if wanted.contains("table1") {
            let t1 = timer.run("table1", || table1::run(&lab, &fig1_data));
            emit("table1", t1.render());
        }
        let table2_data = timer.run("table2", || table2::run(&lab));
        if wanted.contains("table2") {
            emit("table2", table2_data.render());
            let at_1mb = table2_data.fraction_satisfied_at(1.0 / 6.0);
            let at_3mb = table2_data.fraction_satisfied_at(0.5);
            emit(
                "table2_capacity_stats",
                format!(
                    "apps within 2% of peak at 1/6 LLC: {:.0}% (paper: 44%)\napps within 2% of peak at 1/2 LLC: {:.0}% (paper: 78%)\n",
                    at_1mb * 100.0,
                    at_3mb * 100.0
                ),
            );
        }
        let fig3_data = timer.run("fig3", || fig3::run(&lab));
        if wanted.contains("fig3") {
            emit("fig3", fig3_data.render());
        }
        let fig4_data = timer.run("fig4", || fig4::run(&lab));
        if wanted.contains("fig4") {
            emit("fig4", fig4_data.render());
        }
        if wanted.contains("fig5") {
            let f5 = timer.run("fig5", || fig5::run(&fig1_data, &table2_data, &fig3_data, &fig4_data));
            emit("fig5", f5.render());
        }
        f1 = Some(fig1_data);
        t2 = Some(table2_data);
        f3 = Some(fig3_data);
        f4 = Some(fig4_data);
    }
    let _ = (f1, t2, f3, f4);

    if wanted.contains("fig2") {
        emit("fig2", timer.run("fig2", || fig2::run(&lab)).render());
    }
    if wanted.contains("fig6") || wanted.contains("fig7") {
        let f6 = timer.run("fig6", || fig6::run(&lab));
        if wanted.contains("fig6") {
            emit("fig6", f6.render());
        }
        if wanted.contains("fig7") {
            emit("fig7", timer.run("fig7", || fig7::run(&f6)).render());
        }
    }
    if wanted.contains("fig8") {
        emit("fig8", timer.run("fig8", || fig8::run(&lab)).render());
    }

    let needs_pairs = ["fig9", "fig10", "fig11", "fig13", "headline"]
        .iter()
        .any(|n| wanted.contains(*n));
    if needs_pairs {
        let f9 = timer.run("fig9", || fig9::run(&lab));
        if wanted.contains("fig9") {
            emit("fig9", f9.render());
        }
        let f10 = timer.run("fig10", || fig10::run(&lab, &f9));
        if wanted.contains("fig10") {
            emit("fig10", f10.render());
        }
        let f11 = timer.run("fig11", || fig11::run(&f10));
        if wanted.contains("fig11") {
            emit("fig11", f11.render());
        }
        let f13 = timer.run("fig13", || fig13::run(&lab, &f9));
        if wanted.contains("fig13") {
            emit("fig13", f13.render());
        }
        if wanted.contains("headline") {
            let h = timer.run("headline", || headline::run(&f9, &f10, &f11, &f13));
            emit("headline", h.render());
        }
    }
    if wanted.contains("fig12") {
        emit("fig12", timer.run("fig12", || fig12::run(&lab)).render());
        if cfg.fidelity != FidelityMode::Exact {
            // Error bars: replay the figure's full-capacity solo run on
            // the exact engine (one run — the sweep itself stays sampled)
            // and report how far the sampled headline numbers drifted.
            let bars = timer.run("fig12_error_bars", || {
                let mut exact_cfg = cfg.clone();
                exact_cfg.fidelity = FidelityMode::Exact;
                let exact_lab = lab.sibling(exact_cfg);
                let app = lab.app(fig12::APP).clone();
                let ways = cfg.machine.llc.ways;
                let sampled = lab.solo(&app, 1, ways);
                let exact = exact_lab.solo(&app, 1, ways);
                let pct = |s: f64, e: f64| if e == 0.0 { 0.0 } else { (s - e) / e * 100.0 };
                format!(
                    "fig12 sampled-vs-exact error bars ({} solo, {ways} ways, {:?}):\n\
                     mean MPKI : sampled {:.4} vs exact {:.4} ({:+.1}%)\n\
                     cum  MPKI : sampled {:.4} vs exact {:.4} ({:+.1}%)\n\
                     IPC       : sampled {:.4} vs exact {:.4} ({:+.1}%)\n\
                     (static sweep and dynamic trace above are sampled; \
                     see DESIGN.md §5e for the error model)\n",
                    fig12::APP,
                    cfg.fidelity,
                    sampled.mpki.mean(),
                    exact.mpki.mean(),
                    pct(sampled.mpki.mean(), exact.mpki.mean()),
                    sampled.counters.mpki(),
                    exact.counters.mpki(),
                    pct(sampled.counters.mpki(), exact.counters.mpki()),
                    sampled.counters.ipc(),
                    exact.counters.ipc(),
                    pct(sampled.counters.ipc(), exact.counters.ipc()),
                )
            });
            emit("fig12_error_bars", bars);
        }
    }
    if wanted.contains("ext_ucp") {
        emit("ext_ucp", timer.run("ext_ucp", || ext_ucp::run(&lab)).render());
    }
    if wanted.contains("ext_trio") {
        emit("ext_trio", timer.run("ext_trio", || ext_trio::run(&lab)).render());
    }
    if wanted.contains("ext_thresholds") {
        emit("ext_thresholds", timer.run("ext_thresholds", || ext_thresholds::run(&lab)).render());
    }
    if wanted.contains("ext_coloring") {
        emit("ext_coloring", timer.run("ext_coloring", || ext_coloring::run(&lab)).render());
    }
    if wanted.contains("ext_qos") {
        emit("ext_qos", timer.run("ext_qos", || ext_qos::run(&lab)).render());
    }
    if wanted.contains("ext_mba") {
        emit("ext_mba", timer.run("ext_mba", || ext_mba::run(&lab)).render());
    }

    let stats = lab.cache_stats();
    println!(
        "\nrun cache: {} runs ({} memory hits, {} disk hits, {} misses)",
        stats.total(),
        stats.mem_hits,
        stats.disk_hits,
        stats.misses
    );
    if stats.write_errors > 0 {
        // Loud by design: a read-only or full disk otherwise degrades to
        // silently re-simulating the whole grid on every invocation.
        eprintln!(
            "run cache: WARNING — {} cache write errors; results are not persisting \
             and will re-simulate next run",
            stats.write_errors
        );
    }
    if let Some(spec) = shard {
        let ss = lab.shard_stats();
        println!(
            "shard {spec}: {} simulated, {} awaited from peers ({:.1}s polling), {} takeovers, {} write errors",
            stats.misses,
            ss.waits,
            ss.wait_us as f64 / 1e6,
            ss.takeovers,
            stats.write_errors,
        );
        let json = format!(
            "{{\"shard\":\"{}\",\"count\":{},\"seconds\":{:.3},\"mem_hits\":{},\"disk_hits\":{},\
             \"misses\":{},\"invalid_entries\":{},\"bytes_read\":{},\"bytes_written\":{},\
             \"write_errors\":{},\"waits\":{},\"wait_us\":{},\"takeovers\":{},\"seen_keys\":{}}}\n",
            spec.label(),
            spec.count,
            started.elapsed().as_secs_f64(),
            stats.mem_hits,
            stats.disk_hits,
            stats.misses,
            stats.invalid_entries,
            stats.bytes_read,
            stats.bytes_written,
            stats.write_errors,
            ss.waits,
            ss.wait_us,
            ss.takeovers,
            lab.cache().seen_keys().len(),
        );
        std::fs::write(out_dir.join("stats.json"), json).expect("write shard stats");
        // One history line per worker session, appended so retries of a
        // crashed shard accumulate; the merge dedupes by session id.
        let history = format!(
            "{{\"session\":\"{fleet_session}/{}\",\"shard\":\"{}\",\"seconds\":{:.3},\
             \"misses\":{},\"waits\":{},\"takeovers\":{},\"at_unix_ms\":{}}}\n",
            spec.label(),
            spec.label(),
            started.elapsed().as_secs_f64(),
            stats.misses,
            ss.waits,
            ss.takeovers,
            progress::unix_now_ms(),
        );
        use std::io::Write;
        let _ = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(out_dir.join("history.jsonl"))
            .and_then(|mut f| f.write_all(history.as_bytes()));
    }

    // Merge before the phase accounting so the spool-merge phase shows
    // up in the breakdown (the artifacts were already replayed above).
    if merge {
        progress::set_stage("merge");
        let t0 = progress::phase_begin();
        merge_spools(jobs, &fleet_session);
        progress::phase_add(progress::Phase::SpoolMerge, t0);
    }

    // "Where the time went": the always-on phase accumulators, printed as
    // a share of measured wall time. Phase time is summed across worker
    // threads, so on a multi-core sweep the accounted share can exceed
    // 100% of wall; `other` is the unattributed remainder (figure glue,
    // artifact rendering, process startup).
    let wall_s = started.elapsed().as_secs_f64();
    let phases = progress::phase_snapshot();
    let phase_sum_s: f64 = phases.iter().map(|(_, ns)| *ns as f64 / 1e9).sum();
    let other_s = (wall_s - phase_sum_s).max(0.0);
    println!("\nwhere the time went ({wall_s:.1}s wall):");
    let pct = |s: f64| if wall_s > 0.0 { s / wall_s * 100.0 } else { 0.0 };
    for (name, ns) in &phases {
        let s = *ns as f64 / 1e9;
        println!("  {name:<12} {s:>9.2}s  {:>5.1}%", pct(s));
    }
    println!("  {:<12} {other_s:>9.2}s  {:>5.1}%", "other", pct(other_s));
    println!("  accounted: {:.1}% of wall by instrumented phases", pct(phase_sum_s));
    // One counter event carrying the final per-phase totals, so JSONL
    // traces and the series/hist aggregates record the attribution too.
    telemetry::emit_with(|| {
        let mut ev = Event::counter("phase.seconds", Stamp::WallUs(telemetry::wall_now_us()));
        for (name, ns) in &phases {
            ev = ev.field(*name, *ns as f64 / 1e9);
        }
        ev.field("other", other_s).field("wall", wall_s)
    });
    // `{"stream_gen":1.25,...,"other":0.04,"wall":12.3}` for the metrics file.
    let phases_json = {
        let mut s = String::from("{");
        for (name, ns) in &phases {
            s.push_str(&format!("\"{name}\":{:.6},", *ns as f64 / 1e9));
        }
        s.push_str(&format!("\"other\":{other_s:.6},\"wall\":{wall_s:.6}}}"));
        s
    };

    // Telemetry epilogue: metrics summary table, metrics JSON, trace
    // flush. All purely observational — nothing above read these sinks.
    if let Some(metrics) = &metrics {
        println!("\ntelemetry metrics:\n{}", metrics.render_table());
        println!(
            "run cache traffic: {} bytes read, {} bytes written, {} invalid entries, hit ratio {:.2}",
            stats.bytes_read,
            stats.bytes_written,
            stats.invalid_entries,
            stats.hit_ratio()
        );
        if let Some(path) = &metrics_path {
            let json = format!(
                "{{\"scale\":\"{scale}\",\"figure_seconds\":{},\"phase_seconds\":{phases_json},\
                 \"cache\":{{\"mem_hits\":{},\
                 \"disk_hits\":{},\"misses\":{},\"invalid_entries\":{},\"bytes_read\":{},\
                 \"bytes_written\":{},\"hit_ratio\":{:.6}}},\"events\":{}}}\n",
                timer.to_json(),
                stats.mem_hits,
                stats.disk_hits,
                stats.misses,
                stats.invalid_entries,
                stats.bytes_read,
                stats.bytes_written,
                stats.hit_ratio(),
                metrics.to_json_value(),
            );
            std::fs::write(path, json).expect("write --metrics file");
            println!("metrics written to {}", path.display());
        }
    }
    if let Some(sink) = telemetry::clear_sink() {
        sink.flush();
        // JSONL traces carry the aggregated series/hist records after the
        // event lines (mixed files validate; see the schema module docs).
        if let Some(series) = &series {
            let records = series.render_jsonl();
            if !records.is_empty() {
                for path in trace_paths.iter().filter(|p| p.extension().is_some_and(|e| e == "jsonl")) {
                    use std::io::Write;
                    let mut f = std::fs::OpenOptions::new()
                        .append(true)
                        .open(path)
                        .expect("append aggregate records to --trace file");
                    f.write_all(records.as_bytes()).expect("write aggregate records");
                }
            }
        }
        for path in &trace_paths {
            println!("trace written to {}", path.display());
        }
    }
    if let Some(hb) = heartbeat {
        hb.finish();
    }
    println!("done in {}s, artifacts in {}", started.elapsed().as_secs(), out_dir.display());
}

/// Standalone `--merge` guard: scans the fleet heartbeats and exits
/// nonzero if any sharded worker is still live (fresh heartbeat, not
/// done). The scan is also how a malformed heartbeat surfaces: path and
/// reason on stderr, nonzero exit, no panic. Unsharded heartbeats (the
/// `main` label — e.g. a concurrently running plain `reproduce`) don't
/// block a merge; only `K-of-N` workers write the spools being folded.
fn refuse_if_fleet_live() {
    let spool_root = cache_dir().join("spool");
    let fleet = match fleet::scan_fleet(&spool_root) {
        Ok(fleet) => fleet,
        Err(e) => {
            eprintln!("reproduce: cannot scan fleet heartbeats: {e}");
            std::process::exit(1);
        }
    };
    let now = progress::unix_now_ms();
    let live: Vec<&str> = fleet
        .iter()
        .filter(|w| parse_spool_label(&w.worker).is_some())
        .filter(|w| w.state(now, fleet::DEFAULT_STALE_SECS) == fleet::WorkerState::Running)
        .map(|w| w.worker.as_str())
        .collect();
    if !live.is_empty() {
        eprintln!(
            "reproduce: refusing to merge: {} live worker(s) still writing ({}); \
             wait for the fleet to finish, or inspect it with `status`",
            live.len(),
            live.join(", "),
        );
        std::process::exit(1);
    }
}

/// Reads one integer field from a parsed shard `stats.json`.
fn stat_u64(v: &waypart_telemetry::schema::Json, key: &str) -> u64 {
    use waypart_telemetry::schema::Json;
    match v.get(key) {
        Some(Json::Num { value, .. }) if *value >= 0.0 => *value as u64,
        _ => 0,
    }
}

/// Parses a spool directory name `K-of-N` into `(K, N)`.
fn parse_spool_label(name: &str) -> Option<(u32, u32)> {
    let (k, n) = name.split_once("-of-")?;
    Some((k.parse().ok()?, n.parse().ok()?))
}

/// The merge pass: folds the worker spools of *one* shard generation
/// under `<cache>/spool/` — per-shard stats into a scaling summary on
/// stdout, per-shard JSONL traces into one `merged_trace.jsonl` whose
/// aggregate records are the fold of every shard's series/histograms,
/// and per-shard `history.jsonl` session lines into one
/// `merged_history.jsonl` (deduped by session id) with an appended
/// coordinator entry carrying the fleet-level `sharded_cold_s` and
/// `parallel_efficiency`. Spools whose `K-of-N` label names a different
/// shard count (leftovers of an interrupted run with another `--jobs`
/// value) are skipped loudly, never folded — folding them would
/// double-count runs; unlabeled directories (like the `main` heartbeat
/// spool) are skipped silently. The *artifacts* need no folding at all:
/// the pipeline above replayed the warm cache, which by determinism
/// reproduces the single-process bytes exactly.
fn merge_spools(expected_shards: Option<u32>, fleet_session: &str) {
    use waypart_telemetry::merge::AggregateMerge;
    use waypart_telemetry::schema::{self, Json};

    // The fork path already waited for its children, but a standalone
    // --merge may race a still-running fleet — refuse rather than fold a
    // partial generation. (Checked before the replay too; a worker could
    // have been launched while the replay ran.)
    refuse_if_fleet_live();
    let spool_root = cache_dir().join("spool");
    let mut shards: Vec<(String, f64, u64, u64, u64, u64)> = Vec::new();
    let mut traces = AggregateMerge::new();
    let mut merged_events = String::new();
    let mut merged_history = String::new();
    let mut history_sessions: BTreeSet<String> = BTreeSet::new();
    let mut dirs: Vec<PathBuf> = match std::fs::read_dir(&spool_root) {
        Ok(rd) => rd.filter_map(|e| e.ok()).map(|e| e.path()).filter(|p| p.is_dir()).collect(),
        Err(_) => Vec::new(),
    };
    dirs.sort();
    // Group the spools by the shard count their label claims; merge only
    // the generation the caller asked for (--jobs N), or — standalone
    // --merge — the largest count whose worker set is complete.
    let mut counts: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    for dir in &dirs {
        if let Some((_, n)) = dir.file_name().and_then(|f| f.to_str()).and_then(parse_spool_label)
        {
            *counts.entry(n).or_insert(0) += 1;
        }
    }
    let chosen = expected_shards.or_else(|| {
        counts
            .iter()
            .filter(|&(n, present)| present == n)
            .map(|(n, _)| *n)
            .max()
            .or_else(|| counts.keys().max().copied())
    });
    dirs.retain(|dir| {
        let label = dir.file_name().and_then(|f| f.to_str()).and_then(parse_spool_label);
        let keep = match (label, chosen) {
            (Some((_, n)), Some(want)) => n == want,
            _ => false,
        };
        // Only a *labeled* spool from another generation is worth a
        // warning; unlabeled dirs (the `main` heartbeat spool) are
        // expected bystanders.
        if !keep && label.is_some() {
            println!(
                "shard merge: skipping stale spool {} (merging {} shards)",
                dir.display(),
                chosen.map(|n| n.to_string()).unwrap_or_else(|| "?".into()),
            );
        }
        keep
    });
    for dir in &dirs {
        if let Ok(text) = std::fs::read_to_string(dir.join("stats.json")) {
            if let Ok(v) = schema::parse_json(text.trim()) {
                let label = match v.get("shard") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => dir.file_name().unwrap_or_default().to_string_lossy().into_owned(),
                };
                let seconds = match v.get("seconds") {
                    Some(Json::Num { value, .. }) => *value,
                    _ => 0.0,
                };
                shards.push((
                    label,
                    seconds,
                    stat_u64(&v, "misses"),
                    stat_u64(&v, "waits"),
                    stat_u64(&v, "takeovers"),
                    stat_u64(&v, "write_errors"),
                ));
            }
        }
        if let Ok(text) = std::fs::read_to_string(dir.join("trace.jsonl")) {
            for line in traces.fold_jsonl(&text) {
                merged_events.push_str(line);
                merged_events.push('\n');
            }
        }
        if let Ok(text) = std::fs::read_to_string(dir.join("history.jsonl")) {
            for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
                // Dedupe by session id; a line without one keys on its
                // own text (identical retries still collapse).
                let id = schema::parse_json(line)
                    .ok()
                    .and_then(|v| match v.get("session") {
                        Some(Json::Str(s)) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| line.to_string());
                if history_sessions.insert(id) {
                    merged_history.push_str(line);
                    merged_history.push('\n');
                }
            }
        }
    }
    if shards.is_empty() {
        println!("shard merge: no worker spools under {}", spool_root.display());
        return;
    }
    println!("\nshard merge: {} worker spools", shards.len());
    let mut busy_sum = 0.0f64;
    let mut busy_max = 0.0f64;
    let (mut misses, mut takeovers, mut write_errors) = (0u64, 0u64, 0u64);
    for (label, seconds, m, waits, t, we) in &shards {
        println!(
            "  shard {label}: {m} simulated in {seconds:.1}s ({waits} waits, {t} takeovers, {we} write errors)"
        );
        busy_sum += seconds;
        busy_max = busy_max.max(*seconds);
        misses += m;
        takeovers += t;
        write_errors += we;
    }
    // Efficiency of the fork: 1.0 means every worker stayed busy the
    // whole time; waits and duplicated (taken-over) runs pull it down.
    let efficiency = if busy_max > 0.0 { busy_sum / (shards.len() as f64 * busy_max) } else { 1.0 };
    println!(
        "  total: {misses} runs simulated, {takeovers} takeovers, {write_errors} write errors, \
         busy max {busy_max:.1}s / sum {busy_sum:.1}s, parallel efficiency {efficiency:.2}"
    );
    // Fold the per-shard history sessions plus one coordinator entry:
    // the fleet-level cold time is the slowest worker (the fleet's wall
    // clock), not the sum. This stays in the spool — promoting a line
    // into the committed BENCH_history.jsonl is bench.sh's job.
    {
        let shard_sessions = history_sessions.len();
        merged_history.push_str(&format!(
            "{{\"session\":\"{fleet_session}\",\"workers\":{},\"sharded_cold_s\":{busy_max:.3},\
             \"parallel_efficiency\":{efficiency:.4},\"at_unix_ms\":{}}}\n",
            shards.len(),
            progress::unix_now_ms(),
        ));
        let history_path = spool_root.join("merged_history.jsonl");
        match std::fs::write(&history_path, &merged_history) {
            Ok(()) => println!(
                "  merged history: {} ({shard_sessions} worker sessions + coordinator entry)",
                history_path.display(),
            ),
            Err(e) => eprintln!("  merged history: write failed: {e}"),
        }
    }
    if traces.series_count() + traces.hist_count() > 0 || !merged_events.is_empty() {
        let merged_path = spool_root.join("merged_trace.jsonl");
        let mut doc = merged_events;
        doc.push_str(&traces.render_jsonl());
        match std::fs::write(&merged_path, &doc) {
            Ok(()) => println!(
                "  merged trace: {} ({} series, {} histograms, {} bad records)",
                merged_path.display(),
                traces.series_count(),
                traces.hist_count(),
                traces.bad_records(),
            ),
            Err(e) => eprintln!("  merged trace: write failed: {e}"),
        }
    }
}
