//! Extension experiment — the threshold sensitivity study of §6.3.
//!
//! "A sensitivity study to set the MPKI derivative thresholds for phase
//! detection and allocation size found selected parameters […]. We've
//! found the results largely insensitive to small parameter changes."
//! This experiment regenerates that study: the dynamic controller runs a
//! phase-heavy co-schedule under scaled threshold variants and reports
//! foreground slowdown and background throughput for each.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_core::dynamic::DynamicConfig;
use waypart_core::phase::PhaseThresholds;

/// The pair exercised (phase-changing foreground, cache-hungry background).
pub const PAIR: (&str, &str) = ("429.mcf", "fop");

/// One threshold variant's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdCell {
    /// Scale factor applied to (thr1, thr2, thr3).
    pub scale: f64,
    /// Foreground slowdown vs. solo.
    pub fg_slowdown: f64,
    /// Background throughput (instructions per cycle).
    pub bg_rate: f64,
    /// Reallocations performed.
    pub reallocations: u64,
}

/// The study's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtThresholds {
    /// One cell per scale factor.
    pub cells: Vec<ThresholdCell>,
}

/// Threshold scale factors swept (1.0 = the calibrated values).
pub const SCALES: [f64; 5] = [0.5, 0.75, 1.0, 1.5, 2.0];

/// Runs the sweep.
pub fn run(lab: &Lab) -> ExtThresholds {
    let fg = lab.app(PAIR.0).clone();
    let bg = lab.app(PAIR.1).clone();
    let solo = lab.pair_baseline(&fg).cycles as f64;
    let cells = parallel_map(SCALES.to_vec(), |&scale| {
        let base = PhaseThresholds::calibrated();
        let mut cfg = DynamicConfig::paper();
        cfg.thresholds = PhaseThresholds {
            thr1: base.thr1 * scale,
            thr2: base.thr2 * scale,
            thr3: base.thr3 * scale,
            mpki_floor: base.mpki_floor,
        };
        let r = lab.pair_dynamic(&fg, &bg, cfg);
        assert!(!r.truncated, "threshold run truncated at scale {scale}");
        ThresholdCell {
            scale,
            fg_slowdown: r.fg_cycles as f64 / solo,
            bg_rate: r.bg_rate,
            reallocations: r.reallocations,
        }
    });
    ExtThresholds { cells }
}

impl ExtThresholds {
    /// Max/min spread of foreground slowdown across the sweep.
    pub fn fg_spread(&self) -> f64 {
        let max = self.cells.iter().map(|c| c.fg_slowdown).fold(f64::NEG_INFINITY, f64::max);
        let min = self.cells.iter().map(|c| c.fg_slowdown).fold(f64::INFINITY, f64::min);
        max / min
    }

    /// Renders the study.
    pub fn render(&self) -> String {
        let mut t = Table::new(["threshold scale", "fg slowdown", "bg rate", "reallocations"]);
        for c in &self.cells {
            t.push([
                format!("{:.2}x", c.scale),
                format!("{:+.1}%", (c.fg_slowdown - 1.0) * 100.0),
                format!("{:.4}", c.bg_rate),
                c.reallocations.to_string(),
            ]);
        }
        format!(
            "Extension: threshold sensitivity (pair {}+{}; fg spread {:.1}%)\n{}",
            PAIR.0,
            PAIR.1,
            (self.fg_spread() - 1.0) * 100.0,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn results_are_largely_insensitive_to_thresholds() {
        let lab = Lab::new(RunnerConfig::test());
        let ext = run(&lab);
        assert_eq!(ext.cells.len(), SCALES.len());
        // §6.3's claim: halving or doubling the thresholds barely moves
        // the foreground outcome.
        assert!(
            ext.fg_spread() < 1.10,
            "foreground slowdown spread {:.3} across threshold scales",
            ext.fg_spread()
        );
        // Every variant still actively reallocates.
        assert!(ext.cells.iter().all(|c| c.reallocations > 0));
    }
}
