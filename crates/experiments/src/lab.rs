//! The shared measurement context.
//!
//! [`Lab`] wraps a [`Runner`] with a thread-safe cache of solo runs so the
//! characterization experiments (Figs 1–5) and the consolidation baselines
//! (Figs 8–13) never repeat a measurement — the software equivalent of the
//! paper's measurement database.

use std::collections::HashMap;
use std::sync::Mutex;

use waypart_core::runner::{Runner, RunnerConfig, SoloResult};
use waypart_sim::msr::PrefetcherMask;
use waypart_workloads::{registry, AppSpec};

/// Cache key: application, threads, ways, prefetcher configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SoloKey {
    app: &'static str,
    threads: usize,
    ways: usize,
    prefetchers: bool,
}

/// Shared, cached measurement context.
pub struct Lab {
    runner: Runner,
    apps: Vec<AppSpec>,
    cache: Mutex<HashMap<SoloKey, SoloResult>>,
}

impl Lab {
    /// A lab over all 45 applications at the given configuration.
    pub fn new(cfg: RunnerConfig) -> Self {
        Lab { runner: Runner::new(cfg), apps: registry::all(), cache: Mutex::new(HashMap::new()) }
    }

    /// The underlying runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// All application specs.
    pub fn apps(&self) -> &[AppSpec] {
        &self.apps
    }

    /// Looks up an app by name.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn app(&self, name: &str) -> &AppSpec {
        self.apps.iter().find(|a| a.name == name).unwrap_or_else(|| panic!("unknown app {name}"))
    }

    /// A cached solo run with all prefetchers enabled.
    pub fn solo(&self, app: &AppSpec, threads: usize, ways: usize) -> SoloResult {
        self.solo_configured(app, threads, ways, true)
    }

    /// A cached solo run with prefetchers all-on or all-off.
    pub fn solo_configured(&self, app: &AppSpec, threads: usize, ways: usize, prefetchers: bool) -> SoloResult {
        let key = SoloKey { app: app.name, threads, ways, prefetchers };
        if let Some(hit) = self.cache.lock().expect("lab cache").get(&key) {
            return hit.clone();
        }
        let pf = if prefetchers { PrefetcherMask::all_enabled() } else { PrefetcherMask::all_disabled() };
        let res = self.runner.run_solo_configured(app, threads, ways, pf);
        assert!(!res.truncated, "{} truncated at {} threads / {} ways — raise max_quanta", app.name, threads, ways);
        self.cache.lock().expect("lab cache").insert(key, res.clone());
        res
    }

    /// The solo baseline the multiprogram experiments normalize against:
    /// 4 threads on 2 cores, full LLC (§5).
    pub fn pair_baseline(&self, app: &AppSpec) -> SoloResult {
        self.solo(app, 4, self.runner.config().machine.llc.ways)
    }

    /// Number of cached runs (for tests).
    pub fn cached_runs(&self) -> usize {
        self.cache.lock().expect("lab cache").len()
    }
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab").field("apps", &self.apps.len()).field("cached_runs", &self.cached_runs()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_avoid_reruns() {
        let lab = Lab::new(RunnerConfig::test());
        let app = lab.app("swaptions").clone();
        let a = lab.solo(&app, 2, 12);
        assert_eq!(lab.cached_runs(), 1);
        let b = lab.solo(&app, 2, 12);
        assert_eq!(lab.cached_runs(), 1);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn distinct_configs_cache_separately() {
        let lab = Lab::new(RunnerConfig::test());
        let app = lab.app("swaptions").clone();
        lab.solo(&app, 2, 12);
        lab.solo(&app, 2, 6);
        lab.solo_configured(&app, 2, 12, false);
        assert_eq!(lab.cached_runs(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_panics() {
        let lab = Lab::new(RunnerConfig::test());
        let _ = lab.app("not-a-benchmark");
    }
}
