//! The shared measurement context.
//!
//! [`Lab`] wraps a [`Runner`] with a [`RunCache`] so the characterization
//! experiments (Figs 1–5) and the consolidation baselines (Figs 8–13)
//! never repeat a measurement — the software equivalent of the paper's
//! measurement database. Every solo *and* pair run is memoized: Fig 13
//! reuses Fig 9's shared-policy runs, ext_ucp reuses Fig 13's dynamic
//! runs, and with [`Lab::persistent`] completed runs survive the process,
//! so an interrupted `reproduce` resumes where it stopped.

use waypart_core::dynamic::DynamicConfig;
use waypart_core::policy::PartitionPolicy;
use waypart_core::qos::QosConfig;
use waypart_core::runner::{BothOnceResult, PairResult, Runner, RunnerConfig, SoloResult};
use waypart_core::ucp::UcpConfig;
use waypart_sim::msr::PrefetcherMask;
use waypart_workloads::{registry, AppSpec};

use crate::runcache::{CacheStats, RunCache};
use waypart_telemetry::{self as telemetry, Event, Stamp};

/// Emits a `dyn.run` summary for a controller-driven pair result.
///
/// Emitted *after* [`RunCache::get_or_run`] returns, so a warm cache
/// still produces one summary per controller run — without this, a fully
/// cached `reproduce` would show zero controller activity in its metrics
/// even though the figures are full of it. Wall-stamped: it describes a
/// result being *used* now, not simulated now.
fn emit_pair_summary(kind: &'static str, fg: &AppSpec, bg: &AppSpec, res: &PairResult) {
    telemetry::emit_with(|| {
        Event::instant("dyn.run", Stamp::WallUs(telemetry::wall_now_us()))
            .field("kind", kind)
            .field("fg", fg.name)
            .field("bg", bg.name)
            .field("fg_cycles", res.fg_cycles)
            .field("reallocations", res.reallocations)
            .field("final_fg_ways", res.fg_ways_trace.last().map(|&(_, w)| w).unwrap_or(0))
    });
}

/// Shared, cached measurement context.
pub struct Lab {
    runner: Runner,
    apps: Vec<AppSpec>,
    cache: RunCache,
}

impl Lab {
    /// A lab over all 45 applications, memoizing runs within this process
    /// only (what unit tests want — no cross-process state).
    pub fn new(cfg: RunnerConfig) -> Self {
        let cache = RunCache::in_memory(&cfg);
        Lab { runner: Runner::new(cfg), apps: registry::all(), cache }
    }

    /// A lab whose run cache also persists to disk (`results/cache/` or
    /// `$WAYPART_CACHE_DIR`), shared across processes and invocations.
    pub fn persistent(cfg: RunnerConfig) -> Self {
        let cache = RunCache::persistent_default(&cfg);
        Lab { runner: Runner::new(cfg), apps: registry::all(), cache }
    }

    /// A lab over a different runner configuration that inherits this
    /// lab's persistence mode. For experiments that need their own
    /// machine model (e.g. the page-coloring comparison, which requires
    /// modulo indexing) while still sharing the on-disk store.
    pub fn sibling(&self, cfg: RunnerConfig) -> Self {
        let cache = match self.cache.dir() {
            Some(dir) => RunCache::persistent(&cfg, dir.clone()),
            None => RunCache::in_memory(&cfg),
        };
        Lab { runner: Runner::new(cfg), apps: registry::all(), cache }
    }

    /// The underlying runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The run cache (for hit/miss reporting).
    pub fn cache(&self) -> &RunCache {
        &self.cache
    }

    /// Cache counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// All application specs.
    pub fn apps(&self) -> &[AppSpec] {
        &self.apps
    }

    /// Looks up an app by name.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn app(&self, name: &str) -> &AppSpec {
        self.apps.iter().find(|a| a.name == name).unwrap_or_else(|| panic!("unknown app {name}"))
    }

    /// A cached solo run with all prefetchers enabled.
    pub fn solo(&self, app: &AppSpec, threads: usize, ways: usize) -> SoloResult {
        self.solo_configured(app, threads, ways, true)
    }

    /// A cached solo run with prefetchers all-on or all-off.
    pub fn solo_configured(&self, app: &AppSpec, threads: usize, ways: usize, prefetchers: bool) -> SoloResult {
        let key = format!("solo|{}|t{threads}w{ways}pf{}", app.name, u8::from(prefetchers));
        let res = self.cache.get_or_run(&key, || {
            let pf = if prefetchers { PrefetcherMask::all_enabled() } else { PrefetcherMask::all_disabled() };
            self.runner.run_solo_configured(app, threads, ways, pf)
        });
        assert!(!res.truncated, "{} truncated at {} threads / {} ways — raise max_quanta", app.name, threads, ways);
        res
    }

    /// A cached endless-background pair run (foreground runs to
    /// completion, background restarts forever).
    pub fn pair_endless_bg(&self, fg: &AppSpec, bg: &AppSpec, policy: PartitionPolicy) -> PairResult {
        let key = format!("pair|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&policy));
        self.cache.get_or_run(&key, || self.runner.run_pair_endless_bg(fg, bg, policy))
    }

    /// The batch form of [`Self::pair_endless_bg`]: the same pairing
    /// under each `policy`, results in policy order, cached under the
    /// identical per-policy keys. Cached policies are served without
    /// simulating; the misses run together through
    /// [`Runner::run_pair_batch`], which lockstep-batches them over one
    /// shared workload generator when eligible.
    pub fn pair_endless_bg_batch(
        &self,
        fg: &AppSpec,
        bg: &AppSpec,
        policies: &[PartitionPolicy],
    ) -> Vec<PairResult> {
        let keys: Vec<String> = policies
            .iter()
            .map(|p| format!("pair|{}+{}|{}", fg.name, bg.name, serde::json::to_string(p)))
            .collect();
        let mut results: Vec<Option<PairResult>> =
            keys.iter().map(|k| self.cache.lookup(k)).collect();
        let missing: Vec<usize> = (0..policies.len()).filter(|&i| results[i].is_none()).collect();
        if !missing.is_empty() {
            let uncached: Vec<PartitionPolicy> = missing.iter().map(|&i| policies[i]).collect();
            let fresh = self.runner.run_pair_batch(fg, bg, &uncached);
            for (&i, res) in missing.iter().zip(fresh) {
                self.cache.insert(&keys[i], &res);
                results[i] = Some(res);
            }
        }
        results.into_iter().map(|r| r.expect("every policy resolved")).collect()
    }

    /// A cached run-both-once pair run (consolidation energy accounting).
    pub fn pair_both_once(&self, fg: &AppSpec, bg: &AppSpec, policy: PartitionPolicy) -> BothOnceResult {
        let key = format!("both|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&policy));
        self.cache.get_or_run(&key, || self.runner.run_pair_both_once(fg, bg, policy))
    }

    /// A cached dynamically-partitioned pair run (Algorithm 6.2).
    pub fn pair_dynamic(&self, fg: &AppSpec, bg: &AppSpec, dyn_cfg: DynamicConfig) -> PairResult {
        let key = format!("dyn|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&dyn_cfg));
        let res = self.cache.get_or_run(&key, || self.runner.run_pair_dynamic(fg, bg, dyn_cfg));
        emit_pair_summary("dynamic", fg, bg, &res);
        res
    }

    /// A cached UCP-controlled pair run (§7 baseline).
    pub fn pair_ucp(&self, fg: &AppSpec, bg: &AppSpec, ucp_cfg: UcpConfig) -> PairResult {
        let key = format!("ucp|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&ucp_cfg));
        let res = self.cache.get_or_run(&key, || self.runner.run_pair_ucp(fg, bg, ucp_cfg));
        emit_pair_summary("ucp", fg, bg, &res);
        res
    }

    /// A cached QoS-controlled pair run.
    pub fn pair_qos(&self, fg: &AppSpec, bg: &AppSpec, qos_cfg: QosConfig) -> PairResult {
        let key = format!("qos|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&qos_cfg));
        let res = self.cache.get_or_run(&key, || self.runner.run_pair_qos(fg, bg, qos_cfg));
        emit_pair_summary("qos", fg, bg, &res);
        res
    }

    /// A cached pair run with multiple background copies.
    pub fn pair_multi_bg(&self, fg: &AppSpec, bg: &AppSpec, copies: usize, policy: PartitionPolicy) -> PairResult {
        let key =
            format!("multi|{}+{}x{copies}|{}", fg.name, bg.name, serde::json::to_string(&policy));
        self.cache.get_or_run(&key, || self.runner.run_pair_multi_bg(fg, bg, copies, policy))
    }

    /// A cached page-colored pair run (§7 software baseline).
    pub fn pair_colored(&self, fg: &AppSpec, bg: &AppSpec, fg_groups: usize) -> PairResult {
        let key = format!("color|{}+{}|g{fg_groups}", fg.name, bg.name);
        self.cache.get_or_run(&key, || self.runner.run_pair_colored(fg, bg, fg_groups))
    }

    /// A cached pair run with the background under an MBA throttle.
    pub fn pair_mba(
        &self,
        fg: &AppSpec,
        bg: &AppSpec,
        policy: PartitionPolicy,
        bg_mba_percent: u8,
    ) -> PairResult {
        let key = format!(
            "mba|{}+{}|{}|p{bg_mba_percent}",
            fg.name,
            bg.name,
            serde::json::to_string(&policy)
        );
        self.cache.get_or_run(&key, || self.runner.run_pair_mba(fg, bg, policy, bg_mba_percent))
    }

    /// The solo baseline the multiprogram experiments normalize against:
    /// 4 threads on 2 cores, full LLC (§5).
    pub fn pair_baseline(&self, app: &AppSpec) -> SoloResult {
        self.solo(app, 4, self.runner.config().machine.llc.ways)
    }

    /// Number of cached runs (for tests).
    pub fn cached_runs(&self) -> usize {
        self.cache.mem_len()
    }
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab").field("apps", &self.apps.len()).field("cached_runs", &self.cached_runs()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_avoid_reruns() {
        let lab = Lab::new(RunnerConfig::test());
        let app = lab.app("swaptions").clone();
        let a = lab.solo(&app, 2, 12);
        assert_eq!(lab.cached_runs(), 1);
        let b = lab.solo(&app, 2, 12);
        assert_eq!(lab.cached_runs(), 1);
        assert_eq!(a.cycles, b.cycles);
        let stats = lab.cache_stats();
        assert_eq!((stats.mem_hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_configs_cache_separately() {
        let lab = Lab::new(RunnerConfig::test());
        let app = lab.app("swaptions").clone();
        lab.solo(&app, 2, 12);
        lab.solo(&app, 2, 6);
        lab.solo_configured(&app, 2, 12, false);
        assert_eq!(lab.cached_runs(), 3);
    }

    #[test]
    fn pair_runs_are_cached_too() {
        let lab = Lab::new(RunnerConfig::test());
        let fg = lab.app("swaptions").clone();
        let bg = lab.app("dedup").clone();
        let a = lab.pair_endless_bg(&fg, &bg, PartitionPolicy::Shared);
        let b = lab.pair_endless_bg(&fg, &bg, PartitionPolicy::Shared);
        assert_eq!(a.fg_cycles, b.fg_cycles);
        assert_eq!(lab.cache_stats().mem_hits, 1);
        // A different policy is a different run.
        let c = lab.pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 8 });
        assert!(c.fg_cycles > 0);
        assert_eq!(lab.cached_runs(), 2);
    }

    #[test]
    fn pair_batch_matches_sequential_runs() {
        // The lockstep batch must be invisible in the results: every
        // field of every policy's PairResult identical to a private
        // sequential run (JSON compare covers counters, energy, and the
        // full MPKI series at once).
        let seq_lab = Lab::new(RunnerConfig::test());
        let batch_lab = Lab::new(RunnerConfig::test());
        let fg = seq_lab.app("swaptions").clone();
        let bg = seq_lab.app("dedup").clone();
        let policies = [
            PartitionPolicy::Shared,
            PartitionPolicy::Fair,
            PartitionPolicy::Biased { fg_ways: 3 },
            PartitionPolicy::Biased { fg_ways: 11 },
        ];
        let batch = batch_lab.pair_endless_bg_batch(&fg, &bg, &policies);
        assert_eq!(batch.len(), policies.len());
        for (policy, batched) in policies.iter().zip(&batch) {
            let sequential = seq_lab.pair_endless_bg(&fg, &bg, *policy);
            assert_eq!(
                serde::json::to_string(&sequential),
                serde::json::to_string(batched),
                "lockstep diverged under {policy:?}"
            );
        }
    }

    #[test]
    fn pair_batch_serves_cached_policies() {
        let lab = Lab::new(RunnerConfig::test());
        let fg = lab.app("swaptions").clone();
        let bg = lab.app("dedup").clone();
        let warm = lab.pair_endless_bg(&fg, &bg, PartitionPolicy::Fair);
        let policies = [PartitionPolicy::Fair, PartitionPolicy::Biased { fg_ways: 8 }];
        let batch = lab.pair_endless_bg_batch(&fg, &bg, &policies);
        assert_eq!(batch[0].fg_cycles, warm.fg_cycles);
        let stats = lab.cache_stats();
        assert_eq!((stats.mem_hits, stats.misses), (1, 2), "only the biased run simulates");
        // A repeat batch is fully served from cache.
        lab.pair_endless_bg_batch(&fg, &bg, &policies);
        assert_eq!(lab.cache_stats().mem_hits, 3);
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_panics() {
        let lab = Lab::new(RunnerConfig::test());
        let _ = lab.app("not-a-benchmark");
    }
}
