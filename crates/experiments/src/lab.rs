//! The shared measurement context.
//!
//! [`Lab`] wraps a [`Runner`] with a [`RunCache`] so the characterization
//! experiments (Figs 1–5) and the consolidation baselines (Figs 8–13)
//! never repeat a measurement — the software equivalent of the paper's
//! measurement database. Every solo *and* pair run is memoized: Fig 13
//! reuses Fig 9's shared-policy runs, ext_ucp reuses Fig 13's dynamic
//! runs, and with [`Lab::persistent`] completed runs survive the process,
//! so an interrupted `reproduce` resumes where it stopped.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use waypart_core::dynamic::DynamicConfig;
use waypart_core::policy::PartitionPolicy;
use waypart_core::qos::QosConfig;
use waypart_core::runner::{BothOnceResult, PairResult, Runner, RunnerConfig, SoloResult};
use waypart_core::sweep::ShardSpec;
use waypart_core::ucp::UcpConfig;
use waypart_sim::msr::PrefetcherMask;
use waypart_workloads::{registry, AppSpec};

use crate::runcache::{CacheStats, RunCache};
use waypart_telemetry::progress::{self, Counter};
use waypart_telemetry::{self as telemetry, Event, Stamp};

/// Emits a `dyn.run` summary for a controller-driven pair result.
///
/// Emitted *after* [`RunCache::get_or_run`] returns, so a warm cache
/// still produces one summary per controller run — without this, a fully
/// cached `reproduce` would show zero controller activity in its metrics
/// even though the figures are full of it. Wall-stamped: it describes a
/// result being *used* now, not simulated now.
fn emit_pair_summary(kind: &'static str, fg: &AppSpec, bg: &AppSpec, res: &PairResult) {
    telemetry::emit_with(|| {
        Event::instant("dyn.run", Stamp::WallUs(telemetry::wall_now_us()))
            .field("kind", kind)
            .field("fg", fg.name)
            .field("bg", bg.name)
            .field("fg_cycles", res.fg_cycles)
            .field("reallocations", res.reallocations)
            .field("final_fg_ways", res.fg_ways_trace.last().map(|&(_, w)| w).unwrap_or(0))
    });
}

/// Cross-worker coordination counters of a sharded [`Lab`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Non-owned misses this worker waited on a peer for.
    pub waits: u64,
    /// Total microseconds spent polling peers.
    pub wait_us: u64,
    /// Non-owned keys this worker simulated itself after the owner's
    /// claim went missing past the grace period (peer crashed or lagged).
    pub takeovers: u64,
}

/// Shared, cached measurement context.
pub struct Lab {
    runner: Runner,
    apps: Vec<AppSpec>,
    cache: RunCache,
    /// When set, this lab only *simulates* cache keys the slice owns
    /// (`ShardSpec::owns_hash` over `RunCache::key_hash`); misses it does
    /// not own are awaited from the shared disk store.
    shard: Option<ShardSpec>,
    /// How long a waiter tolerates an unclaimed, absent entry before
    /// taking the key over (see [`Lab::wait_for_peer`]).
    wait_grace: Duration,
    waits: AtomicU64,
    wait_us: AtomicU64,
    takeovers: AtomicU64,
}

impl Lab {
    /// A lab over all 45 applications, memoizing runs within this process
    /// only (what unit tests want — no cross-process state).
    pub fn new(cfg: RunnerConfig) -> Self {
        let cache = RunCache::in_memory(&cfg);
        Self::with_cache(cfg, cache)
    }

    /// A lab whose run cache also persists to disk (`results/cache/` or
    /// `$WAYPART_CACHE_DIR`), shared across processes and invocations.
    pub fn persistent(cfg: RunnerConfig) -> Self {
        let cache = RunCache::persistent_default(&cfg);
        Self::with_cache(cfg, cache)
    }

    /// A lab persisted under an explicit cache directory (tests and
    /// tools that must not touch `results/cache/`).
    pub fn persistent_at(cfg: RunnerConfig, dir: PathBuf) -> Self {
        let cache = RunCache::persistent(&cfg, dir);
        Self::with_cache(cfg, cache)
    }

    fn with_cache(cfg: RunnerConfig, cache: RunCache) -> Self {
        Lab {
            runner: Runner::new(cfg),
            apps: registry::all(),
            cache,
            shard: None,
            wait_grace: Duration::from_secs(120),
            waits: AtomicU64::new(0),
            wait_us: AtomicU64::new(0),
            takeovers: AtomicU64::new(0),
        }
    }

    /// Restricts this lab to simulating only the keys `shard` owns;
    /// everything else is awaited from peers through the shared store.
    /// Meaningful only with a persistent cache (an in-memory shard would
    /// wait forever — the grace-period takeover degrades it to running
    /// everything itself).
    pub fn with_shard(mut self, shard: ShardSpec) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Overrides the peer-wait grace period (tests shrink it to
    /// milliseconds so takeover paths run fast).
    pub fn with_wait_grace(mut self, grace: Duration) -> Self {
        self.wait_grace = grace;
        self
    }

    /// A lab over a different runner configuration that inherits this
    /// lab's persistence mode, shard slice, and wait grace. For
    /// experiments that need their own machine model (e.g. the
    /// page-coloring comparison, which requires modulo indexing) while
    /// still sharing the on-disk store.
    pub fn sibling(&self, cfg: RunnerConfig) -> Self {
        let cache = match self.cache.dir() {
            Some(dir) => RunCache::persistent(&cfg, dir.clone()),
            None => RunCache::in_memory(&cfg),
        };
        let mut lab = Self::with_cache(cfg, cache);
        lab.shard = self.shard;
        lab.wait_grace = self.wait_grace;
        lab
    }

    /// The shard slice this lab executes, if any.
    pub fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// Cross-worker wait/takeover counters (all zero when unsharded).
    pub fn shard_stats(&self) -> ShardStats {
        ShardStats {
            waits: self.waits.load(Ordering::Relaxed),
            wait_us: self.wait_us.load(Ordering::Relaxed),
            takeovers: self.takeovers.load(Ordering::Relaxed),
        }
    }

    /// Whether this lab's slice owns `key` (always true unsharded).
    fn owns(&self, key: &str) -> bool {
        match self.shard {
            None => true,
            Some(shard) => shard.owns_hash(self.cache.key_hash(key)),
        }
    }

    /// The shard-aware spine every cached run goes through: cache hit →
    /// return; owned miss → claim, simulate, insert; non-owned miss →
    /// wait for the owning peer (with grace-period takeover). Unsharded
    /// labs behave exactly like `RunCache::get_or_run`.
    fn run_cached<T, F>(&self, key: &str, run: F) -> T
    where
        T: Serialize + Deserialize,
        F: FnOnce() -> T,
    {
        if let Some(v) = self.cache.lookup(key) {
            progress::count(Counter::RunDone);
            return v;
        }
        if self.owns(key) {
            // Claim so peers racing this as a shared dependency poll
            // instead of duplicating; a failed claim (peer already took
            // it over) is fine — determinism makes duplicates harmless
            // and last-writer-wins keeps the store consistent.
            let claim = self.cache.try_claim(key);
            let v = run();
            self.cache.insert(key, &v);
            drop(claim); // release strictly after the entry is visible
            progress::count(Counter::RunDone);
            return v;
        }
        self.wait_for_peer(key, run)
    }

    /// Polls the shared store for a key another shard owns. Liveness: a
    /// *fresh* claim means the owner is simulating — keep waiting; no
    /// claim for longer than the grace period means the owner crashed or
    /// fell behind — claim the key and run it ourselves (best-effort
    /// work stealing; worst case both run it and the entries are
    /// identical by determinism).
    fn wait_for_peer<T, F>(&self, key: &str, run: F) -> T
    where
        T: Serialize + Deserialize,
        F: FnOnce() -> T,
    {
        self.waits.fetch_add(1, Ordering::Relaxed);
        progress::count(Counter::Wait);
        let started = Instant::now();
        let mut last_progress = Instant::now();
        let mut backoff = Duration::from_millis(2);
        loop {
            if let Some(v) = self.cache.lookup(key) {
                self.wait_us.fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
                progress::count(Counter::RunDone);
                return v;
            }
            match self.cache.claim_age_secs(key) {
                Some(age) if age < self.wait_grace.as_secs_f64() => {
                    // Someone is (or very recently was) on it.
                    last_progress = Instant::now();
                }
                _ => {
                    if last_progress.elapsed() >= self.wait_grace {
                        // A dead owner never releases its claim file
                        // (ClaimGuard::drop never ran), and try_claim's
                        // create_new would fail against it forever;
                        // clear any claim older than the grace period
                        // so the takeover below can succeed.
                        self.cache.break_stale_claim(key, self.wait_grace);
                        if let Some(claim) = self.cache.try_claim(key) {
                            // The entry may have landed between the
                            // lookup and the claim.
                            if let Some(v) = self.cache.lookup(key) {
                                self.wait_us.fetch_add(
                                    started.elapsed().as_micros() as u64,
                                    Ordering::Relaxed,
                                );
                                progress::count(Counter::RunDone);
                                return v;
                            }
                            self.takeovers.fetch_add(1, Ordering::Relaxed);
                            progress::count(Counter::Takeover);
                            self.emit_takeover(key);
                            let v = run();
                            self.cache.insert(key, &v);
                            drop(claim);
                            self.wait_us.fetch_add(
                                started.elapsed().as_micros() as u64,
                                Ordering::Relaxed,
                            );
                            progress::count(Counter::RunDone);
                            return v;
                        }
                        // Lost the takeover race: a peer claimed it.
                        last_progress = Instant::now();
                    }
                }
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(200));
        }
    }

    /// Emits one `cache.takeover` event (wall-stamped harness activity).
    fn emit_takeover(&self, key: &str) {
        telemetry::emit_with(|| {
            Event::instant("cache.takeover", Stamp::WallUs(telemetry::wall_now_us()))
                .field("key", key)
                .field("shard", self.shard.map(|s| s.to_string()).unwrap_or_default().as_str())
        });
    }

    /// The underlying runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The run cache (for hit/miss reporting).
    pub fn cache(&self) -> &RunCache {
        &self.cache
    }

    /// Cache counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// All application specs.
    pub fn apps(&self) -> &[AppSpec] {
        &self.apps
    }

    /// Looks up an app by name.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn app(&self, name: &str) -> &AppSpec {
        self.apps.iter().find(|a| a.name == name).unwrap_or_else(|| panic!("unknown app {name}"))
    }

    /// A cached solo run with all prefetchers enabled.
    pub fn solo(&self, app: &AppSpec, threads: usize, ways: usize) -> SoloResult {
        self.solo_configured(app, threads, ways, true)
    }

    /// A cached solo run with prefetchers all-on or all-off.
    pub fn solo_configured(&self, app: &AppSpec, threads: usize, ways: usize, prefetchers: bool) -> SoloResult {
        let key = format!("solo|{}|t{threads}w{ways}pf{}", app.name, u8::from(prefetchers));
        let res = self.run_cached(&key, || {
            let pf = if prefetchers { PrefetcherMask::all_enabled() } else { PrefetcherMask::all_disabled() };
            self.runner.run_solo_configured(app, threads, ways, pf)
        });
        assert!(!res.truncated, "{} truncated at {} threads / {} ways — raise max_quanta", app.name, threads, ways);
        res
    }

    /// A cached endless-background pair run (foreground runs to
    /// completion, background restarts forever).
    pub fn pair_endless_bg(&self, fg: &AppSpec, bg: &AppSpec, policy: PartitionPolicy) -> PairResult {
        let key = format!("pair|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&policy));
        self.run_cached(&key, || self.runner.run_pair_endless_bg(fg, bg, policy))
    }

    /// The batch form of [`Self::pair_endless_bg`]: the same pairing
    /// under each `policy`, results in policy order, cached under the
    /// identical per-policy keys. Cached policies are served without
    /// simulating; the misses run together through
    /// [`Runner::run_pair_batch`], which lockstep-batches them over one
    /// shared workload generator when eligible.
    ///
    /// Sharded labs split the misses by key ownership: owned policies
    /// run together in one lockstep batch (claimed first, so peers racing
    /// them poll instead of duplicating); non-owned policies are awaited
    /// from their owners afterwards — per-policy keys and accounting stay
    /// identical to the sequential path either way.
    pub fn pair_endless_bg_batch(
        &self,
        fg: &AppSpec,
        bg: &AppSpec,
        policies: &[PartitionPolicy],
    ) -> Vec<PairResult> {
        let keys: Vec<String> = policies
            .iter()
            .map(|p| format!("pair|{}+{}|{}", fg.name, bg.name, serde::json::to_string(p)))
            .collect();
        let mut results: Vec<Option<PairResult>> =
            keys.iter().map(|k| self.cache.lookup(k)).collect();
        for _ in results.iter().flatten() {
            progress::count(Counter::RunDone);
        }
        let missing: Vec<usize> = (0..policies.len()).filter(|&i| results[i].is_none()).collect();
        let (owned, awaited): (Vec<usize>, Vec<usize>) =
            missing.into_iter().partition(|&i| self.owns(&keys[i]));
        if !owned.is_empty() {
            let claims: Vec<_> = owned.iter().map(|&i| self.cache.try_claim(&keys[i])).collect();
            let uncached: Vec<PartitionPolicy> = owned.iter().map(|&i| policies[i]).collect();
            let fresh = self.runner.run_pair_batch(fg, bg, &uncached);
            for (&i, res) in owned.iter().zip(fresh) {
                self.cache.insert(&keys[i], &res);
                results[i] = Some(res);
                progress::count(Counter::RunDone);
            }
            drop(claims); // release strictly after every entry is visible
        }
        for i in awaited {
            let policy = policies[i];
            results[i] =
                Some(self.wait_for_peer(&keys[i], || self.runner.run_pair_endless_bg(fg, bg, policy)));
        }
        results.into_iter().map(|r| r.expect("every policy resolved")).collect()
    }

    /// A cached run-both-once pair run (consolidation energy accounting).
    pub fn pair_both_once(&self, fg: &AppSpec, bg: &AppSpec, policy: PartitionPolicy) -> BothOnceResult {
        let key = format!("both|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&policy));
        self.run_cached(&key, || self.runner.run_pair_both_once(fg, bg, policy))
    }

    /// A cached dynamically-partitioned pair run (Algorithm 6.2).
    pub fn pair_dynamic(&self, fg: &AppSpec, bg: &AppSpec, dyn_cfg: DynamicConfig) -> PairResult {
        let key = format!("dyn|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&dyn_cfg));
        let res = self.run_cached(&key, || self.runner.run_pair_dynamic(fg, bg, dyn_cfg));
        emit_pair_summary("dynamic", fg, bg, &res);
        res
    }

    /// A cached UCP-controlled pair run (§7 baseline).
    pub fn pair_ucp(&self, fg: &AppSpec, bg: &AppSpec, ucp_cfg: UcpConfig) -> PairResult {
        let key = format!("ucp|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&ucp_cfg));
        let res = self.run_cached(&key, || self.runner.run_pair_ucp(fg, bg, ucp_cfg));
        emit_pair_summary("ucp", fg, bg, &res);
        res
    }

    /// A cached QoS-controlled pair run.
    pub fn pair_qos(&self, fg: &AppSpec, bg: &AppSpec, qos_cfg: QosConfig) -> PairResult {
        let key = format!("qos|{}+{}|{}", fg.name, bg.name, serde::json::to_string(&qos_cfg));
        let res = self.run_cached(&key, || self.runner.run_pair_qos(fg, bg, qos_cfg));
        emit_pair_summary("qos", fg, bg, &res);
        res
    }

    /// A cached pair run with multiple background copies.
    pub fn pair_multi_bg(&self, fg: &AppSpec, bg: &AppSpec, copies: usize, policy: PartitionPolicy) -> PairResult {
        let key =
            format!("multi|{}+{}x{copies}|{}", fg.name, bg.name, serde::json::to_string(&policy));
        self.run_cached(&key, || self.runner.run_pair_multi_bg(fg, bg, copies, policy))
    }

    /// A cached page-colored pair run (§7 software baseline).
    pub fn pair_colored(&self, fg: &AppSpec, bg: &AppSpec, fg_groups: usize) -> PairResult {
        let key = format!("color|{}+{}|g{fg_groups}", fg.name, bg.name);
        self.run_cached(&key, || self.runner.run_pair_colored(fg, bg, fg_groups))
    }

    /// A cached pair run with the background under an MBA throttle.
    pub fn pair_mba(
        &self,
        fg: &AppSpec,
        bg: &AppSpec,
        policy: PartitionPolicy,
        bg_mba_percent: u8,
    ) -> PairResult {
        let key = format!(
            "mba|{}+{}|{}|p{bg_mba_percent}",
            fg.name,
            bg.name,
            serde::json::to_string(&policy)
        );
        self.run_cached(&key, || self.runner.run_pair_mba(fg, bg, policy, bg_mba_percent))
    }

    /// The solo baseline the multiprogram experiments normalize against:
    /// 4 threads on 2 cores, full LLC (§5).
    pub fn pair_baseline(&self, app: &AppSpec) -> SoloResult {
        self.solo(app, 4, self.runner.config().machine.llc.ways)
    }

    /// Number of cached runs (for tests).
    pub fn cached_runs(&self) -> usize {
        self.cache.mem_len()
    }
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab").field("apps", &self.apps.len()).field("cached_runs", &self.cached_runs()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_avoid_reruns() {
        let lab = Lab::new(RunnerConfig::test());
        let app = lab.app("swaptions").clone();
        let a = lab.solo(&app, 2, 12);
        assert_eq!(lab.cached_runs(), 1);
        let b = lab.solo(&app, 2, 12);
        assert_eq!(lab.cached_runs(), 1);
        assert_eq!(a.cycles, b.cycles);
        let stats = lab.cache_stats();
        assert_eq!((stats.mem_hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_configs_cache_separately() {
        let lab = Lab::new(RunnerConfig::test());
        let app = lab.app("swaptions").clone();
        lab.solo(&app, 2, 12);
        lab.solo(&app, 2, 6);
        lab.solo_configured(&app, 2, 12, false);
        assert_eq!(lab.cached_runs(), 3);
    }

    #[test]
    fn pair_runs_are_cached_too() {
        let lab = Lab::new(RunnerConfig::test());
        let fg = lab.app("swaptions").clone();
        let bg = lab.app("dedup").clone();
        let a = lab.pair_endless_bg(&fg, &bg, PartitionPolicy::Shared);
        let b = lab.pair_endless_bg(&fg, &bg, PartitionPolicy::Shared);
        assert_eq!(a.fg_cycles, b.fg_cycles);
        assert_eq!(lab.cache_stats().mem_hits, 1);
        // A different policy is a different run.
        let c = lab.pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 8 });
        assert!(c.fg_cycles > 0);
        assert_eq!(lab.cached_runs(), 2);
    }

    #[test]
    fn pair_batch_matches_sequential_runs() {
        // The lockstep batch must be invisible in the results: every
        // field of every policy's PairResult identical to a private
        // sequential run (JSON compare covers counters, energy, and the
        // full MPKI series at once).
        let seq_lab = Lab::new(RunnerConfig::test());
        let batch_lab = Lab::new(RunnerConfig::test());
        let fg = seq_lab.app("swaptions").clone();
        let bg = seq_lab.app("dedup").clone();
        let policies = [
            PartitionPolicy::Shared,
            PartitionPolicy::Fair,
            PartitionPolicy::Biased { fg_ways: 3 },
            PartitionPolicy::Biased { fg_ways: 11 },
        ];
        let batch = batch_lab.pair_endless_bg_batch(&fg, &bg, &policies);
        assert_eq!(batch.len(), policies.len());
        for (policy, batched) in policies.iter().zip(&batch) {
            let sequential = seq_lab.pair_endless_bg(&fg, &bg, *policy);
            assert_eq!(
                serde::json::to_string(&sequential),
                serde::json::to_string(batched),
                "lockstep diverged under {policy:?}"
            );
        }
    }

    #[test]
    fn pair_batch_serves_cached_policies() {
        let lab = Lab::new(RunnerConfig::test());
        let fg = lab.app("swaptions").clone();
        let bg = lab.app("dedup").clone();
        let warm = lab.pair_endless_bg(&fg, &bg, PartitionPolicy::Fair);
        let policies = [PartitionPolicy::Fair, PartitionPolicy::Biased { fg_ways: 8 }];
        let batch = lab.pair_endless_bg_batch(&fg, &bg, &policies);
        assert_eq!(batch[0].fg_cycles, warm.fg_cycles);
        let stats = lab.cache_stats();
        assert_eq!((stats.mem_hits, stats.misses), (1, 2), "only the biased run simulates");
        // A repeat batch is fully served from cache.
        lab.pair_endless_bg_batch(&fg, &bg, &policies);
        assert_eq!(lab.cache_stats().mem_hits, 3);
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_panics() {
        let lab = Lab::new(RunnerConfig::test());
        let _ = lab.app("not-a-benchmark");
    }

    fn tmp_dir(label: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("waypart-lab-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The small pipeline the sharding tests drive through a lab.
    fn exercise(lab: &Lab) -> Vec<String> {
        let fg = lab.app("swaptions").clone();
        let bg = lab.app("dedup").clone();
        let mut out = Vec::new();
        for ways in [4usize, 8, 12] {
            out.push(serde::json::to_string(&lab.solo(&fg, 2, ways)));
        }
        let policies = [
            PartitionPolicy::Shared,
            PartitionPolicy::Fair,
            PartitionPolicy::Biased { fg_ways: 9 },
        ];
        for r in lab.pair_endless_bg_batch(&fg, &bg, &policies) {
            out.push(serde::json::to_string(&r));
        }
        out
    }

    #[test]
    fn two_shards_produce_identical_results_and_split_the_work() {
        let dir = tmp_dir("shards");
        let cfg = RunnerConfig::test();
        let reference: Vec<String> = exercise(&Lab::new(cfg.clone()));

        // Two workers over one shared store, each owning half the key
        // space, running the same pipeline concurrently.
        let handles: Vec<_> = (1..=2u32)
            .map(|index| {
                let dir = dir.clone();
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let lab = Lab::persistent_at(cfg, dir)
                        .with_shard(ShardSpec { index, count: 2 })
                        .with_wait_grace(Duration::from_secs(60));
                    let out = exercise(&lab);
                    (out, lab.cache_stats(), lab.shard_stats())
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        let mut total_misses = 0;
        for (out, cache, shard) in &outcomes {
            assert_eq!(out, &reference, "sharded results must be byte-identical");
            assert_eq!(shard.takeovers, 0, "no takeover needed while both workers live");
            total_misses += cache.misses;
        }
        // The slices are disjoint: together the two workers simulated the
        // grid exactly once (6 runs), not twice.
        assert_eq!(total_misses, reference.len() as u64, "shards must not duplicate runs");
        assert!(
            outcomes.iter().all(|(_, c, _)| c.misses < reference.len() as u64),
            "one worker simulated everything — the partition did not split the grid"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lone_shard_takes_over_abandoned_keys() {
        // A single worker owning slice 1/2, with zero grace: every
        // non-owned miss has no live owner, so the worker must take each
        // one over rather than hang — the liveness property a crashed
        // peer relies on.
        let dir = tmp_dir("takeover");
        let cfg = RunnerConfig::test();
        let reference: Vec<String> = exercise(&Lab::new(cfg.clone()));
        let lab = Lab::persistent_at(cfg, dir.clone())
            .with_shard(ShardSpec { index: 1, count: 2 })
            .with_wait_grace(Duration::ZERO);
        assert_eq!(exercise(&lab), reference);
        let shard = lab.shard_stats();
        assert!(shard.takeovers > 0, "non-owned keys must be taken over, not hung on");
        assert_eq!(shard.waits, shard.takeovers, "every wait resolved by takeover");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_claim_from_dead_peer_does_not_livelock() {
        // A peer claimed keys and was killed: its claim files outlive it
        // (ClaimGuard::drop never ran). The surviving worker must break
        // them once they age past the grace period and take the keys
        // over — not read the failing try_claim as a lost race and poll
        // forever.
        let dir = tmp_dir("dead-peer");
        let cfg = RunnerConfig::test();
        let reference: Vec<String> = exercise(&Lab::new(cfg.clone()));
        {
            let dead = RunCache::persistent(&cfg, dir.clone());
            for ways in [4usize, 8, 12] {
                let g = dead.try_claim(&format!("solo|swaptions|t2w{ways}pf1")).expect("claim");
                std::mem::forget(g);
            }
        }
        let lab = Lab::persistent_at(cfg, dir.clone())
            .with_shard(ShardSpec { index: 1, count: 2 })
            .with_wait_grace(Duration::from_millis(50));
        assert_eq!(exercise(&lab), reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sibling_inherits_shard_and_grace() {
        let cfg = RunnerConfig::test();
        let lab = Lab::new(cfg.clone())
            .with_shard(ShardSpec { index: 2, count: 3 })
            .with_wait_grace(Duration::from_millis(7));
        let sib = lab.sibling(cfg);
        assert_eq!(sib.shard(), Some(ShardSpec { index: 2, count: 3 }));
        assert_eq!(sib.wait_grace, Duration::from_millis(7));
    }
}
