//! Figure 12 — `429.mcf`'s LLC MPKI over retired instructions for every
//! static way allocation (2–12 ways) and for the dynamic controller.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_core::dynamic::DynamicConfig;
use waypart_perfmon::MpkiSeries;

/// Application traced (the paper's phase-change showcase).
pub const APP: &str = "429.mcf";
/// Background used for the dynamic trace (cache-insensitive so the trace
/// reflects the controller, not background interference).
pub const DYNAMIC_BG: &str = "swaptions";

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12 {
    /// (ways, MPKI series) for static allocations 2..=12.
    pub static_series: Vec<(usize, MpkiSeries)>,
    /// MPKI series under the dynamic controller.
    pub dynamic_series: MpkiSeries,
    /// The controller's foreground way allocation over time.
    pub dynamic_ways: Vec<(u64, usize)>,
    /// Mask reprogrammings the controller performed.
    pub reallocations: u64,
}

/// Traces `429.mcf` under every static allocation and the controller.
pub fn run(lab: &Lab) -> Fig12 {
    let app = lab.app(APP).clone();
    let bg = lab.app(DYNAMIC_BG).clone();
    let ways_total = lab.runner().config().machine.llc.ways;
    let static_series = parallel_map((2..=ways_total).collect(), |&w| {
        let res = lab.solo(&app, 1, w);
        (w, res.mpki.clone())
    });
    let dynamic = lab.pair_dynamic(&app, &bg, DynamicConfig::paper());
    assert!(!dynamic.truncated, "dynamic mcf run truncated");
    Fig12 {
        static_series,
        dynamic_series: dynamic.fg_mpki,
        dynamic_ways: dynamic.fg_ways_trace,
        reallocations: dynamic.reallocations,
    }
}

impl Fig12 {
    /// The static series for a given way count.
    pub fn series(&self, ways: usize) -> Option<&MpkiSeries> {
        self.static_series.iter().find(|(w, _)| *w == ways).map(|(_, s)| s)
    }

    /// Regime transitions of the full-capacity trace (the paper's trace
    /// shows 5).
    pub fn transitions(&self) -> usize {
        let full = self.static_series.last().expect("series").1.clone();
        let mean = full.mean();
        full.regime_transitions(mean, 2)
    }

    /// Renders a numeric summary: mean MPKI per allocation plus the
    /// dynamic trace's statistics.
    pub fn render(&self) -> String {
        let mut table = Table::new(["allocation", "mean MPKI", "windows", "trace"]);
        let spark = |s: &MpkiSeries| {
            let vals: Vec<f64> = s.points().iter().map(|p| p.1).collect();
            crate::viz::sparkline(&vals)
        };
        for (w, s) in &self.static_series {
            table.push([format!("{w} ways"), format!("{:.2}", s.mean()), s.len().to_string(), spark(s)]);
        }
        table.push([
            "dynamic".to_string(),
            format!("{:.2}", self.dynamic_series.mean()),
            self.dynamic_series.len().to_string(),
            spark(&self.dynamic_series),
        ]);
        let ways: Vec<String> = self.dynamic_ways.iter().map(|(_, w)| w.to_string()).collect();
        format!(
            "Figure 12: 429.mcf MPKI phases ({} transitions at full capacity, {} reallocations)\n{}\ndynamic way trace: {}\n",
            self.transitions(),
            self.reallocations,
            table.render(),
            ways.join(" → ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn mcf_shows_phases_and_capacity_sensitivity() {
        let lab = Lab::new(RunnerConfig::test());
        let fig = run(&lab);
        // More capacity → lower mean MPKI.
        let small = fig.series(2).unwrap().mean();
        let large = fig.series(12).unwrap().mean();
        assert!(large < small, "MPKI should fall with capacity: {small:.1} → {large:.1}");
        // The phase structure must be visible at full capacity: the paper
        // shows 5 transitions; accept 3..=7 at test scale.
        let t = fig.transitions();
        assert!((3..=7).contains(&t), "expected ~5 regime transitions, saw {t}");
        // The controller must have adapted at least once per phase change.
        assert!(fig.reallocations >= 3, "only {} reallocations", fig.reallocations);
    }
}
