//! Figure 4 — increase in execution time when co-running with the
//! `stream_uncached` bandwidth hog.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};

/// Threads for the victim application (hog runs single-threaded).
pub const THREADS: usize = 4;

/// One application's bandwidth sensitivity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Application name.
    pub app: String,
    /// time(with hog) / time(alone).
    pub slowdown: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    /// Per-application slowdowns, registry order (the hog itself is
    /// excluded as the paper plots it against itself separately).
    pub rows: Vec<Fig4Row>,
}

/// Measures the named applications (or all, including the hog-vs-hog
/// point the paper annotates as 3.8×).
pub fn run_subset(lab: &Lab, names: Option<&[&str]>) -> Fig4 {
    let apps: Vec<_> = match names {
        Some(ns) => ns.iter().map(|n| lab.app(n).clone()).collect(),
        None => lab.apps().to_vec(),
    };
    let hog = lab.app("stream_uncached").clone();
    let slowdowns = parallel_map(apps.clone(), |app| {
        let solo = lab.solo(app, THREADS, lab.runner().config().machine.llc.ways).cycles;
        let pair = lab.runner().run_with_hog(app, &hog);
        assert!(!pair.truncated, "{} truncated next to the hog", app.name);
        pair.fg_cycles as f64 / solo as f64
    });
    let rows = apps
        .iter()
        .zip(&slowdowns)
        .map(|(app, &s)| Fig4Row { app: app.name.to_string(), slowdown: s })
        .collect();
    Fig4 { rows }
}

/// Measures all 45 applications.
pub fn run(lab: &Lab) -> Fig4 {
    run_subset(lab, None)
}

impl Fig4 {
    /// The slowdown for one application.
    pub fn slowdown(&self, app: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.app == app).map(|r| r.slowdown)
    }

    /// Renders the figure's series.
    pub fn render(&self) -> String {
        let mut table = Table::new(["app", "slowdown"]);
        for r in &self.rows {
            table.push([r.app.clone(), format!("{:.3}x", r.slowdown)]);
        }
        format!("Figure 4: execution-time increase next to stream_uncached\n{}", table.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn bandwidth_bound_suffers_compute_bound_does_not() {
        let lab = Lab::new(RunnerConfig::test());
        let fig = run_subset(&lab, Some(&["470.lbm", "453.povray"]));
        let lbm = fig.slowdown("470.lbm").unwrap();
        assert!(lbm > 1.15, "lbm hog slowdown {lbm:.3} too small");
        let povray = fig.slowdown("453.povray").unwrap();
        assert!(povray < 1.08, "povray hog slowdown {povray:.3} too large");
        assert!(lbm > povray);
    }
}
