//! Figure 13 — background throughput under the dynamic controller and
//! under naive sharing, both normalized to the best static allocation for
//! the foreground.

use crate::fig9::Fig9;
use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_analysis::SummaryStats;
use waypart_core::dynamic::DynamicConfig;
use waypart_core::policy::PartitionPolicy;
use waypart_workloads::registry::CLUSTER_REPRESENTATIVES;

/// One ordered pair's throughput comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Cell {
    /// Foreground application.
    pub fg: String,
    /// Background application.
    pub bg: String,
    /// Background rate under the best static split (instr/cycle).
    pub best_static_rate: f64,
    /// Background rate under the dynamic controller, relative to best
    /// static.
    pub dynamic: f64,
    /// Background rate under naive sharing, relative to best static.
    pub shared: f64,
    /// Foreground slowdown under the dynamic controller relative to its
    /// best-static slowdown (the "within 1–2%" guarantee).
    pub dynamic_fg_penalty: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13 {
    /// All ordered pairs.
    pub cells: Vec<Fig13Cell>,
}

/// Runs the dynamic-vs-static comparison, reusing Fig 9's biased search
/// results as the "best static" baseline.
pub fn run_for(lab: &Lab, names: &[&str], fig9: &Fig9) -> Fig13 {
    let specs: Vec<_> = names.iter().map(|n| lab.app(n).clone()).collect();
    let jobs: Vec<(usize, usize)> =
        (0..specs.len()).flat_map(|f| (0..specs.len()).map(move |b| (f, b))).collect();
    let cells = parallel_map(jobs, |&(f, b)| {
        let fg = &specs[f];
        let bg = &specs[b];
        let base = fig9.cell(fg.name, bg.name).expect("fig9 covers the pair");
        let dynamic = lab.pair_dynamic(fg, bg, DynamicConfig::paper());
        let shared = lab.pair_endless_bg(fg, bg, PartitionPolicy::Shared);
        assert!(!dynamic.truncated && !shared.truncated, "{}+{} truncated", fg.name, bg.name);
        let solo = lab.pair_baseline(fg).cycles as f64;
        let dynamic_slowdown = dynamic.fg_cycles as f64 / solo;
        Fig13Cell {
            fg: fg.name.to_string(),
            bg: bg.name.to_string(),
            best_static_rate: base.biased_bg_rate,
            dynamic: dynamic.bg_rate / base.biased_bg_rate,
            shared: shared.bg_rate / base.biased_bg_rate,
            dynamic_fg_penalty: dynamic_slowdown / base.biased,
        }
    });
    Fig13 { cells }
}

/// Runs the six cluster representatives (36 ordered pairs).
pub fn run(lab: &Lab, fig9: &Fig9) -> Fig13 {
    run_for(lab, &CLUSTER_REPRESENTATIVES, fig9)
}

impl Fig13 {
    /// Summary of relative background throughput: (dynamic, shared).
    pub fn stats(&self) -> (SummaryStats, SummaryStats) {
        (
            SummaryStats::from_values(self.cells.iter().map(|c| c.dynamic)),
            SummaryStats::from_values(self.cells.iter().map(|c| c.shared)),
        )
    }

    /// Summary of the dynamic controller's foreground penalty relative to
    /// best static (the paper reports within 1–2%).
    pub fn fg_penalty_stats(&self) -> SummaryStats {
        SummaryStats::from_values(self.cells.iter().map(|c| c.dynamic_fg_penalty))
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut table = Table::new(["fg", "bg", "dynamic", "shared", "fg penalty"]);
        for c in &self.cells {
            table.push([
                c.fg.clone(),
                c.bg.clone(),
                format!("{:.2}x", c.dynamic),
                format!("{:.2}x", c.shared),
                format!("{:+.1}%", (c.dynamic_fg_penalty - 1.0) * 100.0),
            ]);
        }
        let (d, s) = self.stats();
        format!(
            "Figure 13: background throughput vs best static allocation\n{}\naverages: dynamic {:.2}x, shared {:.2}x; fg penalty {}\n",
            table.render(),
            d.mean,
            s.mean,
            self.fg_penalty_stats()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig9;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn dynamic_beats_best_static_on_background_throughput() {
        let lab = Lab::new(RunnerConfig::test());
        // mcf has phases: when its small-footprint phases run, the
        // controller hands capacity to the background.
        let names = ["429.mcf", "fop"];
        let f9 = fig9::run_for(&lab, &names);
        let f13 = run_for(&lab, &names, &f9);
        let cell = f13.cells.iter().find(|c| c.fg == "429.mcf" && c.bg == "fop").unwrap();
        assert!(
            cell.dynamic > 0.95,
            "dynamic bg throughput collapsed: {:.2}x of best static",
            cell.dynamic
        );
        // Foreground protection: within a few percent of best static.
        assert!(
            cell.dynamic_fg_penalty < 1.10,
            "dynamic fg penalty {:.3} too high",
            cell.dynamic_fg_penalty
        );
    }
}
