//! Extension experiment — the paper's §8 future work, realized.
//!
//! "All of the worst-case foreground slowdowns with cache partitioning
//! (and without) were from the applications shown to be the most sensitive
//! to memory bandwidth. […] partitioning or other quality-of-service
//! mechanisms for memory bandwidth could potentially be a further
//! effective hardware addition." Intel later shipped that knob as Memory
//! Bandwidth Allocation; this experiment adds it to the simulated machine
//! and shows it closing exactly the residual gap the paper identified:
//! with the background's bandwidth throttled, even the bandwidth-sensitive
//! foregrounds approach their solo performance.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_core::policy::PartitionPolicy;

/// Bandwidth-sensitive foregrounds — the paper's residual worst cases.
pub const FOREGROUNDS: [&str; 2] = ["462.libquantum", "459.GemsFDTD"];
/// The bandwidth hog runs behind them.
pub const BACKGROUND: &str = "stream_uncached";

/// MBA throttle levels swept (percent of full background bandwidth).
pub const THROTTLES: [u8; 4] = [100, 50, 25, 10];

/// One (foreground, throttle) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MbaCell {
    /// Foreground application.
    pub fg: String,
    /// Background bandwidth throttle (percent).
    pub throttle: u8,
    /// Foreground slowdown vs. solo (LLC biased 9/3 throughout, so only
    /// the bandwidth knob varies).
    pub fg_slowdown: f64,
    /// Background throughput (instructions per cycle).
    pub bg_rate: f64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtMba {
    /// All cells.
    pub cells: Vec<MbaCell>,
}

/// Runs the throttle sweep.
pub fn run(lab: &Lab) -> ExtMba {
    let bg = lab.app(BACKGROUND).clone();
    let jobs: Vec<(usize, u8)> =
        (0..FOREGROUNDS.len()).flat_map(|f| THROTTLES.map(move |t| (f, t))).collect();
    let cells = parallel_map(jobs, |&(f, throttle)| {
        let fg = lab.app(FOREGROUNDS[f]).clone();
        let solo = lab.pair_baseline(&fg).cycles as f64;
        let r = lab.pair_mba(&fg, &bg, PartitionPolicy::Biased { fg_ways: 9 }, throttle);
        assert!(!r.truncated, "MBA run truncated");
        MbaCell {
            fg: fg.name.to_string(),
            throttle,
            fg_slowdown: r.fg_cycles as f64 / solo,
            bg_rate: r.bg_rate,
        }
    });
    ExtMba { cells }
}

impl ExtMba {
    /// The cell for (fg, throttle).
    pub fn cell(&self, fg: &str, throttle: u8) -> Option<&MbaCell> {
        self.cells.iter().find(|c| c.fg == fg && c.throttle == throttle)
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = Table::new(["fg", "bg bandwidth", "fg slowdown", "bg rate"]);
        for c in &self.cells {
            t.push([
                c.fg.clone(),
                format!("{}%", c.throttle),
                format!("{:+.1}%", (c.fg_slowdown - 1.0) * 100.0),
                format!("{:.4}", c.bg_rate),
            ]);
        }
        format!(
            "Extension (§8 future work): bandwidth QoS closes the residual gap (bg = {BACKGROUND}, LLC biased 9/3)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn throttling_the_hog_protects_bandwidth_sensitive_foregrounds() {
        let lab = Lab::new(RunnerConfig::test());
        let ext = run(&lab);
        for fg in FOREGROUNDS {
            let open = ext.cell(fg, 100).unwrap();
            let tight = ext.cell(fg, 10).unwrap();
            assert!(
                tight.fg_slowdown < open.fg_slowdown - 0.02,
                "{fg}: throttling should help ({:.3} vs {:.3})",
                tight.fg_slowdown,
                open.fg_slowdown
            );
            // At 10% background bandwidth the foreground approaches solo.
            assert!(
                tight.fg_slowdown < 1.25,
                "{fg}: residual slowdown {:.3} despite full QoS",
                tight.fg_slowdown
            );
            // The knob costs the background, as a QoS knob must.
            assert!(tight.bg_rate < open.bg_rate);
        }
    }
}
