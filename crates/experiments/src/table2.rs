//! Table 2 — LLC-utility classification and the >10 LLC-accesses/KI flag,
//! measured vs. paper.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_analysis::tables::{classify_llc_utility, ThreeClass};
use waypart_workloads::LlcClass;

/// Threads used for the capacity sweep (the multiprogram placement).
pub const SWEEP_THREADS: usize = 4;

/// One application's measured and expected utility class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Application name.
    pub app: String,
    /// Class measured from the way sweep (ways 3..=12; the paper excludes
    /// its pathological direct-mapped 0.5 MB point, and at reduced scale
    /// the 2-way point is equally pathological because the inclusive LLC
    /// shrinks below the private caches' reach).
    pub measured: ThreeClass,
    /// The paper's Table 2 class.
    pub paper: ThreeClass,
    /// Measured LLC accesses per kilo-instruction at the full allocation.
    pub apki: f64,
    /// Whether the paper bolds the app (>10 APKI).
    pub paper_high_apki: bool,
    /// Execution times over ways 1..=12 (raw sweep).
    pub times: Vec<u64>,
}

/// The classification comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Per-application rows.
    pub rows: Vec<Table2Row>,
}

/// Maps the registry's paper-transcribed class onto the classifier enum.
pub fn llc_to_three(c: LlcClass) -> ThreeClass {
    match c {
        LlcClass::Low => ThreeClass::Low,
        LlcClass::Saturated => ThreeClass::Saturated,
        LlcClass::High => ThreeClass::High,
    }
}

/// Sweeps ways 1..=12 for the named applications (or all 45).
pub fn run_subset(lab: &Lab, names: Option<&[&str]>) -> Table2 {
    let apps: Vec<_> = match names {
        Some(ns) => ns.iter().map(|n| lab.app(n).clone()).collect(),
        None => lab.apps().to_vec(),
    };
    let ways_total = lab.runner().config().machine.llc.ways;
    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| (1..=ways_total).map(move |w| (a, w))).collect();
    let results = parallel_map(jobs.clone(), |&(a, w)| lab.solo(&apps[a], SWEEP_THREADS, w));
    let mut times: Vec<Vec<u64>> = vec![vec![0; ways_total]; apps.len()];
    let mut apki = vec![0.0; apps.len()];
    for (&(a, w), res) in jobs.iter().zip(&results) {
        times[a][w - 1] = res.cycles;
        if w == ways_total {
            apki[a] = res.counters.apki();
        }
    }
    let rows = apps
        .iter()
        .enumerate()
        .map(|(a, app)| {
            let sweep: Vec<f64> = times[a][2..].iter().map(|&t| t as f64).collect();
            Table2Row {
                app: app.name.to_string(),
                measured: classify_llc_utility(&sweep),
                paper: llc_to_three(app.llc_class),
                apki: apki[a],
                paper_high_apki: app.high_apki,
                times: times[a].clone(),
            }
        })
        .collect();
    Table2 { rows }
}

/// Sweeps all 45 applications.
pub fn run(lab: &Lab) -> Table2 {
    run_subset(lab, None)
}

impl Table2 {
    /// Fraction of applications whose measured class matches the paper's.
    pub fn agreement(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        self.rows.iter().filter(|r| r.measured == r.paper).count() as f64 / self.rows.len() as f64
    }

    /// Fraction of rows whose >10-APKI flag matches the paper's bolding.
    pub fn apki_agreement(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        self.rows.iter().filter(|r| (r.apki > 10.0) == r.paper_high_apki).count() as f64
            / self.rows.len() as f64
    }

    /// §3.2 statistic: fraction of apps whose performance is within 2% of
    /// peak at `capacity_fraction` of the LLC (the paper reports 44% at
    /// 1 MB of 6 MB, 78% at 3 MB).
    pub fn fraction_satisfied_at(&self, capacity_fraction: f64) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let satisfied = self
            .rows
            .iter()
            .filter(|r| {
                let ways = r.times.len();
                let idx = ((ways as f64 * capacity_fraction).ceil() as usize).clamp(1, ways) - 1;
                let best = r.times[2..].iter().copied().min().expect("sweep") as f64;
                let idx = idx.max(2); // skip the pathological small points
                (r.times[idx] as f64) <= best * 1.02
            })
            .count();
        satisfied as f64 / self.rows.len() as f64
    }

    /// Rows where classes disagree.
    pub fn mismatches(&self) -> Vec<&Table2Row> {
        self.rows.iter().filter(|r| r.measured != r.paper).collect()
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut table = Table::new(["app", "measured", "paper", "match", "APKI", ">10 paper"]);
        for r in &self.rows {
            table.push([
                r.app.clone(),
                r.measured.to_string(),
                r.paper.to_string(),
                if r.measured == r.paper { "yes".into() } else { "NO".to_string() },
                format!("{:.1}", r.apki),
                if r.paper_high_apki { "bold".into() } else { String::new() },
            ]);
        }
        format!(
            "Table 2: LLC utility classes (agreement {:.0}%, APKI flags {:.0}%)\n{}",
            self.agreement() * 100.0,
            self.apki_agreement() * 100.0,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn clear_archetypes_classify_correctly() {
        let lab = Lab::new(RunnerConfig::test());
        let t2 = run_subset(&lab, Some(&["swaptions", "471.omnetpp"]));
        for r in &t2.rows {
            assert_eq!(r.measured, r.paper, "{}: measured {} vs paper {}", r.app, r.measured, r.paper);
        }
        let omnetpp = t2.rows.iter().find(|r| r.app == "471.omnetpp").unwrap();
        assert!(omnetpp.apki > 10.0, "omnetpp APKI {:.1} should exceed 10", omnetpp.apki);
    }
}
