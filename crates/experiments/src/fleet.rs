//! Fleet scanning: reading worker heartbeats out of a spool directory.
//!
//! Every `reproduce` worker maintains an atomic `status.json` heartbeat in
//! its spool directory (`telemetry::progress`). This module is the reader
//! side, shared by the `status` binary (fleet table, `--watch`, `--html`)
//! and by `reproduce --merge`, which refuses to fold a fleet whose scan
//! still shows live workers.
//!
//! A worker is **live** when its heartbeat says `done: false` and the
//! heartbeat's own wall-clock stamp is younger than the staleness
//! threshold; `done: false` plus an old stamp means the worker stalled or
//! died (its final snapshot never ran). The default threshold
//! ([`DEFAULT_STALE_SECS`]) is far below the §5f claim-takeover grace
//! period, so a dead worker is visible to `status` long before a peer
//! steals its keys.

use std::path::{Path, PathBuf};

use waypart_telemetry::schema::{parse_json, validate_line, Json};

/// Heartbeat age beyond which a not-done worker counts as stalled.
/// Heartbeats refresh every ~2 s, so 30 s ≈ fifteen missed beats —
/// conservative against scheduler hiccups, and well under the 120 s
/// claim-takeover grace (`Lab::wait_grace`), satisfying "flagged stalled
/// before the takeover fires".
pub const DEFAULT_STALE_SECS: f64 = 30.0;

/// One worker's most recent heartbeat.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStatus {
    /// Worker label (`1-of-2`, or `main` for an unsharded run).
    pub worker: String,
    /// Pipeline stage the worker reported last (figure name, `merge`, …).
    pub phase: String,
    /// Runs resolved so far (hits, fresh simulations, awaited peers).
    pub runs_done: u64,
    /// Distinct run-grid keys seen so far.
    pub runs_total: u64,
    /// Run-cache traffic counters at the stamp.
    pub mem_hits: u64,
    /// See [`crate::runcache::CacheStats`].
    pub disk_hits: u64,
    /// Fresh simulations.
    pub misses: u64,
    /// Peer-wait episodes.
    pub waits: u64,
    /// Grace-period takeovers performed.
    pub takeovers: u64,
    /// Claim files currently held.
    pub claims_held: u64,
    /// Smoothed simulation speed, if the worker has formed an estimate.
    pub ns_per_access: Option<f64>,
    /// Whether the worker exited cleanly (final snapshot).
    pub done: bool,
    /// Wall-clock stamp of the snapshot (ms since the Unix epoch).
    pub at_unix_ms: u64,
    /// The heartbeat file this was read from.
    pub path: PathBuf,
}

/// Liveness verdict for one worker at a given scan instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Heartbeat is fresh and the worker has not finished.
    Running,
    /// Not done, but the heartbeat is older than the staleness threshold:
    /// the worker crashed, hung, or lost its scheduler slot.
    Stalled,
    /// The worker wrote its final `done: true` snapshot.
    Done,
}

impl WorkerStatus {
    /// Parses one heartbeat document. `path` is baked into every error so
    /// a malformed file in a big spool is directly actionable.
    pub fn parse(text: &str, path: &Path) -> Result<WorkerStatus, String> {
        let line = text.trim();
        validate_line(line).map_err(|e| format!("{}: {e}", path.display()))?;
        let v = parse_json(line).map_err(|e| format!("{}: {e}", path.display()))?;
        if v.get("record") != Some(&Json::Str("status".into())) {
            return Err(format!("{}: not a status record", path.display()));
        }
        let s = |key: &str| match v.get(key) {
            Some(Json::Str(s)) => s.clone(),
            _ => String::new(),
        };
        let n = |key: &str| match v.get(key) {
            Some(Json::Num { value, .. }) => *value as u64,
            _ => 0,
        };
        Ok(WorkerStatus {
            worker: s("worker"),
            phase: s("phase"),
            runs_done: n("runs_done"),
            runs_total: n("runs_total"),
            mem_hits: n("mem_hits"),
            disk_hits: n("disk_hits"),
            misses: n("misses"),
            waits: n("waits"),
            takeovers: n("takeovers"),
            claims_held: n("claims_held"),
            ns_per_access: match v.get("ns_per_access") {
                Some(Json::Num { value, .. }) => Some(*value),
                _ => None,
            },
            done: matches!(v.get("done"), Some(Json::Bool(true))),
            at_unix_ms: n("at_unix_ms"),
            path: path.to_path_buf(),
        })
    }

    /// Seconds between the snapshot stamp and `now_ms` (clamped at 0).
    pub fn age_secs(&self, now_ms: u64) -> f64 {
        now_ms.saturating_sub(self.at_unix_ms) as f64 / 1000.0
    }

    /// Liveness at `now_ms` under a `stale_secs` threshold.
    pub fn state(&self, now_ms: u64, stale_secs: f64) -> WorkerState {
        if self.done {
            WorkerState::Done
        } else if self.age_secs(now_ms) > stale_secs {
            WorkerState::Stalled
        } else {
            WorkerState::Running
        }
    }

    /// Fraction of the seen run grid resolved (0 when nothing seen yet).
    /// Clamped at 1: `runs_done` counts every resolved lookup, including
    /// repeat hits on an already-cached key, so it can exceed the
    /// distinct-key total on warm replays.
    pub fn progress_frac(&self) -> f64 {
        if self.runs_total == 0 {
            0.0
        } else {
            (self.runs_done as f64 / self.runs_total as f64).min(1.0)
        }
    }
}

/// Reads every `<spool>/*/status.json` heartbeat, sorted by worker label.
/// A missing or empty spool is an empty fleet, not an error; a heartbeat
/// that exists but fails validation *is* an error (reported with its
/// path), because a torn or hand-edited heartbeat should never silently
/// vanish from a fleet report.
pub fn scan_fleet(spool: &Path) -> Result<Vec<WorkerStatus>, String> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(spool) {
        Ok(entries) => entries,
        Err(_) => return Ok(out),
    };
    for entry in entries.flatten() {
        let hb = entry.path().join("status.json");
        if !hb.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&hb)
            .map_err(|e| format!("{}: {e}", hb.display()))?;
        out.push(WorkerStatus::parse(&text, &hb)?);
    }
    out.sort_by(|a, b| a.worker.cmp(&b.worker));
    Ok(out)
}

/// Number of workers [`WorkerState::Running`] at `now_ms` — the quantity
/// `reproduce --merge` refuses on.
pub fn live_workers(fleet: &[WorkerStatus], now_ms: u64, stale_secs: f64) -> usize {
    fleet.iter().filter(|w| w.state(now_ms, stale_secs) == WorkerState::Running).count()
}

/// Outstanding claim files (`<cache>/*.claim`) with their ages in seconds
/// — fleet-wide, since claim files carry no owner identity. Sorted oldest
/// first.
pub fn outstanding_claims(cache_dir: &Path) -> Vec<(PathBuf, f64)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(cache_dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("claim") {
            continue;
        }
        let age = std::fs::metadata(&path)
            .ok()
            .and_then(|m| m.modified().ok())
            .and_then(|t| t.elapsed().ok())
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        out.push((path, age));
    }
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_telemetry::progress;

    fn tmp_spool(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("waypart-fleet-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A synthetic heartbeat whose stamp is `age_secs` in the past.
    fn write_aged(spool: &Path, worker: &str, age_secs: u64, done: bool) {
        let dir = spool.join(worker);
        std::fs::create_dir_all(&dir).unwrap();
        let at = progress::unix_now_ms() - age_secs * 1000;
        let line = format!(
            "{{\"record\":\"status\",\"worker\":\"{worker}\",\"phase\":\"fig12\",\
             \"runs_done\":3,\"runs_total\":10,\"mem_hits\":1,\"disk_hits\":1,\
             \"misses\":1,\"waits\":0,\"takeovers\":0,\"claims_held\":1,\
             \"ns_per_access\":99.4,\"done\":{done},\"at_unix_ms\":{at}}}"
        );
        std::fs::write(dir.join("status.json"), line).unwrap();
    }

    #[test]
    fn fresh_heartbeat_is_running_and_aged_is_stalled() {
        let spool = tmp_spool("stall");
        write_aged(&spool, "1-of-2", 0, false);
        write_aged(&spool, "2-of-2", 40, false);
        let fleet = scan_fleet(&spool).unwrap();
        assert_eq!(fleet.len(), 2);
        let now = progress::unix_now_ms();
        assert_eq!(fleet[0].state(now, DEFAULT_STALE_SECS), WorkerState::Running);
        assert_eq!(fleet[1].state(now, DEFAULT_STALE_SECS), WorkerState::Stalled);
        assert_eq!(live_workers(&fleet, now, DEFAULT_STALE_SECS), 1);
        // The stall threshold must flag the dead worker well before the
        // 120 s claim-takeover grace period would.
        assert!(DEFAULT_STALE_SECS < 120.0);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn done_heartbeat_is_done_regardless_of_age() {
        let spool = tmp_spool("done");
        write_aged(&spool, "1-of-1", 9999, true);
        let fleet = scan_fleet(&spool).unwrap();
        let now = progress::unix_now_ms();
        assert_eq!(fleet[0].state(now, DEFAULT_STALE_SECS), WorkerState::Done);
        assert_eq!(live_workers(&fleet, now, DEFAULT_STALE_SECS), 0);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn malformed_heartbeat_reports_its_path() {
        let spool = tmp_spool("bad");
        let dir = spool.join("1-of-2");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("status.json"), "{\"record\":\"status\",\"worker\"").unwrap();
        let err = scan_fleet(&spool).unwrap_err();
        assert!(err.contains("status.json"), "error must name the file: {err}");
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn missing_spool_is_an_empty_fleet() {
        assert_eq!(scan_fleet(Path::new("/nonexistent/spool")).unwrap(), vec![]);
    }

    #[test]
    fn real_snapshots_roundtrip_through_parse() {
        progress::set_stage("roundtrip");
        let line = progress::snapshot_json("3-of-4", false);
        let ws = WorkerStatus::parse(&line, Path::new("x/status.json")).unwrap();
        assert_eq!(ws.worker, "3-of-4");
        assert_eq!(ws.phase, "roundtrip");
        assert!(!ws.done);
    }
}
