//! Extension experiment — UCP baseline vs. the paper's controller.
//!
//! The paper's §7 positions utility-based cache partitioning (UCP) as
//! prior simulation-only work needing monitoring hardware that "will not
//! work on current processors". This experiment runs both controllers on
//! the same co-schedules and quantifies the trade-off the paper implies:
//!
//! * **UCP** maximizes total hits → better *combined* throughput;
//! * **Algorithm 6.2** protects the foreground first → better worst-case
//!   responsiveness.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_analysis::SummaryStats;
use waypart_core::dynamic::DynamicConfig;
use waypart_core::ucp::UcpConfig;
use waypart_workloads::registry::CLUSTER_REPRESENTATIVES;

/// One ordered pair's controller comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UcpCell {
    /// Foreground application.
    pub fg: String,
    /// Background application (continuously running).
    pub bg: String,
    /// Foreground slowdown under the paper's dynamic controller.
    pub dynamic_fg_slowdown: f64,
    /// Foreground slowdown under UCP.
    pub ucp_fg_slowdown: f64,
    /// Combined instruction throughput (fg+bg instr / cycle), dynamic.
    pub dynamic_combined_ipc: f64,
    /// Combined instruction throughput, UCP.
    pub ucp_combined_ipc: f64,
    /// UCP repartitions performed.
    pub ucp_repartitions: u64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtUcp {
    /// All ordered pairs.
    pub cells: Vec<UcpCell>,
}

/// Compares both controllers over ordered pairs of `names`.
pub fn run_for(lab: &Lab, names: &[&str]) -> ExtUcp {
    let specs: Vec<_> = names.iter().map(|n| lab.app(n).clone()).collect();
    let baselines = parallel_map((0..specs.len()).collect(), |&i| lab.pair_baseline(&specs[i]).cycles);
    let jobs: Vec<(usize, usize)> =
        (0..specs.len()).flat_map(|f| (0..specs.len()).map(move |b| (f, b))).collect();
    let cells = parallel_map(jobs, |&(f, b)| {
        let fg = &specs[f];
        let bg = &specs[b];
        let dynamic = lab.pair_dynamic(fg, bg, DynamicConfig::paper());
        let ucp = lab.pair_ucp(fg, bg, UcpConfig::default_12way());
        assert!(!dynamic.truncated && !ucp.truncated, "{}+{} truncated", fg.name, bg.name);
        let combined = |r: &waypart_core::runner::PairResult| {
            (r.fg_counters.instructions + r.bg_instructions) as f64 / r.fg_cycles.max(1) as f64
        };
        UcpCell {
            fg: fg.name.to_string(),
            bg: bg.name.to_string(),
            dynamic_fg_slowdown: dynamic.fg_cycles as f64 / baselines[f] as f64,
            ucp_fg_slowdown: ucp.fg_cycles as f64 / baselines[f] as f64,
            dynamic_combined_ipc: combined(&dynamic),
            ucp_combined_ipc: combined(&ucp),
            ucp_repartitions: ucp.reallocations,
        }
    });
    ExtUcp { cells }
}

/// Runs the six cluster representatives.
pub fn run(lab: &Lab) -> ExtUcp {
    run_for(lab, &CLUSTER_REPRESENTATIVES)
}

impl ExtUcp {
    /// (dynamic, ucp) foreground-slowdown summaries.
    pub fn fg_stats(&self) -> (SummaryStats, SummaryStats) {
        (
            SummaryStats::from_values(self.cells.iter().map(|c| c.dynamic_fg_slowdown)),
            SummaryStats::from_values(self.cells.iter().map(|c| c.ucp_fg_slowdown)),
        )
    }

    /// (dynamic, ucp) combined-IPC summaries.
    pub fn ipc_stats(&self) -> (SummaryStats, SummaryStats) {
        (
            SummaryStats::from_values(self.cells.iter().map(|c| c.dynamic_combined_ipc)),
            SummaryStats::from_values(self.cells.iter().map(|c| c.ucp_combined_ipc)),
        )
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(["fg", "bg", "dyn fg slow", "ucp fg slow", "dyn IPC", "ucp IPC", "ucp reparts"]);
        for c in &self.cells {
            t.push([
                c.fg.clone(),
                c.bg.clone(),
                format!("{:+.1}%", (c.dynamic_fg_slowdown - 1.0) * 100.0),
                format!("{:+.1}%", (c.ucp_fg_slowdown - 1.0) * 100.0),
                format!("{:.3}", c.dynamic_combined_ipc),
                format!("{:.3}", c.ucp_combined_ipc),
                c.ucp_repartitions.to_string(),
            ]);
        }
        let (dfg, ufg) = self.fg_stats();
        let (dipc, uipc) = self.ipc_stats();
        format!(
            "Extension: UCP baseline vs Algorithm 6.2\n{}\nfg slowdown — dynamic {dfg}; ucp {ufg}\ncombined IPC — dynamic {:.3}, ucp {:.3}\n",
            t.render(),
            dipc.mean,
            uipc.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn ucp_trades_fg_protection_for_throughput() {
        let lab = Lab::new(RunnerConfig::test());
        // A capacity-sensitive foreground and a cache-hungry background:
        // exactly where the two objectives diverge.
        let ext = run_for(&lab, &["429.mcf", "471.omnetpp"]);
        let cell = ext.cells.iter().find(|c| c.fg == "429.mcf" && c.bg == "471.omnetpp").unwrap();
        assert!(cell.ucp_repartitions > 0, "UCP never repartitioned");
        // The paper's controller must protect the foreground at least as
        // well as the throughput-first baseline.
        assert!(
            cell.dynamic_fg_slowdown <= cell.ucp_fg_slowdown + 0.02,
            "dynamic fg {:.3} worse than UCP {:.3}",
            cell.dynamic_fg_slowdown,
            cell.ucp_fg_slowdown
        );
    }
}
