//! Extension experiment — the SLO dial: IPC-floor QoS targets.
//!
//! The refs-[20][26] policy family guarantees a minimum foreground
//! performance and donates the rest of the cache. Sweeping the guaranteed
//! fraction turns responsiveness into a dial: tighter targets keep the
//! foreground closer to solo speed and leave the background less; looser
//! targets trade the other way — quantifying the continuum between the
//! paper's foreground-first controller and throughput-first UCP.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_core::qos::QosConfig;

/// The pair exercised (capacity-sensitive foreground, cache-hungry
/// background).
pub const PAIR: (&str, &str) = ("471.omnetpp", "canneal");

/// QoS targets swept (fraction of uncontended IPC guaranteed).
pub const TARGETS: [f64; 4] = [0.85, 0.90, 0.95, 0.99];

/// One target's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QosCell {
    /// Guaranteed fraction of solo IPC.
    pub target: f64,
    /// Achieved foreground slowdown vs. solo.
    pub fg_slowdown: f64,
    /// Background throughput (instructions per cycle).
    pub bg_rate: f64,
    /// Reallocations performed.
    pub reallocations: u64,
}

/// The sweep's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtQos {
    /// One cell per target, ascending.
    pub cells: Vec<QosCell>,
}

/// Runs the target sweep.
pub fn run(lab: &Lab) -> ExtQos {
    let fg = lab.app(PAIR.0).clone();
    let bg = lab.app(PAIR.1).clone();
    let solo = lab.pair_baseline(&fg).cycles as f64;
    let cells = parallel_map(TARGETS.to_vec(), |&target| {
        let mut cfg = QosConfig::guarantee_95();
        cfg.target = target;
        let r = lab.pair_qos(&fg, &bg, cfg);
        assert!(!r.truncated, "QoS run truncated at target {target}");
        QosCell {
            target,
            fg_slowdown: r.fg_cycles as f64 / solo,
            bg_rate: r.bg_rate,
            reallocations: r.reallocations,
        }
    });
    ExtQos { cells }
}

impl ExtQos {
    /// Renders the dial.
    pub fn render(&self) -> String {
        let mut t = Table::new(["IPC floor", "fg slowdown", "bg rate", "reallocations"]);
        for c in &self.cells {
            t.push([
                format!("{:.0}%", c.target * 100.0),
                format!("{:+.1}%", (c.fg_slowdown - 1.0) * 100.0),
                format!("{:.4}", c.bg_rate),
                c.reallocations.to_string(),
            ]);
        }
        format!("Extension: IPC-floor QoS dial (pair {}+{})\n{}", PAIR.0, PAIR.1, t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn tighter_floors_protect_the_foreground_more() {
        let lab = Lab::new(RunnerConfig::test());
        let ext = run(&lab);
        let loose = &ext.cells[0]; // 85%
        let tight = &ext.cells[3]; // 99%
        assert!(
            tight.fg_slowdown <= loose.fg_slowdown + 0.02,
            "99% floor ({:.3}) should protect at least as well as 85% ({:.3})",
            tight.fg_slowdown,
            loose.fg_slowdown
        );
        // The controllers actually act.
        assert!(ext.cells.iter().any(|c| c.reallocations > 0));
    }
}
