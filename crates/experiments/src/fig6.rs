//! Figure 6 — runtime, LLC MPKI, socket energy, and wall energy across
//! all 96 (threads × ways) resource allocations for the six cluster
//! representatives.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_workloads::registry::CLUSTER_REPRESENTATIVES;

/// One resource allocation's measurements.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AllocationPoint {
    /// Hyperthreads allocated (1..=8).
    pub threads: usize,
    /// LLC ways allocated (1..=12).
    pub ways: usize,
    /// Execution time in cycles.
    pub cycles: u64,
    /// LLC misses per kilo-instruction over the run.
    pub mpki: f64,
    /// Socket energy, joules.
    pub socket_j: f64,
    /// Wall energy, joules.
    pub wall_j: f64,
}

/// One application's full allocation space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationSpace {
    /// Application name.
    pub app: String,
    /// All (threads, ways) points (threads-major order).
    pub points: Vec<AllocationPoint>,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// One space per representative.
    pub spaces: Vec<AllocationSpace>,
}

/// Sweeps the allocation space for the given applications.
pub fn run_for(lab: &Lab, names: &[&str]) -> Fig6 {
    let specs: Vec<_> = names.iter().map(|n| lab.app(n).clone()).collect();
    let ways_total = lab.runner().config().machine.llc.ways;
    let threads_total = lab.runner().config().machine.hw_threads();
    let mut jobs = Vec::new();
    for a in 0..specs.len() {
        for t in 1..=threads_total {
            for w in 1..=ways_total {
                jobs.push((a, t, w));
            }
        }
    }
    let results = parallel_map(jobs.clone(), |&(a, t, w)| {
        let res = lab.solo(&specs[a], t, w);
        AllocationPoint {
            threads: t,
            ways: w,
            cycles: res.cycles,
            mpki: res.counters.mpki(),
            socket_j: res.energy.socket_j,
            wall_j: res.energy.wall_j,
        }
    });
    let mut spaces: Vec<AllocationSpace> =
        specs.iter().map(|s| AllocationSpace { app: s.name.to_string(), points: Vec::new() }).collect();
    for (&(a, _, _), &p) in jobs.iter().zip(&results) {
        spaces[a].points.push(p);
    }
    Fig6 { spaces }
}

/// Sweeps the six cluster representatives (the paper's panels).
pub fn run(lab: &Lab) -> Fig6 {
    run_for(lab, &CLUSTER_REPRESENTATIVES)
}

impl AllocationSpace {
    /// The point at (threads, ways).
    pub fn at(&self, threads: usize, ways: usize) -> Option<&AllocationPoint> {
        self.points.iter().find(|p| p.threads == threads && p.ways == ways)
    }

    /// The wall-energy-optimal point.
    pub fn optimal(&self) -> &AllocationPoint {
        self.points
            .iter()
            .min_by(|a, b| a.wall_j.partial_cmp(&b.wall_j).expect("finite energy"))
            .expect("non-empty space")
    }

    /// All points whose wall energy is within `tolerance` of the optimum —
    /// the "many resource allocations achieve near optimal" observation
    /// that motivates consolidation (§4).
    pub fn near_optimal(&self, tolerance: f64) -> Vec<&AllocationPoint> {
        let best = self.optimal().wall_j;
        self.points.iter().filter(|p| p.wall_j <= best * (1.0 + tolerance)).collect()
    }

    /// Smallest way count that stays within `tolerance` of the optimal
    /// wall energy at the optimal point's thread count — how much LLC the
    /// app can yield for free.
    pub fn min_ways_near_optimal(&self, tolerance: f64) -> usize {
        let opt = self.optimal();
        let best = opt.wall_j;
        self.points
            .iter()
            .filter(|p| p.threads == opt.threads && p.wall_j <= best * (1.0 + tolerance))
            .map(|p| p.ways)
            .min()
            .expect("optimal point qualifies")
    }
}

impl Fig6 {
    /// The space for one application.
    pub fn space(&self, app: &str) -> Option<&AllocationSpace> {
        self.spaces.iter().find(|s| s.app == app)
    }

    /// Renders one summary row per application.
    pub fn render(&self) -> String {
        let mut table =
            Table::new(["app", "optimal (T, ways)", "wall J", "near-opt points (5%)", "yieldable ways"]);
        for s in &self.spaces {
            let opt = s.optimal();
            table.push([
                s.app.clone(),
                format!("({}, {})", opt.threads, opt.ways),
                format!("{:.3}", opt.wall_j),
                s.near_optimal(0.05).len().to_string(),
                format!("{}", s.points.iter().map(|p| p.ways).max().unwrap_or(0) - s.min_ways_near_optimal(0.05)),
            ]);
        }
        format!("Figure 6: allocation-space sweep (96 points per app)\n{}", table.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn sweep_covers_full_space_and_finds_slack() {
        let lab = Lab::new(RunnerConfig::test());
        let fig = run_for(&lab, &["dedup"]);
        let space = fig.space("dedup").unwrap();
        assert_eq!(space.points.len(), 96);
        // dedup is cache-insensitive: it must be able to yield several
        // ways at near-optimal energy.
        let yieldable = 12 - space.min_ways_near_optimal(0.05);
        assert!(yieldable >= 4, "dedup yields only {yieldable} ways");
        // More than one allocation is near-optimal (the consolidation
        // opportunity).
        assert!(space.near_optimal(0.05).len() >= 2);
    }

    #[test]
    fn mpki_declines_with_capacity_for_cache_sensitive_app() {
        let lab = Lab::new(RunnerConfig::test());
        let fig = run_for(&lab, &["471.omnetpp"]);
        let space = fig.space("471.omnetpp").unwrap();
        let small = space.at(1, 2).unwrap().mpki;
        let large = space.at(1, 12).unwrap().mpki;
        assert!(large < small * 0.9, "omnetpp MPKI {small:.1} → {large:.1} did not decline");
    }
}
