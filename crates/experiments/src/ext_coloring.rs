//! Extension experiment — page coloring vs. hardware way partitioning.
//!
//! The paper's §7 discusses OS page coloring (Cho & Jin; Tam et al.; Lin
//! et al.) as the software alternative to its hardware mechanism, noting
//! "a significant performance overhead inherent to changing the color of
//! a page" while "our approach can change LLC partitions much more
//! quickly and with minimal overhead". This experiment compares the two
//! mechanisms on the same pair at matched capacity fractions, and accounts
//! the repartitioning cost of each.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_core::policy::PartitionPolicy;
use waypart_core::runner::RunnerConfig;
use waypart_sim::coloring::ColorAssignment;

/// The pair compared (capacity-sensitive foreground, thrashing
/// background).
pub const PAIR: (&str, &str) = ("471.omnetpp", "canneal");

/// Per-line page-copy cost in cycles: copying a 4 KB page ≈ 64 lines
/// through the hierarchy at ~16 cycles per line, amortized per line.
pub const RECOLOR_CYCLES_PER_LINE: u64 = 16;

/// One capacity split's comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColoringCell {
    /// Foreground share of the cache (fraction of ways/groups).
    pub fg_fraction: f64,
    /// Foreground slowdown under way partitioning.
    pub way_slowdown: f64,
    /// Foreground slowdown under page coloring.
    pub color_slowdown: f64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtColoring {
    /// One cell per matched capacity split.
    pub cells: Vec<ColoringCell>,
    /// Modeled cost (cycles) of one full repartition under coloring — the
    /// foreground's resident lines must be physically copied.
    pub recolor_cost_cycles: u64,
    /// Cost of one repartition under way masks (an MSR write).
    pub way_repartition_cost_cycles: u64,
}

/// Runs the mechanism comparison. Uses its own modulo-indexed runner
/// (coloring cannot work on the hashed LLC) so way and color runs see the
/// same indexing.
pub fn run(lab: &Lab) -> ExtColoring {
    let lab = lab.sibling(RunnerConfig::test_colored());
    let runner = lab.runner();
    let fg = waypart_workloads::registry::by_name(PAIR.0).expect("registered");
    let bg = waypart_workloads::registry::by_name(PAIR.1).expect("registered");
    let solo = lab.solo(&fg, 4, 12).cycles as f64;

    // Matched splits: fg gets 1/4, 1/2, 3/4 of the cache either way.
    let splits: Vec<(usize, usize)> = vec![(3, 4), (6, 8), (9, 12)]; // (ways of 12, groups of 16)
    let cells = parallel_map(splits, |&(ways, groups)| {
        let way = lab.pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: ways });
        let color = lab.pair_colored(&fg, &bg, groups);
        assert!(!way.truncated && !color.truncated, "coloring comparison truncated");
        ColoringCell {
            fg_fraction: ways as f64 / 12.0,
            way_slowdown: way.fg_cycles as f64 / solo,
            color_slowdown: color.fg_cycles as f64 / solo,
        }
    });

    // Repartition cost: coloring must copy the foreground's resident
    // footprint to frames of the new colors; a way mask is one MSR write.
    let llc_lines =
        (runner.config().machine.llc.size_bytes / runner.config().machine.line_bytes) as u64;
    let resident = llc_lines / 2; // half the LLC as a representative footprint
    let recolor_cost_cycles = resident * RECOLOR_CYCLES_PER_LINE;
    let _ = ColorAssignment::DEFAULT_GROUPS;

    ExtColoring { cells, recolor_cost_cycles, way_repartition_cost_cycles: 1 }
}

impl ExtColoring {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(["fg share", "way-partitioned", "page-colored"]);
        for c in &self.cells {
            t.push([
                format!("{:.0}%", c.fg_fraction * 100.0),
                format!("{:+.1}%", (c.way_slowdown - 1.0) * 100.0),
                format!("{:+.1}%", (c.color_slowdown - 1.0) * 100.0),
            ]);
        }
        format!(
            "Extension: way partitioning vs page coloring (pair {}+{})\n{}\nrepartition cost: coloring ≈ {} cycles (page copies), way mask = {} cycle (MSR write)\n",
            PAIR.0,
            PAIR.1,
            t.render(),
            self.recolor_cost_cycles,
            self.way_repartition_cost_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig as RC;

    #[test]
    fn both_mechanisms_isolate_but_recoloring_costs_more() {
        let lab = Lab::new(RC::test());
        let ext = run(&lab);
        assert_eq!(ext.cells.len(), 3);
        for c in &ext.cells {
            // Both mechanisms must deliver real isolation: bounded fg
            // slowdown at the generous split.
            if c.fg_fraction > 0.7 {
                assert!(c.way_slowdown < 1.30, "way split failed to isolate: {:.3}", c.way_slowdown);
                assert!(c.color_slowdown < 1.35, "coloring failed to isolate: {:.3}", c.color_slowdown);
            }
        }
        // The §7 asymmetry: repartitioning by recoloring is orders of
        // magnitude costlier than a way-mask write.
        assert!(ext.recolor_cost_cycles > 1000 * ext.way_repartition_cost_cycles);
    }

    #[test]
    fn coloring_requires_modulo_indexing() {
        // The default (hashed) machine must refuse to enable coloring —
        // the Sandy Bridge hash is exactly why coloring stopped working.
        let result = std::panic::catch_unwind(|| {
            let mut m = waypart_sim::Machine::new(RC::test().machine);
            m.enable_coloring(16);
        });
        assert!(result.is_err(), "coloring on a hashed LLC must be rejected");
    }
}
