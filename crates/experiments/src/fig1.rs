//! Figure 1 — normalized speedup as each application's thread allocation
//! grows from 1 to 8 (hyperthread pairs first).

use crate::lab::Lab;
use crate::report::Table;
use crate::util::parallel_map;
use serde::{Deserialize, Serialize};
use waypart_workloads::Suite;

/// One application's scalability curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityCurve {
    /// Application name.
    pub app: String,
    /// Suite membership.
    pub suite: Suite,
    /// `speedups[i]` = speedup with `i + 1` threads (index 0 is 1.0).
    pub speedups: Vec<f64>,
}

/// The figure's data: one curve per application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// Curves in registry order.
    pub curves: Vec<ScalabilityCurve>,
}

/// Maximum thread allocation measured (the machine's 8 hyperthreads).
pub const MAX_THREADS: usize = 8;

/// Measures the scalability curves for the named applications (or all 45
/// when `names` is `None`).
pub fn run_subset(lab: &Lab, names: Option<&[&str]>) -> Fig1 {
    let apps: Vec<_> = match names {
        Some(ns) => ns.iter().map(|n| lab.app(n).clone()).collect(),
        None => lab.apps().to_vec(),
    };
    let ways = lab.runner().config().machine.llc.ways;
    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| (1..=MAX_THREADS).map(move |t| (a, t))).collect();
    let times = parallel_map(jobs.clone(), |&(a, t)| lab.solo(&apps[a], t, ways).cycles);
    let mut by_app: Vec<Vec<u64>> = vec![vec![0; MAX_THREADS]; apps.len()];
    for (&(a, t), &cycles) in jobs.iter().zip(&times) {
        by_app[a][t - 1] = cycles;
    }
    let curves = apps
        .iter()
        .zip(&by_app)
        .map(|(app, times)| ScalabilityCurve {
            app: app.name.to_string(),
            suite: app.suite,
            speedups: times.iter().map(|&t| times[0] as f64 / t as f64).collect(),
        })
        .collect();
    Fig1 { curves }
}

/// Measures all 45 applications.
pub fn run(lab: &Lab) -> Fig1 {
    run_subset(lab, None)
}

impl Fig1 {
    /// Renders the per-suite speedup table (the data behind Fig 1a–c).
    pub fn render(&self) -> String {
        let mut header = vec!["suite".to_string(), "app".to_string()];
        header.extend((1..=MAX_THREADS).map(|t| format!("{t}T")));
        let mut table = Table::new(header);
        for c in &self.curves {
            let mut row = vec![c.suite.label().to_string(), c.app.clone()];
            row.extend(c.speedups.iter().map(|s| format!("{s:.2}")));
            table.push(row);
        }
        format!("Figure 1: speedup vs threads (normalized to 1 thread)\n{}", table.render())
    }

    /// The curve for one application.
    pub fn curve(&self, app: &str) -> Option<&ScalabilityCurve> {
        self.curves.iter().find(|c| c.app == app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn scalable_app_scales_and_serial_app_does_not() {
        let lab = Lab::new(RunnerConfig::test());
        let fig = run_subset(&lab, Some(&["blackscholes", "429.mcf"]));
        let bs = fig.curve("blackscholes").unwrap();
        assert!((bs.speedups[0] - 1.0).abs() < 1e-9);
        assert!(bs.speedups[7] > 3.0, "blackscholes 8T speedup {}", bs.speedups[7]);
        let mcf = fig.curve("429.mcf").unwrap();
        assert!(mcf.speedups[7] < 1.2, "mcf should not scale, got {}", mcf.speedups[7]);
        let text = fig.render();
        assert!(text.contains("blackscholes") && text.contains("429.mcf"));
    }
}
