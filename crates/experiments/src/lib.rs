//! # waypart-experiments
//!
//! One runner per table and figure of the paper's evaluation. Every module
//! regenerates the corresponding artifact as a plain-text table (the same
//! rows/series the paper plots) plus structured data for tests and benches.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Fig 1 — thread-scalability curves per suite |
//! | [`table1`] | Table 1 — scalability classes |
//! | [`fig2`] | Fig 2 — LLC-capacity sensitivity, 3 representative apps |
//! | [`table2`] | Table 2 — LLC utility classes |
//! | [`fig3`] | Fig 3 — prefetcher sensitivity |
//! | [`fig4`] | Fig 4 — bandwidth-hog sensitivity |
//! | [`fig5`] | Fig 5 / Table 3 — clustering and representatives |
//! | [`fig6`] | Fig 6 — runtime/MPKI/energy across 96 allocations |
//! | [`fig7`] | Fig 7 — wall-energy contours |
//! | [`fig8`] | Fig 8 — 45×45 pairwise slowdown heatmap |
//! | [`fig9`] | Fig 9 — shared/fair/biased foreground protection |
//! | [`fig10`] | Fig 10 — consolidation socket energy |
//! | [`fig11`] | Fig 11 — weighted speedup |
//! | [`fig12`] | Fig 12 — 429.mcf phase trace, static ways + dynamic |
//! | [`fig13`] | Fig 13 — dynamic background-throughput gains |
//! | [`headline`] | §1/§8 headline numbers |
//! | [`ext_ucp`] | extension: UCP baseline (§7) vs Algorithm 6.2 |
//! | [`ext_trio`] | extension: §5.2's multiple-background-copies case |
//! | [`ext_coloring`] | extension: §7's page-coloring baseline vs way masks |
//! | [`ext_qos`] | extension: refs [20][26]'s IPC-floor QoS dial |
//! | [`ext_mba`] | extension: §8's future work — bandwidth QoS (Intel MBA) |
//! | [`ext_thresholds`] | extension: §6.3's threshold sensitivity study |
//!
//! The [`lab`] module provides the shared, cached measurement context; all
//! experiments scale down consistently via
//! [`waypart_core::runner::RunnerConfig`] presets.

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod ext_coloring;
pub mod ext_mba;
pub mod ext_qos;
pub mod ext_trio;
pub mod ext_ucp;
pub mod fig9;
pub mod fleet;
pub mod headline;
pub mod lab;
pub mod report;
pub mod runcache;
pub mod ext_thresholds;
pub mod table1;
pub mod table2;
pub mod trend;
pub mod util;
pub mod viz;

pub use lab::Lab;
