//! Historical perf-trend analytics over `BENCH_history.jsonl`.
//!
//! `scripts/bench.sh` appends one JSON object per benchmarking session to
//! `BENCH_history.jsonl` (medians, cold time, ns/access, shard metrics,
//! plus `at`/`rev`/`host` stamps). This module parses that history and
//! renders a self-contained HTML trend page — per-metric sparklines
//! across sessions, segmented by host so different machines never blend
//! into one series, annotated with `sentry --json` verdicts.
//!
//! Rendering is a pure function of its inputs (no clocks, no
//! environment), so `tests/trend_golden.rs` pins the page bytes for a
//! committed fixture history.

use crate::viz::{html_escape, svg_sparkline};
use waypart_telemetry::schema::{parse_json, validate_line, Json};

/// One benchmarking session: a parsed `BENCH_history.jsonl` line.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// ISO timestamp stamped by bench.sh (empty if absent).
    pub at: String,
    /// Git revision stamped by bench.sh (empty if absent).
    pub rev: String,
    /// Hostname from the session's `host` object (`unknown` if absent) —
    /// the segmentation key.
    pub host: String,
    /// Every numeric top-level field of the entry, in file order.
    pub metrics: Vec<(String, f64)>,
}

impl Session {
    /// The session's value for `name`, if recorded and non-null.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

/// One machine-readable sentry judgement (`sentry --json` line).
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictNote {
    /// Metric the verdict is about.
    pub metric: String,
    /// `pass` | `regression` | `insufficient_history` | `skip`.
    pub verdict: String,
    /// Judged value (absent for `skip`).
    pub current: Option<f64>,
    /// History median backing the judgement.
    pub median: Option<f64>,
    /// Regression threshold used.
    pub threshold: Option<f64>,
    /// History samples behind the judgement.
    pub n: u64,
}

/// The metrics the trend page charts, with display labels. Sessions
/// missing a metric simply contribute no point to that series.
pub const TREND_METRICS: [(&str, &str); 5] = [
    ("current_cold_s", "cold reproduce (s)"),
    ("current_median_s", "warm reproduce median (s)"),
    ("engine_ns_per_access", "engine ns/access"),
    ("sharded_cold_s", "sharded cold (s)"),
    ("parallel_efficiency", "parallel efficiency"),
];

/// Parses a `BENCH_history.jsonl` document. Blank lines are skipped;
/// malformed lines fail with their line number.
pub fn parse_history(text: &str) -> Result<Vec<Session>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line.trim()).map_err(|e| format!("line {}: {e}", i + 1))?;
        let fields = match &v {
            Json::Obj(fields) => fields,
            _ => return Err(format!("line {}: history entry is not a JSON object", i + 1)),
        };
        let text_field = |key: &str| match v.get(key) {
            Some(Json::Str(s)) => s.clone(),
            _ => String::new(),
        };
        let host = match v.get("host").and_then(|h| h.get("name")) {
            Some(Json::Str(s)) if !s.is_empty() => s.clone(),
            _ => "unknown".to_string(),
        };
        let metrics = fields
            .iter()
            .filter_map(|(k, fv)| match fv {
                Json::Num { value, .. } if value.is_finite() => Some((k.clone(), *value)),
                _ => None,
            })
            .collect();
        out.push(Session { at: text_field("at"), rev: text_field("rev"), host, metrics });
    }
    Ok(out)
}

/// Parses a `sentry --json` verdict document (JSONL, schema-validated).
pub fn parse_verdicts(text: &str) -> Result<Vec<VerdictNote>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line.trim()).map_err(|e| format!("line {}: {e}", i + 1))?;
        let v = parse_json(line.trim()).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("record") != Some(&Json::Str("verdict".into())) {
            return Err(format!("line {}: not a verdict record", i + 1));
        }
        let s = |key: &str| match v.get(key) {
            Some(Json::Str(s)) => s.clone(),
            _ => String::new(),
        };
        let opt = |key: &str| match v.get(key) {
            Some(Json::Num { value, .. }) => Some(*value),
            _ => None,
        };
        out.push(VerdictNote {
            metric: s("metric"),
            verdict: s("verdict"),
            current: opt("current"),
            median: opt("median"),
            threshold: opt("threshold"),
            n: match v.get("n") {
                Some(Json::Num { value, .. }) => *value as u64,
                _ => 0,
            },
        });
    }
    Ok(out)
}

const STYLE: &str = "body{font-family:ui-monospace,monospace;background:#0f1115;\
color:#d7dae0;margin:2rem}h1{font-size:1.2rem}h2{font-size:1rem;margin:0 0 .4rem}\
div.panel{background:#171a21;border:1px solid #262b36;border-radius:8px;\
padding:1rem;margin:0 0 1rem;display:inline-block;vertical-align:top;\
margin-right:1rem;min-width:300px}table{border-collapse:collapse;font-size:.8rem;\
margin-top:.5rem}td,th{padding:.15rem .6rem;border-bottom:1px solid #262b36;\
text-align:right}th{color:#8b93a3}td:first-child,th:first-child{text-align:left}\
span.pass{color:#4ade80}span.regression{color:#f87171}span.muted{color:#8b93a3}\
svg polyline{fill:none;stroke:#2563eb;stroke-width:1.5}";

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

fn verdict_badge(note: Option<&VerdictNote>) -> String {
    match note {
        Some(n) => {
            let class = match n.verdict.as_str() {
                "pass" => "pass",
                "regression" => "regression",
                _ => "muted",
            };
            let detail = match (n.median, n.threshold) {
                (Some(m), Some(t)) => format!(
                    " (median {}, threshold {}, n={})",
                    fmt_value(m),
                    fmt_value(t),
                    n.n
                ),
                _ => format!(" (n={})", n.n),
            };
            format!(
                "<span class=\"{class}\">{}</span><span class=\"muted\">{}</span>",
                html_escape(&n.verdict.to_uppercase()),
                html_escape(&detail)
            )
        }
        None => "<span class=\"muted\">no verdict</span>".to_string(),
    }
}

/// Renders the trend page. Deterministic: the output depends only on the
/// parsed sessions and verdicts.
pub fn render_trend_html(sessions: &[Session], verdicts: &[VerdictNote]) -> String {
    let mut hosts: Vec<String> = sessions.iter().map(|s| s.host.clone()).collect();
    hosts.sort();
    hosts.dedup();

    let mut panels = String::new();
    let mut points_total = 0usize;
    for (key, label) in TREND_METRICS {
        let note = verdicts.iter().find(|v| v.metric == key);
        for host in &hosts {
            let series: Vec<(&Session, f64)> = sessions
                .iter()
                .filter(|s| &s.host == host)
                .filter_map(|s| s.metric(key).map(|v| (s, v)))
                .collect();
            if series.is_empty() {
                continue;
            }
            points_total += series.len();
            let values: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
            let latest = *values.last().expect("non-empty series");
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let host_note = if hosts.len() > 1 {
                format!(" — {}", html_escape(host))
            } else {
                String::new()
            };
            let mut rows = String::new();
            for (s, v) in series.iter().rev().take(10) {
                rows.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td></tr>",
                    html_escape(if s.at.is_empty() { "?" } else { &s.at }),
                    html_escape(if s.rev.is_empty() { "?" } else { &s.rev }),
                    fmt_value(*v)
                ));
            }
            panels.push_str(&format!(
                "<div class=\"panel\" data-cells=\"{cells}\">\
                 <h2>{label}{host_note}</h2>\
                 {spark}\
                 <p>latest {latest} · min {lo} · max {hi} · {n} session(s) · {badge}</p>\
                 <table><thead><tr><th>at</th><th>rev</th><th>value</th></tr></thead>\
                 <tbody>{rows}</tbody></table></div>\n",
                cells = series.len(),
                label = html_escape(label),
                spark = svg_sparkline(&values, 280, 48),
                latest = fmt_value(latest),
                lo = fmt_value(lo),
                hi = fmt_value(hi),
                n = series.len(),
                badge = verdict_badge(note),
            ));
        }
    }
    if points_total == 0 {
        panels.push_str(
            "<div class=\"panel\" data-cells=\"0\"><h2>no trend data</h2>\
             <p><span class=\"muted\">history has no charted metrics yet</span></p></div>\n",
        );
    }

    let host_list =
        hosts.iter().map(|h| html_escape(h)).collect::<Vec<_>>().join(", ");
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>waypart perf trends</title><style>{STYLE}</style></head>\n\
         <body data-kind=\"trend\">\n\
         <h1>waypart perf trends</h1>\
         <p><span class=\"muted\">{sessions_n} session(s) · host(s): {host_list} · \
         {verdicts_n} sentry verdict(s)</span></p>\n\
         {panels}\
         </body></html>\n",
        sessions_n = sessions.len(),
        verdicts_n = verdicts.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const HISTORY: &str = concat!(
        "{\"current_median_s\":3.7,\"current_cold_s\":700.0,\"engine_ns_per_access\":101.0,",
        "\"at\":\"2026-08-01T00:00:00Z\",\"rev\":\"aaaa111\",",
        "\"host\":{\"name\":\"boxa\",\"cpu\":\"TestCPU\",\"cores\":8,\"kernel\":\"6.1\"}}\n",
        "{\"current_median_s\":3.6,\"current_cold_s\":690.0,\"engine_ns_per_access\":99.0,",
        "\"sharded_cold_s\":800.0,\"parallel_efficiency\":0.9,",
        "\"at\":\"2026-08-02T00:00:00Z\",\"rev\":\"bbbb222\",",
        "\"host\":{\"name\":\"boxa\",\"cpu\":\"TestCPU\",\"cores\":8,\"kernel\":\"6.1\"}}\n",
    );

    #[test]
    fn history_parses_with_hosts_and_metrics() {
        let sessions = parse_history(HISTORY).unwrap();
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].host, "boxa");
        assert_eq!(sessions[0].metric("current_cold_s"), Some(700.0));
        assert_eq!(sessions[1].metric("parallel_efficiency"), Some(0.9));
        assert_eq!(sessions[0].metric("sharded_cold_s"), None);
    }

    #[test]
    fn hostless_sessions_fall_back_to_unknown() {
        let sessions = parse_history("{\"current_cold_s\":1.0,\"rev\":\"x\"}").unwrap();
        assert_eq!(sessions[0].host, "unknown");
    }

    #[test]
    fn malformed_history_names_the_line() {
        let err = parse_history("{\"ok\":1}\n{broken").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn verdicts_parse_and_reject_non_verdicts() {
        let doc = "{\"record\":\"verdict\",\"metric\":\"current_cold_s\",\
                   \"verdict\":\"pass\",\"current\":1.0,\"median\":1.0,\
                   \"threshold\":1.2,\"n\":4}";
        let notes = parse_verdicts(doc).unwrap();
        assert_eq!(notes[0].metric, "current_cold_s");
        assert_eq!(notes[0].n, 4);
        assert!(parse_verdicts("{\"record\":\"hist\"}").is_err());
    }

    #[test]
    fn page_renders_deterministically_with_annotations() {
        let sessions = parse_history(HISTORY).unwrap();
        let verdicts = parse_verdicts(
            "{\"record\":\"verdict\",\"metric\":\"current_cold_s\",\"verdict\":\"pass\",\
             \"current\":690.0,\"median\":695.0,\"threshold\":764.5,\"n\":2}",
        )
        .unwrap();
        let a = render_trend_html(&sessions, &verdicts);
        let b = render_trend_html(&sessions, &verdicts);
        assert_eq!(a, b, "rendering must be deterministic");
        assert!(a.contains("data-kind=\"trend\""));
        assert!(a.contains("PASS"));
        assert!(a.contains("boxa"));
        assert!(a.contains("data-cells="));
        assert!(!a.contains("http"), "trend page must be self-contained");
    }

    #[test]
    fn empty_history_still_renders_a_page() {
        let page = render_trend_html(&[], &[]);
        assert!(page.contains("no trend data"));
    }
}
