//! Small utilities: deterministic parallel mapping over independent runs.

use waypart_core::sweep::run_sweep;

/// Maps `f` over `items` in parallel, preserving input order. Thin
/// wrapper over [`waypart_core::sweep::run_sweep`] with no progress
/// output — the historical interface most figures use.
///
/// # Panics
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_sweep("", items, f)
}

/// [`parallel_map`] with a progress label: the long sweeps (Figs 8/9)
/// report `[label] done/total` lines on stderr as chunks finish.
pub fn parallel_map_labeled<T, R, F>(label: &str, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_sweep(label, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |&x| x + 1), vec![8]);
    }
}
