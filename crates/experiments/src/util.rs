//! Small utilities: deterministic parallel mapping over independent runs.

/// Maps `f` over `items` using up to `available_parallelism` OS threads,
/// preserving input order. Each simulation run owns its machine, so runs
/// are embarrassingly parallel.
///
/// # Panics
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let n = items.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_cell = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                results_cell.lock().expect("no poisoned workers")[i] = Some(r);
            });
        }
    });
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |&x| x + 1), vec![8]);
    }
}
