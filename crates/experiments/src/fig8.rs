//! Figure 8 — heat map of foreground slowdown for every pair of
//! applications sharing the LLC with no partitioning.
//!
//! Rows are background applications, columns foreground; each value is the
//! foreground's execution time normalized to running alone on the same 2
//! cores / 4 hyperthreads.

use crate::lab::Lab;
use crate::report::Table;
use crate::util::{parallel_map, parallel_map_labeled};
use serde::{Deserialize, Serialize};
use waypart_analysis::SummaryStats;
use waypart_core::policy::PartitionPolicy;

/// The heat map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// Application names (both axes, same order).
    pub apps: Vec<String>,
    /// `slowdown[bg][fg]` = foreground slowdown of `fg` under `bg`.
    pub slowdown: Vec<Vec<f64>>,
}

/// Runs the pairwise sweep over the named applications (or all 45 —
/// 2025 co-runs; use a scaled-down [`waypart_core::runner::RunnerConfig`]).
pub fn run_subset(lab: &Lab, names: Option<&[&str]>) -> Fig8 {
    let apps: Vec<_> = match names {
        Some(ns) => ns.iter().map(|n| lab.app(n).clone()).collect(),
        None => lab.apps().to_vec(),
    };
    let n = apps.len();
    // Baselines first (cached for later experiments too).
    let baselines = parallel_map((0..n).collect(), |&i| lab.pair_baseline(&apps[i]).cycles);
    let jobs: Vec<(usize, usize)> = (0..n).flat_map(|bg| (0..n).map(move |fg| (bg, fg))).collect();
    let values = parallel_map_labeled("fig8", jobs.clone(), |&(bg, fg)| {
        let res = lab.pair_endless_bg(&apps[fg], &apps[bg], PartitionPolicy::Shared);
        assert!(!res.truncated, "{} under {} truncated", apps[fg].name, apps[bg].name);
        res.fg_cycles as f64 / baselines[fg] as f64
    });
    let mut slowdown = vec![vec![0.0; n]; n];
    for (&(bg, fg), &v) in jobs.iter().zip(&values) {
        slowdown[bg][fg] = v;
    }
    Fig8 { apps: apps.iter().map(|a| a.name.to_string()).collect(), slowdown }
}

/// Runs the full 45×45 sweep.
pub fn run(lab: &Lab) -> Fig8 {
    run_subset(lab, None)
}

impl Fig8 {
    fn index(&self, app: &str) -> Option<usize> {
        self.apps.iter().position(|a| a == app)
    }

    /// Foreground slowdown of `fg` when `bg` runs behind it.
    pub fn cell(&self, fg: &str, bg: &str) -> Option<f64> {
        Some(self.slowdown[self.index(bg)?][self.index(fg)?])
    }

    /// Average slowdown an application *suffers* across all backgrounds
    /// (a dark column = a sensitive application, §5.1).
    pub fn sensitivity(&self, fg: &str) -> Option<f64> {
        let f = self.index(fg)?;
        Some(self.slowdown.iter().map(|row| row[f]).sum::<f64>() / self.apps.len() as f64)
    }

    /// Average slowdown an application *causes* across all foregrounds
    /// (a dark row = an aggressive application, §5.1).
    pub fn aggression(&self, bg: &str) -> Option<f64> {
        let b = self.index(bg)?;
        Some(self.slowdown[b].iter().sum::<f64>() / self.apps.len() as f64)
    }

    /// Summary over every cell.
    pub fn stats(&self) -> SummaryStats {
        SummaryStats::from_values(self.slowdown.iter().flatten().copied())
    }

    /// Fraction of foreground applications whose *average* slowdown is
    /// below 2.5% (the paper counts 22 of 45).
    pub fn fraction_unaffected(&self) -> f64 {
        let n = self.apps.len();
        let unaffected = (0..n)
            .filter(|&f| {
                let avg = self.slowdown.iter().map(|row| row[f]).sum::<f64>() / n as f64;
                avg < 1.025
            })
            .count();
        unaffected as f64 / n as f64
    }

    /// Renders the heat map as a table of percent slowdowns.
    pub fn render(&self) -> String {
        let mut header = vec!["bg \\ fg".to_string()];
        header.extend(self.apps.iter().cloned());
        let mut table = Table::new(header);
        for (b, row) in self.slowdown.iter().enumerate() {
            let mut cells = vec![self.apps[b].clone()];
            cells.extend(row.iter().map(|v| format!("{:+.0}%", (v - 1.0) * 100.0)));
            table.push(cells);
        }
        let stats = self.stats();
        let heat = crate::viz::shade_map(&self.apps, &self.slowdown);
        format!(
            "Figure 8: shared-LLC foreground slowdown (mean {:.1}%, worst {:.1}%)\n{}\nheat map (rows = background, columns = foreground in the same order):\n{}",
            (stats.mean - 1.0) * 100.0,
            (stats.max - 1.0) * 100.0,
            table.render(),
            heat
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_core::runner::RunnerConfig;

    #[test]
    fn aggressor_hurts_sensitive_app_and_asymmetry_shows() {
        let lab = Lab::new(RunnerConfig::test());
        let fig = run_subset(&lab, Some(&["471.omnetpp", "swaptions", "canneal"]));
        // canneal (aggressor) must hurt omnetpp (sensitive) more than
        // swaptions hurts it.
        let omnetpp_under_canneal = fig.cell("471.omnetpp", "canneal").unwrap();
        let omnetpp_under_swaptions = fig.cell("471.omnetpp", "swaptions").unwrap();
        assert!(
            omnetpp_under_canneal > omnetpp_under_swaptions,
            "canneal ({omnetpp_under_canneal:.3}) should out-degrade swaptions ({omnetpp_under_swaptions:.3})"
        );
        // swaptions barely suffers from anything.
        assert!(fig.sensitivity("swaptions").unwrap() < 1.06);
    }
}
