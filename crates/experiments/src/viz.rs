//! Terminal visualization helpers: sparklines and shade maps for the
//! figure renders (the closest a text artifact gets to the paper's plots).

/// Unicode block characters from empty to full.
const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a sparkline of `values` scaled to their own min/max.
///
/// Empty input renders as an empty string; a constant series renders at
/// the lowest bar.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / range) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Shade characters from light to dark for heat maps.
const SHADES: [char; 5] = ['·', '░', '▒', '▓', '█'];

/// Maps `value` within `[lo, hi]` to a shade character.
pub fn shade(value: f64, lo: f64, hi: f64) -> char {
    if !value.is_finite() {
        return '?';
    }
    let range = (hi - lo).max(1e-12);
    let idx = (((value - lo) / range) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx.min(SHADES.len() - 1)]
}

/// Renders a shade map of a matrix with the global min/max as the scale.
/// Rows are labeled; a scale legend is appended.
pub fn shade_map(labels: &[String], matrix: &[Vec<f64>]) -> String {
    assert_eq!(labels.len(), matrix.len(), "one label per row");
    let lo = matrix.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
    let hi = matrix.iter().flatten().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, row) in labels.iter().zip(matrix) {
        out.push_str(&format!("{label:>width$} "));
        for &v in row {
            out.push(shade(v, lo, hi));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>width$} scale: {} = {:.2} … {} = {:.2}\n", "", SHADES[0], lo, SHADES[4], hi));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes_follow_data() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[3], '█');
    }

    #[test]
    fn sparkline_handles_empty_and_constant() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert!(s.chars().all(|c| c == '▁'));
    }

    #[test]
    fn shade_endpoints() {
        assert_eq!(shade(0.0, 0.0, 1.0), '·');
        assert_eq!(shade(1.0, 0.0, 1.0), '█');
        assert_eq!(shade(f64::NAN, 0.0, 1.0), '?');
    }

    #[test]
    fn shade_map_renders_rows_and_legend() {
        let labels = vec!["a".to_string(), "bb".to_string()];
        let m = vec![vec![0.0, 1.0], vec![0.5, 0.5]];
        let out = shade_map(&labels, &m);
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("scale:"));
        assert!(out.lines().next().unwrap().starts_with(" a ·"));
    }
}
