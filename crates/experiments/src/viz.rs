//! Visualization helpers: terminal sparklines and shade maps for the
//! figure renders, plus inline-SVG builders for the offline HTML
//! dashboard (`report` binary). Everything here emits self-contained
//! markup — no scripts, no stylesheets, no external references — so a
//! report file works from `file://` on an air-gapped machine.

/// Unicode block characters from empty to full.
const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a sparkline of `values` scaled to their own min/max.
///
/// Empty input renders as an empty string; a constant series renders at
/// the lowest bar.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / range) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Shade characters from light to dark for heat maps.
const SHADES: [char; 5] = ['·', '░', '▒', '▓', '█'];

/// Maps `value` within `[lo, hi]` to a shade character.
pub fn shade(value: f64, lo: f64, hi: f64) -> char {
    if !value.is_finite() {
        return '?';
    }
    let range = (hi - lo).max(1e-12);
    let idx = (((value - lo) / range) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx.min(SHADES.len() - 1)]
}

/// Renders a shade map of a matrix with the global min/max as the scale.
/// Rows are labeled; a scale legend is appended.
pub fn shade_map(labels: &[String], matrix: &[Vec<f64>]) -> String {
    assert_eq!(labels.len(), matrix.len(), "one label per row");
    let lo = matrix.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
    let hi = matrix.iter().flatten().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, row) in labels.iter().zip(matrix) {
        out.push_str(&format!("{label:>width$} "));
        for &v in row {
            out.push(shade(v, lo, hi));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>width$} scale: {} = {:.2} … {} = {:.2}\n", "", SHADES[0], lo, SHADES[4], hi));
    out
}

// ------------------------------------------------------------- HTML / SVG

/// Escapes `text` for HTML text and attribute contexts.
pub fn html_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// An inline SVG sparkline: one polyline over `values`, scaled to its
/// own min/max. Empty input yields a fixed-size empty SVG.
pub fn svg_sparkline(values: &[f64], width: u32, height: u32) -> String {
    // No xmlns: inline SVG inside an HTML5 document needs none, and the
    // report's self-containment check bans URL-shaped strings outright.
    let mut svg = format!(
        "<svg width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\" role=\"img\">"
    );
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() >= 2 {
        let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = (hi - lo).max(1e-12);
        let (w, h) = (width as f64, height as f64);
        let mut pts = String::new();
        for (i, &v) in finite.iter().enumerate() {
            let x = i as f64 / (finite.len() - 1) as f64 * (w - 2.0) + 1.0;
            // SVG y grows downward; leave a 1px margin so the stroke
            // survives at the extremes.
            let y = (1.0 - (v - lo) / range) * (h - 2.0) + 1.0;
            if i > 0 {
                pts.push(' ');
            }
            pts.push_str(&format!("{x:.1},{y:.1}"));
        }
        svg.push_str(&format!(
            "<polyline points=\"{pts}\" fill=\"none\" stroke=\"#2563eb\" stroke-width=\"1.5\"/>"
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Maps `t` in `[0, 1]` to a cold→hot hex color (dark blue → yellow).
pub fn heat_color(t: f64) -> String {
    let t = if t.is_finite() { t.clamp(0.0, 1.0) } else { 0.0 };
    // Piecewise ramp: navy → teal → yellow, readable on white.
    let (r, g, b) = if t < 0.5 {
        let u = t * 2.0;
        (13.0 + u * (16.0 - 13.0), 42.0 + u * (150.0 - 42.0), 116.0 + u * (129.0 - 116.0))
    } else {
        let u = (t - 0.5) * 2.0;
        (16.0 + u * (250.0 - 16.0), 150.0 + u * (204.0 - 150.0), 129.0 * (1.0 - u) + 21.0 * u)
    };
    format!("#{:02x}{:02x}{:02x}", r as u8, g as u8, b as u8)
}

/// An inline SVG heatmap: one `<rect>` per matrix cell, rows labeled on
/// the left, values normalized to the global min/max. The root element
/// carries `data-cells="N"` (non-empty rendered cells) so report
/// well-formedness checks can assert the map actually has content.
pub fn svg_heatmap(labels: &[String], matrix: &[Vec<f64>], cell_w: u32, cell_h: u32) -> String {
    assert_eq!(labels.len(), matrix.len(), "one label per row");
    let cols = matrix.iter().map(Vec::len).max().unwrap_or(0);
    let label_w = 8 * labels.iter().map(|l| l.len()).max().unwrap_or(0) as u32 + 8;
    let width = label_w + cols as u32 * cell_w;
    let height = labels.len() as u32 * cell_h;
    let finite: Vec<f64> = matrix.iter().flatten().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    let mut cells = 0usize;
    let mut body = String::new();
    for (row, (label, values)) in labels.iter().zip(matrix).enumerate() {
        let y = row as u32 * cell_h;
        body.push_str(&format!(
            "<text x=\"0\" y=\"{}\" font-size=\"11\" font-family=\"monospace\">{}</text>",
            y + cell_h / 2 + 4,
            html_escape(label)
        ));
        for (col, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let color = heat_color((v - lo) / range);
            body.push_str(&format!(
                "<rect x=\"{}\" y=\"{y}\" width=\"{cell_w}\" height=\"{cell_h}\" fill=\"{color}\">\
                 <title>{}: {v:.1}</title></rect>",
                label_w + col as u32 * cell_w,
                html_escape(label),
            ));
            cells += 1;
        }
    }
    format!(
        "<svg width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\" \
         role=\"img\" data-cells=\"{cells}\">{body}</svg>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes_follow_data() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[3], '█');
    }

    #[test]
    fn sparkline_handles_empty_and_constant() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert!(s.chars().all(|c| c == '▁'));
    }

    #[test]
    fn shade_endpoints() {
        assert_eq!(shade(0.0, 0.0, 1.0), '·');
        assert_eq!(shade(1.0, 0.0, 1.0), '█');
        assert_eq!(shade(f64::NAN, 0.0, 1.0), '?');
    }

    #[test]
    fn shade_map_renders_rows_and_legend() {
        let labels = vec!["a".to_string(), "bb".to_string()];
        let m = vec![vec![0.0, 1.0], vec![0.5, 0.5]];
        let out = shade_map(&labels, &m);
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("scale:"));
        assert!(out.lines().next().unwrap().starts_with(" a ·"));
    }

    #[test]
    fn html_escape_covers_specials() {
        assert_eq!(html_escape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&#39;c");
    }

    #[test]
    fn svg_sparkline_is_balanced_and_offline() {
        let svg = svg_sparkline(&[1.0, 3.0, 2.0], 100, 20);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("http"), "sparkline must not reference URLs");
        // Degenerate inputs still close the element.
        assert!(svg_sparkline(&[], 100, 20).ends_with("</svg>"));
        assert!(!svg_sparkline(&[5.0], 100, 20).contains("polyline"));
    }

    #[test]
    fn heat_color_endpoints_and_garbage() {
        assert_eq!(heat_color(0.0), "#0d2a74");
        assert_eq!(heat_color(1.0), "#facc15");
        assert_eq!(heat_color(f64::NAN), heat_color(0.0));
    }

    #[test]
    fn svg_heatmap_counts_cells() {
        let labels = vec!["c0".to_string(), "c1".to_string()];
        let m = vec![vec![0.0, 1.0, 2.0], vec![3.0, f64::NAN, 5.0]];
        let svg = svg_heatmap(&labels, &m, 10, 10);
        assert!(svg.contains("data-cells=\"5\""), "NaN cells are skipped: {svg}");
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains(">c0</text>"));
    }
}
