//! Exhaustive biased-partition search — the static oracle.
//!
//! The paper evaluates "all possible biased allocations and report[s]
//! results for the one that is the best (i.e., among allocations with
//! minimum foreground performance degradation, select the one that
//! maximizes background performance)" (§5.2). This sweep is what makes
//! static biased partitioning impractical in deployment (§8) — and it is
//! the baseline the dynamic controller is judged against (Fig 13).

use crate::policy::PartitionPolicy;
use crate::runner::{PairResult, Runner};
use waypart_workloads::AppSpec;

/// Degradations within this factor of the best count as ties, broken by
/// background throughput (measurement noise would otherwise pick
/// arbitrarily among near-equal allocations).
const TIE_TOLERANCE: f64 = 0.01;

/// Outcome of the biased sweep.
#[derive(Debug, Clone)]
pub struct BiasedSearch {
    /// Foreground ways of the winning allocation.
    pub fg_ways: usize,
    /// The winning run.
    pub best: PairResult,
    /// Foreground slowdown (vs. `fg_solo_cycles`) per candidate
    /// allocation, indexed from `min_fg_ways`.
    pub slowdowns: Vec<(usize, f64)>,
}

/// Sweeps every biased allocation for the pair and picks the paper's
/// winner.
///
/// `fg_solo_cycles` is the foreground's uncontended runtime on its 2 cores
/// with the full LLC (the normalization baseline).
///
/// # Panics
/// Panics if the machine has fewer than 3 ways (no sweep possible).
pub fn best_biased(
    runner: &Runner,
    fg: &AppSpec,
    bg: &AppSpec,
    fg_solo_cycles: u64,
) -> BiasedSearch {
    let total_ways = runner.config().machine.llc.ways;
    best_biased_with(total_ways, fg_solo_cycles, |policy| {
        runner.run_pair_endless_bg(fg, bg, policy)
    })
}

/// [`best_biased`] over an arbitrary run source — callers with a run
/// cache (the experiments' `Lab`) pass a memoizing closure, so sweep
/// results are shared with every other figure that ran the same
/// allocation.
///
/// # Panics
/// Panics if `total_ways < 3` (no sweep possible).
pub fn best_biased_with(
    total_ways: usize,
    fg_solo_cycles: u64,
    mut run: impl FnMut(PartitionPolicy) -> PairResult,
) -> BiasedSearch {
    assert!(total_ways >= 3, "cannot sweep a {total_ways}-way cache");
    let mut candidates = Vec::new();
    for fg_ways in 1..total_ways {
        let res = run(PartitionPolicy::Biased { fg_ways });
        let slowdown = res.fg_cycles as f64 / fg_solo_cycles as f64;
        candidates.push((fg_ways, slowdown, res));
    }
    let min_slowdown =
        candidates.iter().map(|c| c.1).fold(f64::INFINITY, f64::min);
    let (fg_ways, _, best) = candidates
        .iter()
        .filter(|c| c.1 <= min_slowdown * (1.0 + TIE_TOLERANCE))
        .max_by(|a, b| a.2.bg_rate.partial_cmp(&b.2.bg_rate).expect("finite rates"))
        .cloned()
        .expect("at least one candidate");
    BiasedSearch {
        fg_ways,
        best,
        slowdowns: candidates.into_iter().map(|(w, s, _)| (w, s)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunnerConfig;
    use waypart_workloads::registry;

    #[test]
    fn sweep_covers_all_allocations() {
        let runner = Runner::new(RunnerConfig::test());
        let fg = registry::by_name("swaptions").unwrap();
        let bg = registry::by_name("dedup").unwrap();
        let solo = runner.run_solo(&fg, 4, 12).cycles;
        let search = best_biased(&runner, &fg, &bg, solo);
        assert_eq!(search.slowdowns.len(), 11);
        assert!((1..12).contains(&search.fg_ways));
        assert!(!search.best.truncated);
    }

    #[test]
    fn cache_insensitive_fg_yields_ways_to_bg() {
        // swaptions doesn't need capacity: the winner should leave it a
        // small allocation so the cache-hungry background runs faster.
        let runner = Runner::new(RunnerConfig::test());
        let fg = registry::by_name("swaptions").unwrap();
        let bg = registry::by_name("471.omnetpp").unwrap();
        let solo = runner.run_solo(&fg, 4, 12).cycles;
        let search = best_biased(&runner, &fg, &bg, solo);
        assert!(
            search.fg_ways <= 6,
            "insensitive foreground kept {} ways",
            search.fg_ways
        );
    }
}
