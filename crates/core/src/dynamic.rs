//! Algorithm 6.2 — the dynamic cache-partitioning controller.
//!
//! When the foreground application starts or changes phase, the controller
//! grants it as much LLC as possible (11 of 12 ways on the modeled
//! machine), then *gradually reclaims* ways for the background until the
//! foreground's MPKI reacts, at which point it gives one way back and
//! freezes until the next phase change. Reallocation only reprograms the
//! replacement masks — no data moves or flushes — so its overhead is
//! negligible (§6.3). Pseudocode from the paper:
//!
//! ```text
//! if phase_det() == 2 { phase_starts = 1; set_cache_to_6MB(fg) }
//! else if phase_det() == 0 and phase_starts == 1 {
//!     if |last_MPKI - current_MPKI| < MPKI_THR3 {
//!         if cache_allocated > 1MB { allocate_less_cache(fg) }
//!         else { phase_starts = 0 }            // keep 1 MB
//!     } else {
//!         if cache_allocated < 6MB { allocate_more_cache(fg) }
//!         phase_starts = 0                     // keep previous allocation
//!     }
//! }
//! last_MPKI = current_MPKI
//! ```

use crate::phase::{PhaseDetector, PhaseEvent, PhaseThresholds};
use serde::{Deserialize, Serialize};
use waypart_sim::WayMask;
use waypart_telemetry::{self as telemetry, Event, Stamp};

/// Telemetry name for a phase verdict.
fn phase_name(event: PhaseEvent) -> &'static str {
    match event {
        PhaseEvent::Stable => "stable",
        PhaseEvent::InTransition => "in_transition",
        PhaseEvent::PhaseStart => "phase_start",
    }
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Total LLC ways (12 on the modeled machine).
    pub total_ways: usize,
    /// Largest foreground allocation (11 ways — the background always
    /// keeps at least one way).
    pub max_fg_ways: usize,
    /// Smallest foreground allocation (2 ways ≈ 1 MB of a 6 MB LLC).
    pub min_fg_ways: usize,
    /// Phase-detection thresholds (THR1/THR2 for Alg 6.1, THR3 here).
    pub thresholds: PhaseThresholds,
}

impl DynamicConfig {
    /// The paper's configuration for the 12-way 6 MB LLC.
    pub fn paper() -> Self {
        DynamicConfig { total_ways: 12, max_fg_ways: 11, min_fg_ways: 2, thresholds: PhaseThresholds::paper() }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if the way bounds are inconsistent.
    pub fn validate(&self) {
        assert!(self.total_ways >= 2);
        assert!(self.max_fg_ways < self.total_ways, "background must keep at least one way");
        assert!(self.min_fg_ways >= 1 && self.min_fg_ways <= self.max_fg_ways);
        self.thresholds.validate();
    }
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One step's outcome: the masks to program, if they changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reallocation {
    /// New foreground mask.
    pub fg: WayMask,
    /// New background mask (the complement).
    pub bg: WayMask,
}

/// Reallocation step in ways: 1 MB of the 6 MB, 12-way LLC.
const WAYS_STEP: usize = 2;

/// The dynamic partitioner (Algorithms 6.1 + 6.2 combined).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicPartitioner {
    cfg: DynamicConfig,
    detector: PhaseDetector,
    fg_ways: usize,
    /// `phase_starts` in the paper's pseudocode: a reclamation episode is
    /// in progress.
    reclaiming: bool,
    last_mpki: Option<f64>,
    /// Raw window history for the median-of-3 smoother. Co-runner
    /// lap/interference cycles can swing a single window's MPKI by tens of
    /// percent; the median filter keeps those one-window excursions from
    /// freezing reclamation, playing the role the paper's much longer
    /// 100 ms windows play on real hardware.
    history: [f64; 3],
    seen: usize,
    /// Reallocation count (for overhead accounting in experiments).
    reallocations: u64,
}

impl DynamicPartitioner {
    /// A controller starting from the largest foreground allocation.
    pub fn new(cfg: DynamicConfig) -> Self {
        cfg.validate();
        DynamicPartitioner {
            detector: PhaseDetector::new(cfg.thresholds),
            fg_ways: cfg.max_fg_ways,
            reclaiming: true,
            last_mpki: None,
            history: [0.0; 3],
            seen: 0,
            reallocations: 0,
            cfg,
        }
    }

    /// Median-of-3 window smoothing.
    fn smooth(&mut self, raw: f64) -> f64 {
        self.history[self.seen % 3] = raw;
        self.seen += 1;
        let n = self.seen.min(3);
        let mut window: Vec<f64> = self.history[..n].to_vec();
        window.sort_by(|a, b| a.partial_cmp(b).expect("finite MPKI"));
        window[n / 2]
    }

    /// Current foreground way count.
    pub fn fg_ways(&self) -> usize {
        self.fg_ways
    }

    /// Number of mask reprogrammings performed.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Masks for the current allocation.
    pub fn masks(&self) -> Reallocation {
        let fg = WayMask::contiguous(0, self.fg_ways);
        let bg = WayMask::contiguous(self.fg_ways, self.cfg.total_ways - self.fg_ways);
        Reallocation { fg, bg }
    }

    /// Feeds one sampling window's foreground MPKI; returns the new masks
    /// if the allocation changed.
    ///
    /// Equivalent to [`Self::observe_at`] at cycle 0 — callers that know
    /// the simulated time (the runner) should prefer `observe_at` so the
    /// emitted decision log is usefully timestamped.
    pub fn observe(&mut self, raw_mpki: f64) -> Option<Reallocation> {
        self.observe_at(0, raw_mpki)
    }

    /// Feeds one window's foreground MPKI, stamping the decision log with
    /// the simulated time `now`; returns the new masks if the allocation
    /// changed.
    ///
    /// Every call emits a `dyn.decision` telemetry event (raw and smoothed
    /// MPKI, phase verdict, allocation), and every allocation change
    /// additionally emits `dyn.realloc` — together they are a
    /// machine-readable version of the paper's Fig 12 way trace.
    pub fn observe_at(&mut self, now: u64, raw_mpki: f64) -> Option<Reallocation> {
        let phase_t0 = telemetry::progress::phase_begin();
        let result = self.observe_inner(now, raw_mpki);
        telemetry::progress::phase_add(telemetry::progress::Phase::Controller, phase_t0);
        result
    }

    fn observe_inner(&mut self, now: u64, raw_mpki: f64) -> Option<Reallocation> {
        let current_mpki = self.smooth(raw_mpki);
        let event = self.detector.observe(current_mpki);
        let before = self.fg_ways;
        match event {
            PhaseEvent::PhaseStart => {
                // New phase: give the foreground everything we can.
                self.reclaiming = true;
                self.fg_ways = self.cfg.max_fg_ways;
            }
            PhaseEvent::Stable if self.reclaiming => {
                let stable = match self.last_mpki {
                    Some(last) => {
                        crate::phase::rel_dev(last, current_mpki, self.cfg.thresholds.mpki_floor)
                            < self.cfg.thresholds.thr3
                    }
                    None => true,
                };
                if stable {
                    if self.fg_ways > self.cfg.min_fg_ways {
                        // allocate_less_cache(fg): the paper reallocates at
                        // megabyte granularity — 2 ways of the 6 MB LLC.
                        self.fg_ways = self.fg_ways.saturating_sub(WAYS_STEP).max(self.cfg.min_fg_ways);
                    } else {
                        self.reclaiming = false; // keep the minimum
                    }
                } else {
                    // Give the last step back and freeze.
                    self.fg_ways = (self.fg_ways + WAYS_STEP).min(self.cfg.max_fg_ways);
                    self.reclaiming = false;
                }
            }
            _ => {}
        }
        self.last_mpki = Some(current_mpki);
        let changed = self.fg_ways != before;
        telemetry::emit_with(|| {
            Event::instant("dyn.decision", Stamp::Cycles(now))
                .field("raw_mpki", raw_mpki)
                .field("mpki", current_mpki)
                .field("phase", phase_name(event))
                .field("fg_ways", self.fg_ways)
                .field("reclaiming", self.reclaiming)
                .field("realloc", changed)
        });
        if changed {
            self.reallocations += 1;
            telemetry::emit_with(|| {
                Event::instant("dyn.realloc", Stamp::Cycles(now))
                    .field("from_ways", before)
                    .field("to_ways", self.fg_ways)
                    .field("phase", phase_name(event))
            });
            Some(self.masks())
        } else {
            None
        }
    }
}

impl Default for DynamicPartitioner {
    fn default() -> Self {
        Self::new(DynamicConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_max_allocation() {
        let d = DynamicPartitioner::default();
        assert_eq!(d.fg_ways(), 11);
        let m = d.masks();
        assert_eq!(m.fg.count(), 11);
        assert_eq!(m.bg.count(), 1);
        assert!(!m.fg.overlaps(m.bg));
    }

    #[test]
    fn flat_mpki_reclaims_down_to_minimum() {
        let mut d = DynamicPartitioner::default();
        for _ in 0..50 {
            d.observe(10.0);
        }
        assert_eq!(d.fg_ways(), 2, "flat MPKI should shrink to the 1 MB floor");
    }

    #[test]
    fn mpki_rise_gives_one_way_back_and_freezes() {
        let mut d = DynamicPartitioner::default();
        // MPKI stays flat while the allocation is generous: one megabyte
        // step (2 ways) is reclaimed per stable window (11 → 9 → 7 → 5)...
        d.observe(10.0);
        d.observe(10.0);
        d.observe(10.0);
        assert_eq!(d.fg_ways(), 5);
        // ...then rises 7%: above THR3 (5%) but below the THR1 phase-start
        // deviation (30%). The median-of-3 smoother needs the rise to
        // persist two windows (one more step is reclaimed meanwhile), then
        // the controller gives a step back and freezes.
        d.observe(10.7);
        let r = d.observe(10.7).expect("reallocation expected");
        assert_eq!(r.fg.count(), 5);
        let ways = d.fg_ways();
        for _ in 0..10 {
            assert!(d.observe(10.7).is_none(), "allocation must stay frozen");
        }
        assert_eq!(d.fg_ways(), ways);
    }

    #[test]
    fn phase_change_resets_to_max() {
        let mut d = DynamicPartitioner::default();
        for _ in 0..50 {
            d.observe(10.0);
        }
        assert_eq!(d.fg_ways(), 2);
        // A big, persistent MPKI jump (new phase) must re-expand to 11
        // ways; the median filter requires it to survive two windows.
        d.observe(60.0);
        let r = d.observe(60.0).expect("phase start must reallocate");
        assert_eq!(r.fg.count(), 11);
    }

    #[test]
    fn masks_always_partition_the_cache() {
        let mut d = DynamicPartitioner::default();
        let inputs = [10.0, 10.0, 10.0, 30.0, 30.0, 31.0, 5.0, 5.0, 5.0, 5.0];
        for &m in inputs.iter().cycle().take(200) {
            d.observe(m);
            let r = d.masks();
            assert!(r.fg.count() >= 2 && r.fg.count() <= 11);
            assert_eq!(r.fg.count() + r.bg.count(), 12);
            assert!(!r.fg.overlaps(r.bg));
        }
    }

    #[test]
    fn reallocation_counter_increments() {
        let mut d = DynamicPartitioner::default();
        d.observe(10.0);
        d.observe(10.0);
        d.observe(10.0);
        assert!(d.reallocations() >= 2);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn config_rejects_total_fg_allocation() {
        DynamicConfig { total_ways: 12, max_fg_ways: 12, min_fg_ways: 2, thresholds: PhaseThresholds::paper() }
            .validate();
    }
}
