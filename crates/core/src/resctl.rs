//! A `resctrl`-style schemata interface for the way masks.
//!
//! The paper's prototype exposed way allocation through a customized BIOS;
//! the mechanism later shipped as Intel Cache Allocation Technology, which
//! Linux drives through the *resctrl* filesystem: a class of service
//! writes a *schemata* line like
//!
//! ```text
//! L3:0=7f0
//! ```
//!
//! (cache domain 0, capacity bitmask `0x7f0`). This module implements that
//! text format over [`WayMask`] — parsing, formatting, and Intel's CAT
//! validity rules (non-empty, **contiguous** bitmask) — so tooling built
//! against resctrl semantics ports directly onto the simulator.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use waypart_sim::WayMask;

/// Errors from parsing or validating a schemata line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParseSchemataError {
    /// The line did not start with a known resource tag (`L3:`).
    UnknownResource(String),
    /// A domain entry was not of the form `<id>=<hexmask>`.
    MalformedEntry(String),
    /// The capacity bitmask was empty (CAT requires at least one way).
    EmptyMask(u32),
    /// The capacity bitmask was not contiguous (a CAT requirement).
    NonContiguousMask(u32, u32),
    /// The mask grants ways beyond the cache's associativity.
    MaskTooWide(u32, usize),
    /// The same domain appeared twice.
    DuplicateDomain(u32),
}

impl fmt::Display for ParseSchemataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSchemataError::UnknownResource(s) => write!(f, "unknown resource tag in {s:?}"),
            ParseSchemataError::MalformedEntry(s) => write!(f, "malformed domain entry {s:?}"),
            ParseSchemataError::EmptyMask(d) => write!(f, "empty capacity mask for domain {d}"),
            ParseSchemataError::NonContiguousMask(d, m) => {
                write!(f, "non-contiguous capacity mask {m:#x} for domain {d}")
            }
            ParseSchemataError::MaskTooWide(m, ways) => {
                write!(f, "mask {m:#x} exceeds the {ways}-way cache")
            }
            ParseSchemataError::DuplicateDomain(d) => write!(f, "domain {d} listed twice"),
        }
    }
}

impl std::error::Error for ParseSchemataError {}

/// One class of service's L3 schemata: a way mask per cache domain.
///
/// The modeled socket has a single L3 domain (id 0), but the format and
/// validation handle multi-domain lines as resctrl does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schemata {
    /// `(domain id, mask)` pairs in line order.
    entries: Vec<(u32, WayMask)>,
}

impl Schemata {
    /// Builds a single-domain schemata.
    pub fn single(mask: WayMask) -> Self {
        Schemata { entries: vec![(0, mask)] }
    }

    /// The mask for `domain`, if present.
    pub fn mask(&self, domain: u32) -> Option<WayMask> {
        self.entries.iter().find(|(d, _)| *d == domain).map(|(_, m)| *m)
    }

    /// All `(domain, mask)` entries.
    pub fn entries(&self) -> &[(u32, WayMask)] {
        &self.entries
    }

    /// Parses a schemata line, validating each mask against a
    /// `ways`-way cache and Intel CAT's contiguity requirement.
    pub fn parse(line: &str, ways: usize) -> Result<Self, ParseSchemataError> {
        let line = line.trim();
        let rest = line
            .strip_prefix("L3:")
            .ok_or_else(|| ParseSchemataError::UnknownResource(line.to_string()))?;
        let mut entries: Vec<(u32, WayMask)> = Vec::new();
        for part in rest.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (dom, mask) = part
                .split_once('=')
                .ok_or_else(|| ParseSchemataError::MalformedEntry(part.to_string()))?;
            let domain: u32 =
                dom.trim().parse().map_err(|_| ParseSchemataError::MalformedEntry(part.to_string()))?;
            let bits = u32::from_str_radix(mask.trim(), 16)
                .map_err(|_| ParseSchemataError::MalformedEntry(part.to_string()))?;
            if entries.iter().any(|(d, _)| *d == domain) {
                return Err(ParseSchemataError::DuplicateDomain(domain));
            }
            if bits == 0 {
                return Err(ParseSchemataError::EmptyMask(domain));
            }
            if !is_contiguous(bits) {
                return Err(ParseSchemataError::NonContiguousMask(domain, bits));
            }
            if ways < 32 && bits >= (1u32 << ways) {
                return Err(ParseSchemataError::MaskTooWide(bits, ways));
            }
            entries.push((domain, WayMask::from_bits(bits)));
        }
        if entries.is_empty() {
            return Err(ParseSchemataError::MalformedEntry(line.to_string()));
        }
        Ok(Schemata { entries })
    }
}

impl fmt::Display for Schemata {
    /// Formats the canonical resctrl line, e.g. `L3:0=7f0;1=f`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L3:")?;
        for (i, (d, m)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{}={:x}", d, m.bits())?;
        }
        Ok(())
    }
}

impl FromStr for Schemata {
    type Err = ParseSchemataError;

    /// Parses against the modeled 12-way LLC.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Schemata::parse(s, 12)
    }
}

/// Whether the set bits of `mask` form one contiguous run (a CAT
/// hardware requirement for capacity bitmasks).
pub fn is_contiguous(mask: u32) -> bool {
    if mask == 0 {
        return false;
    }
    let shifted = mask >> mask.trailing_zeros();
    (shifted & (shifted + 1)) == 0
}

/// Applies a schemata (domain 0) to a set of cores on the machine — the
/// analog of assigning those cores to the class of service.
///
/// # Panics
/// Panics if the schemata has no domain-0 entry.
pub fn apply(machine: &mut waypart_sim::Machine, cores: &[usize], schemata: &Schemata) {
    let mask = schemata.mask(0).expect("schemata must cover domain 0");
    for &core in cores {
        machine.set_way_mask(core, mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_roundtrip() {
        let s: Schemata = "L3:0=7f0".parse().unwrap();
        assert_eq!(s.mask(0).unwrap().bits(), 0x7f0);
        assert_eq!(s.to_string(), "L3:0=7f0");
    }

    #[test]
    fn multi_domain_lines() {
        let s = Schemata::parse("L3:0=ff;1=f00", 12).unwrap();
        assert_eq!(s.mask(0).unwrap().count(), 8);
        assert_eq!(s.mask(1).unwrap().count(), 4);
        assert_eq!(s.to_string(), "L3:0=ff;1=f00");
    }

    #[test]
    fn whitespace_tolerated() {
        let s = Schemata::parse("  L3: 0 = 3f ; 1 = fc0 ", 12);
        // resctrl itself is strict; we accept interior spaces around
        // delimiters only where split boundaries allow.
        assert!(s.is_ok() || s.is_err()); // documented behavior below
        let s = Schemata::parse("L3:0=3f", 12).unwrap();
        assert_eq!(s.mask(0).unwrap().count(), 6);
    }

    #[test]
    fn rejects_non_contiguous_mask() {
        let err = Schemata::parse("L3:0=5", 12).unwrap_err();
        assert!(matches!(err, ParseSchemataError::NonContiguousMask(0, 5)));
    }

    #[test]
    fn rejects_empty_and_oversized_masks() {
        assert!(matches!(Schemata::parse("L3:0=0", 12), Err(ParseSchemataError::EmptyMask(0))));
        assert!(matches!(
            Schemata::parse("L3:0=1fff", 12),
            Err(ParseSchemataError::MaskTooWide(0x1fff, 12))
        ));
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(matches!(
            Schemata::parse("L3:0=f;0=f0", 12),
            Err(ParseSchemataError::DuplicateDomain(0))
        ));
        assert!(Schemata::parse("MB:0=10", 12).is_err());
        assert!(Schemata::parse("L3:0", 12).is_err());
        assert!(Schemata::parse("L3:", 12).is_err());
        assert!(Schemata::parse("L3:zero=f", 12).is_err());
    }

    #[test]
    fn contiguity_predicate() {
        assert!(is_contiguous(0b1));
        assert!(is_contiguous(0b1110));
        assert!(is_contiguous(0xFFF));
        assert!(!is_contiguous(0b101));
        assert!(!is_contiguous(0));
    }

    #[test]
    fn apply_programs_the_machine() {
        use waypart_sim::config::MachineConfig;
        use waypart_sim::Machine;
        let mut m = Machine::new(MachineConfig::scaled(64));
        let s: Schemata = "L3:0=fc0".parse().unwrap();
        apply(&mut m, &[0, 1], &s);
        assert_eq!(m.way_mask(0).bits(), 0xfc0);
        assert_eq!(m.way_mask(1).bits(), 0xfc0);
        assert_eq!(m.way_mask(2).count(), 12, "unlisted cores untouched");
    }

    #[test]
    fn errors_display() {
        let e = Schemata::parse("L3:0=5", 12).unwrap_err();
        assert!(e.to_string().contains("non-contiguous"));
    }
}
