//! Shared sweep executor for embarrassingly parallel measurement fan-out.
//!
//! Every figure of the evaluation is a sweep: a list of independent runs
//! (each owning its machine) whose results are collected in input order.
//! [`run_sweep`] executes one with chunked work-stealing — workers claim
//! contiguous chunks from a shared cursor, so the common case costs one
//! atomic per chunk rather than one per item, while stragglers still
//! rebalance because nobody owns more than a chunk at a time.
//!
//! Nested sweeps (a parallel figure whose per-item closure itself calls a
//! sweep, e.g. the biased search inside Fig 9) run the inner sweep inline
//! on the calling worker: the outer sweep already saturates the machine,
//! and nesting thread pools would oversubscribe it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use waypart_telemetry::{self as telemetry, Event, Stamp};

/// One worker's deterministic slice of a distributed sweep.
///
/// `ShardSpec::parse("2/4")` is worker 2 of 4. Ownership is decided per
/// run by a stable hash of the run's cache key — `owns_hash(h)` holds
/// for exactly one of the `count` workers for every hash, so the slices
/// are a disjoint exact cover of any run grid *without anyone having to
/// know the grid's shape up front*: a worker enumerates runs simply by
/// executing the (cheap) figure pipeline and asking, per run key, whether
/// the hash falls in its slice. `partition` is the eager form for grids
/// that have already been enumerated (e.g. a warm run cache's key set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based worker index in `1..=count`.
    pub index: u32,
    /// Total workers (≥ 1).
    pub count: u32,
}

impl ShardSpec {
    /// Parses `"k/n"` (1-based `k` in `1..=n`, `n ≥ 1`). Every malformed
    /// spec — `0/4`, `5/4`, `k/0`, garbage — is a descriptive `Err`, so
    /// binaries can print usage and exit nonzero instead of panicking.
    pub fn parse(spec: &str) -> Result<ShardSpec, String> {
        let (k, n) = spec
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{spec}` is not of the form k/n"))?;
        let index: u32 = k
            .trim()
            .parse()
            .map_err(|_| format!("shard index `{k}` in `{spec}` is not a positive integer"))?;
        let count: u32 = n
            .trim()
            .parse()
            .map_err(|_| format!("shard count `{n}` in `{spec}` is not a positive integer"))?;
        if count == 0 {
            return Err(format!("shard count must be ≥ 1 in `{spec}`"));
        }
        if index == 0 || index > count {
            return Err(format!("shard index must be in 1..={count} in `{spec}`, got {index}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether the run hashing to `hash` belongs to this worker. For any
    /// fixed `count`, exactly one `index` owns each hash.
    pub fn owns_hash(&self, hash: u64) -> bool {
        hash % u64::from(self.count) == u64::from(self.index - 1)
    }

    /// Splits an already-enumerated grid into this worker's slice and the
    /// rest, preserving order. `key_hash` maps an item to the same stable
    /// hash `owns_hash` is asked about at execution time.
    pub fn partition<T>(
        &self,
        items: Vec<T>,
        key_hash: impl Fn(&T) -> u64,
    ) -> (Vec<T>, Vec<T>) {
        items.into_iter().partition(|item| self.owns_hash(key_hash(item)))
    }

    /// `"k-of-n"` — stable label for spool directories and telemetry.
    pub fn label(&self) -> String {
        format!("{}-of-{}", self.index, self.count)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Reports sweep progress: the plain stderr line when no telemetry sink
/// is installed (byte-identical to the historical output), structured
/// `sweep.progress` counter events when one is. The events carry enough
/// to drive a live dashboard: completion, wall-clock so far, a linear
/// ETA, and how many workers the sweep is using.
fn report_progress(label: &str, finished: usize, n: usize, workers: usize, started_us: u64) {
    if telemetry::sink_attached() {
        telemetry::emit_with(|| {
            let now = telemetry::wall_now_us();
            let elapsed = now.saturating_sub(started_us);
            // Linear extrapolation from completed items.
            let eta = if finished > 0 {
                elapsed * (n - finished) as u64 / finished as u64
            } else {
                0
            };
            Event::counter("sweep.progress", Stamp::WallUs(now))
                .field("label", label)
                .field("done", finished)
                .field("total", n)
                .field("elapsed_us", elapsed)
                .field("eta_us", eta)
                .field("workers", workers)
        });
    } else if !label.is_empty() {
        eprintln!("[{label}] {finished}/{n}");
    }
}

thread_local! {
    /// Set while the current thread is a sweep worker, so nested sweeps
    /// degrade to the serial path instead of spawning threads-in-threads.
    static IN_SWEEP: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Executes `f` over `items` in input order with up to
/// `available_parallelism` workers. With a non-empty `label`, prints a
/// progress line to stderr as chunks complete.
///
/// # Panics
/// Propagates panics from `f`.
pub fn run_sweep<T, R, F>(label: &str, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4).min(n.max(1));
    let nested = IN_SWEEP.with(|flag| flag.get());
    if threads <= 1 || n <= 1 || nested {
        return items.iter().map(&f).collect();
    }

    // Chunks small enough that slow items rebalance, large enough that
    // cursor traffic is negligible.
    let chunk = (n / (threads * 4)).max(1);
    let started_us = telemetry::wall_now_us();
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let results_cell = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_SWEEP.with(|flag| flag.set(true));
                loop {
                    let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    let hi = (lo + chunk).min(n);
                    let batch: Vec<R> = items[lo..hi].iter().map(&f).collect();
                    {
                        let mut slots = results_cell.lock().expect("no poisoned workers");
                        for (slot, r) in slots[lo..hi].iter_mut().zip(batch) {
                            *slot = Some(r);
                        }
                    }
                    let finished = done.fetch_add(hi - lo, Ordering::Relaxed) + (hi - lo);
                    report_progress(label, finished, n, threads, started_us);
                }
                IN_SWEEP.with(|flag| flag.set(false));
            });
        }
    });
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// Advances a batch of independent simulation lanes in interleaved rounds
/// on the calling thread, returning each lane's result in input order.
///
/// `step` runs one quantum of lane `i` and returns `Some(result)` when
/// that lane finishes. Round-robin interleaving keeps all lanes within one
/// quantum of each other, which is what lets them share a sliding-window
/// workload trace (`sim::stream::SharedTrace`): the window only holds the
/// events between the slowest and fastest lane instead of a full replay
/// buffer per lane. Lanes that finish early are dropped immediately so
/// their trace readers release the window.
///
/// This is the in-cell complement to [`run_sweep`]: `run_sweep` spreads
/// independent cells across workers, `run_lockstep` batches the runs
/// *inside* one cell that differ only in policy.
pub fn run_lockstep<L, R>(lanes: Vec<L>, mut step: impl FnMut(&mut L) -> Option<R>) -> Vec<R> {
    let n = lanes.len();
    let mut live: Vec<Option<L>> = lanes.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut remaining = n;
    while remaining > 0 {
        for i in 0..n {
            let Some(lane) = live[i].as_mut() else { continue };
            if let Some(r) = step(lane) {
                results[i] = Some(r);
                live[i] = None; // drop now: frees the lane's trace readers
                remaining -= 1;
            }
        }
    }
    results.into_iter().map(|r| r.expect("every lane finished")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_interleaves_and_orders() {
        // Lane i needs i+1 steps; record the global step order to prove
        // round-robin interleaving (not run-to-completion).
        let mut order = Vec::new();
        let lanes: Vec<(usize, usize)> = (0..4).map(|i| (i, i + 1)).collect();
        let out = run_lockstep(lanes, |lane| {
            order.push(lane.0);
            lane.1 -= 1;
            (lane.1 == 0).then_some(lane.0 * 10)
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        assert_eq!(order, vec![0, 1, 2, 3, 1, 2, 3, 2, 3, 3]);
    }

    #[test]
    fn lockstep_empty() {
        let out = run_lockstep(Vec::<u8>::new(), |_| Some(0));
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_input_order() {
        let out = run_sweep("", (0..257).collect(), |&x: &i32| x * 3);
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert!(run_sweep("", Vec::<i32>::new(), |&x| x).is_empty());
        assert_eq!(run_sweep("", vec![9], |&x: &i32| x - 1), vec![8]);
    }

    #[test]
    fn nested_sweep_runs_inline() {
        // The outer sweep's workers are flagged; the inner call must not
        // spawn (it would deadlock nothing, but it would oversubscribe) —
        // we can only observe that results stay correct.
        let out = run_sweep("", (0..16).collect(), |&x: &i32| {
            let inner = run_sweep("", (0..4).collect(), |&y: &i32| y + x);
            inner.into_iter().sum::<i32>()
        });
        assert_eq!(out, (0..16).map(|x| 4 * x + 6).collect::<Vec<_>>());
    }

    #[test]
    fn shard_spec_parses_valid_and_rejects_malformed() {
        assert_eq!(ShardSpec::parse("1/1").unwrap(), ShardSpec { index: 1, count: 1 });
        assert_eq!(ShardSpec::parse("3/8").unwrap(), ShardSpec { index: 3, count: 8 });
        assert_eq!(ShardSpec::parse("3/8").unwrap().label(), "3-of-8");
        for bad in ["0/4", "5/4", "4/0", "k/0", "1-4", "", "/", "1/", "/4", "1/4/2", "-1/4"] {
            assert!(ShardSpec::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn shard_slices_are_a_disjoint_exact_cover() {
        // For every worker count, each hash is owned by exactly one
        // worker — union of slices == grid, pairwise intersections empty.
        let hashes: Vec<u64> = (0..512u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ i)
            .chain([0, 1, u64::MAX, u64::MAX - 1])
            .collect();
        for count in 1..=16u32 {
            for &h in &hashes {
                let owners: Vec<u32> = (1..=count)
                    .filter(|&index| ShardSpec { index, count }.owns_hash(h))
                    .collect();
                assert_eq!(owners.len(), 1, "hash {h:#x} owned by {owners:?} of {count}");
            }
        }
    }

    #[test]
    fn shard_partition_splits_and_preserves_order() {
        let spec = ShardSpec { index: 2, count: 3 };
        let (mine, theirs) = spec.partition((0u64..100).collect(), |&x| x);
        assert!(mine.iter().all(|&x| x % 3 == 1));
        assert_eq!(mine.len() + theirs.len(), 100);
        assert!(mine.windows(2).all(|w| w[0] < w[1]), "order preserved");
        assert!(theirs.windows(2).all(|w| w[0] < w[1]), "order preserved");
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_sweep("", (0..64).collect(), |&x: &i32| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }
}
