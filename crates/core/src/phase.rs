//! Algorithm 6.1 — MPKI-window phase detection.
//!
//! The framework monitors the foreground application's LLC misses per
//! kilo-instruction over fixed sampling windows (100 ms on the real
//! machine) and flags a *phase change* when the current window deviates
//! from the running average by more than a threshold; the transition ends
//! when the window re-converges. Pseudocode from the paper:
//!
//! ```text
//! if not new_phase {
//!     if |avg_MPKI - current_MPKI| > MPKI_THR1 { new_phase = 1; return 2 }
//! } else if |avg_MPKI - current_MPKI| < MPKI_THR2 { new_phase = 0 }
//! return new_phase
//! ```
//!
//! The paper's calibrated thresholds are MPKI_THR1 = MPKI_THR2 = 0.02 and
//! (for the allocator) MPKI_THR3 = 0.05; we interpret them as *relative*
//! deviations (2% / 5%), which a sensitivity sweep (ablation bench)
//! confirms the results are insensitive to, as the paper also found.

use serde::{Deserialize, Serialize};

/// Return value of one detector step, mirroring the paper's pseudocode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseEvent {
    /// Steady state: no phase change in progress (`return 0`).
    Stable,
    /// A phase change is still in progress (`return 1`).
    InTransition,
    /// A new phase just started this window (`return 2`).
    PhaseStart,
}

/// Detection thresholds (relative deviations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseThresholds {
    /// Deviation from the running average that *opens* a phase change.
    pub thr1: f64,
    /// Re-convergence bound that *closes* a phase change.
    pub thr2: f64,
    /// Window-to-window stability bound used by the allocator (Alg 6.2).
    pub thr3: f64,
    /// Absolute MPKI floor for the relative comparisons: deviations are
    /// measured against `max(reference, floor)`, so phases whose MPKI sits
    /// at or near zero (a working set fully resident in the allocation)
    /// compare stably instead of every zero-window reading as a 100%
    /// deviation.
    pub mpki_floor: f64,
}

/// Relative deviation of `cur` from `reference` with the absolute floor.
pub(crate) fn rel_dev(reference: f64, cur: f64, floor: f64) -> f64 {
    (reference - cur).abs() / reference.abs().max(cur.abs()).max(floor)
}

impl PhaseThresholds {
    /// The values this reproduction calibrated for its simulator, playing
    /// the role of the paper's sensitivity study (§6.3): a window must
    /// deviate 30% from the running average to open a phase change, and
    /// re-converge within 10% to close it; the allocator reacts to a 5%
    /// window-over-window rise.
    ///
    /// The ordering `thr1 > thr3` is load-bearing: capacity-induced MPKI
    /// creep must reach the allocator's give-back branch without being
    /// misread as a phase change. (Under the paper's literal numbers
    /// interpreted relatively, `thr3 > thr1` would make that branch
    /// unreachable; see [`Self::paper_literal`].)
    pub fn calibrated() -> Self {
        PhaseThresholds { thr1: 0.30, thr2: 0.10, thr3: 0.05, mpki_floor: 0.5 }
    }

    /// Alias for [`Self::calibrated`] — the configuration used throughout
    /// the reproduction's experiments.
    pub fn paper() -> Self {
        Self::calibrated()
    }

    /// The paper's literal threshold constants (MPKI_THR1 = MPKI_THR2 =
    /// 0.02, MPKI_THR3 = 0.05), exposed for the threshold-sensitivity
    /// ablation bench.
    pub fn paper_literal() -> Self {
        PhaseThresholds { thr1: 0.02, thr2: 0.02, thr3: 0.05, mpki_floor: 0.5 }
    }

    /// Validates the thresholds.
    ///
    /// # Panics
    /// Panics on non-positive thresholds.
    pub fn validate(&self) {
        assert!(self.thr1 > 0.0 && self.thr2 > 0.0 && self.thr3 > 0.0, "thresholds must be positive");
        assert!(self.mpki_floor > 0.0, "the MPKI floor must be positive");
    }
}

impl Default for PhaseThresholds {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// The phase-detection state machine of Algorithm 6.1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseDetector {
    thresholds: PhaseThresholds,
    /// Exponential running average of window MPKI.
    avg_mpki: Option<f64>,
    /// EMA smoothing factor.
    alpha: f64,
    in_transition: bool,
}

impl PhaseDetector {
    /// A detector with the given thresholds.
    pub fn new(thresholds: PhaseThresholds) -> Self {
        thresholds.validate();
        PhaseDetector { thresholds, avg_mpki: None, alpha: 0.25, in_transition: false }
    }

    /// Feeds one window's MPKI; returns the phase event.
    pub fn observe(&mut self, current_mpki: f64) -> PhaseEvent {
        let avg = match self.avg_mpki {
            None => {
                // First window seeds the average; by definition no change.
                self.avg_mpki = Some(current_mpki);
                return PhaseEvent::Stable;
            }
            Some(a) => a,
        };
        let rel_dev = rel_dev(avg, current_mpki, self.thresholds.mpki_floor);
        let event = if !self.in_transition {
            if rel_dev > self.thresholds.thr1 {
                self.in_transition = true;
                // Re-seed the running average at the new phase's level so
                // the detector converges at the phase's first window
                // instead of chasing it for an EMA time constant.
                self.avg_mpki = Some(current_mpki);
                return PhaseEvent::PhaseStart;
            }
            PhaseEvent::Stable
        } else if rel_dev < self.thresholds.thr2 {
            self.in_transition = false;
            PhaseEvent::Stable
        } else {
            PhaseEvent::InTransition
        };
        self.avg_mpki = Some((1.0 - self.alpha) * avg + self.alpha * current_mpki);
        event
    }

    /// The running average MPKI, if seeded.
    pub fn avg_mpki(&self) -> Option<f64> {
        self.avg_mpki
    }

    /// Whether a phase change is currently in progress.
    pub fn in_transition(&self) -> bool {
        self.in_transition
    }
}

impl Default for PhaseDetector {
    fn default() -> Self {
        Self::new(PhaseThresholds::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_signal_stays_stable() {
        let mut d = PhaseDetector::default();
        for _ in 0..50 {
            assert_eq!(d.observe(10.0), PhaseEvent::Stable);
        }
    }

    #[test]
    fn jump_triggers_phase_start_then_settles() {
        let mut d = PhaseDetector::default();
        for _ in 0..10 {
            d.observe(10.0);
        }
        assert_eq!(d.observe(40.0), PhaseEvent::PhaseStart);
        // The average re-seeds at the new level, so a steady signal closes
        // the transition at the very next window.
        assert_eq!(d.observe(40.0), PhaseEvent::Stable);
        assert!(!d.in_transition());
        // A *noisy* settling signal keeps the transition open until it
        // re-converges.
        assert_eq!(d.observe(10.0), PhaseEvent::PhaseStart);
        assert_eq!(d.observe(14.0), PhaseEvent::InTransition); // 40% off the re-seeded avg
        let mut settled = false;
        for _ in 0..40 {
            match d.observe(14.0) {
                PhaseEvent::Stable => {
                    settled = true;
                    break;
                }
                PhaseEvent::InTransition => {}
                PhaseEvent::PhaseStart => panic!("double phase start"),
            }
        }
        assert!(settled);
    }

    #[test]
    fn small_noise_below_threshold_is_ignored() {
        let mut d = PhaseDetector::default();
        d.observe(100.0);
        for i in 0..100 {
            let noise = if i % 2 == 0 { 100.5 } else { 99.5 }; // ±0.5%
            assert_eq!(d.observe(noise), PhaseEvent::Stable, "window {i}");
        }
    }

    #[test]
    fn first_window_seeds_average() {
        let mut d = PhaseDetector::default();
        assert_eq!(d.observe(123.0), PhaseEvent::Stable);
        assert_eq!(d.avg_mpki(), Some(123.0));
    }

    #[test]
    fn zero_mpki_handled() {
        let mut d = PhaseDetector::default();
        d.observe(0.0);
        // 0 → 0 must not divide by zero or spuriously trigger.
        assert_eq!(d.observe(0.0), PhaseEvent::Stable);
        // 0 → positive is a real phase change.
        assert_eq!(d.observe(5.0), PhaseEvent::PhaseStart);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_thresholds_rejected() {
        let _ = PhaseDetector::new(PhaseThresholds { thr1: 0.0, thr2: 0.02, thr3: 0.05, mpki_floor: 0.5 });
    }
}
