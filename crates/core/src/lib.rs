//! # waypart-core
//!
//! The primary contribution of Cook et al. (ISCA 2013): software control of
//! hardware way-based LLC partitioning to consolidate a latency-sensitive
//! *foreground* application with throughput *background* work.
//!
//! * [`policy`] — the three static policies compared in §5: **shared** (no
//!   partitioning), **fair** (even split), and **biased** (the best static
//!   split found by sweeping);
//! * [`phase`] — Algorithm 6.1: MPKI-window phase detection;
//! * [`dynamic`] — Algorithm 6.2: the lightweight online controller that
//!   grants the foreground the full LLC on a phase change, then gradually
//!   reclaims ways for the background until foreground MPKI reacts;
//! * [`runner`] — the measurement harness: solo runs, co-scheduled pairs
//!   under any policy, and dynamically-partitioned pairs, with energy
//!   metering — the code equivalent of the paper's experimental setup
//!   (4 threads on 2 cores per application, §5);
//! * [`static_search`] — exhaustive biased-partition sweep (the oracle the
//!   dynamic controller is judged against);
//! * [`ucp`] — the utility-based cache partitioning baseline (Qureshi &
//!   Patt, discussed in the paper's §7), built on the simulator's UMON
//!   hardware, for throughput-vs-responsiveness comparisons;
//! * [`resctl`] — a Linux-resctrl-style schemata text interface
//!   (`L3:0=7f0`) over the way masks, with Intel CAT's validity rules;
//! * [`qos`] — a minimum-performance (IPC-floor) controller in the spirit
//!   of the paper's refs [20][26], for SLO-vs-throughput studies.
//!
//! ```no_run
//! use waypart_core::runner::{Runner, RunnerConfig};
//! use waypart_core::policy::PartitionPolicy;
//! use waypart_workloads::registry;
//!
//! let runner = Runner::new(RunnerConfig::test());
//! let fg = registry::by_name("429.mcf").unwrap();
//! let bg = registry::by_name("459.GemsFDTD").unwrap();
//! let pair = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Fair);
//! println!("foreground ran {} cycles", pair.fg_cycles);
//! ```

pub mod dynamic;
pub mod phase;
pub mod policy;
pub mod qos;
pub mod resctl;
pub mod runner;
pub mod static_search;
pub mod sweep;
pub mod ucp;

pub use dynamic::{DynamicConfig, DynamicPartitioner};
pub use phase::{PhaseDetector, PhaseEvent, PhaseThresholds};
pub use policy::PartitionPolicy;
pub use runner::{PairResult, Runner, RunnerConfig, SoloResult};
